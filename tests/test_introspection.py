"""In-band introspection: system table functions, profiler, SQL composability.

ISSUE 5's tentpole contract: engine state is a relation.  Every registered
``repro_*()`` function must be usable anywhere a table is -- filtered,
joined, ordered, aggregated -- through the ordinary binder/planner/executor
path, with no special-case client API.
"""

import threading
import time

import pytest

import repro
from repro import observability as obs
from repro import introspection
from repro.errors import BinderError, CatalogError
from repro.introspection import SystemTableFunction, register, unregister
from repro.introspection.profiler import SamplingProfiler
from repro.types import VECTOR_SIZE
from repro.types.logical import BIGINT


@pytest.fixture
def con():
    connection = repro.connect()
    yield connection
    connection.close()


class TestSystemTableFunctions:
    @pytest.mark.parametrize("name", introspection.function_names())
    def test_every_function_is_queryable(self, con, name):
        rows = con.execute(f"SELECT count(*) FROM {name}()").fetchall()
        assert len(rows) == 1
        assert rows[0][0] >= 0

    @pytest.mark.parametrize("name", introspection.function_names())
    def test_column_schema_matches_registration(self, con, name):
        function = introspection.lookup(name)
        result = con.execute(f"SELECT * FROM {name}()")
        assert list(result.names) == list(function.column_names)
        result.close()

    def test_case_insensitive_lookup(self, con):
        rows = con.execute("SELECT count(*) FROM REPRO_SETTINGS()").fetchall()
        assert rows[0][0] > 0

    def test_arguments_rejected(self, con):
        with pytest.raises(BinderError, match="takes no arguments"):
            con.execute("SELECT * FROM repro_settings(1)")

    def test_unknown_table_function_still_errors(self, con):
        with pytest.raises((BinderError, CatalogError)):
            con.execute("SELECT * FROM repro_no_such_thing()")


class TestComposability:
    def _setup(self, con):
        con.execute("CREATE TABLE points (x INTEGER, label VARCHAR)")
        con.execute("INSERT INTO points VALUES (1, 'a'), (2, 'b'), (3, 'c')")

    def test_where_filter(self, con):
        self._setup(con)
        rows = con.execute(
            "SELECT name, row_count FROM repro_tables() "
            "WHERE type = 'table'").fetchall()
        assert rows == [("points", 3)]

    def test_alias_and_order_by_limit(self, con):
        self._setup(con)
        rows = con.execute(
            "SELECT c.column_name FROM repro_columns() c "
            "ORDER BY c.column_index DESC LIMIT 1").fetchall()
        assert rows == [("label",)]

    def test_join_tables_with_columns(self, con):
        self._setup(con)
        rows = con.execute(
            "SELECT t.name, c.column_name, c.dtype "
            "FROM repro_tables() t "
            "JOIN repro_columns() c ON t.name = c.table_name "
            "ORDER BY c.column_index").fetchall()
        assert rows == [("points", "x", "INTEGER"),
                        ("points", "label", "VARCHAR")]

    def test_aggregate_over_system_table(self, con):
        self._setup(con)
        rows = con.execute(
            "SELECT table_name, count(*) AS cols FROM repro_columns() "
            "GROUP BY table_name").fetchall()
        assert rows == [("points", 2)]

    def test_settings_reflect_pragma(self, con):
        con.execute("PRAGMA threads = 3")
        value = con.execute(
            "SELECT value FROM repro_settings() WHERE name = 'threads'"
        ).fetchvalue()
        assert value == "3"

    def test_transactions_shows_own_snapshot(self, con):
        rows = con.execute(
            "SELECT state, has_writes FROM repro_transactions()").fetchall()
        # The introspecting statement runs inside a transaction itself.
        assert len(rows) >= 1
        assert all(state == "active" for state, _ in rows)

    def test_storage_counters_present(self, con):
        rows = dict(con.execute("SELECT * FROM repro_storage()").fetchall())
        assert rows["in_memory"] == 1
        assert rows["wal_enabled"] == 0
        assert rows["buffer_memory_limit"] > 0

    def test_metrics_include_query_counter(self, con):
        con.execute("SELECT 1").fetchall()
        value = con.execute(
            "SELECT value FROM repro_metrics() "
            "WHERE name = 'repro_queries_total'").fetchvalue()
        assert value >= 1.0


class TestChunking:
    def test_snapshot_larger_than_vector_size_chunks_correctly(self, con):
        total = VECTOR_SIZE * 2 + 123
        function = SystemTableFunction(
            "repro_test_numbers", "test fixture",
            (("n", BIGINT),),
            lambda database, transaction: [(i,) for i in range(total)])
        register(function)
        try:
            assert con.execute(
                "SELECT count(*) FROM repro_test_numbers()").fetchvalue() \
                == total
            assert con.execute(
                "SELECT sum(n) FROM repro_test_numbers() WHERE n < 10"
            ).fetchvalue() == sum(range(10))
        finally:
            unregister("repro_test_numbers")


class TestTraceAgreement:
    def test_repro_traces_agrees_with_explain_analyze(self):
        con = repro.connect(config={"trace_enabled": True})
        try:
            con.execute("CREATE TABLE t (a INTEGER)")
            con.execute("INSERT INTO t VALUES (1), (2), (3)")
            analyze = con.execute(
                "EXPLAIN ANALYZE SELECT count(*) FROM t").fetchall()
            text = "\n".join(line for (line,) in analyze)
            # The same spans EXPLAIN ANALYZE rendered are visible, in-band,
            # via SQL: every operator span of that trace appears in the
            # report with the same row count.
            spans = con.execute(
                "SELECT name, rows FROM repro_traces() "
                "WHERE kind = 'operator' AND trace_id = "
                "  (SELECT max(trace_id) FROM repro_traces() "
                "   WHERE name = 'explain analyze')").fetchall()
            assert len(spans) >= 2  # scan + aggregate at minimum
            names = dict(spans)
            assert any(name.startswith("TABLE_SCAN t") for name in names)
            for name, rows in spans:
                line = next(ln for ln in text.splitlines()
                            if ln.strip().startswith(name)
                            and "rows_out=" in ln)
                assert f"rows_out={rows}" in line
        finally:
            con.close()
            if not obs.tracing_enabled():
                return
            obs.disable_tracing()


class TestProfiler:
    def test_profile_rows_accumulate_under_load(self, con):
        import numpy as np

        con.execute("CREATE TABLE t (v INTEGER)")
        with con.appender("t") as appender:
            appender.append_numpy({"v": np.arange(50000, dtype=np.int32)})
        con.execute("PRAGMA enable_profiling")
        try:
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                con.execute("SELECT count(*), sum(v) FROM t WHERE v % 3 = 0"
                            ).fetchall()
                rows = con.execute(
                    "SELECT * FROM repro_profile()").fetchall()
                if rows:
                    break
            assert rows, "no samples attributed within 10s of load"
            for operator, phase, samples, self_seconds in rows:
                assert samples > 0
                assert self_seconds > 0
        finally:
            con.execute("PRAGMA disable_profiling")

    def test_pragma_toggles_sampler_thread(self, con):
        profiler = con._database.profiler
        assert not profiler.running
        con.execute("PRAGMA enable_profiling")
        assert profiler.running
        con.execute("PRAGMA disable_profiling")
        assert not profiler.running

    def test_sample_once_attributes_engine_frames(self):
        profiler = SamplingProfiler()
        release = threading.Event()
        ready = threading.Event()

        def engine_work():
            con = repro.connect()
            try:
                con.execute("CREATE TABLE t (v INTEGER)")

                def hold(database, transaction):
                    ready.set()
                    release.wait(timeout=10.0)
                    return [(1,)]

                register(SystemTableFunction(
                    "repro_test_hold", "fixture", (("v", BIGINT),), hold))
                try:
                    # The provider blocks inside PhysicalIntrospectionScan's
                    # pull, so a sample taken now sees an engine stack.
                    con.execute("SELECT * FROM repro_test_hold()").fetchall()
                finally:
                    unregister("repro_test_hold")
            finally:
                con.close()

        worker = threading.Thread(target=engine_work, daemon=True)
        worker.start()
        assert ready.wait(timeout=10.0)
        try:
            hits = profiler.sample_once()
            assert hits >= 1
        finally:
            release.set()
            worker.join(timeout=10.0)
        snapshot = profiler.snapshot()
        assert snapshot
        assert any(phase == "execute" for _, phase, _, _ in snapshot)

    def test_env_var_enables_profiling(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        con = repro.connect()
        try:
            assert con._database.config.profile_enabled
            assert con._database.profiler.running
        finally:
            con.close()
        assert not con._database.profiler.running

    def test_reset_clears_buckets(self):
        profiler = SamplingProfiler()
        profiler._buckets[("X", "execute")] = 5
        profiler._total_samples = 5
        profiler.reset()
        assert profiler.snapshot() == []
        assert profiler.total_samples == 0


class TestKernelManifestTable:
    """``repro_kernels()``: the kernel capability manifest as a relation."""

    def test_row_count_matches_committed_manifest(self, con):
        from repro.analysis.kernelcheck import manifest_entries
        count = con.execute(
            "SELECT count(*) FROM repro_kernels()").fetchvalue()
        assert count == len(manifest_entries())

    def test_where_on_null_contract(self, con):
        rows = con.execute(
            "SELECT name FROM repro_kernels() "
            "WHERE null_contract <> 'propagate' AND kind = 'scalar' "
            "ORDER BY name").fetchall()
        names = [name for (name,) in rows]
        # The conditional family rewrites validity itself.
        assert "coalesce" in names
        assert "nullif" in names
        assert "abs" not in names

    def test_order_by_and_limit(self, con):
        rows = con.execute(
            "SELECT kind, name FROM repro_kernels() "
            "ORDER BY kind, name LIMIT 3").fetchall()
        assert rows == sorted(rows)
        assert all(kind == "aggregate" for kind, _ in rows)

    def test_aggregate_contract_census(self, con):
        rows = dict(con.execute(
            "SELECT null_contract, count(*) FROM repro_kernels() "
            "WHERE kind = 'aggregate' GROUP BY null_contract").fetchall())
        assert set(rows) == {"skip-nulls"}

    def test_join_against_other_system_tables(self, con):
        # Engine state is a relation: the manifest joins against the
        # settings snapshot through the ordinary executor path.
        rows = con.execute(
            "SELECT k.name, s.value FROM repro_kernels() k "
            "JOIN repro_settings() s ON s.name = 'threads' "
            "WHERE k.name = 'round'").fetchall()
        assert len(rows) == 1
        assert rows[0][0] == "round"

    def test_fusable_kernels_are_vectorized_and_pure(self, con):
        rows = con.execute(
            "SELECT count(*) FROM repro_kernels() "
            "WHERE fusable AND NOT (vectorized AND pure AND thread_safe)"
        ).fetchvalue()
        assert rows == 0

    def test_no_unchecked_kernels_ship(self, con):
        assert con.execute(
            "SELECT count(*) FROM repro_kernels() "
            "WHERE null_contract = 'unchecked'").fetchvalue() == 0
