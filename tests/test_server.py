"""The serving front end: sessions, shared caches, admission, introspection.

Covers the PR9 tentpole: :class:`repro.server.QueryServer` multiplexing
sessions onto one database, session-scoped PRAGMAs, snapshot isolation
across sessions, plan-cache invalidation on DDL, result-cache invalidation
on commit, admission control, and the ``repro_sessions()`` /
``repro_serving()`` system tables.  The hammer test at the end runs the
whole stack from many threads (and doubles as a sanitizer workload under
``REPRO_SANITIZE=1``).
"""

import threading

import pytest

import repro
from repro.errors import AdmissionError, ClosedHandleError, InterfaceError
from repro.server import QueryServer, Session


@pytest.fixture
def server():
    with repro.serve() as srv:
        yield srv


def test_serve_returns_query_server(server):
    assert isinstance(server, QueryServer)
    session = server.session("smoke")
    assert isinstance(session, Session)
    with session:
        session.execute("CREATE TABLE t (i INTEGER)")
        session.execute("INSERT INTO t VALUES (1), (2)")
        result = session.execute("SELECT sum(i) FROM t")
        assert result.fetchone() == (3,)
    stats = server.stats()
    assert stats["sessions"]["opened"] >= 1
    assert stats["sessions"]["closed"] == stats["sessions"]["opened"]


def test_one_shot_execute(server):
    server.execute("CREATE TABLE t (i INTEGER)")
    server.execute("INSERT INTO t VALUES (?)", (7,))
    assert server.execute("SELECT i FROM t").fetchall() == [(7,)]
    # The throwaway sessions are closed even on error.
    with pytest.raises(Exception):
        server.execute("SELECT no_such FROM t")
    assert len(server.sessions) == 0


def test_session_pragmas_are_scoped(server):
    default_threads = server.database.config.threads
    with server.session("tuned") as tuned, server.session("plain") as plain:
        tuned.execute("PRAGMA threads=3")
        assert tuned.connection.session_config.threads == 3
        # Neither the sibling session nor the database-wide config moved.
        assert plain.connection.session_config.threads == default_threads
        assert server.database.config.threads == default_threads


def test_sessions_are_snapshot_isolated(server):
    server.execute("CREATE TABLE t (i INTEGER)")
    server.execute("INSERT INTO t VALUES (1)")
    with server.session("writer") as writer, \
            server.session("reader") as reader:
        writer.execute("BEGIN")
        writer.execute("INSERT INTO t VALUES (2)")
        # The reader's autocommit snapshot must not see the open write.
        assert reader.execute("SELECT count(*) FROM t").fetchone() == (1,)
        writer.execute("COMMIT")
        assert reader.execute("SELECT count(*) FROM t").fetchone() == (2,)


def test_plan_cache_warm_hits(server):
    server.execute("CREATE TABLE t (i INTEGER)")
    server.execute("INSERT INTO t VALUES (1), (2), (3)")
    before = server.database.plan_cache.stats()
    with server.session() as session:
        for value in (0, 1, 2):
            session.execute("SELECT count(*) FROM t WHERE i > ?", (value,))
    after = server.database.plan_cache.stats()
    # One miss binds the plan; the other values reuse it.
    assert after["misses"] - before["misses"] == 1
    assert after["hits"] - before["hits"] == 2


def test_ddl_invalidates_cached_plans(server):
    server.execute("CREATE TABLE t (i INTEGER)")
    server.execute("INSERT INTO t VALUES (1)")
    with server.session() as session:
        session.execute("SELECT count(*) FROM t WHERE i > ?", (0,))
        session.execute("SELECT count(*) FROM t WHERE i > ?", (0,))
        before = server.database.plan_cache.stats()
        # Any DDL bumps the catalog version; the cached plan is discarded
        # on its next lookup rather than served stale.
        session.execute("CREATE TABLE other (j INTEGER)")
        result = session.execute("SELECT count(*) FROM t WHERE i > ?", (0,))
        assert result.fetchone() == (1,)
    after = server.database.plan_cache.stats()
    assert after["invalidations"] > before["invalidations"]


def test_commit_supersedes_cached_results(server):
    server.execute("CREATE TABLE t (i INTEGER)")
    server.execute("INSERT INTO t VALUES (1)")
    with server.session() as session:
        assert session.execute("SELECT sum(i) FROM t").fetchone() == (1,)
        before = server.database.result_cache.stats()
        assert session.execute("SELECT sum(i) FROM t").fetchone() == (1,)
        mid = server.database.result_cache.stats()
        assert mid["hits"] - before["hits"] == 1
        # A committed write advances the data version: the cached result is
        # stale and must not be served.
        session.execute("INSERT INTO t VALUES (10)")
        assert session.execute("SELECT sum(i) FROM t").fetchone() == (11,)


def test_result_cache_values_key_distinct_entries(server):
    server.execute("CREATE TABLE t (i INTEGER)")
    server.execute("INSERT INTO t VALUES (1), (2), (3)")
    with server.session() as session:
        sql = "SELECT count(*) FROM t WHERE i > ?"
        assert session.execute(sql, (0,)).fetchone() == (3,)
        assert session.execute(sql, (2,)).fetchone() == (1,)
        # Same SQL, different values: each result was cached under its own
        # value fingerprint, so both replay correctly.
        assert session.execute(sql, (0,)).fetchone() == (3,)
        assert session.execute(sql, (2,)).fetchone() == (1,)


def test_admission_limit_rejects_past_timeout():
    with repro.serve(config={"max_concurrent_queries": 1,
                             "admission_timeout_ms": 30}) as server:
        server.execute("CREATE TABLE t (i INTEGER)")
        # Occupy the only slot, exactly as an in-flight query would.
        server.admission.admit()
        try:
            with server.session() as session:
                with pytest.raises(AdmissionError):
                    session.execute("SELECT count(*) FROM t")
        finally:
            server.admission.release()
        stats = server.admission.stats()
        assert stats["timeouts"] >= 1
        # The slot is free again: queries run.
        assert server.execute("SELECT count(*) FROM t").fetchone() == (0,)


def test_closed_session_raises_interface_error(server):
    session = server.session()
    session.close()
    with pytest.raises(ClosedHandleError):
        session.execute("SELECT 1")
    assert issubclass(ClosedHandleError, InterfaceError)
    session.close()  # idempotent


def test_repro_sessions_system_table(server):
    with server.session("dashboard") as session:
        session.execute("SELECT 1")
        rows = session.execute(
            "SELECT name, state, statements FROM repro_sessions() "
            "ORDER BY session_id").fetchall()
    names = [row[0] for row in rows]
    assert "dashboard" in names
    dashboard = rows[names.index("dashboard")]
    # The introspecting statement itself is the active one.
    assert dashboard[1] == "active"
    assert dashboard[2] >= 2


def test_repro_serving_system_table(server):
    server.execute("SELECT 1")
    rows = dict(server.execute(
        "SELECT name, value FROM repro_serving()").fetchall())
    assert "plan_cache.hits" in rows
    assert "result_cache.misses" in rows
    assert "admission.admitted" in rows
    assert rows["sessions.opened"] >= 1


def test_serving_metrics_fold_into_observability(server):
    server.execute("CREATE TABLE t (i INTEGER)")
    with server.session() as session:
        session.execute("SELECT count(*) FROM t WHERE i > ?", (0,))
        session.execute("SELECT count(*) FROM t WHERE i > ?", (0,))
    metrics = dict(server.execute(
        "SELECT name, value FROM repro_metrics() "
        "WHERE name LIKE 'repro_plan_cache%'").fetchall())
    assert metrics.get("repro_plan_cache_hits_total", 0) >= 1


def test_concurrent_session_hammer(server):
    """Many threads driving full sessions through the shared caches."""
    server.execute("CREATE TABLE t (category INTEGER, amount DOUBLE)")
    server.execute("INSERT INTO t VALUES (1, 10.0), (2, 20.0), (3, 30.0)")
    errors = []

    def client(index):
        try:
            for round_index in range(4):
                with server.session(f"hammer-{index}-{round_index}") as s:
                    s.execute("SELECT category, sum(amount) FROM t "
                              "WHERE category <> ? GROUP BY category",
                              (index % 3,)).fetchall()
                    s.execute("INSERT INTO t VALUES (?, ?)",
                              (index, float(index)))
                    s.execute("SELECT count(*) FROM t").fetchall()
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(f"{type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=client, args=(index,))
               for index in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    assert len(server.sessions) == 0
    # 8 clients x 4 rounds x 1 insert each, on top of the 3 seed rows.
    assert server.execute("SELECT count(*) FROM t").fetchone() == (35,)
    stats = server.database.plan_cache.stats()
    assert stats["hits"] > stats["misses"]
