"""Resilience tests: fault injection, memtests, AN codes, failure model."""

import numpy as np
import pytest

from repro.errors import CorruptionError
from repro.resilience import (
    ANCodedVector,
    DEFAULT_A,
    FaultyMemory,
    FleetSimulator,
    PlainMemory,
    TABLE1_RATES,
    an_decode,
    an_encode,
    an_verify,
    inject_bit_flips,
    moving_inversions,
    quick_pattern_test,
)
from repro.resilience.failures import FailureKind
from repro.types import Vector


class TestFaultyMemory:
    def test_plain_memory_round_trip(self):
        memory = PlainMemory(1024)
        memory.write(10, np.arange(20, dtype=np.uint8))
        np.testing.assert_array_equal(memory.read(10, 20),
                                      np.arange(20, dtype=np.uint8))

    def test_stuck_at_one(self):
        memory = FaultyMemory(1024)
        memory.inject_stuck_bit(5, bit=0, value=1)
        memory.write(0, np.zeros(16, dtype=np.uint8))
        observed = memory.read(0, 16)
        assert observed[5] == 1  # the write could not clear the stuck bit
        assert observed[4] == 0

    def test_stuck_at_zero(self):
        memory = FaultyMemory(1024)
        memory.inject_stuck_bit(3, bit=7, value=0)
        memory.write(0, np.full(8, 0xFF, dtype=np.uint8))
        assert memory.read(0, 8)[3] == 0x7F

    def test_coupling_fault_masked_by_later_write(self):
        """Victim after aggressor in one sweep: the flip gets overwritten."""
        memory = FaultyMemory(1024)
        memory.inject_coupling_fault(aggressor=10, victim=11, bit=0)
        memory.write(0, np.zeros(32, dtype=np.uint8))
        assert memory.read(11, 1)[0] == 0  # masked

    def test_coupling_fault_persists_when_victim_written_first(self):
        memory = FaultyMemory(1024)
        memory.inject_coupling_fault(aggressor=10, victim=5, bit=0)
        memory.write(0, np.zeros(32, dtype=np.uint8))
        assert memory.read(5, 1)[0] == 1  # victim < aggressor: flip survives

    def test_coupling_fault_outside_write_range(self):
        memory = FaultyMemory(1024)
        memory.inject_coupling_fault(aggressor=10, victim=100, bit=2)
        memory.write(0, np.zeros(32, dtype=np.uint8))
        assert memory.read(100, 1)[0] == 4

    def test_transient_flips(self):
        memory = FaultyMemory(1 << 16, seed=3, transient_flip_probability=0.01)
        memory.write(0, np.zeros(1 << 16, dtype=np.uint8))
        observed = memory.read(0, 1 << 16)
        assert observed.any()  # some bits flipped in flight
        assert memory.transient_flips_injected > 0

    def test_clear_faults(self):
        memory = FaultyMemory(64)
        memory.inject_stuck_bit(1, 0, 1)
        memory.clear_faults()
        # The corruption already in the cell persists after clearing...
        assert memory.read(1, 1)[0] == 1
        # ...but new writes now stick (the fault mechanism is gone).
        memory.write(0, np.zeros(8, dtype=np.uint8))
        assert memory.read(1, 1)[0] == 0


class TestMovingInversions:
    def test_healthy_memory_passes(self):
        report = moving_inversions(PlainMemory(8192), 0, 8192)
        assert report.passed
        assert report.bytes_touched > 8192

    def test_detects_stuck_bits(self):
        memory = FaultyMemory(8192)
        memory.inject_stuck_bit(1000, bit=2, value=1)
        memory.inject_stuck_bit(2000, bit=5, value=0)
        report = moving_inversions(memory, 0, 8192)
        assert not report.passed
        assert 1000 in report.bad_offsets
        assert 2000 in report.bad_offsets

    def test_detects_coupling_fault_quick_test_misses(self):
        """The paper's §3 point: naive pattern tests miss data-dependent
        (coupling) faults; moving inversions' two sweeps catch them."""
        memory = FaultyMemory(8192)
        # Victim in a later sweep chunk than the aggressor, so a plain
        # fill-then-verify never sees the disturbance.
        memory.inject_coupling_fault(aggressor=100, victim=300, bit=1)
        quick = quick_pattern_test(memory, 0, 8192)
        assert quick.passed  # missed!
        full = moving_inversions(memory, 0, 8192)
        assert not full.passed
        assert 300 in full.bad_offsets

    def test_quick_test_detects_stuck_bits(self):
        memory = FaultyMemory(4096)
        memory.inject_stuck_bit(10, bit=0, value=1)
        assert not quick_pattern_test(memory, 0, 4096).passed

    def test_bad_ranges_coalesced(self):
        memory = FaultyMemory(8192)
        for offset in (100, 150, 4200):
            memory.inject_stuck_bit(offset, 0, 1)
        report = moving_inversions(memory, 0, 8192)
        # Adjacent bad pages coalesce into one range covering all faults.
        ranges = report.bad_ranges(4096)
        assert ranges == [(0, 8192)]
        # With finer granularity the two clusters separate.
        fine = report.bad_ranges(256)
        assert len(fine) == 2

    def test_subregion_only(self):
        memory = FaultyMemory(8192)
        memory.inject_stuck_bit(100, 0, 1)
        report = moving_inversions(memory, 4096, 4096)
        assert report.passed  # fault lies outside the tested region

    def test_zero_length(self):
        assert moving_inversions(PlainMemory(64), 0, 0).passed


class TestANCodes:
    def test_encode_decode_round_trip(self):
        values = np.array([-100, 0, 1, 2**40], dtype=np.int64)
        codes = an_encode(values)
        assert an_verify(codes).all()
        np.testing.assert_array_equal(an_decode(codes), values)

    def test_every_single_bit_flip_detected(self):
        """The defining property: A=641 is odd, so A*n +- 2^k is never a
        multiple of A -- every 1-bit flip breaks divisibility."""
        codes = an_encode(np.array([123456], dtype=np.int64))
        for bit in range(63):
            corrupted = codes.copy()
            corrupted[0] ^= np.int64(1) << np.int64(bit)
            assert not an_verify(corrupted).all(), f"bit {bit} undetected"

    def test_decode_raises_on_corruption(self):
        codes = an_encode(np.arange(100, dtype=np.int64))
        codes[50] ^= 1 << 10
        with pytest.raises(CorruptionError, match="position 50"):
            an_decode(codes)

    def test_inject_bit_flips(self):
        codes = an_encode(np.arange(1000, dtype=np.int64))
        flipped = inject_bit_flips(codes, 10, seed=5)
        assert (flipped != codes).sum() >= 1
        assert not an_verify(flipped).all()

    def test_coded_vector_checked_sum(self):
        vector = Vector.from_values(list(range(100)))
        coded = ANCodedVector(vector)
        assert coded.checked_sum() == sum(range(100))

    def test_coded_vector_sum_detects_flip(self):
        coded = ANCodedVector(Vector.from_values(list(range(100))))
        coded.codes[7] ^= 1 << 20
        with pytest.raises(CorruptionError):
            coded.checked_sum()

    def test_coded_vector_respects_nulls(self):
        coded = ANCodedVector(Vector.from_values([1, None, 3]))
        assert coded.checked_sum() == 4

    def test_coded_vector_scrub(self):
        coded = ANCodedVector(Vector.from_values([5, 6]))
        coded.verify()
        coded.codes[0] += 1
        with pytest.raises(CorruptionError):
            coded.verify()

    def test_decode_back_to_vector(self):
        original = Vector.from_values([10, None, -3])
        decoded = ANCodedVector(original).decode()
        assert decoded.to_pylist() == [10, None, -3]

    def test_non_integer_rejected(self):
        with pytest.raises(CorruptionError):
            ANCodedVector(Vector.from_values([1.5]))


class TestFailureModel:
    def test_reproduces_table1_first_failure_rates(self):
        report = FleetSimulator(seed=11).run(machines=500_000, windows=1)
        table = {label: first for label, first, _ in report.as_table()}
        assert table["CPU (MCE)"] == pytest.approx(1 / 190, rel=0.15)
        assert table["DRAM bit flip"] == pytest.approx(1 / 1700, rel=0.3)
        assert table["Disk failure"] == pytest.approx(1 / 270, rel=0.15)

    def test_reproduces_table1_recurrence_rates(self):
        report = FleetSimulator(seed=13).run(machines=2_000_000, windows=2)
        table = {label: again for label, _, again in report.as_table()}
        assert table["CPU (MCE)"] == pytest.approx(1 / 2.9, rel=0.2)
        assert table["DRAM bit flip"] == pytest.approx(1 / 12, rel=0.5)
        assert table["Disk failure"] == pytest.approx(1 / 3.5, rel=0.2)

    def test_failed_machines_fail_again_much_more(self):
        """The paper: 'a system that has failed once is very likely to fail
        again' -- two orders of magnitude."""
        report = FleetSimulator(seed=17).run(machines=1_000_000, windows=2)
        for kind in FailureKind.ALL:
            first = report.first_failure_probability(kind)
            again = report.recurrence_probability(kind)
            assert again > first * 10

    def test_silent_vs_detected_classification(self):
        report = FleetSimulator(seed=19).run(machines=100_000, windows=1)
        # DRAM flips and disk corruption are silent; MCEs self-report.
        assert report.silent_failures > 0
        assert report.detected_failures > 0
        # Disk (1/270) + DRAM (1/1700) silent rate vs CPU (1/190) detected.
        expected_silent = 100_000 * (1 / 270 + 1 / 1700)
        assert report.silent_failures == pytest.approx(expected_silent, rel=0.25)
