"""Checkpoint tests: persistence round trips, column-granular rewrites,
compaction, and crash safety via the double-header scheme."""

import os

import numpy as np
import pytest

import repro
from repro.errors import CorruptionError, TransactionContextError


def reopen(path, **config):
    return repro.connect(path, config or None)


class TestRoundTrip:
    def test_types_survive(self, db_path):
        con = repro.connect(db_path)
        con.execute(
            "CREATE TABLE every (b BOOLEAN, i INTEGER, big BIGINT, d DOUBLE, "
            "s VARCHAR, dt DATE, ts TIMESTAMP)")
        con.execute(
            "INSERT INTO every VALUES "
            "(true, 1, 9999999999, 1.5, 'hello', DATE '2021-01-02', NULL), "
            "(false, NULL, -1, NULL, NULL, NULL, "
            "TIMESTAMP '2020-05-06 07:08:09')"
            .replace("DATE '2021-01-02'", "CAST('2021-01-02' AS DATE)")
            .replace("TIMESTAMP '2020-05-06 07:08:09'",
                     "CAST('2020-05-06 07:08:09' AS TIMESTAMP)"))
        before = con.execute("SELECT * FROM every ORDER BY i NULLS FIRST"
                             ).fetchall()
        con.close()
        con = reopen(db_path)
        after = con.execute("SELECT * FROM every ORDER BY i NULLS FIRST"
                            ).fetchall()
        con.close()
        assert after == before

    def test_defaults_and_not_null_survive(self, db_path):
        con = repro.connect(db_path)
        con.execute("CREATE TABLE t (a INTEGER NOT NULL, b VARCHAR DEFAULT 'x')")
        con.execute("INSERT INTO t (a) VALUES (1)")
        con.close()
        con = reopen(db_path)
        con.execute("INSERT INTO t (a) VALUES (2)")
        assert con.execute("SELECT b FROM t ORDER BY a").fetchall() == \
            [("x",), ("x",)]
        with pytest.raises(repro.ConstraintError):
            con.execute("INSERT INTO t VALUES (NULL, 'y')")
        con.close()

    def test_views_survive(self, db_path):
        con = repro.connect(db_path)
        con.execute("CREATE TABLE t (i INTEGER)")
        con.execute("INSERT INTO t VALUES (1), (2)")
        con.execute("CREATE VIEW doubled AS SELECT i * 2 AS x FROM t")
        con.close()
        con = reopen(db_path)
        assert con.execute("SELECT x FROM doubled ORDER BY x").fetchall() == \
            [(2,), (4,)]
        con.close()

    def test_multi_segment_table(self, db_path):
        from repro.storage.table_data import SEGMENT_ROWS

        con = repro.connect(db_path)
        con.execute("CREATE TABLE big (i INTEGER)")
        n = SEGMENT_ROWS + 1234
        with con.appender("big") as appender:
            appender.append_numpy({"i": np.arange(n, dtype=np.int32)})
        con.close()
        con = reopen(db_path)
        assert con.query_value("SELECT count(*) FROM big") == n
        assert con.query_value("SELECT sum(i) FROM big") == sum(range(n))
        con.close()

    def test_empty_table_survives(self, db_path):
        con = repro.connect(db_path)
        con.execute("CREATE TABLE empty (i INTEGER, s VARCHAR)")
        con.close()
        con = reopen(db_path)
        assert con.query_value("SELECT count(*) FROM empty") == 0
        con.execute("INSERT INTO empty VALUES (1, 'x')")
        con.close()

    def test_deleted_rows_compacted(self, db_path):
        con = repro.connect(db_path)
        con.execute("CREATE TABLE t (i INTEGER)")
        con.execute("INSERT INTO t VALUES (1), (2), (3), (4)")
        con.execute("DELETE FROM t WHERE i % 2 = 0")
        con.execute("CHECKPOINT")
        table = con.database.catalog.get_table(
            "t", con.database.transaction_manager.begin())
        assert table.data.row_count == 2  # physically compacted
        con.close()
        con = reopen(db_path)
        assert con.execute("SELECT i FROM t ORDER BY i").fetchall() == \
            [(1,), (3,)]
        con.close()

    def test_checkpoint_after_full_delete(self, db_path):
        """Regression: compacting to zero rows must not mark phantom row 0
        dirty -- the follow-up checkpoint would serialize garbage."""
        con = repro.connect(db_path)
        con.execute("CREATE TABLE t (i INTEGER, s VARCHAR)")
        con.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")
        con.execute("CHECKPOINT")
        con.execute("DELETE FROM t")
        con.execute("CHECKPOINT")
        transaction = con.database.transaction_manager.begin()
        table = con.database.catalog.get_table("t", transaction)
        assert table.data.row_count == 0
        for column in table.data.columns:
            assert not column.is_dirty()
        con.database.transaction_manager.rollback(transaction)
        con.close()
        con = reopen(db_path)
        assert con.query_value("SELECT count(*) FROM t") == 0
        con.execute("INSERT INTO t VALUES (9, 'z')")
        assert con.execute("SELECT * FROM t").fetchall() == [(9, "z")]
        con.close()


class TestColumnGranularRewrite:
    def test_update_rewrites_only_touched_column(self, db_path):
        con = repro.connect(db_path)
        con.execute("CREATE TABLE wide (a INTEGER, b INTEGER, c INTEGER, "
                    "d INTEGER)")
        with con.appender("wide") as appender:
            n = 10_000
            appender.append_numpy({
                "a": np.arange(n, dtype=np.int32),
                "b": np.arange(n, dtype=np.int32),
                "c": np.arange(n, dtype=np.int32),
                "d": np.arange(n, dtype=np.int32),
            })
        con.execute("CHECKPOINT")
        baseline = con.database.storage.last_checkpoint_stats
        assert baseline["segments_written"] >= 4

        con.execute("UPDATE wide SET b = b + 1")
        con.execute("CHECKPOINT")
        stats = con.database.storage.last_checkpoint_stats
        # Only column b was rewritten; a, c, d reuse their segments.
        assert stats["segments_written"] == 1
        assert stats["segments_reused"] == 3
        con.close()
        con = reopen(db_path)
        assert con.query_value("SELECT sum(b) - sum(a) FROM wide") == 10_000
        con.close()

    def test_append_rewrites_only_tail_segments(self, db_path):
        from repro.storage.table_data import SEGMENT_ROWS

        con = repro.connect(db_path)
        con.execute("CREATE TABLE t (x INTEGER)")
        with con.appender("t") as appender:
            appender.append_numpy(
                {"x": np.arange(2 * SEGMENT_ROWS, dtype=np.int32)})
        con.execute("CHECKPOINT")
        con.execute("INSERT INTO t VALUES (1)")
        con.execute("CHECKPOINT")
        stats = con.database.storage.last_checkpoint_stats
        # Two full clean segments reused; only the new tail written.
        assert stats["segments_reused"] == 2
        assert stats["segments_written"] == 1
        con.close()

    def test_no_changes_writes_nothing(self, db_path):
        con = repro.connect(db_path)
        con.execute("CREATE TABLE t (x INTEGER)")
        con.execute("INSERT INTO t VALUES (1)")
        con.execute("CHECKPOINT")
        con.execute("SELECT * FROM t").fetchall()
        con.execute("CHECKPOINT")
        stats = con.database.storage.last_checkpoint_stats
        assert stats["segments_written"] == 0
        con.close()


class TestCrashSafety:
    def test_wal_only_changes_survive_crash(self, db_path):
        con = repro.connect(db_path)
        con.execute("CREATE TABLE t (i INTEGER)")
        con.execute("INSERT INTO t VALUES (1)")
        # Simulate a hard crash: close file handles without checkpointing.
        database = con.database
        database.storage.wal.close()
        database.storage.block_file.close()
        con2 = repro.connect(db_path)
        assert con2.execute("SELECT i FROM t").fetchall() == [(1,)]
        con2.close()

    def test_crash_between_checkpoints_keeps_old_state(self, db_path):
        con = repro.connect(db_path)
        con.execute("CREATE TABLE t (i INTEGER)")
        con.execute("INSERT INTO t VALUES (1), (2)")
        con.close()  # checkpoint on close

        # Start modifying, then crash before any checkpoint.
        con = repro.connect(db_path)
        con.execute("INSERT INTO t VALUES (3)")
        database = con.database
        database.storage.wal.close()
        database.storage.block_file.close()

        con = repro.connect(db_path)
        # WAL replay restores the insert.
        assert con.query_value("SELECT count(*) FROM t") == 3
        con.close()

    def test_file_space_is_reused_across_checkpoints(self, db_path):
        con = repro.connect(db_path, {"checkpoint_on_close": False})
        con.execute("CREATE TABLE t (x INTEGER)")
        with con.appender("t") as appender:
            appender.append_numpy({"x": np.arange(50_000, dtype=np.int32)})
        con.execute("CHECKPOINT")
        size_after_first = os.path.getsize(db_path)
        for _ in range(5):
            con.execute("UPDATE t SET x = x + 1")
            con.execute("CHECKPOINT")
        size_after_many = os.path.getsize(db_path)
        # Repeated update+checkpoint cycles must not grow the file linearly:
        # freed blocks are recycled through the persisted free list.
        assert size_after_many < size_after_first * 3
        con.close()

    def test_checkpoint_requires_quiescence(self, db_path):
        con = repro.connect(db_path)
        con.execute("CREATE TABLE t (i INTEGER)")
        other = con.duplicate()
        other.begin()
        other.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(TransactionContextError):
            con.execute("CHECKPOINT")
        other.rollback()
        con.execute("CHECKPOINT")  # fine once quiescent
        con.close()

    def test_checkpoint_inside_transaction_rejected(self, file_con):
        file_con.execute("BEGIN")
        with pytest.raises(TransactionContextError):
            file_con.execute("CHECKPOINT")
        file_con.execute("ROLLBACK")


class TestAutoCheckpoint:
    def test_wal_threshold_triggers_checkpoint(self, db_path):
        con = repro.connect(db_path, {"wal_autocheckpoint": 4096,
                                      "checkpoint_on_close": False})
        con.execute("CREATE TABLE t (i INTEGER)")
        for batch in range(5):
            values = ", ".join(f"({i})" for i in range(200))
            con.execute(f"INSERT INTO t VALUES {values}")
        assert con.database.storage.checkpoints_written >= 1
        # All data still visible after auto-checkpoint + more inserts.
        assert con.query_value("SELECT count(*) FROM t") == 1000
        con.close()
