"""Database-level tests: lifecycle, limits, interruption, persistence."""

import threading
import time

import numpy as np
import pytest

import repro
from repro.database import Database
from repro.errors import (
    InterruptError,
    OutOfMemoryError,
)
from repro.errors import ConnectionError as ClosedError


class TestLifecycle:
    def test_database_context_manager(self):
        with Database() as database:
            con = database.connect()
            assert con.execute("SELECT 1").fetchvalue() == 1
            con.close()

    def test_multiple_connections_share_state(self):
        database = Database()
        first = database.connect()
        second = database.connect()
        first.execute("CREATE TABLE t (i INTEGER)")
        first.execute("INSERT INTO t VALUES (1)")
        assert second.query_value("SELECT count(*) FROM t") == 1
        database.close()

    def test_connect_after_close_rejected(self):
        database = Database()
        database.close()
        with pytest.raises(ClosedError):
            database.connect()

    def test_double_close(self):
        database = Database()
        database.close()
        database.close()

    def test_repr(self, db_path):
        assert "in-memory" in repr(Database())
        database = Database(db_path)
        assert db_path in repr(database)
        database.close()


class TestMemoryLimit:
    def test_memory_limit_enforced_on_buffers(self):
        con = repro.connect(config={"memory_limit": 1 << 20})
        with pytest.raises(OutOfMemoryError):
            con.database.buffer_manager.allocate_buffer(2 << 20)
        con.close()

    def test_big_join_respects_limit_via_merge_fallback(self):
        """A build side exceeding the hard memory limit must take the
        out-of-core merge join path instead of failing."""
        con = repro.connect(config={"memory_limit": 2 << 20})
        con.execute("CREATE TABLE a (k INTEGER)")
        con.execute("CREATE TABLE b (k INTEGER, pad INTEGER)")
        n = 300_000
        with con.appender("a") as appender:
            appender.append_numpy({
                "k": np.arange(0, 2 * n, 2, dtype=np.int32)[:50_000]})
        with con.appender("b") as appender:
            appender.append_numpy({
                "k": np.arange(n, dtype=np.int32),
                "pad": np.arange(n, dtype=np.int32),
            })
        count = con.query_value(
            "SELECT count(*) FROM a JOIN b ON a.k = b.k")
        assert count == 50_000
        con.close()

    def test_sort_spills_under_limit(self):
        con = repro.connect(config={"memory_limit": 1 << 20})
        con.execute("CREATE TABLE t (x INTEGER)")
        rng = np.random.default_rng(0)
        with con.appender("t") as appender:
            appender.append_numpy(
                {"x": rng.integers(0, 10**6, 300_000).astype(np.int32)})
        rows = con.execute("SELECT x FROM t ORDER BY x LIMIT 3").fetchall()
        values = sorted(rng.integers(0, 10**6, 1))  # dummy
        first_three = con.execute(
            "SELECT min(x) FROM t").fetchvalue()
        assert rows[0][0] == first_three
        con.close()


class TestInterrupt:
    def test_interrupt_streaming_query(self):
        con = repro.connect()
        con.execute("CREATE TABLE t (x INTEGER)")
        with con.appender("t") as appender:
            appender.append_numpy({"x": np.arange(500_000, dtype=np.int32)})
        result = con.execute("SELECT x + 1 FROM t", stream=True)
        assert result.fetch_chunk() is not None
        con.interrupt()
        with pytest.raises(InterruptError):
            while result.fetch_chunk() is not None:
                pass
        con.close()

    def test_interrupt_does_not_poison_connection(self):
        con = repro.connect()
        con.execute("CREATE TABLE t (x INTEGER)")
        con.execute("INSERT INTO t VALUES (1)")
        result = con.execute("SELECT x FROM t", stream=True)
        con.interrupt()
        try:
            result.fetchall()
        except InterruptError:
            pass
        result.close()
        # A fresh statement runs normally.
        assert con.query_value("SELECT count(*) FROM t") == 1
        con.close()


class TestPersistenceLifecycle:
    def test_many_tables_and_views_survive(self, db_path):
        con = repro.connect(db_path)
        for index in range(12):
            con.execute(f"CREATE TABLE t{index} (a INTEGER, b VARCHAR)")
            con.execute(f"INSERT INTO t{index} VALUES ({index}, 'v{index}')")
        con.execute("CREATE VIEW all3 AS SELECT a FROM t3")
        con.close()
        con = repro.connect(db_path)
        assert len(con.table_names()) == 12
        assert con.query_value("SELECT b FROM t7") == "v7"
        assert con.query_value("SELECT a FROM all3") == 3
        con.close()

    def test_reopen_then_modify_then_reopen(self, db_path):
        con = repro.connect(db_path)
        con.execute("CREATE TABLE log (x INTEGER)")
        con.execute("INSERT INTO log VALUES (1)")
        con.close()
        con = repro.connect(db_path)
        con.execute("INSERT INTO log VALUES (2)")
        con.execute("UPDATE log SET x = x * 10")
        con.close()
        con = repro.connect(db_path)
        assert con.execute("SELECT x FROM log ORDER BY x").fetchall() == \
            [(10,), (20,)]
        con.close()

    def test_drop_table_persists(self, db_path):
        con = repro.connect(db_path)
        con.execute("CREATE TABLE doomed (x INTEGER)")
        con.execute("CREATE TABLE kept (x INTEGER)")
        con.close()
        con = repro.connect(db_path)
        con.execute("DROP TABLE doomed")
        con.close()
        con = repro.connect(db_path)
        assert con.table_names() == ["kept"]
        con.close()

    def test_wal_only_view_replays(self, db_path):
        con = repro.connect(db_path, {"checkpoint_on_close": False})
        con.execute("CREATE TABLE t (x INTEGER)")
        con.execute("CREATE VIEW doubled AS SELECT x * 2 AS y FROM t")
        con.execute("INSERT INTO t VALUES (21)")
        database = con.database
        database.storage.wal.close()
        database.storage.block_file.close()
        con = repro.connect(db_path)
        assert con.query_value("SELECT y FROM doubled") == 42
        con.close()

    def test_wal_size_pragma_and_truncation(self, db_path):
        con = repro.connect(db_path, {"checkpoint_on_close": False})
        con.execute("CREATE TABLE t (x INTEGER)")
        con.execute("INSERT INTO t VALUES (1)")
        assert con.execute("PRAGMA wal_size").fetchvalue() > 0
        con.execute("CHECKPOINT")
        assert con.execute("PRAGMA wal_size").fetchvalue() == 0
        con.close()


class TestCatalogMaintenance:
    def test_catalog_prunes_dropped_versions(self, db_path):
        con = repro.connect(db_path)
        con.execute("CREATE TABLE t (x INTEGER)")
        con.execute("DROP TABLE t")
        con.execute("CREATE TABLE t (y VARCHAR)")
        con.execute("CHECKPOINT")  # prunes invisible versions
        catalog = con.database.catalog
        assert len(catalog._entries["t"]) == 1
        con.close()

    def test_recreated_table_has_new_schema(self, db_path):
        con = repro.connect(db_path)
        con.execute("CREATE TABLE t (x INTEGER)")
        con.execute("DROP TABLE t")
        con.execute("CREATE TABLE t (y VARCHAR)")
        con.execute("INSERT INTO t VALUES ('hello')")
        con.close()
        con = repro.connect(db_path)
        assert con.query_value("SELECT y FROM t") == "hello"
        con.close()
