"""Per-function tests of the scalar function registry."""

import datetime
import math

import pytest

import repro
from repro.errors import BinderError


class TestNumericFunctions:
    def test_abs(self, con):
        assert con.execute("SELECT abs(-5), abs(5), abs(-2.5)").fetchone() == \
            (5, 5, 2.5)

    def test_abs_preserves_integer_type(self, con):
        from repro.types import INTEGER

        result = con.execute("SELECT abs(CAST(-5 AS INTEGER))")
        assert result.types[0] == INTEGER

    def test_sign(self, con):
        assert con.execute("SELECT sign(-3), sign(0), sign(9.5)").fetchone() == \
            (-1, 0, 1)

    def test_floor_ceil(self, con):
        assert con.execute("SELECT floor(2.7), ceil(2.1), ceiling(2.0)"
                           ).fetchone() == (2.0, 3.0, 2.0)

    def test_round(self, con):
        assert con.execute("SELECT round(2.567), round(2.567, 2)").fetchone() == \
            (3.0, 2.57)

    def test_sqrt(self, con):
        assert con.execute("SELECT sqrt(9)").fetchvalue() == 3.0

    def test_sqrt_negative_is_null(self, con):
        assert con.execute("SELECT sqrt(-1)").fetchvalue() is None

    def test_logs(self, con):
        assert con.execute("SELECT ln(1), log(100), log2(8)").fetchone() == \
            (0.0, 2.0, 3.0)

    def test_log_of_zero_is_null(self, con):
        assert con.execute("SELECT ln(0)").fetchvalue() is None

    def test_exp_pow(self, con):
        row = con.execute("SELECT exp(0), pow(2, 10), power(3, 2)").fetchone()
        assert row == (1.0, 1024.0, 9.0)

    def test_null_propagates(self, con):
        assert con.execute("SELECT abs(NULL)").fetchvalue() is None
        assert con.execute("SELECT pow(NULL, 2)").fetchvalue() is None

    def test_non_numeric_rejected(self, con):
        with pytest.raises(BinderError):
            con.execute("SELECT abs('x')")


class TestStringFunctions:
    def test_length(self, con):
        assert con.execute("SELECT length('hello'), length('')").fetchone() == \
            (5, 0)

    def test_lower_upper(self, con):
        assert con.execute("SELECT lower('AbC'), upper('AbC')").fetchone() == \
            ("abc", "ABC")

    def test_trim_family(self, con):
        assert con.execute(
            "SELECT trim('  x  '), ltrim('  x'), rtrim('x  ')").fetchone() == \
            ("x", "x", "x")

    def test_reverse(self, con):
        assert con.execute("SELECT reverse('abc')").fetchvalue() == "cba"

    def test_substr_one_based(self, con):
        assert con.execute("SELECT substr('hello', 2)").fetchvalue() == "ello"
        assert con.execute("SELECT substr('hello', 2, 3)").fetchvalue() == "ell"
        assert con.execute("SELECT substring('hello', 1, 2)").fetchvalue() == "he"

    def test_substr_out_of_range(self, con):
        assert con.execute("SELECT substr('hi', 10)").fetchvalue() == ""

    def test_replace(self, con):
        assert con.execute("SELECT replace('banana', 'na', 'NA')").fetchvalue() \
            == "baNANA"

    def test_contains_starts_with(self, con):
        assert con.execute("SELECT contains('hello', 'ell')").fetchvalue() is True
        assert con.execute("SELECT starts_with('hello', 'he')").fetchvalue() is True
        assert con.execute("SELECT starts_with('hello', 'lo')").fetchvalue() is False

    def test_string_null_propagation(self, con):
        assert con.execute("SELECT upper(NULL)").fetchvalue() is None
        assert con.execute("SELECT substr(NULL, 1)").fetchvalue() is None


class TestConditionalFunctions:
    def test_coalesce(self, con):
        assert con.execute("SELECT coalesce(NULL, NULL, 3, 4)").fetchvalue() == 3
        assert con.execute("SELECT coalesce(NULL, NULL)").fetchvalue() is None
        assert con.execute("SELECT coalesce('a', 'b')").fetchvalue() == "a"

    def test_ifnull(self, con):
        assert con.execute("SELECT ifnull(NULL, 9)").fetchvalue() == 9

    def test_coalesce_type_unification(self, con):
        assert con.execute("SELECT coalesce(NULL, 1, 2.5)").fetchvalue() == 1.0

    def test_coalesce_incompatible_types(self, con):
        with pytest.raises(BinderError):
            con.execute("SELECT coalesce(1, 'x')")

    def test_nullif(self, con):
        assert con.execute("SELECT nullif(1, 1)").fetchvalue() is None
        assert con.execute("SELECT nullif(1, 2)").fetchvalue() == 1
        assert con.execute("SELECT nullif('a', 'a')").fetchvalue() is None

    def test_nullif_sentinel_recoding(self, con):
        # The paper's ETL example: -999 means missing.
        con.execute("CREATE TABLE raw (v INTEGER)")
        con.execute("INSERT INTO raw VALUES (1), (-999), (3)")
        rows = con.execute("SELECT nullif(v, -999) FROM raw").fetchall()
        assert rows == [(1,), (None,), (3,)]

    def test_greatest_least(self, con):
        assert con.execute("SELECT greatest(1, 5, 3), least(1, 5, 3)"
                           ).fetchone() == (5, 1)
        assert con.execute("SELECT greatest('a', 'c', 'b')").fetchvalue() == "c"

    def test_greatest_null_propagates(self, con):
        assert con.execute("SELECT greatest(1, NULL)").fetchvalue() is None


class TestTemporalFunctions:
    def test_year_month_day(self, con):
        row = con.execute(
            "SELECT year(d), month(d), day(d) FROM "
            "(SELECT CAST('2021-03-04' AS DATE) AS d) t").fetchone()
        assert row == (2021, 3, 4)

    def test_on_timestamp(self, con):
        row = con.execute(
            "SELECT year(ts), month(ts), day(ts) FROM "
            "(SELECT CAST('1999-12-31 23:59:59' AS TIMESTAMP) AS ts) t"
        ).fetchone()
        assert row == (1999, 12, 31)

    def test_epoch_boundary(self, con):
        row = con.execute(
            "SELECT year(d), month(d), day(d) FROM "
            "(SELECT CAST('1970-01-01' AS DATE) AS d) t").fetchone()
        assert row == (1970, 1, 1)

    def test_pre_epoch(self, con):
        row = con.execute(
            "SELECT year(d), month(d), day(d) FROM "
            "(SELECT CAST('1903-02-28' AS DATE) AS d) t").fetchone()
        assert row == (1903, 2, 28)

    def test_leap_day(self, con):
        row = con.execute(
            "SELECT year(d), month(d), day(d) FROM "
            "(SELECT CAST('2024-02-29' AS DATE) AS d) t").fetchone()
        assert row == (2024, 2, 29)

    def test_civil_decomposition_matches_python(self, con):
        con.execute("CREATE TABLE days (d DATE)")
        import datetime as dt

        samples = [dt.date(1970, 1, 1) + dt.timedelta(days=step * 137)
                   for step in range(-50, 200)]
        with con.appender("days") as appender:
            for day in samples:
                appender.append_row(day)
        rows = con.execute("SELECT d, year(d), month(d), day(d) FROM days"
                           ).fetchall()
        for day, year, month, dom in rows:
            assert (year, month, dom) == (day.year, day.month, day.day)


class TestErrors:
    def test_unknown_function(self, con):
        with pytest.raises(BinderError):
            con.execute("SELECT frobnicate(1)")

    def test_wrong_arity(self, con):
        with pytest.raises(BinderError):
            con.execute("SELECT abs(1, 2)")
        with pytest.raises(BinderError):
            con.execute("SELECT substr('x')")

    def test_star_argument_rejected(self, con):
        with pytest.raises(BinderError):
            con.execute("SELECT abs(*)")


class TestRoundNullContract:
    """Regression pin for the NULL-contract bug the conformance harness
    found: ``round`` used to feed masked-out lanes (and NULL digit counts)
    straight into ``np.round``, producing valid garbage where NULL was due.
    """

    def test_null_value_stays_null(self, con):
        assert con.execute("SELECT round(NULL)").fetchone() == (None,)
        assert con.execute(
            "SELECT round(CAST(NULL AS DOUBLE), 2)").fetchone() == (None,)

    def test_null_digits_yields_null(self, con):
        # NULL in *either* argument must propagate; digits=NULL used to be
        # silently treated as garbage integer digits.
        assert con.execute(
            "SELECT round(2.567, NULL)").fetchone() == (None,)

    def test_null_lanes_in_vector_stay_null(self, con):
        con.execute("CREATE TABLE r (x DOUBLE, d INTEGER)")
        con.execute("INSERT INTO r VALUES (2.567, 2), (NULL, 2), "
                    "(3.14159, NULL), (NULL, NULL), (1.5, 0)")
        rows = con.execute("SELECT round(x, d) FROM r").fetchall()
        assert rows == [(2.57,), (None,), (None,), (None,), (2.0,)]

    def test_per_row_digit_counts(self, con):
        con.execute("CREATE TABLE digits (x DOUBLE, d INTEGER)")
        con.execute("INSERT INTO digits VALUES (2.5678, 1), (2.5678, 2), "
                    "(2.5678, 3), (2.5678, 0)")
        rows = con.execute("SELECT round(x, d) FROM digits").fetchall()
        assert rows == [(2.6,), (2.57,), (2.568,), (3.0,)]

    def test_empty_input(self, con):
        con.execute("CREATE TABLE empty_r (x DOUBLE)")
        assert con.execute("SELECT round(x, 1) FROM empty_r").fetchall() == []
