"""Compression codec tests: round trips, ratios, corruption handling."""

import numpy as np
import pytest

from repro.errors import CorruptionError
from repro.storage.compression import (
    CompressionLevel,
    CompressionType,
    best_codec_for,
    decode_array,
    encode_array,
)


def roundtrip(array, level):
    decoded = decode_array(encode_array(array, level))
    assert decoded.dtype == array.dtype
    if array.dtype == object:
        assert list(decoded) == list(array)
    else:
        np.testing.assert_array_equal(decoded, array)
    return decoded


ALL_LEVELS = [CompressionLevel.NONE, CompressionLevel.LIGHT,
              CompressionLevel.HEAVY]


class TestRoundTrips:
    @pytest.mark.parametrize("level", ALL_LEVELS)
    def test_int64(self, level):
        roundtrip(np.arange(1000, dtype=np.int64), level)

    @pytest.mark.parametrize("level", ALL_LEVELS)
    def test_int32(self, level):
        roundtrip(np.arange(-500, 500, dtype=np.int32), level)

    @pytest.mark.parametrize("level", ALL_LEVELS)
    def test_float64(self, level):
        rng = np.random.default_rng(0)
        roundtrip(rng.normal(size=777), level)

    @pytest.mark.parametrize("level", ALL_LEVELS)
    def test_bool(self, level):
        roundtrip(np.array([True, False] * 100), level)

    @pytest.mark.parametrize("level", ALL_LEVELS)
    def test_strings(self, level):
        array = np.array(["alpha", "", "beta", None, "x" * 500], dtype=object)
        roundtrip(array, level)

    @pytest.mark.parametrize("level", ALL_LEVELS)
    def test_empty_arrays(self, level):
        roundtrip(np.array([], dtype=np.int64), level)
        roundtrip(np.array([], dtype=object), level)

    @pytest.mark.parametrize("level", ALL_LEVELS)
    def test_single_element(self, level):
        roundtrip(np.array([42], dtype=np.int64), level)

    def test_extreme_values(self):
        array = np.array([np.iinfo(np.int64).min, np.iinfo(np.int64).max, 0],
                         dtype=np.int64)
        for level in ALL_LEVELS:
            roundtrip(array, level)

    def test_unicode_strings(self):
        array = np.array(["héllo", "日本語", "🦆"], dtype=object)
        for level in ALL_LEVELS:
            roundtrip(array, level)


class TestCodecSelection:
    def test_rle_on_runs(self):
        array = np.repeat(np.arange(10, dtype=np.int64), 1000)
        encoded = encode_array(array, CompressionLevel.LIGHT)
        assert encoded[0] == CompressionType.RLE
        assert len(encoded) < array.nbytes / 10

    def test_dictionary_on_few_distinct(self):
        rng = np.random.default_rng(1)
        array = rng.integers(0, 5, 10_000).astype(np.int64) * 1_000_000_007
        encoded = encode_array(array, CompressionLevel.LIGHT)
        assert encoded[0] in (CompressionType.DICTIONARY, CompressionType.RLE)
        np.testing.assert_array_equal(decode_array(encoded), array)

    def test_bitpack_on_small_range(self):
        # >255 distinct values (rules out dictionary) in a narrow range.
        rng = np.random.default_rng(2)
        array = (rng.integers(0, 5000, 20_000) + 1_000_000).astype(np.int64)
        encoded = encode_array(array, CompressionLevel.LIGHT)
        assert encoded[0] == CompressionType.BITPACK
        assert len(encoded) < array.nbytes / 3
        np.testing.assert_array_equal(decode_array(encoded), array)

    def test_light_falls_back_to_raw_on_random_data(self):
        rng = np.random.default_rng(3)
        array = rng.integers(np.iinfo(np.int64).min, np.iinfo(np.int64).max,
                             1000).astype(np.int64)
        encoded = encode_array(array, CompressionLevel.LIGHT)
        assert encoded[0] == CompressionType.RAW

    def test_heavy_uses_zlib_on_noisy_data(self):
        rng = np.random.default_rng(9)
        array = rng.integers(0, 1 << 40, 4000).astype(np.int64)
        array = np.sort(array)  # compressible for zlib, useless for RLE/dict
        encoded = encode_array(array, CompressionLevel.HEAVY)
        assert encoded[0] == CompressionType.ZLIB
        np.testing.assert_array_equal(decode_array(encoded), array)

    def test_heavy_never_worse_than_light(self):
        array = np.repeat(np.arange(10, dtype=np.int64), 100)
        heavy = encode_array(array, CompressionLevel.HEAVY)
        light = encode_array(array, CompressionLevel.LIGHT)
        assert len(heavy) <= len(light)
        np.testing.assert_array_equal(decode_array(heavy), array)

    def test_heavy_shrinks_compressible_floats(self):
        array = np.repeat(np.linspace(0, 1, 16), 2000)
        raw = encode_array(array, CompressionLevel.NONE)
        heavy = encode_array(array, CompressionLevel.HEAVY)
        assert len(heavy) < len(raw) / 10

    def test_best_codec_reports_ratio(self):
        array = np.zeros(10_000, dtype=np.int64)
        _, ratio = best_codec_for(array, CompressionLevel.LIGHT)
        assert ratio > 50


class TestCorruption:
    def test_truncated_header(self):
        with pytest.raises(CorruptionError):
            decode_array(b"\x01")

    def test_unknown_codec(self):
        payload = encode_array(np.arange(4, dtype=np.int64),
                               CompressionLevel.NONE)
        corrupted = bytes([99]) + payload[1:]
        with pytest.raises(CorruptionError):
            decode_array(corrupted)

    def test_unknown_dtype(self):
        payload = encode_array(np.arange(4, dtype=np.int64),
                               CompressionLevel.NONE)
        corrupted = payload[:1] + bytes([200]) + payload[2:]
        with pytest.raises(CorruptionError):
            decode_array(corrupted)

    def test_corrupt_zlib_body(self):
        rng = np.random.default_rng(10)
        array = np.sort(rng.integers(0, 1 << 40, 4000).astype(np.int64))
        payload = encode_array(array, CompressionLevel.HEAVY)
        assert payload[0] == CompressionType.ZLIB
        corrupted = payload[:12] + b"\x00\x01\x02" + payload[15:]
        with pytest.raises(CorruptionError):
            decode_array(corrupted)

    def test_truncated_raw_body(self):
        payload = encode_array(np.arange(100, dtype=np.int64),
                               CompressionLevel.NONE)
        with pytest.raises(CorruptionError):
            decode_array(payload[:40])
