"""quacksan: the runtime lock-order and race sanitizer.

Three layers are exercised:

* unit tests drive a private :class:`LockSanitizer` / :class:`RaceSanitizer`
  directly, so purpose-built ABBA-deadlock and unlocked-write fixtures must
  be *detected* (with both stacks) without touching global state;
* the global enable/disable machinery: plain locks and no-op access tokens
  while disabled (the zero-overhead contract), tracked locks and statistics
  while enabled, monitor export, ``assert_clean``;
* an integration hammer: concurrent checkpoints, appenders, and
  morsel-parallel scans against one engine under the sanitizer must finish
  within a watchdog timeout and produce **zero** findings.
"""

import threading
import time

import numpy as np
import pytest

import repro
from repro import sanitizer
from repro.sanitizer import (
    LockSanitizer,
    RaceSanitizer,
    SanitizerError,
    SanLock,
    SanRLock,
    tracked_access,
)
from repro.sanitizer.locksan import TrackedLock, TrackedRLock
from repro.sanitizer.racesan import NOOP_ACCESS, locked_state


@pytest.fixture
def disabled():
    was_enabled = sanitizer.enabled()
    sanitizer.disable()
    yield
    if was_enabled:
        sanitizer.enable()


@pytest.fixture
def enabled():
    was_enabled = sanitizer.enabled()
    sanitizer.enable()
    sanitizer.reset()
    yield
    sanitizer.reset()  # drop fixture-made findings before the next test
    if not was_enabled:
        sanitizer.disable()


def run_thread(target, name):
    thread = threading.Thread(target=target, name=name)
    thread.start()
    thread.join(timeout=30)
    assert not thread.is_alive(), f"thread {name} did not finish"


# -- disabled mode: the zero-overhead contract -------------------------------

class TestDisabledMode:
    def test_factories_return_plain_locks(self, disabled):
        assert isinstance(SanLock("catalog"), type(threading.Lock()))
        assert isinstance(SanRLock("catalog"), type(threading.RLock()))

    def test_tracked_access_is_shared_noop(self, disabled):
        token = tracked_access(("catalog", 1), True, None)
        assert token is NOOP_ACCESS
        with token:
            pass

    def test_reporting_is_empty(self, disabled):
        assert sanitizer.lock_statistics() == {}
        assert sanitizer.lock_order_reports() == []
        assert sanitizer.race_reports() == []
        sanitizer.assert_clean()  # must not raise


# -- tracked locks -----------------------------------------------------------

class TestTrackedLock:
    def test_acquire_release_and_stats(self):
        san = LockSanitizer()
        lock = TrackedLock("alpha", san)
        with lock:
            assert lock.locked()
            assert lock.held_by_current_thread()
            assert san.held_names() == ("alpha",)
        assert not lock.locked()
        assert san.held_names() == ()
        stats = san.statistics()["alpha"]
        assert stats.acquisitions == 1
        assert stats.contentions == 0
        assert stats.hold_time > 0.0

    def test_rlock_reentrancy(self):
        san = LockSanitizer()
        lock = TrackedRLock("alpha", san)
        with lock:
            with lock:
                assert lock.held_by_current_thread()
            assert lock.locked()  # still held after inner release
        assert not lock.locked()
        # Re-entry is one logical acquisition, not two.
        assert san.statistics()["alpha"].acquisitions == 1

    def test_other_thread_does_not_hold(self):
        san = LockSanitizer()
        lock = TrackedRLock("alpha", san)
        observed = []
        with lock:
            run_thread(lambda: observed.append(lock.held_by_current_thread()),
                       "observer")
        assert observed == [False]

    def test_contention_is_counted(self):
        san = LockSanitizer()
        lock = TrackedLock("alpha", san)
        ready = threading.Event()

        def contender():
            ready.set()
            with lock:
                pass

        with lock:
            thread = threading.Thread(target=contender, name="contender")
            thread.start()
            ready.wait(5)
            time.sleep(0.05)  # let the contender block on the lock
        thread.join(timeout=30)
        assert not thread.is_alive()
        stats = san.statistics()["alpha"]
        assert stats.acquisitions == 2
        assert stats.contentions >= 1
        assert stats.wait_time > 0.0

    def test_same_name_nesting_counted_not_cycled(self):
        # Two *instances* of one lock class (two tables) cannot be ordered
        # by name: excluded from the graph, surfaced in the stats.
        san = LockSanitizer()
        first = TrackedRLock("table_data", san)
        second = TrackedRLock("table_data", san)
        with first:
            with second:
                pass
        assert san.order_reports() == []
        assert san.statistics()["table_data"].same_name_nestings == 1


# -- lock-order detection ----------------------------------------------------

class TestLockOrderDetection:
    def test_abba_cycle_reported_with_both_stacks(self):
        san = LockSanitizer()
        alpha = TrackedLock("alpha", san)
        beta = TrackedLock("beta", san)

        def thread_one():  # alpha -> beta
            with alpha:
                with beta:
                    pass

        def thread_two():  # beta -> alpha: closes the cycle
            with beta:
                with alpha:
                    pass

        run_thread(thread_one, "t1")
        run_thread(thread_two, "t2")

        (report,) = san.order_reports()
        assert set(report.cycle) == {"alpha", "beta"}
        assert len(report.edges) == 2
        for edge in report.edges:
            assert edge.held_stack, "missing stack for the held lock"
            assert edge.acquire_stack, "missing stack for the acquisition"
        rendered = report.render()
        assert "potential deadlock" in rendered
        assert "thread_one" in rendered and "thread_two" in rendered

    def test_consistent_order_is_clean(self):
        san = LockSanitizer()
        alpha = TrackedLock("alpha", san)
        beta = TrackedLock("beta", san)
        for name in ("t1", "t2"):
            def nested():
                with alpha:
                    with beta:
                        pass
            run_thread(nested, name)
        assert san.order_reports() == []

    def test_three_lock_cycle(self):
        san = LockSanitizer()
        locks = {name: TrackedLock(name, san)
                 for name in ("alpha", "beta", "gamma")}

        def nest(outer, inner):
            with locks[outer]:
                with locks[inner]:
                    pass

        nest("alpha", "beta")
        nest("beta", "gamma")
        assert san.order_reports() == []
        nest("gamma", "alpha")
        (report,) = san.order_reports()
        assert set(report.cycle) == {"alpha", "beta", "gamma"}

    def test_cycle_reported_once(self):
        san = LockSanitizer()
        alpha = TrackedLock("alpha", san)
        beta = TrackedLock("beta", san)

        def abba():
            with alpha:
                with beta:
                    pass
            with beta:
                with alpha:
                    pass

        abba()
        abba()
        assert len(san.order_reports()) == 1

    def test_declared_hierarchy_inversion_reported_without_cycle(self):
        # connection is declared outer to table_data; taking it the other
        # way round is half a deadlock even before a second thread closes
        # the cycle.
        san = LockSanitizer()
        table = TrackedRLock("table_data", san)
        connection = TrackedRLock("connection", san)
        with table:
            with connection:
                pass
        (report,) = san.order_reports()
        assert report.cycle == ("table_data", "connection")

    def test_declared_order_no_inversion_report(self):
        san = LockSanitizer()
        connection = TrackedRLock("connection", san)
        table = TrackedRLock("table_data", san)
        with connection:
            with table:
                pass
        assert san.order_reports() == []


# -- race detection ----------------------------------------------------------

class TestRaceSan:
    def overlap(self, first_kwargs, second_kwargs):
        """Overlap two accesses from two threads; return the tracker."""
        tracker = RaceSanitizer()
        first_in = threading.Event()
        second_done = threading.Event()

        def holder():
            with tracker.access(("table_data", 7), **first_kwargs):
                first_in.set()
                assert second_done.wait(10)

        def intruder():
            assert first_in.wait(10)
            with tracker.access(("table_data", 7), **second_kwargs):
                pass
            second_done.set()

        threads = [threading.Thread(target=holder, name="holder"),
                   threading.Thread(target=intruder, name="intruder")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive()
        return tracker

    def test_unlocked_write_vs_read_reported_with_both_stacks(self):
        tracker = self.overlap(dict(write=True, locked=False),
                               dict(write=False, locked=False))
        (report,) = tracker.race_reports()
        assert report.key == "table_data#7"
        assert {report.first.thread_name, report.second.thread_name} == \
            {"holder", "intruder"}
        assert report.first.stack and report.second.stack
        rendered = report.render()
        assert "unsynchronized concurrent access" in rendered
        assert "holder" in rendered and "intruder" in rendered

    def test_write_vs_locked_read_still_reported(self):
        # One side under the lock is not enough -- the *pair* must be
        # serialized.
        tracker = self.overlap(dict(write=True, locked=False),
                               dict(write=False, locked=True))
        assert len(tracker.race_reports()) == 1

    def test_two_reads_never_race(self):
        tracker = self.overlap(dict(write=False, locked=False),
                               dict(write=False, locked=False))
        assert tracker.race_reports() == []

    def test_both_locked_is_clean(self):
        tracker = self.overlap(dict(write=True, locked=True),
                               dict(write=True, locked=True))
        assert tracker.race_reports() == []

    def test_same_thread_overlap_is_clean(self):
        tracker = RaceSanitizer()
        with tracker.access(("catalog", 1), True, False):
            with tracker.access(("catalog", 1), True, False):
                pass
        assert tracker.race_reports() == []

    def test_disjoint_keys_do_not_race(self):
        tracker = RaceSanitizer()
        first_in = threading.Event()

        def holder():
            with tracker.access(("table_data", 1), True, False):
                first_in.set()
                time.sleep(0.05)

        thread = threading.Thread(target=holder)
        thread.start()
        assert first_in.wait(10)
        with tracker.access(("table_data", 2), True, False):
            pass
        thread.join(timeout=30)
        assert tracker.race_reports() == []

    def test_duplicate_pairs_deduplicated(self):
        tracker = self.overlap(dict(write=True, locked=False),
                               dict(write=False, locked=False))
        # Same code paths racing again must not add a second report; the
        # signature (key + both top frames) already covers it.
        before = len(tracker.race_reports())
        assert before == 1

    def test_locked_state_probes(self):
        assert locked_state(None) is False
        assert locked_state(threading.Lock()) is True  # conservative
        san = LockSanitizer()
        lock = TrackedRLock("catalog", san)
        assert locked_state(lock) is False
        with lock:
            assert locked_state(lock) is True


# -- the global switchboard --------------------------------------------------

class TestGlobalSanitizer:
    def test_factories_return_tracked_locks(self, enabled):
        lock = SanLock("catalog")
        assert isinstance(lock, TrackedLock)
        rlock = SanRLock("catalog")
        assert isinstance(rlock, TrackedRLock)

    def test_statistics_flow_through(self, enabled):
        with SanLock("catalog"):
            pass
        assert sanitizer.lock_statistics()["catalog"].acquisitions == 1

    def test_assert_clean_raises_on_findings(self, enabled):
        with SanLock("table_data"):
            with SanLock("connection"):  # declared-order inversion
                pass
        with pytest.raises(SanitizerError) as info:
            sanitizer.assert_clean()
        assert "table_data" in str(info.value)

    def test_reset_clears_findings(self, enabled):
        with SanLock("table_data"):
            with SanLock("connection"):
                pass
        assert sanitizer.lock_order_reports()
        sanitizer.reset()
        assert sanitizer.lock_order_reports() == []
        sanitizer.assert_clean()

    def test_monitor_exports_lock_stats(self, enabled):
        from repro.cooperation.monitor import ResourceMonitor

        with SanLock("catalog"):
            pass
        monitor = ResourceMonitor(1 << 30, lambda: 0)
        stats = monitor.lock_stats()
        assert "catalog" in stats
        assert stats["catalog"]["acquisitions"] == 1
        assert set(stats["catalog"]) >= {"acquisitions", "contentions",
                                         "wait_time", "hold_time",
                                         "max_hold"}

    def test_monitor_lock_stats_empty_when_disabled(self, disabled):
        from repro.cooperation.monitor import ResourceMonitor

        assert ResourceMonitor(1 << 30, lambda: 0).lock_stats() == {}


# -- the integration hammer --------------------------------------------------

class TestEngineUnderSanitizer:
    """Concurrent checkpoint + appender + parallel scans: no deadlocks, no
    races, within a watchdog timeout."""

    ROUNDS = 6

    def hammer(self, con, duration=3.0):
        stop = threading.Event()
        errors = []

        def guarded(work):
            local = con.duplicate()
            try:
                while not stop.is_set():
                    work(local)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                local.close()

        def append(local):
            with local.appender("events") as appender:
                appender.append_numpy({
                    "region": np.arange(512, dtype=np.int32) % 16,
                    "amount": np.arange(512, dtype=np.int32),
                })

        def scan(local):
            rows = local.execute(
                "SELECT region, count(*), sum(amount) FROM events "
                "GROUP BY region").fetchall()
            assert rows

        def checkpoint(local):
            try:
                local.execute("CHECKPOINT")
            except repro.Error:
                pass  # checkpoint needs quiescence; contention is expected
            time.sleep(0.01)

        workers = [
            threading.Thread(target=guarded, args=(append,), name="etl"),
            threading.Thread(target=guarded, args=(scan,), name="olap-1"),
            threading.Thread(target=guarded, args=(scan,), name="olap-2"),
            threading.Thread(target=guarded, args=(checkpoint,),
                             name="checkpointer"),
        ]
        for worker in workers:
            worker.start()
        time.sleep(duration)
        stop.set()
        for worker in workers:
            worker.join(timeout=60)  # the watchdog: a deadlock hangs here
            assert not worker.is_alive(), \
                f"worker {worker.name} wedged -- potential deadlock"
        assert errors == [], errors

    def test_concurrent_engine_is_clean(self, enabled, tmp_path):
        con = repro.connect(str(tmp_path / "hammer.db"),
                            config={"threads": 4})
        con.execute("CREATE TABLE events (region INTEGER, amount INTEGER)")
        with con.appender("events") as appender:
            appender.append_numpy({
                "region": np.arange(65536, dtype=np.int32) % 16,
                "amount": np.arange(65536, dtype=np.int32),
            })
        try:
            self.hammer(con)
        finally:
            con.close()
        assert sanitizer.lock_order_reports() == []
        assert sanitizer.race_reports() == []
        sanitizer.assert_clean()
        # The hammer must actually have exercised the locks it certifies.
        stats = sanitizer.lock_statistics()
        for name in ("connection", "transaction_manager", "catalog",
                     "table_data", "database.checkpoint"):
            assert stats[name].acquisitions > 0, name

    def test_close_during_concurrent_queries(self, enabled, tmp_path):
        """Checkpoint-on-close vs concurrent queries: the ordering bug fixed
        in database.py (close now takes the checkpoint lock)."""
        con = repro.connect(str(tmp_path / "close.db"),
                            config={"threads": 4})
        con.execute("CREATE TABLE events (region INTEGER, amount INTEGER)")
        with con.appender("events") as appender:
            appender.append_numpy({
                "region": np.arange(8192, dtype=np.int32) % 16,
                "amount": np.arange(8192, dtype=np.int32),
            })
        local = con.duplicate()
        started = threading.Event()

        def query_loop():
            started.set()
            for _ in range(200):
                try:
                    local.execute("SELECT sum(amount) FROM events").fetchall()
                    local.execute("CHECKPOINT")
                except repro.Error:
                    break  # the database closed under us: expected

        thread = threading.Thread(target=query_loop, name="querier")
        thread.start()
        assert started.wait(10)
        con.close()
        thread.join(timeout=60)
        assert not thread.is_alive(), "close vs query deadlock"
        local.close()
        sanitizer.assert_clean()
