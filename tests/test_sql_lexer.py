"""Tests for the SQL tokenizer."""

import pytest

from repro.errors import ParserError
from repro.sql import Token, TokenType, tokenize


def kinds(sql):
    return [(token.type, token.text) for token in tokenize(sql)
            if token.type is not TokenType.EOF]


class TestBasics:
    def test_keywords_uppercased(self):
        assert kinds("select from") == [(TokenType.KEYWORD, "SELECT"),
                                        (TokenType.KEYWORD, "FROM")]

    def test_identifiers_preserve_case(self):
        assert kinds("MyTable") == [(TokenType.IDENTIFIER, "MyTable")]

    def test_eof_token(self):
        tokens = tokenize("x")
        assert tokens[-1].type is TokenType.EOF

    def test_positions(self):
        tokens = tokenize("a  bb")
        assert tokens[0].position == 0
        assert tokens[1].position == 3

    def test_empty_input(self):
        assert tokenize("")[0].type is TokenType.EOF


class TestNumbers:
    @pytest.mark.parametrize("text", ["0", "123", "1.5", ".5", "1e10",
                                      "1.5e-3", "2E+4"])
    def test_number_forms(self, text):
        tokens = kinds(text)
        assert tokens == [(TokenType.NUMBER, text)]

    def test_number_then_dot_identifier(self):
        # "1.e" should not swallow the identifier.
        tokens = kinds("1 .x")
        assert tokens[0] == (TokenType.NUMBER, "1")


class TestStrings:
    def test_simple(self):
        assert kinds("'hello'") == [(TokenType.STRING, "hello")]

    def test_escaped_quote(self):
        assert kinds("'it''s'") == [(TokenType.STRING, "it's")]

    def test_empty_string(self):
        assert kinds("''") == [(TokenType.STRING, "")]

    def test_unterminated(self):
        with pytest.raises(ParserError):
            tokenize("'oops")


class TestQuotedIdentifiers:
    def test_quoted(self):
        assert kinds('"My Column"') == [(TokenType.IDENTIFIER, "My Column")]

    def test_quoted_keyword_stays_identifier(self):
        assert kinds('"select"') == [(TokenType.IDENTIFIER, "select")]

    def test_escaped_double_quote(self):
        assert kinds('"a""b"') == [(TokenType.IDENTIFIER, 'a"b')]

    def test_unterminated(self):
        with pytest.raises(ParserError):
            tokenize('"oops')


class TestOperatorsAndComments:
    def test_two_char_operators(self):
        assert kinds("<= >= <> != || ::") == [
            (TokenType.OPERATOR, "<="), (TokenType.OPERATOR, ">="),
            (TokenType.OPERATOR, "<>"), (TokenType.OPERATOR, "!="),
            (TokenType.OPERATOR, "||"), (TokenType.OPERATOR, "::"),
        ]

    def test_line_comment(self):
        assert kinds("a -- comment\n b") == [(TokenType.IDENTIFIER, "a"),
                                             (TokenType.IDENTIFIER, "b")]

    def test_block_comment(self):
        assert kinds("a /* x */ b") == [(TokenType.IDENTIFIER, "a"),
                                        (TokenType.IDENTIFIER, "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(ParserError):
            tokenize("a /* oops")

    def test_parameter(self):
        assert kinds("?") == [(TokenType.PARAMETER, "?")]

    def test_unexpected_character(self):
        with pytest.raises(ParserError):
            tokenize("a @ b")

    def test_token_helpers(self):
        token = tokenize("SELECT")[0]
        assert token.is_keyword("SELECT", "FROM")
        assert not token.is_keyword("FROM")
        assert not token.is_operator("=")
