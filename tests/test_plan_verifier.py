"""quackplan: the static plan verifier and optimizer-rewrite checker.

Three layers of coverage:

* **seeded corruptions** -- each deliberately broken rewrite (dangling
  column ref, inflated limit, dropped projection column, undominated scan
  hint) must be caught with the offending pass named;
* **the clean sweep** -- a battery of representative queries runs with
  verification on (the whole suite does, via conftest) and every recorded
  check is ``ok``;
* **plumbing** -- the ``repro_plan_checks()`` system table, the
  off-by-default behavior, PRAGMA toggling, the stale-estimate EXPLAIN
  marker, and thread safety of the shared verifier state.
"""

import threading

import pytest

import repro
from repro.errors import PlanVerificationError
from repro.optimizer import rules
from repro.planner.expressions import BoundColumnRef
from repro.planner.logical import (
    LogicalGet,
    LogicalLimit,
    LogicalProjection,
)
from repro.types import INTEGER
from repro.verifier import PlanVerifier, active_verifier
from repro.verifier.invariants import check_logical, output_bound


@pytest.fixture(autouse=True)
def _verification_on(monkeypatch):
    """These tests exercise the verifier; force it on regardless of the
    ambient environment (conftest only sets a default, which an explicit
    REPRO_VERIFY_PLANS=0 would override)."""
    monkeypatch.setenv("REPRO_VERIFY_PLANS", "1")


def _find(plan, kind):
    """First node of the given type in the tree, or None."""
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, kind):
            return node
        stack.extend(node.children)
    return None


@pytest.fixture
def corrupt(monkeypatch):
    """Patch one optimizer pass to corrupt its output after the real work."""

    def patch(pass_name, corruption):
        original = getattr(rules, pass_name)

        def wrapped(*args, **kwargs):
            result = original(*args, **kwargs)
            plan = result[0] if isinstance(result, tuple) else result
            corruption(plan)
            return result

        monkeypatch.setattr(rules, pass_name, wrapped)

    return patch


# -- seeded corruptions -------------------------------------------------------

class TestSeededCorruptions:
    def test_dangling_column_ref_names_filter_pushdown(self, populated,
                                                       corrupt):
        def dangle(plan):
            get = _find(plan, LogicalGet)
            if get is not None:
                get.pushed_filters.append(BoundColumnRef(99, INTEGER, "ghost"))

        corrupt("_push_filters", dangle)
        with pytest.raises(PlanVerificationError) as info:
            populated.execute("SELECT i FROM sample WHERE i > 1").fetchall()
        message = str(info.value)
        assert "filter_pushdown" in message
        assert "column_binding" in message
        assert "dangling column ref #99" in message

    def test_inflated_limit_names_limit_pushdown(self, populated, corrupt):
        def inflate(plan):
            limit = _find(plan, LogicalLimit)
            if limit is None or limit.limit is None:
                return
            limit.limit *= 10
            # Keep the planted scan hint consistent so the *only* violation
            # is the raised output bound, not a stale limit_hint.
            get = _find(plan, LogicalGet)
            if get is not None and get.limit_hint is not None:
                get.limit_hint = limit.limit + limit.offset

        corrupt("_push_limits", inflate)
        with pytest.raises(PlanVerificationError) as info:
            populated.execute("SELECT i FROM sample LIMIT 3").fetchall()
        message = str(info.value)
        assert "limit_pushdown" in message
        assert "limit_monotonic" in message

    def test_dropped_projection_column_names_column_pruning(self, populated,
                                                            corrupt):
        def drop_column(plan):
            if isinstance(plan, LogicalProjection) and len(plan.schema) > 1:
                plan.expressions.pop()
                plan.schema.pop()

        corrupt("_prune_columns", drop_column)
        with pytest.raises(PlanVerificationError) as info:
            populated.execute("SELECT i, s FROM sample").fetchall()
        message = str(info.value)
        assert "column_pruning" in message
        assert "schema_preserved" in message

    def test_undominated_limit_hint_names_limit_pushdown(self, populated,
                                                         corrupt):
        def plant_hint(plan):
            get = _find(plan, LogicalGet)
            if get is not None:
                get.limit_hint = 1

        corrupt("_push_limits", plant_hint)
        # No LIMIT in the query, so no Limit node dominates the hint.
        with pytest.raises(PlanVerificationError) as info:
            populated.execute("SELECT i FROM sample").fetchall()
        message = str(info.value)
        assert "limit_pushdown" in message
        assert "limit_hint" in message

    def test_violation_carries_before_and_after_plans(self, populated,
                                                      corrupt):
        def dangle(plan):
            get = _find(plan, LogicalGet)
            if get is not None:
                get.pushed_filters.append(BoundColumnRef(42, INTEGER, "ghost"))

        corrupt("_push_filters", dangle)
        with pytest.raises(PlanVerificationError) as info:
            populated.execute("SELECT i FROM sample WHERE i > 1").fetchall()
        message = str(info.value)
        assert "-- plan before filter_pushdown --" in message
        assert "-- plan after filter_pushdown --" in message

    def test_non_strict_mode_records_instead_of_raising(self, populated,
                                                        corrupt):
        # The inflated limit is benign downstream (execution just returns
        # more rows), so non-strict mode can run the query to completion.
        def inflate(plan):
            limit = _find(plan, LogicalLimit)
            if limit is None or limit.limit is None:
                return
            limit.limit *= 10
            get = _find(plan, LogicalGet)
            if get is not None and get.limit_hint is not None:
                get.limit_hint = limit.limit + limit.offset

        corrupt("_push_limits", inflate)
        populated.database.plan_verifier.strict = False
        try:
            populated.execute("SELECT i FROM sample LIMIT 3").fetchall()
        finally:
            populated.database.plan_verifier.strict = True
        records = populated.database.plan_check_log.snapshot()
        bad = [r for r in records if r.status == "violation"]
        assert bad, [r.stage for r in records]
        assert bad[0].stage == "limit_pushdown"
        assert bad[0].invariant == "limit_monotonic"
        assert "before:" in bad[0].detail and "after:" in bad[0].detail


# -- pure invariant checks ----------------------------------------------------

@pytest.fixture
def plan_for(populated):
    """Bind + optimize a SELECT against the populated connection's catalog."""
    from repro.planner import Binder
    from repro.sql import parse_one

    database = populated.database

    def build(sql):
        transaction = database.transaction_manager.begin()
        try:
            binder = Binder(database.catalog, transaction)
            bound = binder.bind_statement(parse_one(sql))
            return rules.optimize(bound.plan)
        finally:
            database.transaction_manager.rollback(transaction)

    return build


class TestInvariantPrimitives:
    def test_output_bound_tracks_limits(self, plan_for):
        plan = plan_for("SELECT i FROM sample LIMIT 3")
        assert output_bound(plan) == 3.0

    def test_check_logical_clean_on_bound_plan(self, plan_for):
        plan = plan_for("SELECT s, sum(i) FROM sample GROUP BY s ORDER BY s")
        assert check_logical(plan) == []


# -- the system table ---------------------------------------------------------

class TestPlanChecksTable:
    STAGES = ("binder", "constant_folding", "filter_pushdown",
              "join_reordering", "limit_pushdown", "column_pruning",
              "annotate", "lowering")

    def test_all_stages_recorded_ok(self, populated):
        populated.execute(
            "SELECT s, count(*) FROM sample WHERE i > 1 "
            "GROUP BY s ORDER BY s LIMIT 2").fetchall()
        rows = populated.execute(
            "SELECT stage, invariant, status FROM repro_plan_checks() "
            "ORDER BY seq").fetchall()
        assert [row[0] for row in rows] == list(self.STAGES)
        assert all(row[2] == "ok" for row in rows)

    def test_reading_the_table_does_not_reset_it(self, populated):
        populated.execute("SELECT i FROM sample").fetchall()
        first = populated.execute(
            "SELECT statement FROM repro_plan_checks()").fetchall()
        second = populated.execute(
            "SELECT statement FROM repro_plan_checks()").fetchall()
        assert first and first == second

    def test_subquery_lowering_appends_to_same_statement(self, populated):
        populated.execute(
            "SELECT i FROM sample WHERE i > (SELECT min(i) FROM sample)"
        ).fetchall()
        rows = populated.execute(
            "SELECT statement, stage FROM repro_plan_checks()").fetchall()
        statements = {row[0] for row in rows}
        assert len(statements) == 1
        # Root lowering plus the subquery's mid-execution lowering.
        assert sum(1 for row in rows if row[1] == "lowering") == 2


# -- enablement ---------------------------------------------------------------

class TestEnablement:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY_PLANS", raising=False)
        with repro.connect() as con:
            con.execute("CREATE TABLE t (a INTEGER)")
            con.execute("INSERT INTO t VALUES (1)")
            con.execute("SELECT * FROM t").fetchall()
            assert not con.database.config.verify_plans
            assert active_verifier(con.database) is None
            assert con.execute(
                "SELECT * FROM repro_plan_checks()").fetchall() == []

    def test_pragma_toggles_at_runtime(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY_PLANS", raising=False)
        with repro.connect() as con:
            con.execute("CREATE TABLE t (a INTEGER)")
            con.execute("PRAGMA verify_plans = 1")
            con.execute("SELECT * FROM t").fetchall()
            rows = con.execute(
                "SELECT DISTINCT status FROM repro_plan_checks()").fetchall()
            assert rows == [("ok",)]
            con.execute("PRAGMA verify_plans = 0")
            assert active_verifier(con.database) is None

    def test_active_verifier_on_none_database(self):
        assert active_verifier(None) is None


# -- the clean sweep ----------------------------------------------------------

SWEEP_QUERIES = [
    "SELECT 1",
    "SELECT * FROM sample",
    "SELECT i + 1, upper(s) FROM sample",
    "SELECT * FROM sample WHERE i > 2 AND d IS NOT NULL",
    "SELECT * FROM sample WHERE s = 'alpha' OR i = 4",
    "SELECT DISTINCT s FROM sample",
    "SELECT s, count(*), sum(i), avg(d) FROM sample GROUP BY s",
    "SELECT count(*) FROM sample",
    "SELECT * FROM sample ORDER BY i DESC",
    "SELECT * FROM sample ORDER BY d NULLS FIRST LIMIT 2",
    "SELECT i FROM sample ORDER BY i LIMIT 2 OFFSET 1",
    "SELECT i FROM sample LIMIT 3",
    "SELECT a.i, b.s FROM sample a JOIN sample b ON a.i = b.i",
    "SELECT a.i FROM sample a JOIN sample b ON a.i = b.i WHERE b.d > 1",
    "SELECT a.i, b.i FROM sample a, sample b WHERE a.i = b.i + 1",
    "SELECT a.i FROM sample a LEFT JOIN sample b ON a.i = b.i + 3",
    "SELECT i FROM sample UNION SELECT i + 10 FROM sample",
    "SELECT i FROM sample INTERSECT SELECT i FROM sample WHERE i > 2",
    "SELECT i FROM sample EXCEPT SELECT i FROM sample WHERE i < 3",
    "SELECT i FROM sample WHERE i > (SELECT avg(i) FROM sample)",
    "SELECT i FROM sample WHERE i IN (SELECT i FROM sample WHERE i > 2)",
    "SELECT s, sum(i) FROM sample WHERE d IS NOT NULL GROUP BY s "
    "HAVING sum(i) > 1 ORDER BY s LIMIT 5",
    "SELECT i, row_number() OVER (ORDER BY i) FROM sample",
    "SELECT i, sum(i) OVER (PARTITION BY s ORDER BY i) FROM sample",
    "SELECT CASE WHEN i > 2 THEN 'hi' ELSE 'lo' END FROM sample",
    "SELECT * FROM (SELECT i AS x FROM sample WHERE i > 1) t WHERE x < 5",
]


class TestCleanSweep:
    @pytest.mark.parametrize("query", SWEEP_QUERIES)
    def test_query_verifies_clean(self, populated, query):
        # conftest exports REPRO_VERIFY_PLANS=1: a violation would raise.
        populated.execute(query).fetchall()
        records = populated.database.plan_check_log.snapshot()
        assert records, "verification did not run"
        assert all(record.status == "ok" for record in records)


# -- stale estimates in EXPLAIN ----------------------------------------------

class TestStaleEstimates:
    def test_update_marks_explain_stale(self, populated):
        populated.execute("UPDATE sample SET i = i + 1 WHERE i = 1")
        (line,) = [
            row[0] for row in
            populated.execute(
                "EXPLAIN SELECT * FROM sample WHERE i > 2").fetchall()
            if "GET sample" in row[0]
        ][:1]
        assert ", stale)" in line

    def test_fresh_stats_not_marked(self, populated):
        plan_text = "\n".join(
            row[0] for row in populated.execute(
                "EXPLAIN SELECT * FROM sample WHERE i > 2").fetchall())
        assert "stale" not in plan_text
        assert "(est=" in plan_text

    def test_checkpoint_clears_stale_marker(self, db_path):
        with repro.connect(db_path) as con:
            con.execute("CREATE TABLE t (a INTEGER)")
            con.execute("INSERT INTO t VALUES (1), (2), (3), (4)")
            con.execute("UPDATE t SET a = a + 1 WHERE a < 3")
            stale_text = "\n".join(
                row[0] for row in con.execute(
                    "EXPLAIN SELECT * FROM t WHERE a > 2").fetchall())
            assert ", stale)" in stale_text
        # Checkpoint-on-close recomputes statistics.
        with repro.connect(db_path) as con:
            fresh_text = "\n".join(
                row[0] for row in con.execute(
                    "EXPLAIN SELECT * FROM t WHERE a > 2").fetchall())
            assert "stale" not in fresh_text


# -- thread safety ------------------------------------------------------------

class TestThreadSafety:
    def test_concurrent_connections_share_the_verifier(self, populated):
        database = populated.database
        # Every execution must re-optimize (and so re-verify): the plan and
        # result caches would legitimately skip the work being counted here.
        database.config.plan_cache_entries = 0
        database.config.result_cache_entries = 0
        before = database.plan_verifier.stats()
        errors = []

        def worker():
            con = database.connect()
            try:
                for _ in range(10):
                    con.execute(
                        "SELECT s, count(*) FROM sample GROUP BY s"
                    ).fetchall()
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)
            finally:
                con.close()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        stats = database.plan_verifier.stats()
        assert stats["violations_found"] == before["violations_found"]
        # 4 threads x 10 statements x 8 stages of new checks, at least.
        assert stats["checks_run"] >= before["checks_run"] + 4 * 10 * 8

    def test_verifier_stats_shape(self):
        verifier = PlanVerifier()
        stats = verifier.stats()
        assert stats == {"checks_run": 0, "violations_found": 0}
