"""Continuous telemetry: metrics history, statement accounting, capture/replay,
and telemetry export (ISSUE 10).

The process-wide metrics registry is shared across the test session, so
assertions compare *deltas* and structural invariants rather than absolute
counter values wherever another test could have moved a counter.
"""

import json
import os
import re
import threading

import pytest

import repro
from repro.config import DatabaseConfig
from repro.errors import InvalidInputError
from repro.observability import (
    JsonlTelemetrySink,
    MetricsHistory,
    StatementLog,
    StatementRecord,
    TelemetrySink,
)
from repro.observability.history import DEFAULT_INTERVAL_MS, RETENTION_TIERS
from repro.observability.metrics import registry
from repro.server import WorkloadCapture, load_capture, replay_workload


# -- metrics history ---------------------------------------------------------

#: Tiny tiers so downsampling and eviction are testable in a few appends.
TEST_TIERS = (("raw", 1, 4), ("mid", 2, 3), ("coarse", 4, 2))


def _flat(value, gauge=0.0):
    return [("queries", "counter", float(value)),
            ("inflight", "gauge", float(gauge))]


class TestMetricsHistory:
    def test_deltas_against_previous_sample(self):
        history = MetricsHistory(TEST_TIERS)
        history.record(_flat(10, gauge=5))
        sample = history.record(_flat(17, gauge=2))
        entries = {name: (value, delta)
                   for name, _, value, delta in sample.entries}
        assert entries["queries"] == (17.0, 7.0)
        assert entries["inflight"] == (2.0, -3.0)

    def test_first_sample_delta_is_full_value(self):
        history = MetricsHistory(TEST_TIERS)
        sample = history.record(_flat(10))
        assert sample.entries[0][3] == 10.0

    def test_downsampled_delta_is_sum_value_is_latest(self):
        history = MetricsHistory(TEST_TIERS)
        history.record(_flat(10, gauge=1))
        history.record(_flat(25, gauge=9))  # mid stride=2: emit here
        mid = history.samples("mid")
        assert len(mid) == 1
        entries = {name: (value, delta)
                   for name, _, value, delta in mid[0].entries}
        # value = latest raw value in the window; delta = sum of raw deltas.
        assert entries["queries"] == (25.0, 25.0)
        assert entries["inflight"] == (9.0, 9.0)

    def test_delta_conservation_across_tiers(self):
        # sum(delta) over any tier == true counter movement, any stride.
        history = MetricsHistory(TEST_TIERS)
        values = [3, 7, 7, 12, 20, 21, 30, 44]
        for value in values:
            history.record(_flat(value))
        # Per tier: sum(delta) over the retained ring == the counter's true
        # movement across the window the ring still covers, whatever the
        # stride.  raw keeps the last 4 of 8 samples (12 -> 44); mid keeps
        # the last 3 of its 4 stride-2 windows (7 -> 44); coarse keeps both
        # stride-4 windows (0 -> 44).
        expected = {"raw": 44 - 12, "mid": 44 - 7, "coarse": 44}
        for tier in ("raw", "mid", "coarse"):
            moved = sum(
                dict((name, delta)
                     for name, _, _, delta in sample.entries)["queries"]
                for sample in history.samples(tier))
            assert moved == expected[tier], tier

    def test_ring_capacity_bounds_memory(self):
        history = MetricsHistory(TEST_TIERS)
        for value in range(100):
            history.record(_flat(value))
        assert len(history.samples("raw")) == 4
        assert len(history.samples("mid")) == 3
        assert len(history.samples("coarse")) == 2
        assert history.total_samples == 100

    def test_rows_shape_and_latest(self):
        history = MetricsHistory(TEST_TIERS)
        history.record(_flat(1), timestamp=123.0)
        assert history.latest().timestamp == 123.0
        rows = history.rows()
        assert ("raw", 1, 123.0, "queries", "counter", 1.0, 1.0) in rows
        tiers = {row[0] for row in rows}
        assert tiers == {"raw"}  # strides 2/4 have not emitted yet

    def test_unknown_tier_raises(self):
        with pytest.raises(KeyError):
            MetricsHistory(TEST_TIERS).samples("minutely")

    def test_clear(self):
        history = MetricsHistory(TEST_TIERS)
        history.record(_flat(5))
        history.clear()
        assert history.rows() == []
        assert history.latest() is None
        # After clear the next delta is the full value again.
        assert history.record(_flat(5)).entries[0][3] == 5.0

    def test_default_tiers_match_documented_horizons(self):
        assert RETENTION_TIERS == (("raw", 1, 240), ("mid", 8, 180),
                                   ("coarse", 64, 120))
        # 240 raw samples at the 250 ms default cadence = the last minute.
        assert 240 * DEFAULT_INTERVAL_MS / 1000.0 == 60.0


# -- statement accounting ----------------------------------------------------

class TestStatementLog:
    @staticmethod
    def _record(seq, session=1):
        return StatementRecord(session, seq, f"SELECT {seq}",
                               wall_ms=1.0, rows_out=seq)

    def test_bounded_ring(self):
        log = StatementLog(capacity=3)
        for seq in range(1, 6):
            log.record(self._record(seq))
        assert [record.statement_seq for record in log.records()] == [3, 4, 5]
        assert log.total_recorded == 5
        assert len(log) == 3

    def test_capacity_zero_disables(self):
        log = StatementLog(capacity=0)
        log.record(self._record(1))
        assert log.records() == []
        assert log.total_recorded == 0

    def test_row_shape(self):
        log = StatementLog()
        log.record(StatementRecord(7, 3, "SELECT 1", timestamp=9.0,
                                   wall_ms=1.5, cpu_ms=0.5, rows_out=1,
                                   rows_scanned=10, vectors=2,
                                   buffer_hits=4, buffer_misses=1,
                                   memory_bytes=2048, error=""))
        assert log.rows() == [(7, 3, "SELECT 1", 9.0, 1.5, 0.5, 1, 10, 2,
                               4, 1, 2048, "")]


class TestStatementAccounting:
    def test_connection_statements_attributed_in_sequence(self):
        con = repro.connect()
        try:
            con.execute("CREATE TABLE t (a INTEGER)")
            con.execute("INSERT INTO t VALUES (1), (2), (3)")
            con.execute("SELECT * FROM t").fetchall()
            rows = con.execute(
                "SELECT session_id, statement_seq, sql, rows_out "
                "FROM repro_statement_log()").fetchall()
            # Direct (serverless) connections bill to session 0.
            assert [row[0] for row in rows] == [0, 0, 0]
            assert [row[1] for row in rows] == [1, 2, 3]
            assert rows[2][2] == "SELECT * FROM t"
            assert rows[2][3] == 3
        finally:
            con.close()

    def test_accounting_fields_populated(self):
        con = repro.connect()
        try:
            con.execute("CREATE TABLE t (a INTEGER)")
            con.executemany("INSERT INTO t VALUES (?)",
                            [(i,) for i in range(1000)])
            con.execute("SELECT sum(a) FROM t").fetchall()
            record = con.last_accounting
            assert record.sql == "SELECT sum(a) FROM t"
            assert record.rows_out == 1
            assert record.rows_scanned >= 1000
            assert record.wall_ms > 0
            assert record.vectors > 0
            assert record.memory_bytes > 0
            assert record.error == ""
        finally:
            con.close()

    def test_failed_statement_billed_with_error(self):
        con = repro.connect()
        try:
            with pytest.raises(Exception):
                con.execute("SELECT * FROM no_such_table")
            rows = con.execute(
                "SELECT sql, error FROM repro_statement_log()").fetchall()
            assert any("no_such_table" in sql and error != ""
                       for sql, error in rows)
        finally:
            con.close()

    def test_statement_log_entries_zero_disables(self):
        con = repro.connect(config={"statement_log_entries": 0})
        try:
            con.execute("SELECT 1").fetchall()
            assert con.execute(
                "SELECT count(*) FROM repro_statement_log()").fetchvalue() == 0
        finally:
            con.close()

    def test_slow_log_carries_session_and_seq(self):
        con = repro.connect(config={"slow_query_ms": 0.0001})
        try:
            con.execute("SELECT 1").fetchall()
            rows = con.execute(
                "SELECT sql, session_id, statement_seq "
                "FROM repro_slow_queries()").fetchall()
            by_sql = {sql: (session, seq) for sql, session, seq in rows}
            assert by_sql["SELECT 1"] == (0, 1)
            # The client-side view exposes the same attribution.
            record = [r for r in con.slow_queries() if r.sql == "SELECT 1"][0]
            assert (record.session_id, record.statement_seq) == (0, 1)
        finally:
            con.close()


# -- system tables + sampler -------------------------------------------------

class TestTelemetryTables:
    def test_pragma_telemetry_sample_populates_history(self):
        con = repro.connect()
        try:
            con.execute("SELECT 1").fetchall()
            message = con.execute("PRAGMA telemetry_sample").fetchvalue()
            assert re.fullmatch(r"sampled \d+ metrics", message)
            rows = con.execute(
                "SELECT tier, name, kind, value, delta "
                "FROM repro_metrics_history()").fetchall()
            assert rows, "one forced sample must be queryable"
            assert {tier for tier, *_ in rows} == {"raw"}
            assert all(kind in ("counter", "gauge")
                       for _, _, kind, _, _ in rows)
        finally:
            con.close()

    def test_history_agrees_with_live_registry(self):
        con = repro.connect()
        try:
            con.execute("CREATE TABLE t (a INTEGER)")
            con.execute("INSERT INTO t VALUES (1), (2)")
            sample = con.database.telemetry_sample()
            # No engine activity between the sample and this snapshot, so
            # every sampled value must equal the live registry value.
            live = {name: value
                    for name, _, value in registry().flat_snapshot()}
            for name, _, value, _ in sample.entries:
                assert live[name] == value
        finally:
            con.close()

    def test_history_counters_never_exceed_repro_metrics(self):
        con = repro.connect()
        try:
            con.execute("SELECT 1").fetchall()
            con.execute("PRAGMA telemetry_sample")
            # Counters are monotonic: the sampled past <= the folded now.
            stale = con.execute(
                "SELECT count(*) FROM repro_metrics_history() h "
                "JOIN repro_metrics() m ON h.name = m.name "
                "WHERE h.kind = 'counter' AND h.value > m.value"
            ).fetchvalue()
            assert stale == 0
        finally:
            con.close()

    def test_activity_observes_running_statement(self):
        with repro.serve() as server:
            with server.session("watcher") as session:
                rows = session.execute(
                    "SELECT session_id, name, sql, phase, statement_seq, "
                    "elapsed_ms FROM repro_activity()").fetchall()
                # The watcher's own in-flight SELECT is the busy statement.
                assert len(rows) == 1
                session_id, name, sql, phase, seq, elapsed = rows[0]
                assert name == "watcher"
                assert "repro_activity" in sql
                assert phase == "executing"
                assert seq >= 1
                assert elapsed >= 0
                # Idle again after the statement finished.
                assert session.execute(
                    "SELECT count(*) FROM repro_activity()"
                ).fetchvalue() == 1  # still self-observing
        con = repro.connect()
        try:
            assert con.execute(
                "SELECT count(*) FROM repro_activity()").fetchvalue() == 0
        finally:
            con.close()

    def test_sessions_expose_resource_accounting(self):
        with repro.serve() as server:
            with server.session("worker") as session:
                session.execute("CREATE TABLE t (a INTEGER)")
                session.executemany("INSERT INTO t VALUES (?)",
                                    [(i,) for i in range(500)])
                session.execute("SELECT sum(a) FROM t").fetchall()
                row = session.execute(
                    "SELECT statements, wall_ms, cpu_ms, rows_scanned, "
                    "peak_memory FROM repro_sessions() "
                    "WHERE name = 'worker'").fetchone()
                statements, wall_ms, cpu_ms, rows_scanned, peak = row
                # CREATE + 500 executemany items + SELECT sum + the
                # in-flight repro_sessions query itself.
                assert statements == 503
                assert wall_ms > 0
                assert rows_scanned >= 500
                assert peak > 0
                stats = session.stats()
                # stats() runs after the snapshot query finished and was
                # itself folded in, so it can only have grown since.
                assert stats["rows_scanned"] >= rows_scanned
                # Session ids attribute the statement log per session.
                logged = session.execute(
                    "SELECT DISTINCT session_id FROM repro_statement_log() "
                    "WHERE sql LIKE 'INSERT INTO t%'").fetchall()
                assert logged == [(session.session_id,)]

    def test_sampler_lifecycle_and_interval_clamp(self):
        # Explicitly blank telemetry_path: the CI telemetry job exports
        # REPRO_TELEMETRY_PATH, which would auto-start the sampler.
        con = repro.connect(config={"telemetry_path": ""})
        try:
            sampler = con.database.telemetry
            assert not sampler.running
            sampler.start(0.0001)  # clamps to 1 ms, must not spin at 0
            assert sampler.running
            assert sampler._interval == 0.001
            sampler.start(500)  # idempotent retune
            assert sampler._interval == 0.5
            assert threading.active_count() >= 2
            sampler.stop()
            assert not sampler.running
            sampler.stop()  # idempotent
        finally:
            con.close()

    def test_background_sampler_fills_history(self):
        con = repro.connect(config={"telemetry_interval_ms": 5,
                                    "telemetry_path": ""})
        try:
            assert con.database.telemetry.running
            stop = threading.Event()
            while not stop.wait(0.01):
                if con.database.telemetry.history.total_samples >= 3:
                    break
            assert con.database.telemetry.history.total_samples >= 3
            con.execute("PRAGMA telemetry_interval_ms=0")
            assert not con.database.telemetry.running
            # History survives the sampler stopping.
            assert con.execute(
                "SELECT count(*) FROM repro_metrics_history()"
            ).fetchvalue() > 0
        finally:
            con.close()


# -- export sinks ------------------------------------------------------------

class TestTelemetryExport:
    def test_jsonl_sink_writes_samples_and_spans(self, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        sink = JsonlTelemetrySink(path)
        sink.emit_sample({"type": "metric_sample", "sample": 1})
        sink.emit_span({"type": "span", "span_id": 2})
        sink.close()
        lines = [json.loads(line)
                 for line in open(path, encoding="utf-8")]
        assert [line["type"] for line in lines] == ["metric_sample", "span"]
        assert sink.samples_written == 1
        assert sink.spans_written == 1
        sink.close()  # idempotent
        sink.emit_sample({"ignored": True})  # after close: dropped, no raise
        assert sink.samples_written == 1

    def test_base_sink_is_noop(self):
        sink = TelemetrySink()
        sink.emit_sample({})
        sink.emit_span({})
        sink.flush()
        sink.close()

    def test_pragma_telemetry_path_attaches_sink(self, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        con = repro.connect()
        try:
            con.execute(f"PRAGMA telemetry_path='{path}'")
            assert con.database.telemetry.running  # path implies cadence
            con.execute("SELECT 1").fetchall()
            con.execute("PRAGMA telemetry_sample")
        finally:
            con.close()
        lines = [json.loads(line)
                 for line in open(path, encoding="utf-8")]
        samples = [line for line in lines if line["type"] == "metric_sample"]
        # At least the forced sample and the final close-time sample.
        assert len(samples) >= 2
        metrics = samples[-1]["metrics"]
        assert all(set(entry) == {"kind", "value", "delta"}
                   for entry in metrics.values())

    def test_env_default_telemetry_path(self, tmp_path, monkeypatch):
        path = str(tmp_path / "env.jsonl")
        monkeypatch.setenv("REPRO_TELEMETRY_PATH", path)
        config = DatabaseConfig.from_dict({})
        assert config.telemetry_path == path
        monkeypatch.setenv("REPRO_CAPTURE_PATH", "cap.jsonl")
        assert DatabaseConfig.from_dict({}).capture_path == "cap.jsonl"

    def test_scrape_returns_prometheus_text(self):
        with repro.serve() as server:
            with server.session("scraped") as session:
                session.execute("SELECT 1").fetchall()
            page = server.scrape()
        assert "# TYPE repro_queries_total counter" in page
        assert page.endswith("\n")

    def test_set_sink_closes_previous(self, tmp_path):
        con = repro.connect()
        try:
            first = JsonlTelemetrySink(str(tmp_path / "a.jsonl"))
            con.database.telemetry.set_sink(first)
            second = JsonlTelemetrySink(str(tmp_path / "b.jsonl"))
            con.database.telemetry.set_sink(second)
            assert first.closed
            assert not second.closed
        finally:
            con.close()
        assert second.closed  # database close flushes and closes the sink


# -- metrics_text round-trip -------------------------------------------------

_BUCKET_RE = re.compile(r'^(\w+)_bucket\{le="([^"]+)"\} (\d+)$')


class TestMetricsTextRoundTrip:
    def test_histogram_cumulative_buckets_round_trip(self):
        con = repro.connect()
        try:
            for value in range(50):
                con.execute("SELECT ?", [value]).fetchall()
            text = con.metrics_text()
            snapshot = con.metrics()
        finally:
            con.close()

        buckets = {}
        scalars = {}
        for line in text.splitlines():
            match = _BUCKET_RE.match(line)
            if match:
                name, bound, count = match.groups()
                buckets.setdefault(name, []).append(
                    (float(bound), int(count)))
                continue
            if line.startswith("#") or " " not in line:
                continue
            metric, value = line.rsplit(" ", 1)
            if "{" not in metric:
                scalars[metric] = float(value)

        assert buckets, "the latency histogram must render buckets"
        for name, pairs in buckets.items():
            bounds = [bound for bound, _ in pairs]
            counts = [count for _, count in pairs]
            # Bounds ascend and end at +Inf; counts are cumulative.
            assert bounds == sorted(bounds)
            assert bounds[-1] == float("inf")
            assert counts == sorted(counts)
            # The +Inf bucket IS the _count scalar, and both match the
            # programmatic snapshot exactly.
            assert counts[-1] == scalars[f"{name}_count"]
            assert snapshot[name]["count"] == counts[-1]
            rendered = dict(pairs)
            for bound, cumulative in snapshot[name]["buckets"].items():
                assert rendered[bound] == cumulative
            assert scalars[f"{name}_sum"] == pytest.approx(
                snapshot[name]["sum"])

    def test_flat_snapshot_matches_views(self):
        con = repro.connect()
        try:
            con.execute("SELECT 1").fetchall()
            con.database.fold_metrics()
            flat = {name: (kind, value)
                    for name, kind, value in registry().flat_snapshot()}
            for name, counter in registry().counters.items():
                assert flat[name] == ("counter", counter.value)
            for name, histogram in registry().histograms.items():
                assert flat[f"{name}_count"][1] == float(histogram.count)
                assert flat[f"{name}_sum"][1] == histogram.sum
        finally:
            con.close()


# -- workload capture and replay ---------------------------------------------

class TestWorkloadCapture:
    def test_capture_enabled_requires_path(self):
        con = repro.connect()
        try:
            with pytest.raises(InvalidInputError):
                con.execute("PRAGMA capture_enabled=1")
            # The failed enable did not leave the flag set.
            assert con.database.config.capture_enabled is False
        finally:
            con.close()

    def test_capture_file_format(self, tmp_path):
        path = str(tmp_path / "cap.jsonl")
        capture = WorkloadCapture(path)
        capture.emit_statement("s1", 1, 1, "SELECT ?", (42,), 1, 0.5)
        capture.emit_statement("s1", 1, 2, "PRAGMA capture_enabled=0",
                               None, 0, 0.1)
        capture.close()
        lines = [json.loads(line)
                 for line in open(path, encoding="utf-8")]
        assert lines[0]["type"] == "capture_start"
        statements = [line for line in lines if line["type"] == "statement"]
        # PRAGMA capture control statements are excluded from the capture
        # (replaying them would re-arm capture on the replay server).
        assert len(statements) == 1
        assert statements[0]["sql"] == "SELECT ?"
        assert statements[0]["params"] == [42]
        assert load_capture(path)[0]["seq"] == 1

    def test_server_sessions_are_captured(self, tmp_path):
        path = str(tmp_path / "cap.jsonl")
        config = {"capture_enabled": True, "capture_path": path}
        with repro.serve(config=config) as server:
            with server.session("alpha") as session:
                session.execute("CREATE TABLE t (a INTEGER)")
                session.execute("INSERT INTO t VALUES (1), (2)")
                session.execute("SELECT count(*) FROM t").fetchall()
        statements = load_capture(path)
        assert [record["sql"] for record in statements] == [
            "CREATE TABLE t (a INTEGER)",
            "INSERT INTO t VALUES (1), (2)",
            "SELECT count(*) FROM t",
        ]
        assert statements[-1]["rowcount"] == 1
        assert all(record["session"] == "alpha" for record in statements)
        assert all(record["offset_s"] >= 0 for record in statements)

    def test_pragma_capture_routes_to_database_config(self, tmp_path):
        # Capture is instance-wide: enabling it from a serving session
        # (which runs on a private config copy) must still arm the
        # database-level recorder.
        path = str(tmp_path / "cap.jsonl")
        with repro.serve() as server:
            with server.session("ops") as session:
                session.execute(f"PRAGMA capture_path='{path}'")
                session.execute("PRAGMA capture_enabled=1")
                assert server.database.workload_capture is not None
                session.execute("SELECT 1").fetchall()
                session.execute("PRAGMA capture_enabled=0")
                assert server.database.workload_capture is None
        statements = load_capture(path)
        assert [record["sql"] for record in statements] == [
            "SELECT 1"]

    def test_capture_replay_round_trip_exact_parity(self, tmp_path):
        path = str(tmp_path / "cap.jsonl")
        config = {"capture_enabled": True, "capture_path": path}
        with repro.serve(config=config) as server:
            with server.session("setup") as session:
                session.execute(
                    "CREATE TABLE events (id INTEGER, v DOUBLE)")
                session.executemany(
                    "INSERT INTO events VALUES (?, ?)",
                    [(i, float(i)) for i in range(20)])
            with server.session("reader") as session:
                session.execute(
                    "SELECT count(*) FROM events WHERE v > ?",
                    (5.0,)).fetchall()
                session.execute(
                    "SELECT id, v FROM events ORDER BY id").fetchall()

        report = replay_workload(path, speed="max")
        replay = report["replay"]
        assert replay["statements"] == 23  # CREATE + 20 inserts + 2 reads
        assert replay["matches"] == 23
        assert replay["mismatches"] == 0
        assert replay["mismatch_samples"] == []
        serving = report["serving"]
        assert serving["errors"] == 0
        assert serving["statements"] == 23
        assert serving["p99_ms"] >= serving["p50_ms"]

    def test_replay_recorded_speed_preserves_order(self, tmp_path):
        path = str(tmp_path / "cap.jsonl")
        config = {"capture_enabled": True, "capture_path": path}
        with repro.serve(config=config) as server:
            with server.session("one") as session:
                session.execute("CREATE TABLE t (a INTEGER)")
                session.execute("INSERT INTO t VALUES (1)")
                session.execute("SELECT * FROM t").fetchall()
        report = replay_workload(path, speed="recorded")
        assert report["replay"]["mismatches"] == 0
        assert report["replay"]["speed"] == "recorded"

    def test_replay_reports_mismatches(self, tmp_path):
        path = str(tmp_path / "cap.jsonl")
        capture = WorkloadCapture(path)
        capture.emit_statement("s", 1, 1, "CREATE TABLE t (a INTEGER)",
                               None, 1, 0.1)
        # Recorded rowcount lies: replay must flag the divergence.
        capture.emit_statement("s", 1, 2, "SELECT * FROM t", None, 99, 0.1)
        capture.close()
        report = replay_workload(path)
        assert report["replay"]["mismatches"] == 1
        assert report["replay"]["mismatch_samples"]
