"""WAL tests: record round trips, commit groups, torn tails, replay."""

import os

import numpy as np
import pytest

from repro.storage.serialize import BinaryReader, BinaryWriter
from repro.storage.wal import (
    WALRecord,
    WALRecordType,
    WriteAheadLog,
    deserialize_chunk,
    serialize_chunk,
)
from repro.types import DataChunk, INTEGER, VARCHAR


@pytest.fixture
def wal_path(tmp_path):
    return str(tmp_path / "test.wal")


def sample_chunk():
    return DataChunk.from_pylists([[1, 2, None], ["a", None, "c"]],
                                  [INTEGER, VARCHAR])


class TestChunkSerialization:
    def test_round_trip(self):
        writer = BinaryWriter()
        serialize_chunk(writer, sample_chunk())
        decoded = deserialize_chunk(BinaryReader(writer.getvalue()))
        assert decoded.to_rows() == sample_chunk().to_rows()
        assert decoded.types == [INTEGER, VARCHAR]

    def test_empty_chunk(self):
        writer = BinaryWriter()
        chunk = DataChunk.from_pylists([[], []], [INTEGER, VARCHAR])
        serialize_chunk(writer, chunk)
        decoded = deserialize_chunk(BinaryReader(writer.getvalue()))
        assert decoded.size == 0


class TestRecordSerialization:
    def roundtrip(self, record):
        return WALRecord.deserialize(record.serialize())

    def test_create_table(self):
        record = WALRecord.create_table(
            "t", [("a", "INTEGER", False, None), ("b", "VARCHAR", True, "dflt")])
        decoded = self.roundtrip(record)
        assert decoded.record_type is WALRecordType.CREATE_TABLE
        assert decoded.payload["name"] == "t"
        assert decoded.payload["columns"] == [
            ("a", "INTEGER", False, None), ("b", "VARCHAR", True, "dflt")]

    def test_drop_records(self):
        assert self.roundtrip(WALRecord.drop_table("t")).payload["name"] == "t"
        assert self.roundtrip(WALRecord.drop_view("v")).payload["name"] == "v"

    def test_create_view(self):
        decoded = self.roundtrip(WALRecord.create_view("v", "SELECT 1"))
        assert decoded.payload["sql"] == "SELECT 1"

    def test_insert_chunk(self):
        decoded = self.roundtrip(WALRecord.insert_chunk("t", sample_chunk()))
        assert decoded.payload["table"] == "t"
        assert decoded.payload["chunk"].to_rows() == sample_chunk().to_rows()

    def test_delete_rows(self):
        rows = np.array([3, 7, 11], dtype=np.int64)
        decoded = self.roundtrip(WALRecord.delete_rows("t", rows))
        np.testing.assert_array_equal(decoded.payload["rows"], rows)

    def test_update_rows(self):
        rows = np.array([0, 5], dtype=np.int64)
        chunk = DataChunk.from_pylists([[10, 20]], [INTEGER])
        decoded = self.roundtrip(WALRecord.update_rows("t", [1], rows, chunk))
        assert decoded.payload["columns"] == [1]
        assert decoded.payload["chunk"].to_rows() == [(10,), (20,)]

    def test_commit(self):
        decoded = self.roundtrip(WALRecord.commit(42))
        assert decoded.payload["commit_id"] == 42


class TestWALFile:
    def test_append_and_read_groups(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append_commit_group([WALRecord.drop_table("a")], 2)
        wal.append_commit_group(
            [WALRecord.create_view("v", "SELECT 1"), WALRecord.drop_view("v")], 3)
        wal.close()
        groups = WriteAheadLog(wal_path).read_all()
        assert len(groups) == 2
        assert groups[0][0].record_type is WALRecordType.DROP_TABLE
        assert len(groups[1]) == 2

    def test_disabled_wal(self):
        wal = WriteAheadLog(None)
        assert not wal.enabled
        wal.append_commit_group([WALRecord.drop_table("x")], 1)
        assert wal.read_all() == []
        assert wal.size() == 0

    def test_torn_tail_is_discarded(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append_commit_group([WALRecord.drop_table("good")], 2)
        wal.close()
        # Append half of a frame: a torn write.
        with open(wal_path, "ab") as handle:
            handle.write(b"\x40\x00\x00\x00\x00\x00\x00\x00\x12")
        groups = WriteAheadLog(wal_path).read_all()
        assert len(groups) == 1

    def test_corrupted_tail_is_discarded(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append_commit_group([WALRecord.drop_table("good")], 2)
        size_after_first = os.path.getsize(wal_path)
        wal.append_commit_group([WALRecord.drop_table("bad")], 3)
        wal.close()
        # Flip a byte in the second group's payload.
        with open(wal_path, "r+b") as handle:
            handle.seek(size_after_first + 14)
            handle.write(b"\xff")
        groups = WriteAheadLog(wal_path).read_all()
        assert len(groups) == 1
        assert groups[0][0].payload["name"] == "good"

    def test_uncommitted_group_is_discarded(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append_commit_group([WALRecord.drop_table("good")], 2)
        wal.close()
        # Write a record frame without a COMMIT.
        record = WALRecord.drop_table("uncommitted").serialize()
        import struct
        import zlib

        with open(wal_path, "ab") as handle:
            handle.write(struct.pack("<QI", len(record),
                                     zlib.crc32(record) & 0xFFFFFFFF))
            handle.write(record)
        groups = WriteAheadLog(wal_path).read_all()
        assert len(groups) == 1

    def test_truncate(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append_commit_group([WALRecord.drop_table("a")], 2)
        assert wal.size() > 0
        wal.truncate()
        assert wal.size() == 0
        assert wal.read_all() == []
        # The WAL stays usable after truncation.
        wal.append_commit_group([WALRecord.drop_table("b")], 3)
        assert len(wal.read_all()) == 1
        wal.close()

    def test_delete_file(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append_commit_group([WALRecord.drop_table("a")], 2)
        wal.delete_file()
        assert not os.path.exists(wal_path)
