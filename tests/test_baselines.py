"""Tuple-at-a-time baseline engine tests (correctness vs the vectorized engine)."""

import numpy as np
import pytest

import repro
from repro.baselines import (
    TupleAggregate,
    TupleFilter,
    TupleHashJoin,
    TupleProjection,
    TupleScan,
    run_to_list,
)


class TestOperators:
    def test_scan(self):
        rows = [(1, "a"), (2, "b")]
        assert run_to_list(TupleScan(rows)) == rows

    def test_filter(self):
        plan = TupleFilter(TupleScan([(1,), (2,), (3,)]),
                           lambda row: row[0] > 1)
        assert run_to_list(plan) == [(2,), (3,)]

    def test_projection(self):
        plan = TupleProjection(TupleScan([(1, 2), (3, 4)]),
                               [lambda row: row[0] + row[1]])
        assert run_to_list(plan) == [(3,), (7,)]

    def test_ungrouped_aggregate(self):
        aggregates = [
            (lambda: 0, lambda state, row: state + row[0], lambda state: state),
            (lambda: 0, lambda state, row: state + 1, lambda state: state),
        ]
        plan = TupleAggregate(TupleScan([(1,), (2,), (3,)]), None, aggregates)
        assert run_to_list(plan) == [(6, 3)]

    def test_grouped_aggregate(self):
        rows = [("a", 1), ("b", 2), ("a", 3)]
        aggregates = [(lambda: 0, lambda state, row: state + row[1],
                       lambda state: state)]
        plan = TupleAggregate(TupleScan(rows), lambda row: row[0], aggregates)
        assert sorted(run_to_list(plan)) == [("a", 4), ("b", 2)]

    def test_empty_ungrouped_aggregate(self):
        aggregates = [(lambda: 0, lambda state, row: state + 1,
                       lambda state: state)]
        plan = TupleAggregate(TupleScan([]), None, aggregates)
        assert run_to_list(plan) == [(0,)]

    def test_hash_join(self):
        left = TupleScan([(1, "x"), (2, "y"), (3, "z")])
        right = TupleScan([(2, 20.0), (3, 30.0), (3, 35.0)])
        plan = TupleHashJoin(left, right, lambda row: row[0],
                             lambda row: row[0])
        result = sorted(run_to_list(plan))
        assert result == [(2, "y", 2, 20.0), (3, "z", 3, 30.0),
                          (3, "z", 3, 35.0)]

    def test_join_skips_null_keys(self):
        left = TupleScan([(None, "x"), (1, "y")])
        right = TupleScan([(None, 0.0), (1, 1.0)])
        plan = TupleHashJoin(left, right, lambda row: row[0],
                             lambda row: row[0])
        assert run_to_list(plan) == [(1, "y", 1, 1.0)]

    def test_reopen_restarts(self):
        scan = TupleScan([(1,), (2,)])
        assert run_to_list(scan) == [(1,), (2,)]
        assert run_to_list(scan) == [(1,), (2,)]


class TestEquivalenceWithVectorizedEngine:
    """The C7 experiment's precondition: both engines compute the same thing."""

    @pytest.fixture
    def data(self, con):
        rng = np.random.default_rng(7)
        n = 5000
        groups = rng.integers(0, 20, n).astype(np.int32)
        values = rng.integers(0, 1000, n).astype(np.int32)
        con.execute("CREATE TABLE t (g INTEGER, v INTEGER)")
        with con.appender("t") as appender:
            appender.append_numpy({"g": groups, "v": values})
        rows = list(zip(groups.tolist(), values.tolist()))
        return con, rows

    def test_filtered_aggregation_matches(self, data):
        con, rows = data
        sql_rows = con.execute(
            "SELECT g, sum(v), count(*) FROM t WHERE v >= 500 "
            "GROUP BY g ORDER BY g").fetchall()
        plan = TupleAggregate(
            TupleFilter(TupleScan(rows), lambda row: row[1] >= 500),
            lambda row: row[0],
            [(lambda: 0, lambda state, row: state + row[1], lambda s: s),
             (lambda: 0, lambda state, row: state + 1, lambda s: s)])
        tuple_rows = sorted(run_to_list(plan))
        assert [tuple(row) for row in sql_rows] == tuple_rows

    def test_projection_filter_matches(self, data):
        con, rows = data
        sql_total = con.query_value(
            "SELECT sum(v * 2 + 1) FROM t WHERE g < 10")
        plan = TupleAggregate(
            TupleProjection(
                TupleFilter(TupleScan(rows), lambda row: row[0] < 10),
                [lambda row: row[1] * 2 + 1]),
            None,
            [(lambda: 0, lambda state, row: state + row[0], lambda s: s)])
        assert run_to_list(plan)[0][0] == sql_total
