"""Sorting internals: external sorter edge cases, Top-N fusion, set ops."""

import numpy as np
import pytest

import repro
from repro.execution.sort import ExternalSorter, SortKey, sort_order
from repro.types import DataChunk, DOUBLE, INTEGER, VARCHAR, Vector


class TestSortOrder:
    def test_multi_key_mixed_directions(self):
        chunk = DataChunk.from_pylists(
            [[1, 1, 2, 2], ["b", "a", "d", "c"]], [INTEGER, VARCHAR])
        order = sort_order(chunk, [SortKey(0, ascending=True),
                                   SortKey(1, ascending=False)])
        assert chunk.slice(order).to_rows() == \
            [(1, "b"), (1, "a"), (2, "d"), (2, "c")]

    def test_nulls_first_and_last(self):
        chunk = DataChunk.from_pylists([[3, None, 1]], [INTEGER])
        first = sort_order(chunk, [SortKey(0, True, nulls_first=True)])
        assert chunk.slice(first).to_rows() == [(None,), (1,), (3,)]
        last = sort_order(chunk, [SortKey(0, True, nulls_first=False)])
        assert chunk.slice(last).to_rows() == [(1,), (3,), (None,)]

    def test_descending_strings(self):
        chunk = DataChunk.from_pylists([["b", "c", "a"]], [VARCHAR])
        order = sort_order(chunk, [SortKey(0, ascending=False)])
        assert chunk.slice(order).to_rows() == [("c",), ("b",), ("a",)]

    def test_empty_chunk(self):
        chunk = DataChunk.from_pylists([[]], [INTEGER])
        assert len(sort_order(chunk, [SortKey(0)])) == 0

    def test_float_keys(self):
        chunk = DataChunk.from_pylists([[2.5, -1.0, 0.0]], [DOUBLE])
        order = sort_order(chunk, [SortKey(0)])
        assert chunk.slice(order).to_rows() == [(-1.0,), (0.0,), (2.5,)]


class TestExternalSorter:
    def sort_values(self, values, run_limit):
        sorter = ExternalSorter([INTEGER], [SortKey(0)], None,
                                run_limit_bytes=run_limit)
        for start in range(0, len(values), 100):
            batch = values[start:start + 100]
            if batch:
                sorter.append(DataChunk([Vector.from_values(batch, INTEGER)]))
        out = []
        for chunk in sorter.sorted_chunks():
            out.extend(chunk.columns[0].to_pylist())
        return out

    def test_single_run(self):
        rng = np.random.default_rng(3)
        values = rng.integers(0, 1000, 500).tolist()
        assert self.sort_values(values, 1 << 30) == sorted(values)

    def test_many_tiny_runs(self):
        rng = np.random.default_rng(4)
        values = rng.integers(0, 50, 3000).tolist()
        assert self.sort_values(values, 128) == sorted(values)

    def test_all_equal_keys(self):
        assert self.sort_values([7] * 1000, 256) == [7] * 1000

    def test_already_sorted_and_reversed(self):
        values = list(range(1500))
        assert self.sort_values(values, 512) == values
        assert self.sort_values(values[::-1], 512) == values

    def test_empty(self):
        assert self.sort_values([], 512) == []

    def test_spilled_flag(self):
        sorter = ExternalSorter([INTEGER], [SortKey(0)], None,
                                run_limit_bytes=64)
        for _ in range(10):
            sorter.append(DataChunk([Vector.from_values(list(range(50)),
                                                        INTEGER)]))
        assert sorter.spilled
        total = sum(chunk.size for chunk in sorter.sorted_chunks())
        assert total == 500


class TestTopNFusion:
    def test_order_limit_uses_topn(self, populated):
        lines = populated.execute(
            "EXPLAIN SELECT i FROM sample ORDER BY i DESC LIMIT 2").fetchall()
        text = "\n".join(row[0] for row in lines)
        assert "TOP_N" in text

    def test_order_without_limit_uses_sort(self, populated):
        lines = populated.execute(
            "EXPLAIN SELECT i FROM sample ORDER BY i").fetchall()
        text = "\n".join(row[0] for row in lines)
        assert "ORDER_BY" in text

    def test_topn_correctness_at_scale(self, con):
        con.execute("CREATE TABLE big (x INTEGER)")
        rng = np.random.default_rng(5)
        values = rng.integers(0, 10**6, 100_000).astype(np.int32)
        with con.appender("big") as appender:
            appender.append_numpy({"x": values})
        rows = con.execute(
            "SELECT x FROM big ORDER BY x DESC LIMIT 5").fetchall()
        expected = sorted(values.tolist(), reverse=True)[:5]
        assert [row[0] for row in rows] == expected

    def test_topn_with_offset(self, con):
        con.execute("CREATE TABLE t (x INTEGER)")
        con.execute("INSERT INTO t VALUES (5), (3), (1), (4), (2)")
        rows = con.execute(
            "SELECT x FROM t ORDER BY x LIMIT 2 OFFSET 1").fetchall()
        assert rows == [(2,), (3,)]

    def test_topn_limit_larger_than_input(self, con):
        con.execute("CREATE TABLE t (x INTEGER)")
        con.execute("INSERT INTO t VALUES (2), (1)")
        rows = con.execute("SELECT x FROM t ORDER BY x LIMIT 100").fetchall()
        assert rows == [(1,), (2,)]

    def test_topn_with_nulls(self, con):
        con.execute("CREATE TABLE t (x INTEGER)")
        con.execute("INSERT INTO t VALUES (1), (NULL), (3)")
        rows = con.execute(
            "SELECT x FROM t ORDER BY x NULLS FIRST LIMIT 2").fetchall()
        assert rows == [(None,), (1,)]


class TestTopNAmortization:
    """The Top-N accumulator must not re-sort on every incoming chunk."""

    def _run_topn(self, chunk_values, limit, offset=0):
        from repro.execution.physical import ExecutionContext, PhysicalOperator
        from repro.execution.sort import PhysicalTopN
        from repro.planner.expressions import BoundColumnRef
        from repro.planner.logical import BoundOrderByItem

        context = ExecutionContext(None)

        class FeedOperator(PhysicalOperator):
            def execute(self):
                for values in chunk_values:
                    yield DataChunk([Vector.from_values(values, INTEGER)])

        child = FeedOperator(context, [], [INTEGER], ["x"])
        items = [BoundOrderByItem(BoundColumnRef(0, INTEGER, "x"), True, None)]
        topn = PhysicalTopN(context, child, items, limit, offset)
        rows = [row[0] for chunk in topn.execute() for row in chunk.to_rows()]
        return rows, context.stats

    def test_sort_count_amortized(self):
        # 200 chunks of 50 rows with keep=500: compaction may only fire
        # every ~10 chunks (when resident rows reach 2*keep), not per chunk.
        rng = np.random.default_rng(11)
        chunks = [rng.integers(0, 10**6, 50).tolist() for _ in range(200)]
        rows, stats = self._run_topn(chunks, limit=500)
        total = 200 * 50
        flat = sorted(value for chunk in chunks for value in chunk)
        assert rows == flat[:500]
        # Upper bound: one compaction per 2*keep-row fill, plus the final
        # output sort.  Per-chunk re-sorting would be ~190 sorts.
        assert stats["topn_sorts"] <= total // 500 + 2

    def test_amortized_results_with_offset(self):
        rng = np.random.default_rng(12)
        chunks = [rng.integers(0, 1000, 17).tolist() for _ in range(30)]
        rows, _ = self._run_topn(chunks, limit=10, offset=25)
        flat = sorted(value for chunk in chunks for value in chunk)
        assert rows == flat[25:35]

    def test_final_partial_buffer_flushed(self):
        # Fewer total rows than 2*keep: nothing compacts mid-stream, the
        # tail flush must still produce the right answer.
        chunks = [[5, 3], [9, 1], [7]]
        rows, _ = self._run_topn(chunks, limit=3)
        assert rows == [1, 3, 5]

    def test_limit_zero_yields_nothing(self):
        rows, _ = self._run_topn([[1, 2, 3]], limit=0)
        assert rows == []


class TestSetOpEdgeCases:
    def test_union_all_with_empty_side(self, con):
        con.execute("CREATE TABLE a (x INTEGER)")
        con.execute("CREATE TABLE b (x INTEGER)")
        con.execute("INSERT INTO a VALUES (1)")
        assert con.execute("SELECT x FROM a UNION ALL SELECT x FROM b"
                           ).fetchall() == [(1,)]
        assert con.execute("SELECT x FROM b UNION ALL SELECT x FROM a"
                           ).fetchall() == [(1,)]

    def test_except_empty_left(self, con):
        con.execute("CREATE TABLE a (x INTEGER)")
        con.execute("CREATE TABLE b (x INTEGER)")
        con.execute("INSERT INTO b VALUES (1)")
        assert con.execute("SELECT x FROM a EXCEPT SELECT x FROM b"
                           ).fetchall() == []

    def test_intersect_disjoint(self, con):
        con.execute("CREATE TABLE a (x INTEGER)")
        con.execute("CREATE TABLE b (x INTEGER)")
        con.execute("INSERT INTO a VALUES (1)")
        con.execute("INSERT INTO b VALUES (2)")
        assert con.execute("SELECT x FROM a INTERSECT SELECT x FROM b"
                           ).fetchall() == []

    def test_union_with_nulls_deduplicates(self, con):
        con.execute("CREATE TABLE a (x INTEGER)")
        con.execute("INSERT INTO a VALUES (NULL), (NULL), (1)")
        rows = con.execute("SELECT x FROM a UNION SELECT x FROM a "
                           "ORDER BY x NULLS FIRST").fetchall()
        assert rows == [(None,), (1,)]

    def test_multi_column_setops(self, con):
        con.execute("CREATE TABLE a (x INTEGER, y VARCHAR)")
        con.execute("CREATE TABLE b (x INTEGER, y VARCHAR)")
        con.execute("INSERT INTO a VALUES (1, 'p'), (1, 'q'), (2, 'p')")
        con.execute("INSERT INTO b VALUES (1, 'q')")
        rows = con.execute("SELECT * FROM a EXCEPT SELECT * FROM b "
                           "ORDER BY x, y").fetchall()
        assert rows == [(1, "p"), (2, "p")]

    def test_chained_setops(self, con):
        rows = con.execute(
            "SELECT 1 UNION ALL SELECT 2 UNION ALL SELECT 3 "
            "EXCEPT SELECT 2 ORDER BY 1").fetchall()
        assert rows == [(1,), (3,)]
