"""quackkernel: static kernel-contract analysis and the capability manifest.

ISSUE 8's tentpole contract: every registered kernel carries verified,
committed facts -- dtype, NULL contract, copy behaviour, purity -- and the
engine consumes them (the ``repro_kernels()`` table, the planner's fusable
marking, the ``--check-manifest`` drift gate).  These tests pin the
analyzer's inferences on known kernels, prove the drift gate trips on a
stale manifest, and exercise the fusion consumer end to end.
"""

import json
import os
import subprocess
import sys
from dataclasses import replace

import pytest

import repro
from repro.analysis.kernelcheck import (
    MANIFEST_PATH,
    KernelFact,
    analyze_registry,
    check_manifest,
    cross_check_declarations,
    dtype_convertible,
    expression_chain_fusable,
    generate_manifest,
    kernel_fusable,
    load_manifest,
    manifest_entries,
    write_manifest,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture
def con():
    connection = repro.connect()
    yield connection
    connection.close()


@pytest.fixture(scope="module")
def facts():
    """One analyzer run shared by the whole module (it probes every bind)."""
    return {fact.key: fact for fact in analyze_registry()}


# -- fact model --------------------------------------------------------------

class TestDtypeConvertible:
    def test_same_kind(self):
        assert dtype_convertible("float64", "DOUBLE") is True
        assert dtype_convertible("int32", "INTEGER") is True
        assert dtype_convertible("object", "VARCHAR") is True

    def test_widening_int_to_float(self):
        assert dtype_convertible("int64", "DOUBLE") is True

    def test_lossy_float_to_int(self):
        assert dtype_convertible("float64", "INTEGER") is False

    def test_object_never_mixes(self):
        assert dtype_convertible("object", "DOUBLE") is False
        assert dtype_convertible("float64", "VARCHAR") is False

    def test_unknowns_are_indeterminate(self):
        assert dtype_convertible("unknown", "DOUBLE") is None
        assert dtype_convertible("float64", "argument") is None

    def test_fact_round_trips_through_dict(self, facts):
        fact = facts["scalar:round"]
        assert KernelFact.from_dict(fact.as_dict()) == fact


# -- the analyzer ------------------------------------------------------------

class TestAnalyzerCoverage:
    def test_every_scalar_function_has_a_fact(self, facts):
        from repro.functions.scalar import SCALAR_FUNCTIONS
        for name in SCALAR_FUNCTIONS:
            assert f"scalar:{name}" in facts

    def test_every_aggregate_has_a_fact(self, facts):
        for name in ("count", "sum", "avg", "min", "max", "first",
                     "stddev", "stddev_samp", "variance", "var_samp"):
            assert f"aggregate:{name}" in facts

    def test_operator_coverage(self, facts):
        for name in ("=", "<", "+", "*", "and", "or", "not", "negate",
                     "is_null", "in_list", "like", "case"):
            assert f"operator:{name}" in facts

    def test_facts_are_sorted_and_unique(self, facts):
        keys = list(facts)
        assert keys == sorted(keys)


class TestAnalyzerInferences:
    def test_round_propagates_nulls_as_float64(self, facts):
        fact = facts["scalar:round"]
        assert fact.null_contract == "propagate"
        assert fact.inferred_dtype == "float64"
        assert fact.declared_type == "DOUBLE"

    def test_nullif_has_custom_null_semantics(self, facts):
        # nullif(1, NULL) is 1 -- a NULL in the *second* argument must NOT
        # propagate, and the analyzer sees the validity rewrite.
        assert facts["scalar:nullif"].null_contract == "custom"

    def test_coalesce_family_is_custom(self, facts):
        for name in ("coalesce", "ifnull"):
            assert facts[f"scalar:{name}"].null_contract == "custom"

    def test_substr_is_per_row(self, facts):
        fact = facts["scalar:substr"]
        assert not fact.vectorized
        assert not fact.fusable

    def test_abs_return_type_tracks_argument(self, facts):
        assert facts["scalar:abs"].declared_type == "argument"

    def test_aggregates_skip_nulls_and_never_fuse(self, facts):
        aggregates = [fact for fact in facts.values()
                      if fact.kind == "aggregate"]
        assert aggregates
        for fact in aggregates:
            assert fact.null_contract == "skip-nulls"
            assert not fact.fusable

    def test_comparisons_propagate(self, facts):
        for op in ("=", "<>", "<", "<=", ">", ">="):
            assert facts[f"operator:{op}"].null_contract == "propagate"

    def test_three_valued_logic_is_custom(self, facts):
        # AND/OR implement SQL three-valued logic: NULL AND FALSE is FALSE.
        for op in ("and", "or", "is_null", "is_not_null"):
            assert facts[f"operator:{op}"].null_contract == "custom"

    def test_every_kernel_is_pure(self, facts):
        for fact in facts.values():
            assert fact.pure, fact.key

    def test_no_unchecked_null_contracts_in_tree(self, facts):
        unchecked = [fact.key for fact in facts.values()
                     if fact.null_contract == "unchecked"]
        assert unchecked == []


# -- the committed manifest and its drift gate -------------------------------

class TestManifest:
    def test_committed_manifest_is_current(self):
        assert check_manifest() == []

    def test_manifest_covers_the_registry(self, facts):
        entries = {fact.key for fact in manifest_entries()}
        assert entries == set(facts)

    def test_declarations_cross_check_clean(self, facts):
        assert cross_check_declarations(list(facts.values())) == []

    def test_cross_check_flags_lossy_declaration(self, facts):
        bad = replace(facts["scalar:round"], inferred_dtype="float64",
                      declared_type="INTEGER")
        problems = cross_check_declarations([bad])
        assert len(problems) == 1
        assert "scalar:round" in problems[0]

    def test_missing_manifest_is_reported(self, tmp_path):
        problems = check_manifest(tmp_path / "missing.json")
        assert problems and "manifest missing" in problems[0]

    def test_stale_fact_is_reported(self, tmp_path):
        document = generate_manifest()
        for entry in document["kernels"]:
            if entry["name"] == "round":
                entry["null_contract"] = "unchecked"
        stale = tmp_path / "kernel_manifest.json"
        stale.write_text(json.dumps(document))
        problems = check_manifest(stale)
        assert any("scalar:round" in problem
                   and "null_contract" in problem for problem in problems)

    def test_source_drift_is_reported(self, tmp_path):
        document = generate_manifest()
        document["sources"]["repro.functions.scalar"] = "0" * 64
        stale = tmp_path / "kernel_manifest.json"
        stale.write_text(json.dumps(document))
        problems = check_manifest(stale)
        assert any("repro.functions.scalar" in problem
                   for problem in problems)

    def test_version_mismatch_is_reported(self, tmp_path):
        document = generate_manifest()
        document["version"] = 0
        stale = tmp_path / "kernel_manifest.json"
        stale.write_text(json.dumps(document))
        assert any("version" in problem for problem in check_manifest(stale))

    def test_removed_kernel_is_reported(self, tmp_path):
        document = generate_manifest()
        document["kernels"] = [entry for entry in document["kernels"]
                               if entry["name"] != "round"]
        stale = tmp_path / "kernel_manifest.json"
        stale.write_text(json.dumps(document))
        assert any("scalar:round" in problem and "missing" in problem
                   for problem in check_manifest(stale))

    def test_write_manifest_is_deterministic(self, tmp_path):
        target = tmp_path / "kernel_manifest.json"
        write_manifest(target)
        assert target.read_text() == MANIFEST_PATH.read_text()
        assert check_manifest(target) == []

    def test_manifest_is_sorted_for_stable_diffs(self):
        document = load_manifest()
        keys = [(entry["kind"], entry["name"])
                for entry in document["kernels"]]
        assert keys == sorted(keys)


# -- CLI ---------------------------------------------------------------------

class TestManifestCLI:
    def run_cli(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT)

    def test_check_manifest_passes_on_committed_tree(self):
        proc = self.run_cli("--check-manifest")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "manifest up to date" in proc.stdout

    def test_write_manifest_reports_count_and_is_idempotent(self):
        before = MANIFEST_PATH.read_text()
        proc = self.run_cli("--write-manifest")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert f"wrote {len(manifest_entries())} kernel facts" in proc.stdout
        assert MANIFEST_PATH.read_text() == before


# -- fusion: the planner-facing consumer -------------------------------------

class TestFusion:
    def test_vectorized_pure_kernels_are_fusable(self):
        assert kernel_fusable("abs")
        assert kernel_fusable("upper")
        assert kernel_fusable("+", "operator")
        assert kernel_fusable("and", "operator")

    def test_per_row_kernels_are_not(self):
        assert not kernel_fusable("substr")
        assert not kernel_fusable("like", "operator")

    def test_unknown_kernel_is_not_fusable(self):
        assert not kernel_fusable("frobnicate")

    def test_aggregates_are_never_fusable(self):
        assert not kernel_fusable("sum", "aggregate")

    def test_chain_walks_bound_trees(self):
        from repro.planner.expressions import (
            BoundColumnRef,
            BoundConstant,
            BoundFunction,
            BoundOperator,
        )
        from repro.functions.scalar import SCALAR_FUNCTIONS
        from repro.types import DOUBLE, VARCHAR

        column = BoundColumnRef(0, DOUBLE, name="x")
        good = BoundOperator("+", [
            BoundFunction("abs", [column], DOUBLE, SCALAR_FUNCTIONS["abs"]),
            BoundConstant(1.0, DOUBLE)], DOUBLE)
        assert expression_chain_fusable([good])

        text = BoundColumnRef(1, VARCHAR, name="s")
        bad = BoundFunction("substr",
                            [text, BoundConstant(1, DOUBLE),
                             BoundConstant(2, DOUBLE)],
                            VARCHAR, SCALAR_FUNCTIONS["substr"])
        assert not expression_chain_fusable([good, bad])

    def test_empty_chain_is_not_fusable(self):
        assert not expression_chain_fusable([])

    def test_explain_marks_fusable_projection(self, con):
        # The filter over an introspection scan cannot be pushed into the
        # scan, so the filter->project chain survives to the lowering.
        plan = "\n".join(row[0] for row in con.execute(
            "EXPLAIN SELECT upper(name) FROM repro_settings() "
            "WHERE value <> 'x'").fetchall())
        assert "PROJECT [upper] [fusable]" in plan

    def test_explain_omits_marker_for_per_row_kernels(self, con):
        plan = "\n".join(row[0] for row in con.execute(
            "EXPLAIN SELECT substr(name, 1, 2) FROM repro_settings() "
            "WHERE value <> 'x'").fetchall())
        assert "[fusable]" not in plan
