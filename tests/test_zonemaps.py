"""Zonemap scan-skipping tests (paper §6: "skip irrelevant blocks of rows").

Correctness is the hard part: skipping must never change results, including
under concurrent updates (MVCC snapshots) and after rollbacks.
"""

import numpy as np
import pytest

import repro
from repro.execution.physical import ExecutionContext
from repro.execution.physical_planner import create_physical_plan
from repro.optimizer import optimize
from repro.planner.binder import Binder
from repro.sql import parse_one


def run_with_stats(con, sql):
    """Execute a query returning (rows, stats dict)."""
    transaction = con.database.transaction_manager.begin()
    try:
        binder = Binder(con.database.catalog, transaction)
        bound = binder.bind_statement(parse_one(sql))
        plan = optimize(bound.plan)
        context = ExecutionContext(transaction, con.database)
        physical = create_physical_plan(plan, context)
        rows = [row for chunk in physical.execute() for row in chunk.to_rows()]
        return rows, context.stats
    finally:
        con.database.transaction_manager.rollback(transaction)


@pytest.fixture
def clustered(con):
    """A table whose column t is clustered (sorted), ideal for zonemaps."""
    con.execute("CREATE TABLE ts (t INTEGER, v INTEGER)")
    n = 200_000
    with con.appender("ts") as appender:
        appender.append_numpy({
            "t": np.arange(n, dtype=np.int32),
            "v": (np.arange(n) % 97).astype(np.int32),
        })
    return con


class TestSkipping:
    def test_range_query_skips_zones(self, clustered):
        sql = "SELECT count(*) FROM ts WHERE t >= 150000 AND t < 151000"
        rows, _ = run_with_stats(clustered, sql)   # warms the zone cache
        rows, stats = run_with_stats(clustered, sql)
        assert rows == [(1000,)]
        assert stats.get("zones_skipped", 0) > 0
        assert stats["rows_scanned"] < 200_000 / 2

    def test_equality_skips(self, clustered):
        rows, _ = run_with_stats(clustered, "SELECT v FROM ts WHERE t = 123456")
        rows, stats = run_with_stats(clustered,
                                     "SELECT v FROM ts WHERE t = 123456")
        assert rows == [(123456 % 97,)]
        assert stats.get("zones_skipped", 0) > 0

    def test_no_match_skips_everything(self, clustered):
        rows, _ = run_with_stats(clustered,
                                 "SELECT t FROM ts WHERE t > 10000000")
        rows, stats = run_with_stats(clustered,
                                     "SELECT t FROM ts WHERE t > 10000000")
        assert rows == []
        assert stats.get("rows_scanned", 0) == 0

    def test_unclustered_column_no_false_skips(self, clustered):
        # v cycles 0..96 in every zone: nothing can be skipped, and nothing
        # may be missed.
        rows, stats = run_with_stats(clustered,
                                     "SELECT count(*) FROM ts WHERE v = 5")
        assert rows == [(200_000 // 97 + (1 if 5 < 200_000 % 97 else 0),)]

    def test_explain_shows_zonemap(self, clustered):
        lines = clustered.execute(
            "EXPLAIN SELECT t FROM ts WHERE t < 10").fetchall()
        text = "\n".join(row[0] for row in lines)
        assert "zonemap=" in text

    def test_results_identical_with_and_without(self, clustered):
        sql = ("SELECT sum(v) FROM ts WHERE t BETWEEN 77777 AND 99999")
        expected = clustered.query_value(sql)
        # Disable zonemaps by clearing conditions: compare against a plain
        # Python check.
        t = np.arange(200_000)
        v = t % 97
        mask = (t >= 77777) & (t <= 99999)
        assert expected == int(v[mask].sum())


class TestMVCCSafety:
    def test_update_disables_zone_skipping(self, clustered):
        """Live undo entries must disable zonemaps: an old snapshot may need
        pre-image values outside the current bounds."""
        reader = clustered.duplicate()
        reader.execute("BEGIN")
        before = reader.query_value(
            "SELECT count(*) FROM ts WHERE t >= 199999")
        assert before == 1
        # Writer moves a low row into the queried range.
        clustered.execute("UPDATE ts SET t = 500000 WHERE t = 0")
        # The reader's snapshot still has t=0; it must NOT see 500000, and
        # must still see exactly one row >= 199999.
        assert reader.query_value(
            "SELECT count(*) FROM ts WHERE t >= 199999") == 1
        assert reader.query_value(
            "SELECT count(*) FROM ts WHERE t = 0") == 1
        reader.execute("COMMIT")
        # After the snapshot advances the new value is visible.
        assert reader.query_value(
            "SELECT count(*) FROM ts WHERE t = 500000") == 1
        reader.close()

    def test_zone_cache_invalidated_by_update(self, clustered):
        sql = "SELECT count(*) FROM ts WHERE t >= 190000"
        run_with_stats(clustered, sql)  # build zone cache
        clustered.execute("UPDATE ts SET t = 190001 WHERE t = 5")
        # Undo entries are still alive until vacuum; correctness first.
        assert clustered.query_value(sql) == 10_001

    def test_rollback_keeps_results_correct(self, clustered):
        sql = "SELECT count(*) FROM ts WHERE t >= 190000"
        assert clustered.query_value(sql) == 10_000
        clustered.execute("BEGIN")
        clustered.execute("UPDATE ts SET t = 195000 WHERE t = 1")
        clustered.execute("ROLLBACK")
        run_with_stats(clustered, sql)
        assert clustered.query_value(sql) == 10_000

    def test_inserted_rows_extend_zones(self, clustered):
        sql = "SELECT count(*) FROM ts WHERE t > 300000"
        run_with_stats(clustered, sql)  # warm cache: nothing matches yet
        clustered.execute("INSERT INTO ts VALUES (400000, 1)")
        assert clustered.query_value(sql) == 1

    def test_deleted_rows_still_conservative(self, clustered):
        clustered.execute("DELETE FROM ts WHERE t >= 100000")
        assert clustered.query_value(
            "SELECT count(*) FROM ts WHERE t >= 100000") == 0
        assert clustered.query_value("SELECT count(*) FROM ts") == 100_000


class TestZoneBounds:
    def test_bounds_computed(self, clustered):
        transaction = clustered.database.transaction_manager.begin()
        table = clustered.database.catalog.get_table("ts", transaction)
        bounds = table.data.columns[0].zone_bounds(0, 16384)
        assert bounds == (0, 16383)
        clustered.database.transaction_manager.rollback(transaction)

    def test_varchar_has_no_zones(self, con):
        con.execute("CREATE TABLE s (x VARCHAR)")
        con.execute("INSERT INTO s VALUES ('a'), ('b')")
        transaction = con.database.transaction_manager.begin()
        table = con.database.catalog.get_table("s", transaction)
        assert table.data.columns[0].zone_bounds(0, 2) is None
        con.database.transaction_manager.rollback(transaction)

    def test_undo_entries_disable_bounds(self, clustered):
        writer = clustered.duplicate()
        writer.execute("BEGIN")
        writer.execute("UPDATE ts SET t = 999 WHERE t = 10")
        transaction = clustered.database.transaction_manager.begin()
        table = clustered.database.catalog.get_table("ts", transaction)
        assert table.data.columns[0].zone_bounds(0, 16384) is None
        clustered.database.transaction_manager.rollback(transaction)
        writer.execute("ROLLBACK")
        writer.close()

    def test_cache_keyed_on_full_window(self, con):
        """Regression: the zone cache must key on (start, end), not start
        alone -- a cached narrow window must never answer a wider one."""
        con.execute("CREATE TABLE g (x INTEGER)")
        con.execute("INSERT INTO g VALUES (1), (2), (3)")
        transaction = con.database.transaction_manager.begin()
        column = con.database.catalog.get_table("g", transaction).data.columns[0]
        assert column.zone_bounds(0, 2) == (1, 2)
        # Same start, wider end: must see row 3, not the cached (1, 2).
        assert column.zone_bounds(0, 3) == (1, 3)
        con.database.transaction_manager.rollback(transaction)

    def test_append_into_tail_segment_then_filter(self, con):
        """Regression for the stale-tail-cache bug: grow the tail segment
        after its bounds were cached, then filter on the new rows."""
        con.execute("CREATE TABLE g (x INTEGER)")
        con.executemany("INSERT INTO g VALUES (?)", [(i,) for i in range(100)])
        sql = "SELECT count(*) FROM g WHERE x >= 100"
        run_with_stats(con, sql)  # caches the tail segment's bounds
        assert con.query_value(sql) == 0
        con.execute("INSERT INTO g VALUES (500)")  # same tail segment
        assert con.query_value(sql) == 1
        assert con.query_value("SELECT count(*) FROM g WHERE x = 500") == 1


class TestChurnCorrectness:
    """Zone-map pruning must match an unpruned scan under churn."""

    def _unpruned(self, con, sql):
        from repro.storage.table_data import ColumnData

        original = ColumnData.zone_bounds
        ColumnData.zone_bounds = lambda self, start, end: None
        try:
            rows, _ = run_with_stats(con, sql)
        finally:
            ColumnData.zone_bounds = original
        return rows

    def _assert_matches_unpruned(self, con, sql):
        pruned, _ = run_with_stats(con, sql)
        assert sorted(pruned) == sorted(self._unpruned(con, sql))
        return pruned

    def test_equality_and_range_after_update(self, clustered):
        clustered.execute("UPDATE ts SET t = 300000 WHERE t < 10")
        for sql in ("SELECT v FROM ts WHERE t = 300000",
                    "SELECT count(*) FROM ts WHERE t >= 250000",
                    "SELECT count(*) FROM ts WHERE t < 10"):
            self._assert_matches_unpruned(clustered, sql)
        assert clustered.query_value(
            "SELECT count(*) FROM ts WHERE t = 300000") == 10
        assert clustered.query_value(
            "SELECT count(*) FROM ts WHERE t < 10") == 0

    def test_after_delete_and_compact(self, clustered):
        clustered.execute("DELETE FROM ts WHERE t BETWEEN 50000 AND 149999")
        transaction = clustered.database.transaction_manager.begin()
        table = clustered.database.catalog.get_table("ts", transaction)
        mask = table.data.visible_mask(transaction, 0, table.data.row_count)
        clustered.database.transaction_manager.rollback(transaction)
        table.data.compact(mask)
        for sql in ("SELECT count(*) FROM ts WHERE t >= 100000",
                    "SELECT count(*) FROM ts WHERE t = 49999",
                    "SELECT count(*) FROM ts WHERE t = 100000"):
            self._assert_matches_unpruned(clustered, sql)
        assert clustered.query_value("SELECT count(*) FROM ts") == 100_000

    def test_float_constant_against_integer_column(self, clustered):
        for sql in ("SELECT count(*) FROM ts WHERE t > 199998.5",
                    "SELECT count(*) FROM ts WHERE t < 0.5",
                    "SELECT count(*) FROM ts WHERE t = 1000.0"):
            self._assert_matches_unpruned(clustered, sql)
        assert clustered.query_value(
            "SELECT count(*) FROM ts WHERE t > 199998.5") == 1

    def test_temporal_constants_prune_correctly(self, con):
        con.execute("CREATE TABLE ev (d DATE, at TIMESTAMP)")
        con.executemany(
            "INSERT INTO ev VALUES (?, ?)",
            [(f"2024-{month:02d}-01", f"2024-{month:02d}-01 12:00:00")
             for month in range(1, 13)])
        for sql in ("SELECT count(*) FROM ev WHERE d >= "
                    "CAST('2024-06-01' AS DATE)",
                    "SELECT count(*) FROM ev WHERE at < "
                    "CAST('2024-03-01 00:00:00' AS TIMESTAMP)"):
            self._assert_matches_unpruned(con, sql)
        assert con.query_value(
            "SELECT count(*) FROM ev WHERE d >= "
            "CAST('2024-06-01' AS DATE)") == 7
