"""Concurrency hammering of the telemetry surfaces (ISSUE 5 satellite).

MetricsRegistry, Tracer, and the introspection snapshot providers are all
read and written from parallel morsel workers plus arbitrary application
threads; these tests drive them hard from many threads at once.  Under
``REPRO_SANITIZE=1`` the whole suite doubles as a quacksan gate (see
``conftest.py``): any lock-order inversion or hold-time anomaly recorded
while these tests run fails the session, and the explicit checks below
assert no violations were recorded *by these workloads* either way.
"""

import threading

import numpy as np
import pytest

import repro
from repro import observability as obs
from repro import sanitizer
from repro.introspection.flight import FlightRecorder
from repro.introspection.profiler import SamplingProfiler
from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import Tracer

THREADS = 8
ITERATIONS = 300


def _hammer(worker, threads=THREADS):
    """Run ``worker(index)`` on several threads; re-raise the first error."""
    errors = []
    barrier = threading.Barrier(threads)

    def run(index):
        barrier.wait()
        try:
            worker(index)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)
            raise

    pool = [threading.Thread(target=run, args=(index,))
            for index in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    if errors:
        raise errors[0]


def _sanitizer_violations():
    if not sanitizer.enabled():
        return []
    return sanitizer.lock_order_reports() + sanitizer.race_reports()


class TestMetricsRegistryHammer:
    def test_parallel_counters_lose_no_increments(self):
        registry = MetricsRegistry()

        def worker(index):
            counter = registry.counter("hammer_total", "test")
            gauge = registry.gauge("hammer_gauge", "test")
            histogram = registry.histogram("hammer_seconds", "test")
            for step in range(ITERATIONS):
                counter.inc()
                gauge.set(float(step))
                histogram.observe(step / 1000.0)
                registry.snapshot()

        _hammer(worker)
        snapshot = registry.snapshot()
        assert snapshot["hammer_total"] == THREADS * ITERATIONS
        assert registry.render_text()
        assert _sanitizer_violations() == []


class TestTracerHammer:
    def test_parallel_span_trees_stay_consistent(self):
        tracer = Tracer()

        def worker(index):
            for step in range(ITERATIONS):
                root = tracer.start_query(f"q-{index}-{step}")
                with tracer.span("child", kind="operator"):
                    pass
                tracer.finish_query(root, 1000, 1000)

        _hammer(worker)
        spans = tracer.sink.spans()
        assert spans
        # Every span closed; children link to a root of their own thread.
        assert all(span.closed for span in spans)
        roots = [span for span in spans if span.kind == "query"]
        by_id = {span.span_id: span for span in spans}
        for span in spans:
            if span.parent_id:
                assert by_id[span.parent_id].thread_ident \
                    == span.thread_ident
        assert len(roots) <= len(spans)
        assert _sanitizer_violations() == []


class TestIntrospectionHammer:
    def test_snapshots_under_parallel_morsel_load(self):
        con = repro.connect(config={"threads": 4, "morsel_size": 4096})
        try:
            con.execute("CREATE TABLE big (g INTEGER, v INTEGER)")
            index = np.arange(200_000)
            with con.appender("big") as appender:
                appender.append_numpy({
                    "g": (index % 17).astype(np.int32),
                    "v": index.astype(np.int32),
                })
            stop = threading.Event()
            errors = []

            def churn():
                # Parallel morsel aggregation keeps worker threads busy
                # while snapshots race against them.
                worker_con = con._database.connect()
                try:
                    while not stop.is_set():
                        worker_con.execute(
                            "SELECT g, count(*), sum(v) FROM big GROUP BY g"
                        ).fetchall()
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                finally:
                    worker_con.close()

            churners = [threading.Thread(target=churn) for _ in range(2)]
            for thread in churners:
                thread.start()
            try:
                def snapshotter(index):
                    snap_con = con._database.connect()
                    try:
                        for _ in range(40):
                            for fn in ("repro_metrics", "repro_tables",
                                       "repro_transactions", "repro_locks",
                                       "repro_storage", "repro_settings"):
                                snap_con.execute(
                                    f"SELECT count(*) FROM {fn}()"
                                ).fetchall()
                    finally:
                        snap_con.close()

                _hammer(snapshotter, threads=4)
            finally:
                stop.set()
                for thread in churners:
                    thread.join()
            assert errors == []
            assert _sanitizer_violations() == []
        finally:
            con.close()

    def test_flight_ring_and_profiler_race_free(self):
        recorder = FlightRecorder()
        profiler = SamplingProfiler()

        def worker(index):
            for step in range(ITERATIONS):
                recorder.record_statement(f"SELECT {index}", 0.1, step)
                recorder.statements()
                profiler.sample_once()
                profiler.snapshot()

        _hammer(worker, threads=4)
        assert len(recorder.statements()) > 0
        assert profiler.total_samples == 4 * ITERATIONS
        assert _sanitizer_violations() == []


@pytest.mark.skipif(not sanitizer.enabled(),
                    reason="needs REPRO_SANITIZE=1")
class TestSanitizerIntegration:
    def test_lock_statistics_visible_via_sql_after_hammer(self):
        con = repro.connect()
        try:
            con.execute("CREATE TABLE t (a INTEGER)")
            con.execute("INSERT INTO t VALUES (1)")
            rows = con.execute(
                "SELECT lock, acquisitions FROM repro_locks() "
                "WHERE acquisitions > 0").fetchall()
            names = {name for name, _ in rows}
            assert "transaction_manager" in names
        finally:
            con.close()
        assert _sanitizer_violations() == []
