"""The runtime conformance harness: fuzzing kernels against their manifest.

Two directions: the live registry must come back clean (every kernel
honours its committed contract under NULL-heavy, empty, and extreme
vectors), and deliberately broken kernels -- NULL leaks, input mutation,
dtype lies -- must be caught.  The second half is the harness's own test:
a fuzzer that passes everything proves nothing.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.analysis.kernelcheck import manifest_entries, run_conformance
from repro.functions.scalar import (
    SCALAR_FUNCTIONS,
    ScalarFunction,
    _bind_double_unary,
)
from repro.types import DOUBLE, Vector


@pytest.fixture(scope="module")
def manifest():
    return {fact.key: fact for fact in manifest_entries()}


class TestLiveRegistryConforms:
    def test_every_kernel_honours_its_contract(self):
        with np.errstate(all="ignore"):
            issues = run_conformance()
        assert issues == [], "\n".join(str(issue) for issue in issues)


class _SeededKernel:
    """Context manager registering a deliberately broken scalar kernel."""

    def __init__(self, name, execute):
        self.name = name
        self.execute = execute

    def __enter__(self):
        SCALAR_FUNCTIONS[self.name] = ScalarFunction(
            self.name, _bind_double_unary(self.name), self.execute)
        return self

    def __exit__(self, *exc_info):
        SCALAR_FUNCTIONS.pop(self.name, None)
        return False


def _issues_for(fact):
    with np.errstate(all="ignore"):
        return run_conformance([fact])


class TestSeededViolationsAreCaught:
    def _fact(self, manifest, name, **overrides):
        base = manifest["scalar:sqrt"]
        return replace(base, name=name,
                       signature=f"{name}(DOUBLE) -> DOUBLE", **overrides)

    def test_null_leak_is_caught(self, manifest):
        # Ignores validity entirely: NULL input lanes come out valid.
        # (Deterministic data, so only the NULL contract is broken.)
        def leaky(vectors, count):
            data = np.zeros(count, dtype=np.float64)
            valid = vectors[0].validity
            data[valid] = np.abs(vectors[0].data[valid])
            return Vector(DOUBLE, data, np.ones(count, dtype=np.bool_))

        with _SeededKernel("seeded_null_leak", leaky):
            fact = self._fact(manifest, "seeded_null_leak")
            issues = _issues_for(fact)
        assert any(issue.check == "null-propagation" for issue in issues), \
            [str(issue) for issue in issues]

    def test_garbage_leak_is_caught(self, manifest):
        # Result at *valid* lanes depends on poison planted at masked lanes.
        def summing(vectors, count):
            source = vectors[0]
            total = source.data.sum() if count else 0.0
            return Vector(DOUBLE, np.full(count, total, dtype=np.float64),
                          source.validity.copy())

        with _SeededKernel("seeded_garbage_leak", summing):
            fact = self._fact(manifest, "seeded_garbage_leak")
            issues = _issues_for(fact)
        assert any(issue.check == "garbage-independence"
                   for issue in issues), [str(issue) for issue in issues]

    def test_input_mutation_is_caught(self, manifest):
        def mutating(vectors, count):
            source = vectors[0]
            np.negative(source.data, out=source.data)
            return Vector(DOUBLE, source.data.copy(),
                          source.validity.copy())

        with _SeededKernel("seeded_mutator", mutating):
            fact = self._fact(manifest, "seeded_mutator")
            issues = _issues_for(fact)
        assert any(issue.check == "input-immutability"
                   for issue in issues), [str(issue) for issue in issues]

    def test_dtype_lie_is_caught(self, manifest):
        # Declares DOUBLE but hands back an object array.
        def lying(vectors, count):
            data = np.empty(count, dtype=object)
            data[:] = list(vectors[0].data)
            return Vector(DOUBLE, data, vectors[0].validity.copy())

        with _SeededKernel("seeded_dtype_lie", lying):
            fact = self._fact(manifest, "seeded_dtype_lie")
            issues = _issues_for(fact)
        assert any(issue.check == "dtype" for issue in issues), \
            [str(issue) for issue in issues]

    def test_crash_on_empty_input_is_caught(self, manifest):
        def brittle(vectors, count):
            source = vectors[0]
            peak = float(source.data.max())  # raises on empty vectors
            return Vector(DOUBLE, np.full(count, peak, dtype=np.float64),
                          source.validity.copy())

        with _SeededKernel("seeded_brittle", brittle):
            fact = self._fact(manifest, "seeded_brittle")
            issues = _issues_for(fact)
        assert any(issue.check == "crash" for issue in issues), \
            [str(issue) for issue in issues]

    def test_unregistered_manifest_entry_is_caught(self, manifest):
        fact = self._fact(manifest, "seeded_ghost")
        issues = _issues_for(fact)
        assert any(issue.check == "registry" for issue in issues)
