"""Tests for the single-file block format: headers, checksums, chains."""

import os
import struct

import pytest

from repro.errors import CorruptionError, StorageError
from repro.storage.block_file import (
    BLOCK_SIZE,
    BlockFile,
    INVALID_BLOCK,
    MetaBlockReader,
    MetaBlockWriter,
)


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "blocks.db")


class TestBlockIO:
    def test_write_read_round_trip(self, path):
        with BlockFile(path) as bf:
            block = bf.allocate_block()
            bf.write_block(block, b"hello blocks")
            assert bf.read_block(block) == b"hello blocks"

    def test_blocks_are_independent(self, path):
        with BlockFile(path) as bf:
            a = bf.allocate_block()
            b = bf.allocate_block()
            bf.write_block(a, b"A" * 100)
            bf.write_block(b, b"B" * 200)
            assert bf.read_block(a) == b"A" * 100
            assert bf.read_block(b) == b"B" * 200

    def test_max_payload(self, path):
        with BlockFile(path) as bf:
            block = bf.allocate_block()
            payload = b"x" * (BLOCK_SIZE - 8)
            bf.write_block(block, payload)
            assert bf.read_block(block) == payload

    def test_oversized_payload_rejected(self, path):
        with BlockFile(path) as bf:
            block = bf.allocate_block()
            with pytest.raises(StorageError):
                bf.write_block(block, b"x" * BLOCK_SIZE)

    def test_out_of_range_block(self, path):
        with BlockFile(path) as bf:
            with pytest.raises(StorageError):
                bf.read_block(5)

    def test_free_list_reuse(self, path):
        with BlockFile(path) as bf:
            a = bf.allocate_block()
            bf.free_block(a)
            b = bf.allocate_block()
            assert a == b

    def test_fresh_only_allocation_extends(self, path):
        with BlockFile(path) as bf:
            a = bf.allocate_block()
            bf.free_block(a)
            b = bf.allocate_block(fresh_only=True)
            assert b != a


class TestChecksums:
    def test_flipped_bit_detected(self, path):
        with BlockFile(path) as bf:
            block = bf.allocate_block()
            bf.write_block(block, b"precious data" * 100)
            bf.flush()
            offset = 2 * 4096 + block * BLOCK_SIZE + 8 + 50
        with open(path, "r+b") as handle:
            handle.seek(offset)
            byte = handle.read(1)
            handle.seek(offset)
            handle.write(bytes([byte[0] ^ 0x04]))
        with BlockFile(path) as bf:
            with pytest.raises(CorruptionError):
                bf.read_block(block)

    def test_verification_can_be_disabled(self, path):
        with BlockFile(path) as bf:
            block = bf.allocate_block()
            bf.write_block(block, b"data" * 100)
            bf.flush()
        offset = 2 * 4096 + block * BLOCK_SIZE + 8 + 2
        with open(path, "r+b") as handle:
            handle.seek(offset)
            handle.write(b"\xff")
        bf = BlockFile(path, verify_checksums=False)
        bf.read_block(block)  # silent corruption passes through
        bf.close()

    def test_error_names_the_block(self, path):
        with BlockFile(path) as bf:
            block = bf.allocate_block()
            bf.write_block(block, b"abc")
            bf.flush()
        offset = 2 * 4096 + block * BLOCK_SIZE + 9
        with open(path, "r+b") as handle:
            handle.seek(offset)
            handle.write(b"Z")
        with BlockFile(path) as bf:
            with pytest.raises(CorruptionError, match=f"block {block}"):
                bf.read_block(block)


class TestHeaders:
    def test_header_flip_survives_reopen(self, path):
        with BlockFile(path) as bf:
            block = bf.allocate_block()
            bf.write_block(block, b"root data")
            bf.flip_header(block)
        with BlockFile(path) as bf:
            assert bf.root_block == block
            assert bf.read_block(block) == b"root data"

    def test_epoch_increments(self, path):
        with BlockFile(path) as bf:
            first = bf.epoch
            bf.flip_header(INVALID_BLOCK)
            bf.flip_header(INVALID_BLOCK)
            assert bf.epoch == first + 2

    def test_corrupt_one_header_slot_falls_back(self, path):
        with BlockFile(path) as bf:
            block = bf.allocate_block()
            bf.write_block(block, b"x")
            bf.flip_header(block)
            current_epoch = bf.epoch
        # Corrupt the slot the *next* flip would use -- i.e. the stale one.
        stale_slot = (current_epoch + 1) % 2
        with open(path, "r+b") as handle:
            handle.seek(stale_slot * 4096)
            handle.write(b"\x00" * 64)
        with BlockFile(path) as bf:
            assert bf.root_block == block

    def test_corrupt_both_headers_fails(self, path):
        BlockFile(path).close()
        with open(path, "r+b") as handle:
            handle.write(b"\x00" * 8192)
        with pytest.raises(CorruptionError):
            BlockFile(path)

    def test_torn_header_write_keeps_previous(self, path):
        """Simulates a crash mid-header-write: old checkpoint must win."""
        with BlockFile(path) as bf:
            block_a = bf.allocate_block()
            bf.write_block(block_a, b"A")
            bf.flip_header(block_a)
            good_epoch = bf.epoch
            # Next flip goes to slot (good_epoch+1) % 2; simulate a torn write
            # there by scribbling garbage (bad CRC).
            torn_slot = (good_epoch + 1) % 2
        with open(path, "r+b") as handle:
            handle.seek(torn_slot * 4096)
            handle.write(os.urandom(64))
        with BlockFile(path) as bf:
            assert bf.epoch == good_epoch
            assert bf.root_block == block_a


class TestMetaBlockChains:
    def test_small_payload(self, path):
        with BlockFile(path) as bf:
            writer = MetaBlockWriter(bf)
            writer.write(b"tiny")
            head = writer.finalize()
            reader = MetaBlockReader(bf, head)
            assert reader.data == b"tiny"
            assert len(writer.written_blocks) == 1

    def test_multi_block_payload(self, path):
        payload = os.urandom(BLOCK_SIZE * 3)
        with BlockFile(path) as bf:
            writer = MetaBlockWriter(bf)
            writer.write(payload)
            head = writer.finalize()
            assert len(writer.written_blocks) >= 3
            reader = MetaBlockReader(bf, head)
            assert reader.data == payload
            assert sorted(reader.blocks_read) == sorted(writer.written_blocks)

    def test_empty_payload(self, path):
        with BlockFile(path) as bf:
            writer = MetaBlockWriter(bf)
            head = writer.finalize()
            assert MetaBlockReader(bf, head).data == b""

    def test_reader_read_api(self, path):
        with BlockFile(path) as bf:
            writer = MetaBlockWriter(bf)
            writer.write(b"abcdef")
            head = writer.finalize()
            reader = MetaBlockReader(bf, head)
            assert reader.read(3) == b"abc"
            assert reader.remaining() == 3
            with pytest.raises(CorruptionError):
                reader.read(10)

    def test_cycle_detection(self, path):
        with BlockFile(path) as bf:
            block = bf.allocate_block()
            # A block whose next pointer is itself.
            bf.write_block(block, struct.pack("<q", block) + b"loop")
            with pytest.raises(CorruptionError):
                MetaBlockReader(bf, block)
