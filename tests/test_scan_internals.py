"""Unit tests for scan internals: zone-condition extraction, probe batching."""

import datetime

import numpy as np
import pytest

from repro.execution.joins import _batched
from repro.execution.scan import _extract_zone_conditions
from repro.planner.expressions import (
    BoundColumnRef,
    BoundConstant,
    BoundOperator,
)
from repro.types import (
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    TIMESTAMP,
    VARCHAR,
    DataChunk,
    Vector,
)
from repro.types.logical import date_to_days, timestamp_to_micros


def column(position=0, dtype=INTEGER):
    return BoundColumnRef(position, dtype, "c")


def constant(value, dtype=INTEGER):
    return BoundConstant(value, dtype)


def comparison(op, left, right):
    return BoundOperator(op, [left, right], BOOLEAN)


class TestZoneConditionExtraction:
    def test_simple_comparison(self):
        conditions = _extract_zone_conditions(
            [comparison("<", column(), constant(10))], [3])
        assert conditions == [(3, "<", 10)]

    def test_reversed_operands_flip_operator(self):
        conditions = _extract_zone_conditions(
            [comparison("<", constant(10), column())], [0])
        assert conditions == [(0, ">", 10)]

    def test_equality_both_directions(self):
        forward = _extract_zone_conditions(
            [comparison("=", column(), constant(5))], [0])
        backward = _extract_zone_conditions(
            [comparison("=", constant(5), column())], [0])
        assert forward == backward == [(0, "=", 5)]

    def test_column_ids_remapped(self):
        conditions = _extract_zone_conditions(
            [comparison(">=", column(position=1), constant(7))], [4, 9])
        assert conditions == [(9, ">=", 7)]

    def test_string_constants_ignored(self):
        conditions = _extract_zone_conditions(
            [comparison("=", column(dtype=VARCHAR), constant("x", VARCHAR))],
            [0])
        assert conditions == []

    def test_null_constants_ignored(self):
        conditions = _extract_zone_conditions(
            [comparison("=", column(), constant(None))], [0])
        assert conditions == []

    def test_column_vs_column_ignored(self):
        conditions = _extract_zone_conditions(
            [comparison("<", column(0), column(1))], [0, 1])
        assert conditions == []

    def test_date_constant_converted_to_days(self):
        day = datetime.date(2021, 6, 1)
        conditions = _extract_zone_conditions(
            [comparison(">", column(dtype=DATE), constant(day, DATE))], [0])
        assert conditions == [(0, ">", date_to_days(day))]

    def test_timestamp_constant_converted_to_micros(self):
        moment = datetime.datetime(2021, 6, 1, 12)
        conditions = _extract_zone_conditions(
            [comparison("<=", column(dtype=TIMESTAMP),
                        constant(moment, TIMESTAMP))], [0])
        assert conditions == [(0, "<=", timestamp_to_micros(moment))]

    def test_non_comparison_ignored(self):
        conditions = _extract_zone_conditions(
            [BoundOperator("and", [constant(True, BOOLEAN),
                                   constant(True, BOOLEAN)], BOOLEAN)], [0])
        assert conditions == []

    def test_float_constant_kept(self):
        conditions = _extract_zone_conditions(
            [comparison(">", column(dtype=DOUBLE), constant(1.5, DOUBLE))],
            [0])
        assert conditions == [(0, ">", 1.5)]


class TestProbeBatching:
    def chunks(self, sizes):
        for size in sizes:
            yield DataChunk([Vector.from_values(list(range(size)), INTEGER)])

    def test_coalesces_small_chunks(self):
        batches = list(_batched(self.chunks([100] * 10), batch_rows=500))
        assert [batch.size for batch in batches] == [500, 500]

    def test_passes_large_chunks_through(self):
        batches = list(_batched(self.chunks([800]), batch_rows=500))
        assert [batch.size for batch in batches] == [800]

    def test_trailing_remainder_flushed(self):
        batches = list(_batched(self.chunks([300, 300, 50]), batch_rows=500))
        assert [batch.size for batch in batches] == [600, 50]

    def test_skips_empty_chunks(self):
        batches = list(_batched(self.chunks([0, 10, 0]), batch_rows=500))
        assert [batch.size for batch in batches] == [10]

    def test_empty_stream(self):
        assert list(_batched(iter(()), batch_rows=10)) == []

    def test_data_preserved_in_order(self):
        batches = list(_batched(self.chunks([3, 3]), batch_rows=100))
        values = [value for batch in batches
                  for value in batch.columns[0].to_pylist()]
        assert values == [0, 1, 2, 0, 1, 2]
