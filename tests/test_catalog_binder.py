"""Catalog unit tests and binder name-resolution/typing edge cases."""

import pytest

import repro
from repro.catalog import Catalog, ColumnDefinition, TableEntry
from repro.errors import BinderError, CatalogError, TransactionConflict
from repro.storage.table_data import TableData
from repro.transaction import TransactionManager
from repro.types import INTEGER, VARCHAR


def make_table(name, columns=("a",)):
    definitions = [ColumnDefinition(column, INTEGER) for column in columns]
    data = TableData([INTEGER] * len(columns))
    return TableEntry(name, definitions, data, 0)


class TestCatalogUnit:
    def setup_method(self):
        self.manager = TransactionManager()
        self.catalog = Catalog()

    def test_create_and_lookup_case_insensitive(self):
        transaction = self.manager.begin()
        self.catalog.create_entry(make_table("MyTable"), transaction)
        self.manager.commit(transaction)
        reader = self.manager.begin()
        assert self.catalog.get_table("mytable", reader).name == "MyTable"
        assert self.catalog.get_table("MYTABLE", reader).name == "MyTable"

    def test_duplicate_create_rejected(self):
        transaction = self.manager.begin()
        self.catalog.create_entry(make_table("t"), transaction)
        with pytest.raises(CatalogError):
            self.catalog.create_entry(make_table("t"), transaction)

    def test_if_not_exists_suppresses(self):
        transaction = self.manager.begin()
        assert self.catalog.create_entry(make_table("t"), transaction)
        assert not self.catalog.create_entry(make_table("t"), transaction,
                                             if_not_exists=True)

    def test_drop_missing_with_if_exists(self):
        transaction = self.manager.begin()
        assert not self.catalog.drop_entry("ghost", transaction, if_exists=True)
        with pytest.raises(CatalogError):
            self.catalog.drop_entry("ghost", transaction)

    def test_concurrent_drop_conflicts(self):
        setup = self.manager.begin()
        self.catalog.create_entry(make_table("t"), setup)
        self.manager.commit(setup)
        first = self.manager.begin()
        second = self.manager.begin()
        self.catalog.drop_entry("t", first)
        with pytest.raises(TransactionConflict):
            self.catalog.drop_entry("t", second)
        self.manager.rollback(first)
        self.manager.rollback(second)

    def test_prune_removes_dead_versions(self):
        transaction = self.manager.begin()
        self.catalog.create_entry(make_table("t"), transaction)
        self.manager.commit(transaction)
        dropper = self.manager.begin()
        self.catalog.drop_entry("t", dropper)
        self.manager.commit(dropper)
        self.catalog.prune(self.manager.lowest_active_start())
        assert "t" not in self.catalog._entries

    def test_tables_iteration_sorted(self):
        transaction = self.manager.begin()
        for name in ("zebra", "alpha", "mid"):
            self.catalog.create_entry(make_table(name), transaction)
        names = [table.name for table in self.catalog.tables(transaction)]
        assert names == ["alpha", "mid", "zebra"]

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(CatalogError):
            make_table("t", ("a", "A"))

    def test_table_without_columns_rejected(self):
        with pytest.raises(CatalogError):
            TableEntry("t", [], TableData([]), 0)


class TestBinderResolution:
    def test_ambiguous_column(self, con):
        con.execute("CREATE TABLE a (x INTEGER)")
        con.execute("CREATE TABLE b (x INTEGER)")
        with pytest.raises(BinderError, match="ambiguous"):
            con.execute("SELECT x FROM a, b")

    def test_qualified_disambiguates(self, con):
        con.execute("CREATE TABLE a (x INTEGER)")
        con.execute("CREATE TABLE b (x INTEGER)")
        con.execute("INSERT INTO a VALUES (1)")
        con.execute("INSERT INTO b VALUES (2)")
        assert con.execute("SELECT a.x, b.x FROM a, b").fetchone() == (1, 2)

    def test_duplicate_alias_rejected(self, con):
        con.execute("CREATE TABLE t (x INTEGER)")
        with pytest.raises(BinderError, match="[Dd]uplicate"):
            con.execute("SELECT 1 FROM t one, t one")

    def test_alias_hides_table_name(self, con):
        con.execute("CREATE TABLE t (x INTEGER)")
        con.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(BinderError):
            con.execute("SELECT t.x FROM t renamed")
        assert con.query_value("SELECT renamed.x FROM t renamed") == 1

    def test_unknown_alias_qualifier(self, con):
        con.execute("CREATE TABLE t (x INTEGER)")
        with pytest.raises(BinderError):
            con.execute("SELECT ghost.x FROM t")

    def test_not_found_message_quotes_full_name(self, con):
        # Regression: the message used to render as "Column x.'i'" with the
        # quote around only the column part.
        con.execute("CREATE TABLE t (a INTEGER)")
        with pytest.raises(BinderError, match=r"Column 'x\.i' not found"):
            con.execute("SELECT x.i FROM t")
        with pytest.raises(BinderError, match=r"Column 'nope' not found"):
            con.execute("SELECT nope FROM t")

    def test_correlated_subquery_diagnosed(self, con):
        # A column that resolves only in the enclosing query's scope is a
        # correlated reference, not a missing column.
        con.execute("CREATE TABLE t (a INTEGER, b VARCHAR)")
        with pytest.raises(BinderError, match="correlated subqueries"):
            con.execute("SELECT a FROM t t1 WHERE a = "
                        "(SELECT max(a) FROM t t2 WHERE t2.b = t1.b)")
        with pytest.raises(BinderError, match="correlated subqueries"):
            con.execute("SELECT a FROM t WHERE EXISTS "
                        "(SELECT 1 FROM t u WHERE u.a = t.a AND u.b = b)")

    def test_uncorrelated_subquery_unknown_column_still_not_found(self, con):
        con.execute("CREATE TABLE t (a INTEGER)")
        with pytest.raises(BinderError, match="not found"):
            con.execute("SELECT a FROM t WHERE a IN (SELECT zz FROM t)")

    def test_using_column_missing(self, con):
        con.execute("CREATE TABLE a (x INTEGER)")
        con.execute("CREATE TABLE b (y INTEGER)")
        with pytest.raises(BinderError):
            con.execute("SELECT 1 FROM a JOIN b USING (x)")

    def test_select_star_with_qualifier(self, con):
        con.execute("CREATE TABLE a (x INTEGER)")
        con.execute("CREATE TABLE b (y VARCHAR)")
        con.execute("INSERT INTO a VALUES (1)")
        con.execute("INSERT INTO b VALUES ('s')")
        rows = con.execute("SELECT b.* FROM a, b").fetchall()
        assert rows == [("s",)]

    def test_star_of_unknown_table(self, con):
        con.execute("CREATE TABLE t (x INTEGER)")
        with pytest.raises(BinderError):
            con.execute("SELECT nope.* FROM t")

    def test_subquery_alias_columns(self, con):
        rows = con.execute(
            "SELECT renamed.a FROM (SELECT 1 AS x) AS renamed(a)").fetchall()
        assert rows == [(1,)]

    def test_subquery_alias_count_mismatch(self, con):
        with pytest.raises(BinderError):
            con.execute("SELECT 1 FROM (SELECT 1, 2) t(a)")


class TestBinderTyping:
    def test_incomparable_types(self, con):
        con.execute("CREATE TABLE t (s VARCHAR, i INTEGER)")
        with pytest.raises(BinderError):
            con.execute("SELECT 1 FROM t WHERE s = i")

    def test_arithmetic_on_strings_rejected(self, con):
        with pytest.raises(BinderError):
            con.execute("SELECT 'a' + 1")

    def test_where_must_be_boolean(self, populated):
        with pytest.raises(BinderError):
            populated.execute("SELECT 1 FROM sample WHERE i + 1")

    def test_case_incompatible_branches(self, con):
        with pytest.raises(BinderError):
            con.execute("SELECT CASE WHEN true THEN 1 ELSE 'x' END")

    def test_in_list_incompatible(self, con):
        with pytest.raises(BinderError):
            con.execute("SELECT 1 IN (1, 'x')")

    def test_not_requires_boolean(self, con):
        with pytest.raises(BinderError):
            con.execute("SELECT NOT 'text'")

    def test_unary_minus_requires_numeric(self, con):
        with pytest.raises(BinderError):
            con.execute("SELECT -'text'")

    def test_concat_coerces_via_common_type_only(self, con):
        # || requires VARCHAR-compatible operands; ints do not implicitly
        # become strings.
        with pytest.raises(BinderError):
            con.execute("SELECT 1 || 2")

    def test_null_literal_adapts(self, con):
        assert con.execute("SELECT NULL + 1").fetchvalue() is None
        assert con.execute("SELECT -NULL").fetchvalue() is None
        assert con.execute("SELECT NULL || 'x'").fetchvalue() is None

    def test_date_compares_with_timestamp(self, con):
        value = con.execute(
            "SELECT CAST('2020-01-01' AS DATE) < "
            "CAST('2020-01-01 10:00:00' AS TIMESTAMP)").fetchvalue()
        assert value is True
