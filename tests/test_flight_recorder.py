"""Crash flight recorder: statement ring, fault classification, JSON dumps.

ISSUE 5's resilience satellite: an embedded engine has no server log, so
when it faults the process must leave a self-contained JSON post-mortem
behind -- automatically on engine faults, on demand via
``PRAGMA flight_dump``.
"""

import json
import os

import pytest

import repro
from repro.errors import (
    BinderError,
    CatalogError,
    CorruptionError,
    InternalError,
    InvalidInputError,
)
from repro.execution.executor import Executor
from repro.introspection.flight import (
    DEFAULT_CAPACITY,
    FlightRecorder,
    MAX_SQL_CHARS,
    is_engine_fault,
)


class TestFaultClassification:
    def test_internal_and_corruption_are_faults(self):
        assert is_engine_fault(InternalError("x"))
        assert is_engine_fault(CorruptionError("x"))

    def test_user_errors_are_not_faults(self):
        assert not is_engine_fault(BinderError("x"))
        assert not is_engine_fault(CatalogError("x"))
        assert not is_engine_fault(InvalidInputError("x"))

    def test_foreign_exceptions_are_faults(self):
        # An escaping KeyError is by definition an engine bug.
        assert is_engine_fault(KeyError("x"))
        assert is_engine_fault(ZeroDivisionError())

    def test_interpreter_control_exceptions_are_not(self):
        assert not is_engine_fault(KeyboardInterrupt())
        assert not is_engine_fault(SystemExit())


class TestRing:
    def test_records_success_and_error(self):
        recorder = FlightRecorder()
        recorder.record_statement("SELECT 1", 1.5, 1)
        recorder.record_statement("SELECT broken", 0.2, 0,
                                  error=BinderError("no such column"))
        ok, bad = recorder.statements()
        assert ok["status"] == "ok" and ok["rows"] == 1
        assert bad["status"] == "error"
        assert "no such column" in bad["error"]

    def test_ring_is_bounded(self):
        recorder = FlightRecorder(capacity=4)
        for index in range(10):
            recorder.record_statement(f"SELECT {index}", 0.0, 0)
        statements = recorder.statements()
        assert len(statements) == 4
        assert statements[0]["sql"] == "SELECT 6"

    def test_sql_is_truncated(self):
        recorder = FlightRecorder()
        recorder.record_statement("SELECT " + "x" * 10000, 0.0, 0)
        (entry,) = recorder.statements()
        assert len(entry["sql"]) == MAX_SQL_CHARS

    def test_default_capacity(self):
        recorder = FlightRecorder()
        for index in range(DEFAULT_CAPACITY + 10):
            recorder.record_statement("SELECT 1", 0.0, 0)
        assert len(recorder.statements()) == DEFAULT_CAPACITY


class TestConnectionRecording:
    def test_statements_land_in_ring(self):
        con = repro.connect()
        try:
            con.execute("CREATE TABLE t (a INTEGER)")
            con.execute("INSERT INTO t VALUES (1), (2)")
            con.execute("SELECT * FROM t").fetchall()
            with pytest.raises(BinderError):
                con.execute("SELECT nope FROM t")
            statements = con._database.flight_recorder.statements()
            by_sql = {entry["sql"]: entry for entry in statements}
            assert by_sql["SELECT * FROM t"]["status"] == "ok"
            assert by_sql["SELECT * FROM t"]["rows"] == 2
            assert by_sql["SELECT nope FROM t"]["status"] == "error"
        finally:
            con.close()

    def test_user_error_does_not_dump(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        con = repro.connect()
        try:
            with pytest.raises(CatalogError):
                con.execute("SELECT * FROM missing_table")
        finally:
            con.close()
        assert list(tmp_path.glob("repro_flight_*.json")) == []


class TestDump:
    def test_pragma_flight_dump_writes_valid_json(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        con = repro.connect()
        try:
            con.execute("CREATE TABLE t (a INTEGER)")
            con.execute("INSERT INTO t VALUES (1)")
            (path,) = con.execute("PRAGMA flight_dump").fetchone()
            assert os.path.exists(path)
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
            assert payload["format"] == "repro-flight-recorder-v1"
            assert payload["pid"] == os.getpid()
            assert payload["reason"] == "PRAGMA flight_dump"
            sqls = [entry["sql"] for entry in payload["statements"]]
            assert "INSERT INTO t VALUES (1)" in sqls
            assert payload["config"]["memory_limit"] > 0
            assert "metric_deltas" in payload
        finally:
            con.close()

    def test_engine_fault_auto_dumps(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        con = repro.connect()
        try:
            con.execute("CREATE TABLE t (a INTEGER)")

            def boom(self, plan):
                raise InternalError("forced fault for test")

            # run_plan is the funnel every SELECT execution passes through
            # (both the plan-cache path and the legacy execute_select path).
            monkeypatch.setattr(Executor, "run_plan", boom)
            with pytest.raises(InternalError):
                con.execute("SELECT * FROM t")
            monkeypatch.undo()

            (dump,) = list(tmp_path.glob("repro_flight_*.json"))
            payload = json.loads(dump.read_text(encoding="utf-8"))
            assert payload["error"] == {
                "type": "InternalError",
                "message": "forced fault for test"}
            assert payload["reason"] == "engine fault: InternalError"
            last = payload["statements"][-1]
            assert last["sql"] == "SELECT * FROM t"
            assert last["status"] == "error"
            assert con._database.flight_recorder.dumps_written == 1
        finally:
            con.close()

    def test_persistent_database_dumps_beside_file(self, tmp_path):
        (tmp_path / "db").mkdir()
        con = repro.connect(str(tmp_path / "db" / "data.repro"))
        try:
            con.execute("CREATE TABLE t (a INTEGER)")
            (path,) = con.execute("PRAGMA flight_dump").fetchone()
            assert os.path.dirname(path) == str(tmp_path / "db")
        finally:
            con.close()

    def test_dump_failure_is_swallowed_on_fault_path(self, monkeypatch):
        recorder = FlightRecorder()

        def refuse(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr("builtins.open", refuse)
        assert recorder.try_dump(reason="test") is None
        assert recorder.dumps_written == 0

    def test_metric_deltas_since_creation(self):
        recorder = FlightRecorder()
        con = repro.connect()
        try:
            con.execute("SELECT 42").fetchall()
            deltas = recorder.metric_deltas()
            assert deltas.get("repro_queries_total", 0) >= 1
        finally:
            con.close()

    def test_spans_serialized_when_tracing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        con = repro.connect(config={"trace_enabled": True})
        try:
            con.execute("CREATE TABLE t (a INTEGER)")
            con.execute("SELECT * FROM t").fetchall()
            (path,) = con.execute("PRAGMA flight_dump").fetchone()
            payload = json.loads(open(path, encoding="utf-8").read())
            assert payload["spans"], "tracing was on; spans must be dumped"
            span_names = {span["name"] for span in payload["spans"]}
            assert "SELECT * FROM t" in span_names
        finally:
            con.close()
            from repro import observability as obs

            obs.disable_tracing()
