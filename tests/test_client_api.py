"""Client API tests: connection lifecycle, results, cursor, appender, protocol."""

import numpy as np
import pytest

import repro
from repro.client.protocol import (
    SocketProtocolClient,
    deserialize_result,
    serialize_result,
)
from repro.errors import ConnectionError as ClosedError
from repro.errors import InvalidInputError


class TestConnectionLifecycle:
    def test_context_manager(self):
        with repro.connect() as con:
            assert con.execute("SELECT 1").fetchvalue() == 1

    def test_closed_connection_rejects_execute(self):
        con = repro.connect()
        con.close()
        with pytest.raises(ClosedError):
            con.execute("SELECT 1")

    def test_double_close_is_fine(self):
        con = repro.connect()
        con.close()
        con.close()

    def test_duplicate_shares_database(self, populated):
        other = populated.duplicate()
        assert other.query_value("SELECT count(*) FROM sample") == 5
        other.close()
        # Closing a duplicate does not close the database.
        assert populated.query_value("SELECT count(*) FROM sample") == 5

    def test_owner_close_closes_database(self):
        con = repro.connect()
        other = con.duplicate()
        con.close()
        with pytest.raises(ClosedError):
            other.execute("SELECT 1")

    def test_open_transaction_rolled_back_on_close(self, db_path):
        con = repro.connect(db_path)
        con.execute("CREATE TABLE t (i INTEGER)")
        other = con.duplicate()
        other.execute("BEGIN")
        other.execute("INSERT INTO t VALUES (1)")
        other.close()  # implicit rollback
        assert con.query_value("SELECT count(*) FROM t") == 0
        con.close()

    def test_config_dict(self):
        con = repro.connect(config={"memory_limit": "64MB", "threads": 2})
        assert con.database.config.memory_limit == 64 * 10**6
        assert con.database.config.threads == 2
        con.close()

    def test_table_names(self, populated):
        assert populated.table_names() == ["sample"]


class TestResults:
    def test_fetchone_sequence(self, populated):
        result = populated.execute("SELECT i FROM sample ORDER BY i")
        assert result.fetchone() == (1,)
        assert result.fetchone() == (2,)
        rest = result.fetchall()
        assert rest == [(3,), (4,), (5,)]
        assert result.fetchone() is None

    def test_fetchmany(self, populated):
        result = populated.execute("SELECT i FROM sample ORDER BY i")
        assert result.fetchmany(2) == [(1,), (2,)]
        assert result.fetchmany(10) == [(3,), (4,), (5,)]

    def test_iteration(self, populated):
        result = populated.execute("SELECT i FROM sample ORDER BY i")
        assert [row[0] for row in result] == [1, 2, 3, 4, 5]

    def test_to_dict(self, populated):
        data = populated.execute(
            "SELECT i, s FROM sample WHERE i <= 2 ORDER BY i").to_dict()
        assert data == {"i": [1, 2], "s": ["alpha", "beta"]}

    def test_names_and_types(self, populated):
        result = populated.execute("SELECT i AS number, s AS tag FROM sample")
        assert result.names == ["number", "tag"]
        from repro.types import INTEGER, VARCHAR

        assert result.types == [INTEGER, VARCHAR]

    def test_fetch_numpy(self, populated):
        arrays = populated.execute(
            "SELECT i, d FROM sample ORDER BY i").fetch_numpy()
        np.testing.assert_array_equal(arrays["i"], [1, 2, 3, 4, 5])
        assert isinstance(arrays["d"], np.ma.MaskedArray)  # d has a NULL
        assert arrays["d"].mask.sum() == 1

    def test_fetch_numpy_empty_result(self, populated):
        arrays = populated.execute(
            "SELECT i FROM sample WHERE i > 100").fetch_numpy()
        assert len(arrays["i"]) == 0

    def test_fetchnumpy_deprecated_shim(self, populated):
        with pytest.warns(DeprecationWarning):
            arrays = populated.execute(
                "SELECT i FROM sample ORDER BY i").fetchnumpy()
        np.testing.assert_array_equal(arrays["i"], [1, 2, 3, 4, 5])

    def test_fetch_chunk_bulk_access(self, populated):
        result = populated.execute("SELECT i FROM sample")
        chunk = result.fetch_chunk()
        assert chunk.size == 5
        assert result.fetch_chunk() is None

    def test_rowcount_for_dml(self, populated):
        result = populated.execute("UPDATE sample SET d = 0 WHERE i <= 2")
        assert result.rowcount == 2
        result = populated.execute("DELETE FROM sample WHERE i = 5")
        assert result.rowcount == 1

    def test_closed_result_rejects_fetch(self, populated):
        result = populated.execute("SELECT i FROM sample")
        result.close()
        with pytest.raises(ClosedError):
            result.fetchall()

    def test_multi_statement_returns_last(self, con):
        result = con.execute("CREATE TABLE t (i INTEGER); "
                             "INSERT INTO t VALUES (1); SELECT i FROM t")
        assert result.fetchall() == [(1,)]


class TestStreaming:
    def test_streaming_result(self, populated):
        result = populated.execute("SELECT i FROM sample ORDER BY i",
                                   stream=True)
        assert result.fetchone() == (1,)
        result.close()

    def test_streaming_commits_on_exhaustion(self, populated):
        result = populated.execute("SELECT count(*) FROM sample", stream=True)
        assert result.fetchall() == [(5,)]
        # Transaction released; a checkpoint-requiring write still works.
        populated.execute("INSERT INTO sample VALUES (6, 'zeta', 0.0)")

    def test_streaming_dml_applies_on_close(self, populated):
        populated.execute("UPDATE sample SET d = 1", stream=True).close()
        assert populated.query_value("SELECT sum(d) FROM sample") == 5.0

    def test_executemany(self, con):
        con.execute("CREATE TABLE t (a INTEGER, b VARCHAR)")
        con.executemany("INSERT INTO t VALUES (?, ?)",
                        [(1, "x"), (2, "y"), (3, None)])
        assert con.query_value("SELECT count(*) FROM t") == 3


class TestCursor:
    def test_sqlite_style_stepping(self, populated):
        cursor = populated.cursor()
        cursor.execute("SELECT i, s FROM sample ORDER BY i")
        values = []
        while cursor.step():
            values.append((cursor.column_value(0), cursor.column_value(1)))
        assert values[0] == (1, "alpha")
        assert len(values) == 5
        cursor.finalize()

    def test_column_metadata(self, populated):
        cursor = populated.cursor()
        cursor.execute("SELECT i AS num FROM sample")
        assert cursor.column_count() == 1
        assert cursor.column_name(0) == "num"
        assert cursor.description[0][0] == "num"

    def test_dbapi_fetch(self, populated):
        with populated.cursor() as cursor:
            cursor.execute("SELECT i FROM sample ORDER BY i")
            assert cursor.fetchone() == (1,)
            assert len(cursor.fetchall()) == 4

    def test_step_before_execute(self, populated):
        with pytest.raises(InvalidInputError):
            populated.cursor().step()


class TestAppender:
    def test_append_rows(self, con):
        con.execute("CREATE TABLE t (i INTEGER, s VARCHAR)")
        with con.appender("t") as appender:
            for index in range(100):
                appender.append_row(index, f"row{index}")
        assert con.query_value("SELECT count(*) FROM t") == 100

    def test_abort_discards(self, con):
        con.execute("CREATE TABLE t (i INTEGER)")
        appender = con.appender("t")
        appender.append_row(1)
        appender.abort()
        assert con.query_value("SELECT count(*) FROM t") == 0

    def test_exception_aborts(self, con):
        con.execute("CREATE TABLE t (i INTEGER)")
        with pytest.raises(RuntimeError):
            with con.appender("t") as appender:
                appender.append_row(1)
                raise RuntimeError("boom")
        assert con.query_value("SELECT count(*) FROM t") == 0

    def test_wrong_arity(self, con):
        con.execute("CREATE TABLE t (i INTEGER, s VARCHAR)")
        with pytest.raises(InvalidInputError):
            con.appender("t").append_row(1)

    def test_not_null_enforced(self, con):
        con.execute("CREATE TABLE t (i INTEGER NOT NULL)")
        appender = con.appender("t")
        appender.append_row(None)
        with pytest.raises(repro.ConstraintError):
            appender.flush()
        appender.abort()

    def test_append_numpy_type_coercion(self, con):
        con.execute("CREATE TABLE t (i INTEGER, d DOUBLE)")
        with con.appender("t") as appender:
            appender.append_numpy({
                "i": np.arange(10, dtype=np.int64),  # narrowed to int32
                "d": np.arange(10, dtype=np.float32),
            })
        assert con.query_value("SELECT sum(i) FROM t") == 45

    def test_append_numpy_with_validity(self, con):
        con.execute("CREATE TABLE t (i INTEGER)")
        with con.appender("t") as appender:
            appender.append_numpy(
                {"i": np.arange(4, dtype=np.int32)},
                validities={"i": np.array([True, False, True, False])})
        assert con.query_value("SELECT count(i) FROM t") == 2

    def test_missing_column_rejected(self, con):
        con.execute("CREATE TABLE t (i INTEGER, s VARCHAR)")
        with pytest.raises(InvalidInputError):
            with con.appender("t") as appender:
                appender.append_numpy({"i": np.arange(3, dtype=np.int32)})


class TestSocketProtocol:
    def test_round_trip(self, populated):
        client = SocketProtocolClient(populated)
        rows, stats = client.execute("SELECT i, s, d FROM sample ORDER BY i")
        direct = populated.execute("SELECT i, s, d FROM sample ORDER BY i"
                                   ).fetchall()
        assert rows == direct
        assert stats["bytes_transferred"] > 0
        assert stats["simulated_wire_seconds"] > 0

    def test_wire_time_scales_with_bandwidth(self, populated):
        fast = SocketProtocolClient(populated, bandwidth=10**9, latency=0)
        slow = SocketProtocolClient(populated, bandwidth=10**6, latency=0)
        _, fast_stats = fast.execute("SELECT i FROM sample")
        _, slow_stats = slow.execute("SELECT i FROM sample")
        assert slow_stats["simulated_wire_seconds"] > \
            fast_stats["simulated_wire_seconds"] * 100

    def test_serialize_handles_all_types(self, con):
        con.execute("CREATE TABLE t (b BOOLEAN, i BIGINT, d DOUBLE, "
                    "s VARCHAR, dt DATE, ts TIMESTAMP)")
        con.execute("INSERT INTO t VALUES (true, 42, 1.5, 'hi', "
                    "CAST('2020-01-01' AS DATE), "
                    "CAST('2020-01-01 12:00:00' AS TIMESTAMP)), "
                    "(NULL, NULL, NULL, NULL, NULL, NULL)")
        client = SocketProtocolClient(con)
        rows, _ = client.execute("SELECT * FROM t")
        assert rows == con.execute("SELECT * FROM t").fetchall()


class TestPragmas:
    def test_set_and_read_option(self, con):
        con.execute("PRAGMA memory_limit='128MB'")
        value = con.execute("PRAGMA memory_limit").fetchvalue()
        assert value == str(128 * 10**6)

    def test_unknown_pragma(self, con):
        with pytest.raises(InvalidInputError):
            con.execute("PRAGMA frobnicate=1")

    def test_database_size(self, file_con):
        file_con.execute("CREATE TABLE t (i INTEGER)")
        file_con.execute("INSERT INTO t VALUES (1)")
        file_con.execute("CHECKPOINT")
        assert file_con.execute("PRAGMA database_size").fetchvalue() > 0

    def test_memory_usage_pragma(self, populated):
        assert populated.execute("PRAGMA memory_usage").fetchvalue() > 0

    def test_show_tables(self, populated):
        assert populated.execute("PRAGMA show_tables").fetchall() == [("sample",)]

    def test_table_info(self, populated):
        lines = [row[0] for row in
                 populated.execute("PRAGMA table_info(sample)").fetchall()]
        assert lines[0].startswith("i INTEGER")
