"""Tests for Vector and DataChunk."""

import datetime

import numpy as np
import pytest

from repro.errors import ConversionError, InternalError
from repro.types import (
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    SQLNULL,
    TIMESTAMP,
    VARCHAR,
    DataChunk,
    VECTOR_SIZE,
    Vector,
)


class TestVectorConstruction:
    def test_from_values_infers_type(self):
        vector = Vector.from_values([1, 2, 3])
        assert vector.dtype == INTEGER
        assert vector.to_pylist() == [1, 2, 3]

    def test_from_values_with_nulls(self):
        vector = Vector.from_values([1, None, 3])
        assert vector.null_count() == 1
        assert vector.to_pylist() == [1, None, 3]

    def test_from_values_all_null(self):
        vector = Vector.from_values([None, None])
        assert vector.dtype == SQLNULL
        assert vector.to_pylist() == [None, None]

    def test_from_values_promotes(self):
        vector = Vector.from_values([1, 2.5])
        assert vector.dtype == DOUBLE
        assert vector.to_pylist() == [1.0, 2.5]

    def test_from_values_incompatible(self):
        with pytest.raises(ConversionError):
            Vector.from_values([1, "x"])

    def test_from_values_explicit_type(self):
        vector = Vector.from_values([1, 2], DOUBLE)
        assert vector.dtype == DOUBLE

    def test_explicit_type_range_check(self):
        from repro.types import TINYINT

        with pytest.raises(ConversionError):
            Vector.from_values([1000], TINYINT)

    def test_strings(self):
        vector = Vector.from_values(["a", None, "c"])
        assert vector.dtype == VARCHAR
        assert vector.to_pylist() == ["a", None, "c"]

    def test_dates(self):
        day = datetime.date(2021, 6, 1)
        vector = Vector.from_values([day])
        assert vector.dtype == DATE
        assert vector.get_value(0) == day

    def test_timestamps(self):
        moment = datetime.datetime(2021, 6, 1, 12, 30, 0, 123)
        vector = Vector.from_values([moment])
        assert vector.dtype == TIMESTAMP
        assert vector.get_value(0) == moment

    def test_empty(self):
        vector = Vector.empty(INTEGER, 3)
        assert vector.to_pylist() == [None, None, None]

    def test_constant(self):
        vector = Vector.constant(7, 4)
        assert vector.to_pylist() == [7, 7, 7, 7]

    def test_constant_null(self):
        vector = Vector.constant(None, 2, INTEGER)
        assert vector.to_pylist() == [None, None]

    def test_from_numpy_zero_copy(self):
        array = np.arange(5, dtype=np.int32)
        vector = Vector.from_numpy(array, INTEGER)
        assert vector.data is array  # no copy for matching dtypes

    def test_from_numpy_casts_dtype(self):
        array = np.arange(5, dtype=np.int64)
        vector = Vector.from_numpy(array, INTEGER)
        assert vector.data.dtype == np.int32

    def test_mismatched_validity_length(self):
        with pytest.raises(InternalError):
            Vector(INTEGER, np.zeros(3, dtype=np.int32),
                   np.ones(2, dtype=np.bool_))


class TestVectorOperations:
    def test_set_value(self):
        vector = Vector.from_values([1, 2, 3])
        vector.set_value(1, 99)
        assert vector.to_pylist() == [1, 99, 3]
        vector.set_value(0, None)
        assert vector.to_pylist() == [None, 99, 3]

    def test_slice_by_mask(self):
        vector = Vector.from_values([1, 2, 3, 4])
        sliced = vector.slice(np.array([True, False, True, False]))
        assert sliced.to_pylist() == [1, 3]

    def test_slice_by_index(self):
        vector = Vector.from_values([1, 2, 3, 4])
        sliced = vector.slice(np.array([3, 0]))
        assert sliced.to_pylist() == [4, 1]

    def test_copy_is_independent(self):
        vector = Vector.from_values([1, 2])
        cloned = vector.copy()
        cloned.set_value(0, 9)
        assert vector.get_value(0) == 1

    def test_concat(self):
        joined = Vector.from_values([1]).concat(Vector.from_values([2, None]))
        assert joined.to_pylist() == [1, 2, None]

    def test_concat_type_mismatch(self):
        with pytest.raises(InternalError):
            Vector.from_values([1]).concat(Vector.from_values(["a"]))

    def test_concat_many(self):
        vectors = [Vector.from_values([i]) for i in range(4)]
        assert Vector.concat_many(vectors).to_pylist() == [0, 1, 2, 3]

    def test_all_valid(self):
        assert Vector.from_values([1, 2]).all_valid()
        assert not Vector.from_values([1, None]).all_valid()
        assert Vector.from_values([]).all_valid() or True  # no crash on empty

    def test_nbytes_strings_counts_content(self):
        short = Vector.from_values(["a"])
        long = Vector.from_values(["a" * 1000])
        assert long.nbytes() > short.nbytes()


class TestDataChunk:
    def test_from_pylists(self):
        chunk = DataChunk.from_pylists([[1, 2], ["x", "y"]])
        assert chunk.size == 2
        assert chunk.column_count == 2
        assert chunk.to_rows() == [(1, "x"), (2, "y")]

    def test_mismatched_lengths(self):
        with pytest.raises(InternalError):
            DataChunk([Vector.from_values([1]), Vector.from_values([1, 2])])

    def test_row_access(self):
        chunk = DataChunk.from_pylists([[1, 2], [None, "y"]])
        assert chunk.row(0) == (1, None)
        assert chunk.row(1) == (2, "y")

    def test_slice(self):
        chunk = DataChunk.from_pylists([[1, 2, 3], ["a", "b", "c"]])
        sliced = chunk.slice(np.array([2, 0]))
        assert sliced.to_rows() == [(3, "c"), (1, "a")]

    def test_project(self):
        chunk = DataChunk.from_pylists([[1], ["a"], [2.0]])
        projected = chunk.project([2, 0])
        assert projected.to_rows() == [(2.0, 1)]

    def test_concat_many(self):
        first = DataChunk.from_pylists([[1], ["a"]])
        second = DataChunk.from_pylists([[2], ["b"]])
        combined = DataChunk.concat_many([first, second])
        assert combined.to_rows() == [(1, "a"), (2, "b")]

    def test_split(self):
        chunk = DataChunk.from_pylists([list(range(5))])
        pieces = list(chunk.split(2))
        assert [piece.size for piece in pieces] == [2, 2, 1]
        assert [row for piece in pieces for row in piece.to_rows()] == \
            [(i,) for i in range(5)]

    def test_to_pydict(self):
        chunk = DataChunk.from_pylists([[1, 2]])
        assert chunk.to_pydict(["x"]) == {"x": [1, 2]}

    def test_empty_chunk(self):
        chunk = DataChunk.empty([INTEGER, VARCHAR])
        assert chunk.size == 0
        assert chunk.types == [INTEGER, VARCHAR]
