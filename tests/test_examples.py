"""Every example script must stay runnable (they are living documentation)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.stem)
def test_example_runs_cleanly(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=120,
    )
    assert completed.returncode == 0, (
        f"{script.name} failed:\n--- stdout ---\n{completed.stdout[-2000:]}"
        f"\n--- stderr ---\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script.name} produced no output"
