"""PEP 249 (DB-API 2.0) compliance of the client surface.

The engine's native API is chunk-oriented (paper §5: transfer efficiency),
but the module also has to *be* a Python database module: ``apilevel``,
``paramstyle``, a cursor with ``description``/``arraysize``/``fetchmany``,
``executemany``, closed-handle semantics, and the standard exception names.
"""

import pytest

import repro.client as dbapi
from repro.errors import InvalidInputError
from repro.types import LogicalTypeId


class TestModuleGlobals:
    def test_apilevel(self):
        assert dbapi.apilevel == "2.0"

    def test_threadsafety(self):
        assert dbapi.threadsafety == 2

    def test_paramstyle(self):
        assert dbapi.paramstyle == "qmark"

    def test_exception_hierarchy(self):
        # PEP 249: all module exceptions derive from Error.
        for name in ("DatabaseError", "InterfaceError", "ProgrammingError",
                     "OperationalError", "DataError", "IntegrityError",
                     "InternalError", "NotSupportedError"):
            assert issubclass(getattr(dbapi, name), dbapi.Error), name

    def test_connect_is_module_level(self):
        con = dbapi.connect()
        try:
            assert con.execute("SELECT 1").fetchvalue() == 1
        finally:
            con.close()


class TestCursor:
    def test_fetchone_until_exhausted(self, populated):
        cursor = populated.cursor()
        cursor.execute("SELECT i FROM sample ORDER BY i")
        seen = []
        while True:
            row = cursor.fetchone()
            if row is None:
                break
            seen.append(row[0])
        assert seen == [1, 2, 3, 4, 5]
        assert cursor.fetchone() is None

    def test_fetchmany_uses_arraysize(self, populated):
        cursor = populated.cursor()
        cursor.arraysize = 2
        cursor.execute("SELECT i FROM sample ORDER BY i")
        assert cursor.fetchmany() == [(1,), (2,)]
        assert cursor.fetchmany(1) == [(3,)]
        assert cursor.fetchmany(10) == [(4,), (5,)]
        assert cursor.fetchmany() == []

    def test_fetchall(self, populated):
        cursor = populated.cursor()
        cursor.execute("SELECT i FROM sample ORDER BY i")
        assert [row[0] for row in cursor.fetchall()] == [1, 2, 3, 4, 5]

    def test_iteration(self, populated):
        cursor = populated.cursor()
        cursor.execute("SELECT i FROM sample ORDER BY i")
        assert [row[0] for row in cursor] == [1, 2, 3, 4, 5]

    def test_executemany(self, con):
        con.execute("CREATE TABLE t (a INTEGER, b VARCHAR)")
        cursor = con.cursor()
        cursor.executemany("INSERT INTO t VALUES (?, ?)",
                           [(1, "x"), (2, "y"), (3, None)])
        assert cursor.rowcount == 3
        assert con.query_value("SELECT count(*) FROM t") == 3

    def test_qmark_parameters(self, populated):
        cursor = populated.cursor()
        cursor.execute("SELECT s FROM sample WHERE i = ?", (2,))
        assert cursor.fetchone() == ("beta",)

    def test_description_seven_tuples(self, populated):
        cursor = populated.cursor()
        cursor.execute("SELECT i, s, d FROM sample")
        assert cursor.description is not None
        assert [len(entry) for entry in cursor.description] == [7, 7, 7]
        names = [entry[0] for entry in cursor.description]
        type_codes = [entry[1] for entry in cursor.description]
        assert names == ["i", "s", "d"]
        assert type_codes == [LogicalTypeId.INTEGER, LogicalTypeId.VARCHAR,
                              LogicalTypeId.DOUBLE]

    def test_description_for_ddl_is_count_relation(self, con):
        # Every statement in this engine returns a relation; DDL/DML yield
        # a single BIGINT "Count" column rather than the PEP 249 None.
        cursor = con.cursor()
        cursor.execute("CREATE TABLE t (i INTEGER)")
        assert cursor.description is not None
        assert cursor.description[0][0] == "Count"
        assert cursor.description[0][1] is LogicalTypeId.BIGINT

    def test_connection_attribute(self, populated):
        cursor = populated.cursor()
        assert cursor.connection is populated

    def test_closed_cursor_raises(self, populated):
        cursor = populated.cursor()
        cursor.execute("SELECT 1")
        cursor.close()
        with pytest.raises(InvalidInputError):
            cursor.execute("SELECT 1")
        with pytest.raises(InvalidInputError):
            cursor.fetchone()

    def test_context_manager_closes(self, populated):
        with populated.cursor() as cursor:
            cursor.execute("SELECT 1")
        with pytest.raises(InvalidInputError):
            cursor.fetchall()

    def test_setinputsizes_setoutputsize_are_noops(self, populated):
        cursor = populated.cursor()
        cursor.setinputsizes([None, 4])
        cursor.setoutputsize(1024)
        cursor.setoutputsize(1024, 0)

    def test_finalize_keeps_cursor_reusable(self, populated):
        # The C3 baseline API: finalize releases the result but (unlike
        # DB-API close) the cursor can execute again.
        cursor = populated.cursor()
        cursor.execute("SELECT i FROM sample")
        cursor.finalize()
        cursor.execute("SELECT count(*) FROM sample")
        assert cursor.fetchone() == (5,)

    def test_step_api_still_works(self, populated):
        cursor = populated.cursor()
        cursor.execute("SELECT i FROM sample ORDER BY i")
        assert cursor.step() is True
        assert cursor.column_value(0) == 1
        assert cursor.column_count() == 1
        assert cursor.column_name(0) == "i"


class TestQueryResultSurface:
    def test_columns_and_dtypes(self, populated):
        result = populated.execute("SELECT i, s FROM sample")
        assert result.columns == ["i", "s"]
        assert [dtype.id for dtype in result.dtypes] == [
            LogicalTypeId.INTEGER, LogicalTypeId.VARCHAR]

    def test_result_description(self, populated):
        result = populated.execute("SELECT d FROM sample")
        ((name, type_code, display, internal, precision, scale, null_ok),) \
            = result.description
        assert name == "d"
        assert type_code is LogicalTypeId.DOUBLE
        assert internal == 8
        assert display is None and precision is None and scale is None
        assert null_ok is None

    def test_to_rows(self, populated):
        rows = populated.execute(
            "SELECT i FROM sample ORDER BY i").to_rows()
        assert rows == [(1,), (2,), (3,), (4,), (5,)]

    def test_result_fetchmany(self, populated):
        result = populated.execute("SELECT i FROM sample ORDER BY i")
        assert result.fetchmany(2) == [(1,), (2,)]
        assert result.fetchmany(10) == [(3,), (4,), (5,)]
        assert result.fetchmany(2) == []

    def test_result_iteration(self, populated):
        result = populated.execute("SELECT i FROM sample ORDER BY i")
        assert [row[0] for row in result] == [1, 2, 3, 4, 5]
