"""Expression semantics: three-valued logic, arithmetic, CASE, IN, LIKE."""

import math

import pytest

import repro


@pytest.fixture
def truth(con):
    """A table covering the boolean truth-value triangle (incl. NULL)."""
    con.execute("CREATE TABLE tv (a BOOLEAN, b BOOLEAN)")
    values = [None, False, True]
    rows = ", ".join(
        f"({'NULL' if a is None else str(a).lower()}, "
        f"{'NULL' if b is None else str(b).lower()})"
        for a in values for b in values
    )
    con.execute(f"INSERT INTO tv VALUES {rows}")
    return con


def sql_and(a, b):
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def sql_or(a, b):
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


class TestThreeValuedLogic:
    def test_and(self, truth):
        rows = truth.execute("SELECT a, b, a AND b FROM tv").fetchall()
        for a, b, result in rows:
            assert result == sql_and(a, b), (a, b)

    def test_or(self, truth):
        rows = truth.execute("SELECT a, b, a OR b FROM tv").fetchall()
        for a, b, result in rows:
            assert result == sql_or(a, b), (a, b)

    def test_not(self, truth):
        rows = truth.execute("SELECT a, NOT a FROM tv").fetchall()
        for a, result in rows:
            expected = None if a is None else not a
            assert result == expected

    def test_null_comparison_is_null(self, con):
        assert con.execute("SELECT NULL = NULL").fetchvalue() is None
        assert con.execute("SELECT 1 = NULL").fetchvalue() is None
        assert con.execute("SELECT 1 < NULL").fetchvalue() is None

    def test_is_null_on_null_literal(self, con):
        assert con.execute("SELECT NULL IS NULL").fetchvalue() is True
        assert con.execute("SELECT 1 IS NOT NULL").fetchvalue() is True

    def test_where_null_filters_out(self, populated):
        # A NULL predicate result excludes the row (not an error).
        rows = populated.execute("SELECT i FROM sample WHERE d > 100 OR NULL"
                                 ).fetchall()
        assert rows == []

    def test_between_null_bound(self, con):
        # BETWEEN desugars to >= AND <=, so a NULL bound follows AND's
        # three-valued logic: definite failures on the other bound yield
        # FALSE, everything else is unknown.
        assert con.execute("SELECT 3 BETWEEN NULL AND 5").fetchvalue() is None
        assert con.execute("SELECT 7 BETWEEN NULL AND 5").fetchvalue() is False
        assert con.execute("SELECT 3 BETWEEN 1 AND NULL").fetchvalue() is None
        assert con.execute("SELECT 0 BETWEEN 1 AND NULL").fetchvalue() is False
        assert con.execute(
            "SELECT 3 NOT BETWEEN NULL AND 5").fetchvalue() is None
        assert con.execute(
            "SELECT 7 NOT BETWEEN NULL AND 5").fetchvalue() is True


class TestArithmetic:
    def test_integer_ops(self, con):
        assert con.execute("SELECT 7 + 3, 7 - 3, 7 * 3, 7 % 3").fetchone() == \
            (10, 4, 21, 1)

    def test_division_is_double(self, con):
        assert con.execute("SELECT 7 / 2").fetchvalue() == 3.5

    def test_division_by_zero_is_null(self, con):
        assert con.execute("SELECT 1 / 0").fetchvalue() is None
        assert con.execute("SELECT 1 % 0").fetchvalue() is None
        assert con.execute("SELECT 1.0 / 0.0").fetchvalue() is None

    def test_null_propagation(self, con):
        assert con.execute("SELECT 1 + NULL").fetchvalue() is None
        assert con.execute("SELECT NULL * 2.5").fetchvalue() is None

    def test_unary_minus(self, con):
        assert con.execute("SELECT -(2 + 3)").fetchvalue() == -5
        assert con.execute("SELECT -x FROM (SELECT -4 AS x) t").fetchvalue() == 4

    def test_integer_overflow_promotes_to_bigint(self, con):
        value = con.execute("SELECT 2000000000 + 2000000000").fetchvalue()
        assert value == 4_000_000_000

    def test_float_int_mix(self, con):
        assert con.execute("SELECT 1 + 0.5").fetchvalue() == 1.5

    def test_operator_precedence(self, con):
        assert con.execute("SELECT 2 + 3 * 4 - 6 / 3").fetchvalue() == 12.0

    def test_comparison_chaining_via_and(self, con):
        assert con.execute("SELECT 1 < 2 AND 2 < 3").fetchvalue() is True


class TestCase:
    def test_searched(self, populated):
        rows = populated.execute(
            "SELECT i, CASE WHEN i < 2 THEN 'low' WHEN i < 4 THEN 'mid' "
            "ELSE 'high' END FROM sample ORDER BY i").fetchall()
        assert [r[1] for r in rows] == ["low", "mid", "mid", "high", "high"]

    def test_first_match_wins(self, con):
        value = con.execute(
            "SELECT CASE WHEN true THEN 1 WHEN true THEN 2 END").fetchvalue()
        assert value == 1

    def test_no_else_yields_null(self, con):
        assert con.execute("SELECT CASE WHEN false THEN 1 END").fetchvalue() is None

    def test_simple_case(self, populated):
        rows = populated.execute(
            "SELECT CASE s WHEN 'alpha' THEN 1 WHEN 'beta' THEN 2 ELSE 0 END "
            "FROM sample ORDER BY i").fetchall()
        assert [r[0] for r in rows] == [1, 2, 1, 0, 0]

    def test_branch_type_unification(self, con):
        assert con.execute(
            "SELECT CASE WHEN true THEN 1 ELSE 2.5 END").fetchvalue() == 1.0

    def test_null_condition_is_not_taken(self, con):
        assert con.execute(
            "SELECT CASE WHEN NULL THEN 'x' ELSE 'y' END").fetchvalue() == "y"


class TestInList:
    def test_basic(self, con):
        assert con.execute("SELECT 2 IN (1, 2, 3)").fetchvalue() is True
        assert con.execute("SELECT 9 IN (1, 2, 3)").fetchvalue() is False

    def test_null_operand(self, con):
        assert con.execute("SELECT NULL IN (1, 2)").fetchvalue() is None

    def test_null_in_list_no_match(self, con):
        # 9 IN (1, NULL): unknown, because NULL *might* equal 9.
        assert con.execute("SELECT 9 IN (1, NULL)").fetchvalue() is None

    def test_null_in_list_with_match(self, con):
        assert con.execute("SELECT 1 IN (1, NULL)").fetchvalue() is True

    def test_not_in(self, con):
        assert con.execute("SELECT 9 NOT IN (1, 2)").fetchvalue() is True
        assert con.execute("SELECT 1 NOT IN (1, 2)").fetchvalue() is False
        assert con.execute("SELECT 9 NOT IN (1, NULL)").fetchvalue() is None

    def test_string_in(self, con):
        assert con.execute("SELECT 'b' IN ('a', 'b')").fetchvalue() is True

    def test_mixed_numeric_types(self, con):
        assert con.execute("SELECT 2.0 IN (1, 2, 3)").fetchvalue() is True


class TestLike:
    @pytest.mark.parametrize("value,pattern,expected", [
        ("hello", "hello", True),
        ("hello", "h%", True),
        ("hello", "%llo", True),
        ("hello", "h_llo", True),
        ("hello", "H%", False),
        ("hello", "%z%", False),
        ("", "%", True),
        ("a.b", "a.b", True),
        ("axb", "a.b", False),       # dot is literal, not regex
        ("50%", "50%", True),    # percent as final char of pattern
        ("a\nb", "a%b", True),        # % crosses newlines
    ])
    def test_like(self, con, value, pattern, expected):
        result = con.execute("SELECT ? LIKE ?", [value, pattern]).fetchvalue()
        assert result is expected

    def test_ilike(self, con):
        assert con.execute("SELECT 'HeLLo' ILIKE 'hello'").fetchvalue() is True

    def test_like_null(self, con):
        assert con.execute("SELECT NULL LIKE 'x'").fetchvalue() is None
        assert con.execute("SELECT 'x' LIKE NULL").fetchvalue() is None

    def test_not_like(self, con):
        assert con.execute("SELECT 'abc' NOT LIKE 'z%'").fetchvalue() is True

    @pytest.mark.parametrize("value,pattern,escape,expected", [
        ("100%", "100\\%", "\\", True),    # escaped % is literal
        ("100x", "100\\%", "\\", False),
        ("a_b", "a!_b", "!", True),        # escaped _ is literal
        ("axb", "a!_b", "!", False),
        ("50\\50", "50\\\\50", "\\", True),  # doubled escape is a backslash
        ("%", "\\%", "\\", True),
        ("20% off", "%\\%%", "\\", True),  # mix of wild and escaped %
    ])
    def test_like_escape(self, con, value, pattern, escape, expected):
        result = con.execute("SELECT ? LIKE ? ESCAPE ?",
                             [value, pattern, escape]).fetchvalue()
        assert result is expected

    def test_ilike_escape(self, con):
        assert con.execute(
            "SELECT 'A_B' ILIKE 'a!_b' ESCAPE '!'").fetchvalue() is True

    def test_like_escape_null(self, con):
        assert con.execute(
            "SELECT 'x' LIKE 'x' ESCAPE NULL").fetchvalue() is None

    def test_like_escape_must_be_single_char(self, con):
        from repro.errors import InvalidInputError

        with pytest.raises(InvalidInputError, match="single character"):
            con.execute("SELECT 'x' LIKE 'x%' ESCAPE 'ab'").fetchall()

    def test_like_trailing_escape_rejected(self, con):
        from repro.errors import InvalidInputError

        with pytest.raises(InvalidInputError, match="ends with escape"):
            con.execute("SELECT 'x' LIKE 'x!' ESCAPE '!'").fetchall()


class TestConcatAndStrings:
    def test_concat_operator_propagates_null(self, con):
        assert con.execute("SELECT 'a' || NULL").fetchvalue() is None

    def test_concat_function_skips_null(self, con):
        assert con.execute("SELECT concat('a', NULL, 'b')").fetchvalue() == "ab"

    def test_chained_concat(self, con):
        assert con.execute("SELECT 'a' || 'b' || 'c'").fetchvalue() == "abc"


class TestCasts:
    def test_cast_in_query(self, populated):
        rows = populated.execute(
            "SELECT CAST(i AS VARCHAR) FROM sample WHERE i = 1").fetchall()
        assert rows == [("1",)]

    def test_double_colon(self, con):
        assert con.execute("SELECT '42'::INTEGER + 1").fetchvalue() == 43

    def test_cast_failure_at_runtime(self, populated):
        populated.execute("INSERT INTO sample VALUES (9, 'not a number', 1.0)")
        with pytest.raises(repro.ConversionError):
            populated.execute("SELECT CAST(s AS INTEGER) FROM sample").fetchall()

    def test_cast_null(self, con):
        assert con.execute("SELECT CAST(NULL AS INTEGER)").fetchvalue() is None

    def test_boolean_to_integer(self, con):
        assert con.execute("SELECT CAST(true AS INTEGER)").fetchvalue() == 1
