"""Shared fixtures for the test suite."""

import os
import tempfile

# The whole suite runs under quackplan (see repro.verifier): every
# optimizer pass and lowering of every test query is verified, and any
# plan-invariant violation raises.  Export before any connection is made;
# an explicit REPRO_VERIFY_PLANS=0 in the environment still wins.
os.environ.setdefault("REPRO_VERIFY_PLANS", "1")

import pytest

import repro
from repro import sanitizer


def pytest_sessionfinish(session, exitstatus):
    """Under ``REPRO_SANITIZE=1`` the whole suite is a sanitizer gate: any
    lock-order cycle or race witnessed by any test fails the run.  Tests
    that seed deliberate findings reset the collector on teardown."""
    if sanitizer.enabled():
        sanitizer.assert_clean()


@pytest.fixture
def con():
    """A fresh in-memory database connection."""
    connection = repro.connect()
    yield connection
    connection.close()


@pytest.fixture
def db_path(tmp_path):
    """A path for a persistent database file in a temp directory."""
    return str(tmp_path / "test.qdb")


@pytest.fixture
def file_con(db_path):
    """A connection to a persistent single-file database."""
    connection = repro.connect(db_path)
    yield connection
    connection.close()


@pytest.fixture
def populated(con):
    """An in-memory connection with a small, NULL-bearing sample table."""
    con.execute("CREATE TABLE sample (i INTEGER, s VARCHAR, d DOUBLE)")
    con.execute(
        "INSERT INTO sample VALUES "
        "(1, 'alpha', 1.5), (2, 'beta', 2.5), (3, 'alpha', NULL), "
        "(4, NULL, 4.5), (5, 'gamma', 0.5)"
    )
    return con
