"""Tests for vectorized casts."""

import datetime

import numpy as np
import pytest

from repro.errors import ConversionError
from repro.types import (
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    FLOAT,
    INTEGER,
    SMALLINT,
    SQLNULL,
    TIMESTAMP,
    TINYINT,
    VARCHAR,
    Vector,
    cast_scalar,
    cast_vector,
)


def roundtrip(values, source, target):
    vector = Vector.from_values(values, source)
    return cast_vector(vector, target).to_pylist()


class TestNumericCasts:
    def test_int_to_double(self):
        assert roundtrip([1, None, 3], INTEGER, DOUBLE) == [1.0, None, 3.0]

    def test_double_to_int_rounds(self):
        assert roundtrip([1.4, 1.6, -1.5], DOUBLE, INTEGER) == [1, 2, -2]

    def test_double_to_int_out_of_range(self):
        with pytest.raises(ConversionError):
            roundtrip([1e20], DOUBLE, INTEGER)

    def test_double_nan_to_int(self):
        vector = Vector(DOUBLE, np.array([np.nan]), np.array([True]))
        with pytest.raises(ConversionError):
            cast_vector(vector, INTEGER)

    def test_narrowing_in_range(self):
        assert roundtrip([100], BIGINT, TINYINT) == [100]

    def test_narrowing_overflow(self):
        with pytest.raises(ConversionError):
            roundtrip([300], BIGINT, TINYINT)

    def test_null_values_ignore_range_check(self):
        # A NULL slot holding garbage must not trigger overflow errors.
        vector = Vector(BIGINT, np.array([10**12, 1], dtype=np.int64),
                        np.array([False, True]))
        assert cast_vector(vector, SMALLINT).to_pylist() == [None, 1]

    def test_bool_to_int(self):
        assert roundtrip([True, False, None], BOOLEAN, INTEGER) == [1, 0, None]

    def test_int_to_bool(self):
        assert roundtrip([0, 2], INTEGER, BOOLEAN) == [False, True]

    def test_identity_is_noop(self):
        vector = Vector.from_values([1, 2], INTEGER)
        assert cast_vector(vector, INTEGER) is vector


class TestStringCasts:
    def test_int_to_varchar(self):
        assert roundtrip([1, None], INTEGER, VARCHAR) == ["1", None]

    def test_double_to_varchar_round_trips(self):
        rendered = roundtrip([1.5, 0.1], DOUBLE, VARCHAR)
        assert [float(value) for value in rendered] == [1.5, 0.1]

    def test_bool_to_varchar(self):
        assert roundtrip([True, False], BOOLEAN, VARCHAR) == ["true", "false"]

    def test_varchar_to_int(self):
        assert roundtrip(["42", " -7 ", None], VARCHAR, INTEGER) == [42, -7, None]

    def test_varchar_float_text_to_int_exact(self):
        assert roundtrip(["3.0"], VARCHAR, INTEGER) == [3]

    def test_varchar_float_text_to_int_lossy_fails(self):
        with pytest.raises(ConversionError):
            roundtrip(["3.5"], VARCHAR, INTEGER)

    def test_varchar_to_int_garbage(self):
        with pytest.raises(ConversionError):
            roundtrip(["duck"], VARCHAR, INTEGER)

    def test_varchar_to_double(self):
        assert roundtrip(["1.25", "1e3"], VARCHAR, DOUBLE) == [1.25, 1000.0]

    def test_varchar_to_bool(self):
        assert roundtrip(["true", "F", "YES", "0"], VARCHAR, BOOLEAN) == \
            [True, False, True, False]

    def test_varchar_to_bool_garbage(self):
        with pytest.raises(ConversionError):
            roundtrip(["maybe"], VARCHAR, BOOLEAN)

    def test_varchar_to_int_range(self):
        with pytest.raises(ConversionError):
            roundtrip(["100000"], VARCHAR, SMALLINT)


class TestTemporalCasts:
    def test_varchar_to_date(self):
        assert roundtrip(["2021-03-04"], VARCHAR, DATE) == \
            [datetime.date(2021, 3, 4)]

    def test_varchar_to_date_garbage(self):
        with pytest.raises(ConversionError):
            roundtrip(["not a date"], VARCHAR, DATE)

    def test_varchar_to_timestamp(self):
        assert roundtrip(["2021-03-04 05:06:07"], VARCHAR, TIMESTAMP) == \
            [datetime.datetime(2021, 3, 4, 5, 6, 7)]

    def test_varchar_date_only_to_timestamp(self):
        assert roundtrip(["2021-03-04"], VARCHAR, TIMESTAMP) == \
            [datetime.datetime(2021, 3, 4)]

    def test_date_to_timestamp(self):
        assert roundtrip([datetime.date(2000, 1, 2)], DATE, TIMESTAMP) == \
            [datetime.datetime(2000, 1, 2)]

    def test_timestamp_to_date(self):
        assert roundtrip([datetime.datetime(2000, 1, 2, 23, 59)], TIMESTAMP,
                         DATE) == [datetime.date(2000, 1, 2)]

    def test_date_to_varchar(self):
        assert roundtrip([datetime.date(2021, 3, 4)], DATE, VARCHAR) == \
            ["2021-03-04"]

    def test_timestamp_to_varchar(self):
        assert roundtrip([datetime.datetime(2021, 3, 4, 5, 6)], TIMESTAMP,
                         VARCHAR) == ["2021-03-04 05:06:00"]

    def test_pre_epoch_dates(self):
        assert roundtrip(["1903-12-28"], VARCHAR, DATE) == \
            [datetime.date(1903, 12, 28)]


class TestNullCasts:
    def test_sqlnull_to_anything(self):
        vector = Vector.from_values([None, None])
        assert cast_vector(vector, INTEGER).to_pylist() == [None, None]
        assert cast_vector(vector, VARCHAR).to_pylist() == [None, None]

    def test_cast_to_null_fails(self):
        with pytest.raises(ConversionError):
            cast_vector(Vector.from_values([1]), SQLNULL)

    def test_unsupported_cast(self):
        with pytest.raises(ConversionError):
            roundtrip([datetime.date(2020, 1, 1)], DATE, INTEGER)


class TestCastScalar:
    def test_scalar(self):
        assert cast_scalar("5", INTEGER) == 5
        assert cast_scalar(None, INTEGER) is None
        assert cast_scalar(7, VARCHAR) == "7"
