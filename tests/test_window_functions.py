"""Window function tests: ranking, offsets, running aggregates, edge cases."""

import numpy as np
import pytest

import repro
from repro.errors import BinderError


@pytest.fixture
def series(con):
    con.execute("CREATE TABLE s (g VARCHAR, t INTEGER, v INTEGER)")
    con.execute("""INSERT INTO s VALUES
        ('a', 1, 10), ('a', 2, 20), ('a', 3, 15),
        ('b', 1, 5),  ('b', 2, 5),  ('b', 3, 30)""")
    return con


class TestRanking:
    def test_row_number_per_partition(self, series):
        rows = series.execute(
            "SELECT g, t, row_number() OVER (PARTITION BY g ORDER BY t) "
            "FROM s ORDER BY g, t").fetchall()
        assert [row[2] for row in rows] == [1, 2, 3, 1, 2, 3]

    def test_row_number_without_partition(self, series):
        rows = series.execute(
            "SELECT row_number() OVER (ORDER BY v DESC) AS rn, v FROM s "
            "ORDER BY rn").fetchall()
        assert rows[0] == (1, 30)
        assert rows[-1][1] == 5

    def test_rank_with_ties(self, series):
        rows = series.execute(
            "SELECT v, rank() OVER (ORDER BY v) FROM s ORDER BY v, g"
        ).fetchall()
        # values sorted: 5,5,10,15,20,30 -> ranks 1,1,3,4,5,6
        assert [row[1] for row in rows] == [1, 1, 3, 4, 5, 6]

    def test_dense_rank_with_ties(self, series):
        rows = series.execute(
            "SELECT v, dense_rank() OVER (ORDER BY v) FROM s ORDER BY v, g"
        ).fetchall()
        assert [row[1] for row in rows] == [1, 1, 2, 3, 4, 5]

    def test_rank_resets_per_partition(self, series):
        rows = series.execute(
            "SELECT g, v, rank() OVER (PARTITION BY g ORDER BY v) FROM s "
            "ORDER BY g, v").fetchall()
        assert [row[2] for row in rows] == [1, 2, 3, 1, 1, 3]


class TestOffsets:
    def test_lag_basic(self, series):
        rows = series.execute(
            "SELECT g, t, lag(v) OVER (PARTITION BY g ORDER BY t) FROM s "
            "ORDER BY g, t").fetchall()
        assert [row[2] for row in rows] == [None, 10, 20, None, 5, 5]

    def test_lead_basic(self, series):
        rows = series.execute(
            "SELECT g, t, lead(v) OVER (PARTITION BY g ORDER BY t) FROM s "
            "ORDER BY g, t").fetchall()
        assert [row[2] for row in rows] == [20, 15, None, 5, 30, None]

    def test_lag_with_offset_and_default(self, series):
        rows = series.execute(
            "SELECT g, t, lag(v, 2, 0) OVER (PARTITION BY g ORDER BY t) "
            "FROM s ORDER BY g, t").fetchall()
        assert [row[2] for row in rows] == [0, 0, 10, 0, 0, 5]

    def test_delta_computation(self, series):
        """The dashboard classic: value minus previous value."""
        rows = series.execute(
            "SELECT g, t, v - lag(v, 1, 0) OVER (PARTITION BY g ORDER BY t) "
            "FROM s ORDER BY g, t").fetchall()
        assert [row[2] for row in rows] == [10, 10, -5, 5, 0, 25]

    def test_lag_of_strings(self, series):
        rows = series.execute(
            "SELECT t, lag(g) OVER (ORDER BY g, t) FROM s ORDER BY g, t"
        ).fetchall()
        assert rows[0][1] is None
        assert rows[3][1] == "a"


class TestRunningAggregates:
    def test_running_sum(self, series):
        rows = series.execute(
            "SELECT g, t, sum(v) OVER (PARTITION BY g ORDER BY t) FROM s "
            "ORDER BY g, t").fetchall()
        assert [row[2] for row in rows] == [10, 30, 45, 5, 10, 40]

    def test_running_count_star(self, series):
        rows = series.execute(
            "SELECT g, count(*) OVER (PARTITION BY g ORDER BY t) FROM s "
            "ORDER BY g, t").fetchall()
        assert [row[1] for row in rows] == [1, 2, 3, 1, 2, 3]

    def test_running_avg_min_max(self, series):
        rows = series.execute(
            "SELECT g, t, avg(v) OVER (PARTITION BY g ORDER BY t), "
            "min(v) OVER (PARTITION BY g ORDER BY t), "
            "max(v) OVER (PARTITION BY g ORDER BY t) FROM s ORDER BY g, t"
        ).fetchall()
        a_rows = [row for row in rows if row[0] == "a"]
        assert [row[2] for row in a_rows] == [10.0, 15.0, 15.0]
        assert [row[3] for row in a_rows] == [10, 10, 10]
        assert [row[4] for row in a_rows] == [10, 20, 20]

    def test_whole_partition_aggregate(self, series):
        rows = series.execute(
            "SELECT g, sum(v) OVER (PARTITION BY g) FROM s ORDER BY g, t"
        ).fetchall()
        assert [row[1] for row in rows] == [45, 45, 45, 40, 40, 40]

    def test_grand_total(self, series):
        rows = series.execute(
            "SELECT v, sum(v) OVER () FROM s").fetchall()
        assert all(row[1] == 85 for row in rows)

    def test_fraction_of_total(self, series):
        rows = series.execute(
            "SELECT g, v, v * 1.0 / sum(v) OVER (PARTITION BY g) AS share "
            "FROM s WHERE g = 'b' ORDER BY t").fetchall()
        assert [round(row[2], 3) for row in rows] == [0.125, 0.125, 0.75]

    def test_running_sum_with_nulls(self, con):
        con.execute("CREATE TABLE n (t INTEGER, v INTEGER)")
        con.execute("INSERT INTO n VALUES (1, 5), (2, NULL), (3, 7)")
        rows = con.execute(
            "SELECT t, sum(v) OVER (ORDER BY t), "
            "count(v) OVER (ORDER BY t) FROM n ORDER BY t").fetchall()
        assert [row[1] for row in rows] == [5, 5, 12]
        assert [row[2] for row in rows] == [1, 1, 2]


class TestIntegration:
    def test_window_over_group_by(self, series):
        rows = series.execute(
            "SELECT g, sum(v) AS total, "
            "rank() OVER (ORDER BY sum(v) DESC) AS r "
            "FROM s GROUP BY g ORDER BY g").fetchall()
        assert rows == [("a", 45, 1), ("b", 40, 2)]

    def test_order_by_window_alias(self, series):
        rows = series.execute(
            "SELECT v, row_number() OVER (ORDER BY v) AS rn FROM s "
            "ORDER BY rn DESC LIMIT 2").fetchall()
        assert rows[0][1] == 6

    def test_identical_windows_share_column(self, series):
        rows = series.execute(
            "SELECT sum(v) OVER (PARTITION BY g) + 0, "
            "sum(v) OVER (PARTITION BY g) * 2 FROM s WHERE g = 'a' LIMIT 1"
        ).fetchall()
        assert rows == [(45, 90)]

    def test_mixing_bare_aggregate_and_window_on_raw_column_rejected(self, series):
        # max(v) makes the query aggregated; sum(v) OVER () then references
        # the raw column v, which is neither grouped nor aggregated.
        with pytest.raises(BinderError):
            series.execute("SELECT max(v) - sum(v) OVER () FROM s")

    def test_window_inside_arithmetic(self, series):
        rows = series.execute(
            "SELECT v, v * 100 / sum(v) OVER () AS pct FROM s "
            "ORDER BY v DESC LIMIT 1").fetchall()
        assert rows == [(30, 30 * 100 / 85)]

    def test_window_at_scale(self, con):
        con.execute("CREATE TABLE big (g INTEGER, v INTEGER)")
        n = 100_000
        rng = np.random.default_rng(9)
        with con.appender("big") as appender:
            appender.append_numpy({
                "g": (np.arange(n) % 50).astype(np.int32),
                "v": rng.integers(0, 1000, n).astype(np.int32),
            })
        rows = con.execute(
            "SELECT g, max(rn) FROM (SELECT g, row_number() OVER "
            "(PARTITION BY g ORDER BY v) AS rn FROM big) sub "
            "GROUP BY g ORDER BY g LIMIT 3").fetchall()
        assert rows == [(0, 2000), (1, 2000), (2, 2000)]


class TestNtileAndBoundaries:
    def test_ntile_even_split(self, con):
        con.execute("CREATE TABLE t (x INTEGER)")
        con.execute("INSERT INTO t VALUES (1), (2), (3), (4)")
        rows = con.execute(
            "SELECT x, ntile(2) OVER (ORDER BY x) FROM t ORDER BY x").fetchall()
        assert [row[1] for row in rows] == [1, 1, 2, 2]

    def test_ntile_uneven_split_front_loads(self, con):
        con.execute("CREATE TABLE t (x INTEGER)")
        con.execute("INSERT INTO t VALUES (1), (2), (3), (4), (5)")
        rows = con.execute(
            "SELECT ntile(3) OVER (ORDER BY x) FROM t").fetchall()
        assert [row[0] for row in rows] == [1, 1, 2, 2, 3]

    def test_ntile_more_buckets_than_rows(self, con):
        con.execute("CREATE TABLE t (x INTEGER)")
        con.execute("INSERT INTO t VALUES (1), (2)")
        rows = con.execute(
            "SELECT ntile(5) OVER (ORDER BY x) FROM t").fetchall()
        assert [row[0] for row in rows] == [1, 2]

    def test_first_and_last_value(self, series):
        rows = series.execute(
            "SELECT g, t, first_value(v) OVER (PARTITION BY g ORDER BY t), "
            "last_value(v) OVER (PARTITION BY g ORDER BY t) "
            "FROM s ORDER BY g, t").fetchall()
        a_rows = [row for row in rows if row[0] == "a"]
        assert all(row[2] == 10 for row in a_rows)
        assert all(row[3] == 15 for row in a_rows)

    def test_first_value_strings(self, series):
        value = series.execute(
            "SELECT first_value(g) OVER (ORDER BY v DESC) FROM s LIMIT 1"
        ).fetchvalue()
        assert value == "b"  # v=30 belongs to partition-less order


class TestExplainAnalyze:
    def test_reports_statistics(self, series):
        lines = [row[0] for row in series.execute(
            "EXPLAIN ANALYZE SELECT g, sum(v) FROM s GROUP BY g").fetchall()]
        text = "\n".join(lines)
        assert "-- execution statistics --" in text
        assert "result rows: 2" in text
        assert "rows_scanned: 6" in text

    def test_plain_explain_has_no_statistics(self, series):
        lines = [row[0] for row in series.execute(
            "EXPLAIN SELECT * FROM s").fetchall()]
        assert all("execution statistics" not in line for line in lines)


class TestErrors:
    def test_window_in_where_rejected(self, series):
        with pytest.raises(BinderError):
            series.execute(
                "SELECT v FROM s WHERE row_number() OVER (ORDER BY v) = 1")

    def test_window_in_group_by_rejected(self, series):
        with pytest.raises(BinderError):
            series.execute(
                "SELECT count(*) FROM s GROUP BY rank() OVER (ORDER BY v)")

    def test_window_in_having_rejected(self, series):
        with pytest.raises(BinderError):
            series.execute(
                "SELECT g, count(*) FROM s GROUP BY g "
                "HAVING rank() OVER (ORDER BY g) = 1")

    def test_nested_window_rejected(self, series):
        with pytest.raises(BinderError):
            series.execute(
                "SELECT sum(row_number() OVER (ORDER BY v)) OVER () FROM s")

    def test_ranking_with_arguments_rejected(self, series):
        with pytest.raises(BinderError):
            series.execute("SELECT row_number(v) OVER () FROM s")

    def test_unknown_window_function(self, series):
        with pytest.raises(BinderError):
            series.execute("SELECT percent_rank() OVER (ORDER BY v) FROM s")

    def test_order_by_new_window_rejected(self, series):
        with pytest.raises(BinderError):
            series.execute(
                "SELECT v FROM s ORDER BY row_number() OVER (ORDER BY v)")


class TestWindowEdgeCases:
    def test_empty_table(self, con):
        con.execute("CREATE TABLE e (x INTEGER)")
        assert con.execute(
            "SELECT row_number() OVER (ORDER BY x) FROM e").fetchall() == []

    def test_single_row(self, con):
        con.execute("CREATE TABLE o (x INTEGER)")
        con.execute("INSERT INTO o VALUES (7)")
        row = con.execute(
            "SELECT row_number() OVER (), rank() OVER (ORDER BY x), "
            "sum(x) OVER (), lag(x) OVER (ORDER BY x), "
            "ntile(3) OVER (ORDER BY x) FROM o").fetchone()
        assert row == (1, 1, 7, None, 1)

    def test_null_partition_key_forms_partition(self, con):
        con.execute("CREATE TABLE p (g INTEGER, v INTEGER)")
        con.execute("INSERT INTO p VALUES (NULL, 1), (NULL, 2), (1, 3)")
        rows = con.execute(
            "SELECT g, sum(v) OVER (PARTITION BY g) FROM p "
            "ORDER BY g NULLS FIRST, v").fetchall()
        assert rows == [(None, 3), (None, 3), (1, 3)]

    def test_null_order_keys(self, con):
        con.execute("CREATE TABLE q (v INTEGER)")
        con.execute("INSERT INTO q VALUES (2), (NULL), (1)")
        rows = con.execute(
            "SELECT v, row_number() OVER (ORDER BY v NULLS FIRST) FROM q "
            "ORDER BY 2").fetchall()
        assert rows == [(None, 1), (1, 2), (2, 3)]

    def test_descending_order_with_ties(self, con):
        con.execute("CREATE TABLE d (v INTEGER)")
        con.execute("INSERT INTO d VALUES (5), (5), (3)")
        rows = con.execute(
            "SELECT v, rank() OVER (ORDER BY v DESC) FROM d ORDER BY 2, 1"
        ).fetchall()
        assert rows == [(5, 1), (5, 1), (3, 3)]

    def test_window_partition_by_expression(self, con):
        con.execute("CREATE TABLE m (x INTEGER)")
        con.execute("INSERT INTO m VALUES (1), (2), (3), (4)")
        rows = con.execute(
            "SELECT x, count(*) OVER (PARTITION BY x % 2) FROM m ORDER BY x"
        ).fetchall()
        assert [row[1] for row in rows] == [2, 2, 2, 2]

    def test_window_through_view(self, con):
        con.execute("CREATE TABLE w (x INTEGER)")
        con.execute("INSERT INTO w VALUES (10), (20)")
        con.execute("CREATE VIEW ranked AS "
                    "SELECT x, row_number() OVER (ORDER BY x DESC) AS rn FROM w")
        assert con.execute("SELECT rn FROM ranked WHERE x = 20").fetchall() == \
            [(1,)]
