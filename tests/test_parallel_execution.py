"""Morsel-driven parallel execution: serial/parallel equivalence and plumbing.

The contract under test: a query must return identical results whether it
runs on one thread or many (``PRAGMA threads``), because morsel boundaries
align with serial scan chunks, partial aggregates merge exactly, and the
coordinator consumes worker results in morsel order.
"""

import os

import numpy as np
import pytest

import repro
from repro.config import DatabaseConfig
from repro.cooperation.controller import ReactiveController, StaticController
from repro.cooperation.monitor import ResourceMonitor, SimulatedApplication
from repro.errors import InterruptError, InvalidInputError
from repro.execution.parallel import aligned_morsel_rows
from repro.execution.physical import ExecutionContext
from repro.execution.physical_planner import create_physical_plan
from repro.optimizer import optimize
from repro.planner.binder import Binder
from repro.sql import parse_one
from repro.storage.table_data import SCAN_CHUNK_ROWS

ROWS = 50000
#: Small morsels so a modest table still splits across several workers.
MORSEL = SCAN_CHUNK_ROWS


def _populate(con):
    con.execute("CREATE TABLE t (g INTEGER, v INTEGER, s VARCHAR, d DOUBLE)")
    index = np.arange(ROWS)
    with con.appender("t") as appender:
        appender.append_numpy({
            "g": (index % 13).astype(np.int32),
            "v": index.astype(np.int32),
            "s": np.array([f"key{i % 5}" for i in range(ROWS)], dtype=object),
            "d": (index % 97) / 7.0,
        })
    # A few NULLs so merge paths see invalid values.
    con.execute("UPDATE t SET g = NULL, s = NULL WHERE v = 17")
    con.execute("UPDATE t SET d = NULL WHERE v = 40011")


@pytest.fixture(scope="module")
def serial_con():
    con = repro.connect(config={"threads": 1})
    _populate(con)
    yield con
    con.close()


@pytest.fixture(scope="module")
def parallel_con():
    con = repro.connect(config={"threads": 4, "morsel_size": MORSEL})
    _populate(con)
    yield con
    con.close()


EQUIVALENCE_QUERIES = [
    "SELECT g, count(*), sum(v), min(v), max(v) FROM t GROUP BY g "
    "ORDER BY g NULLS FIRST",
    "SELECT g, avg(v), stddev(d) FROM t GROUP BY g ORDER BY g NULLS FIRST",
    "SELECT s, count(v), sum(d) FROM t GROUP BY s ORDER BY s NULLS FIRST",
    "SELECT count(*), sum(v), min(d), max(d) FROM t",
    "SELECT count(d), avg(d) FROM t WHERE v % 3 = 0",
    "SELECT g, count(*) FROM t WHERE v > 25000 GROUP BY g ORDER BY g",
    "SELECT g, s, sum(v) FROM t GROUP BY g, s "
    "ORDER BY g NULLS FIRST, s NULLS FIRST",
    "SELECT sum(v + 1), max(v * 2) FROM t WHERE s LIKE 'key%'",
    "SELECT count(*) FROM t WHERE v BETWEEN 1000 AND 2000",
    "SELECT v FROM t WHERE v < 100 ORDER BY v",
    "SELECT first(v) FROM t",
    "SELECT g, first(s) FROM t GROUP BY g ORDER BY g NULLS FIRST",
]


def assert_equivalent(serial, parallel):
    """Exact equality, except a tight tolerance for floats: partial-state
    merging changes floating-point summation order (last-ulp effects)."""
    assert len(serial) == len(parallel)
    for serial_row, parallel_row in zip(serial, parallel):
        assert len(serial_row) == len(parallel_row)
        for expected, actual in zip(serial_row, parallel_row):
            if isinstance(expected, float) and isinstance(actual, float):
                assert actual == pytest.approx(expected, rel=1e-12, abs=1e-12)
            else:
                assert actual == expected


class TestEquivalence:
    @pytest.mark.parametrize("query", EQUIVALENCE_QUERIES)
    def test_same_results(self, serial_con, parallel_con, query):
        serial = serial_con.execute(query).fetchall()
        parallel = parallel_con.execute(query).fetchall()
        assert_equivalent(serial, parallel)

    def test_scan_order_is_deterministic(self, serial_con, parallel_con):
        # Without ORDER BY, morsel results are yielded in morsel order, so
        # even the row order matches serial execution.
        query = "SELECT v FROM t WHERE v % 7 = 0"
        assert serial_con.execute(query).fetchall() == \
            parallel_con.execute(query).fetchall()

    def test_distinct_aggregate_stays_correct(self, serial_con, parallel_con):
        # DISTINCT aggregates are not partial-safe; the planner must fall
        # back to serial aggregation and still be right.
        query = ("SELECT g, count(DISTINCT s) FROM t GROUP BY g "
                 "ORDER BY g NULLS FIRST")
        assert serial_con.execute(query).fetchall() == \
            parallel_con.execute(query).fetchall()

    def test_pragma_threads_switches_at_runtime(self, serial_con):
        query = "SELECT g, sum(v) FROM t GROUP BY g ORDER BY g NULLS FIRST"
        baseline = serial_con.execute(query).fetchall()
        serial_con.execute("PRAGMA threads = 4")
        serial_con.execute(f"PRAGMA morsel_size = {MORSEL}")
        try:
            assert serial_con.execute(query).fetchall() == baseline
        finally:
            serial_con.execute("PRAGMA threads = 1")
            serial_con.execute("PRAGMA morsel_size = 65536")


class TestExplainAndStats:
    def test_explain_shows_parallel_operators(self, parallel_con):
        plan = "\n".join(r[0] for r in parallel_con.execute(
            "EXPLAIN SELECT g, sum(v) FROM t GROUP BY g").fetchall())
        assert "PARALLEL_HASH_AGGREGATE" in plan
        assert "workers=4" in plan

    def test_explain_analyze_reports_morsels_and_workers(self, parallel_con):
        plan = "\n".join(r[0] for r in parallel_con.execute(
            "EXPLAIN ANALYZE SELECT g, sum(v) FROM t GROUP BY g").fetchall())
        assert "morsels:" in plan
        assert "parallel_workers:" in plan
        assert "worker_0_rows:" in plan
        assert f"rows_scanned: {ROWS}" in plan

    def test_parallel_scan_in_plan(self, parallel_con):
        plan = "\n".join(r[0] for r in parallel_con.execute(
            "EXPLAIN SELECT v FROM t WHERE v > 10").fetchall())
        assert "PARALLEL_TABLE_SCAN" in plan

    def test_worker_rows_cover_table(self, parallel_con):
        rows = parallel_con.execute(
            "EXPLAIN ANALYZE SELECT count(*) FROM t").fetchall()
        worker_rows = 0
        for (line,) in rows:
            text = line.strip()
            if text.startswith("worker_") and "_rows:" in text:
                worker_rows += int(text.split(":")[1])
        assert worker_rows == ROWS

    def test_serial_plan_has_no_parallel_operators(self, serial_con):
        plan = "\n".join(r[0] for r in serial_con.execute(
            "EXPLAIN SELECT g, sum(v) FROM t GROUP BY g").fetchall())
        assert "PARALLEL" not in plan


class TestMorselRanges:
    def test_ranges_cover_and_align(self, parallel_con):
        transaction = parallel_con.database.transaction_manager.begin()
        try:
            entry = parallel_con.database.catalog.get_table("t", transaction)
            ranges = entry.data.morsel_ranges(MORSEL)
        finally:
            parallel_con.database.transaction_manager.rollback(transaction)
        assert len(ranges) > 1
        assert ranges[0][0] == 0
        assert ranges[-1][1] == entry.data.row_count
        for (start, end), (next_start, _) in zip(ranges, ranges[1:]):
            assert end == next_start
            assert start % SCAN_CHUNK_ROWS == 0

    def test_aligned_morsel_rows(self):
        assert aligned_morsel_rows(SCAN_CHUNK_ROWS) == SCAN_CHUNK_ROWS
        assert aligned_morsel_rows(SCAN_CHUNK_ROWS + 1) == SCAN_CHUNK_ROWS
        assert aligned_morsel_rows(1) == SCAN_CHUNK_ROWS
        assert aligned_morsel_rows(65536) == \
            65536 // SCAN_CHUNK_ROWS * SCAN_CHUNK_ROWS


class TestWorkerCountPolicy:
    def test_static_controller_grants_request(self):
        assert StaticController().choose_worker_count(4) == 4
        assert StaticController().choose_worker_count(0) == 1

    def test_reactive_controller_degrades_under_app_cpu(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        app = SimulatedApplication([(1000.0, 0, 0.75)])
        monitor = ResourceMonitor(1 << 30, lambda: 0, app)
        controller = ReactiveController(monitor)
        # 8 cores, app burning 75% of the machine -> 2 cores for the pool.
        assert controller.choose_worker_count(8) == 2
        assert controller.choose_worker_count(1) == 1

    def test_reactive_controller_never_starves(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        app = SimulatedApplication([(1000.0, 0, 1.0)])
        monitor = ResourceMonitor(1 << 30, lambda: 0, app)
        controller = ReactiveController(monitor)
        assert controller.choose_worker_count(4) == 1


class TestConfig:
    def test_morsel_size_option(self):
        config = DatabaseConfig.from_dict({"morsel_size": 4096})
        assert config.morsel_size == 4096
        with pytest.raises(InvalidInputError):
            DatabaseConfig.from_dict({"morsel_size": 0})

    def test_threads_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "4")
        assert DatabaseConfig.from_dict(None).threads == 4
        assert DatabaseConfig.from_dict({}).threads == 4
        # Explicit option wins over the environment.
        assert DatabaseConfig.from_dict({"threads": 2}).threads == 2
        # The plain constructor is untouched (serialization round-trips).
        assert DatabaseConfig().threads == 1

    def test_threads_env_ignored_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_THREADS", raising=False)
        assert DatabaseConfig.from_dict(None).threads == 1


class TestInterrupt:
    def test_interrupt_propagates_to_workers(self, parallel_con):
        # Flip the interrupt flag before driving the plan: every morsel
        # task polls it and the drive must abort, not hang.
        database = parallel_con.database
        transaction = database.transaction_manager.begin()
        try:
            binder = Binder(database.catalog, transaction)
            bound = binder.bind_statement(
                parse_one("SELECT g, sum(v) FROM t GROUP BY g"))
            plan = optimize(bound.plan)
            context = ExecutionContext(transaction, database)
            physical = create_physical_plan(plan, context)
            context.interrupted = True
            with pytest.raises(InterruptError):
                list(physical.execute())
        finally:
            database.transaction_manager.rollback(transaction)


class TestConcurrentDDL:
    def test_ddl_on_one_connection_during_parallel_scans(self):
        """Catalog DDL must not corrupt parallel scans on another connection.

        One connection hammers parallel aggregations over a stable table
        while a second connection creates, fills, and drops side tables --
        the MVCC catalog guarantees every scan sees a consistent snapshot
        and every aggregate stays exact.
        """
        import threading

        con = repro.connect(config={"threads": 4, "morsel_size": MORSEL})
        try:
            _populate(con)
            expected = con.execute(
                "SELECT count(v), sum(v) FROM t").fetchone()
            other = con.duplicate()
            stop = threading.Event()
            failures = []

            def scan_loop():
                try:
                    while not stop.is_set():
                        row = con.execute(
                            "SELECT count(v), sum(v) FROM t").fetchone()
                        if row != expected:
                            failures.append(f"scan saw {row}, "
                                            f"expected {expected}")
                            return
                except Exception as exc:  # propagated to the assert below
                    failures.append(repr(exc))

            scanner = threading.Thread(target=scan_loop)
            scanner.start()
            try:
                for round_index in range(20):
                    other.execute(
                        f"CREATE TABLE ddl_side_{round_index} (x INTEGER)")
                    other.execute(
                        f"INSERT INTO ddl_side_{round_index} "
                        f"VALUES ({round_index})")
                    other.execute(f"DROP TABLE ddl_side_{round_index}")
            finally:
                stop.set()
                scanner.join()
            assert failures == []
            assert "ddl_side_0" not in other.table_names()
            other.close()
        finally:
            con.close()
