"""Tests for the SQL parser (AST shapes and error reporting)."""

import pytest

from repro.errors import ParserError
from repro.sql import ast, parse, parse_one


class TestSelect:
    def test_simple(self):
        statement = parse_one("SELECT a, b FROM t")
        assert isinstance(statement, ast.SelectStatement)
        assert len(statement.select_list) == 2
        assert isinstance(statement.from_clause, ast.BaseTableRef)
        assert statement.from_clause.name == "t"

    def test_star(self):
        statement = parse_one("SELECT * FROM t")
        expression, alias = statement.select_list[0]
        assert isinstance(expression, ast.Star)
        assert alias is None

    def test_qualified_star(self):
        statement = parse_one("SELECT t.* FROM t")
        assert statement.select_list[0][0].table == "t"

    def test_aliases(self):
        statement = parse_one("SELECT a AS x, b y FROM t")
        assert statement.select_list[0][1] == "x"
        assert statement.select_list[1][1] == "y"

    def test_distinct(self):
        assert parse_one("SELECT DISTINCT a FROM t").distinct

    def test_where_group_having(self):
        statement = parse_one(
            "SELECT a, count(*) FROM t WHERE b > 1 GROUP BY a HAVING count(*) > 2")
        assert statement.where is not None
        assert len(statement.group_by) == 1
        assert statement.having is not None

    def test_order_by_modifiers(self):
        statement = parse_one(
            "SELECT a FROM t ORDER BY a DESC NULLS FIRST, b ASC NULLS LAST, c")
        items = statement.order_by
        assert (items[0].ascending, items[0].nulls_first) == (False, True)
        assert (items[1].ascending, items[1].nulls_first) == (True, False)
        assert (items[2].ascending, items[2].nulls_first) == (True, None)

    def test_limit_offset(self):
        statement = parse_one("SELECT a FROM t LIMIT 10 OFFSET 5")
        assert statement.limit.value == 10
        assert statement.offset.value == 5

    def test_select_without_from(self):
        statement = parse_one("SELECT 1 + 1")
        assert statement.from_clause is None

    def test_cte(self):
        statement = parse_one("WITH x AS (SELECT 1), y AS (SELECT 2) SELECT * FROM x")
        assert [name for name, _ in statement.ctes] == ["x", "y"]

    def test_quoted_identifier(self):
        statement = parse_one('SELECT "weird name" FROM "My Table"')
        assert statement.select_list[0][0].parts == ["weird name"]
        assert statement.from_clause.name == "My Table"


class TestExpressions:
    def predicate(self, sql):
        return parse_one(f"SELECT 1 FROM t WHERE {sql}").where

    def test_precedence_arithmetic(self):
        expression = self.predicate("a + b * c = d")
        assert expression.op == "="
        assert expression.left.op == "+"
        assert expression.left.right.op == "*"

    def test_precedence_and_or(self):
        expression = self.predicate("a = 1 OR b = 2 AND c = 3")
        assert expression.op == "or"
        assert expression.right.op == "and"

    def test_not(self):
        expression = self.predicate("NOT a = 1")
        assert isinstance(expression, ast.UnaryOp)
        assert expression.op == "not"

    def test_unary_minus(self):
        expression = parse_one("SELECT -a FROM t").select_list[0][0]
        assert isinstance(expression, ast.UnaryOp)
        assert expression.op == "-"

    def test_between(self):
        expression = self.predicate("a BETWEEN 1 AND 10")
        assert isinstance(expression, ast.Between)
        assert not expression.negated

    def test_not_between(self):
        expression = self.predicate("a NOT BETWEEN 1 AND 10")
        assert expression.negated

    def test_in_list(self):
        expression = self.predicate("a IN (1, 2, 3)")
        assert isinstance(expression, ast.InList)
        assert len(expression.items) == 3

    def test_in_subquery(self):
        expression = self.predicate("a IN (SELECT b FROM u)")
        assert isinstance(expression, ast.InSubquery)

    def test_is_null(self):
        assert not self.predicate("a IS NULL").negated
        assert self.predicate("a IS NOT NULL").negated

    def test_like_variants(self):
        like = self.predicate("a LIKE 'x%'")
        assert isinstance(like, ast.LikeExpr)
        assert not like.case_insensitive
        assert like.escape is None
        ilike = self.predicate("a ILIKE 'x%'")
        assert ilike.case_insensitive
        not_like = self.predicate("a NOT LIKE 'x%'")
        assert not_like.negated

    def test_like_escape_clause(self):
        like = self.predicate("a LIKE '100\\%' ESCAPE '\\'")
        assert isinstance(like, ast.LikeExpr)
        assert isinstance(like.escape, ast.Literal)
        assert like.escape.value == "\\"
        not_like = self.predicate("a NOT LIKE 'x!_%' ESCAPE '!'")
        assert not_like.negated
        assert not_like.escape.value == "!"
        ilike = self.predicate("a ILIKE 'x!_%' ESCAPE '!'")
        assert ilike.case_insensitive
        assert ilike.escape is not None

    def test_case_searched(self):
        expression = parse_one(
            "SELECT CASE WHEN a THEN 1 WHEN b THEN 2 ELSE 3 END FROM t"
        ).select_list[0][0]
        assert isinstance(expression, ast.Case)
        assert expression.operand is None
        assert len(expression.whens) == 2
        assert expression.else_result is not None

    def test_case_simple(self):
        expression = parse_one(
            "SELECT CASE a WHEN 1 THEN 'x' END FROM t").select_list[0][0]
        assert expression.operand is not None

    def test_case_requires_when(self):
        with pytest.raises(ParserError):
            parse_one("SELECT CASE END FROM t")

    def test_cast_forms(self):
        cast1 = parse_one("SELECT CAST(a AS INTEGER) FROM t").select_list[0][0]
        assert isinstance(cast1, ast.CastExpr)
        cast2 = parse_one("SELECT a::DOUBLE FROM t").select_list[0][0]
        assert isinstance(cast2, ast.CastExpr)
        assert cast2.type_name == "DOUBLE"

    def test_function_calls(self):
        call = parse_one("SELECT f(a, 1) FROM t").select_list[0][0]
        assert isinstance(call, ast.FunctionCall)
        assert call.name == "f"
        assert len(call.args) == 2

    def test_count_star_and_distinct(self):
        star = parse_one("SELECT count(*) FROM t").select_list[0][0]
        assert isinstance(star.args[0], ast.Star)
        distinct = parse_one("SELECT count(DISTINCT a) FROM t").select_list[0][0]
        assert distinct.distinct

    def test_parameters_numbered(self):
        statement = parse_one("SELECT ? + ? FROM t WHERE a = ?")
        expression = statement.select_list[0][0]
        assert expression.left.index == 0
        assert expression.right.index == 1
        assert statement.where.right.index == 2

    def test_concat_operator(self):
        expression = parse_one("SELECT a || b FROM t").select_list[0][0]
        assert expression.op == "concat"

    def test_exists(self):
        expression = self.predicate("EXISTS (SELECT 1 FROM u)")
        assert isinstance(expression, ast.ExistsExpr)

    def test_scalar_subquery(self):
        expression = parse_one("SELECT (SELECT max(a) FROM t)").select_list[0][0]
        assert isinstance(expression, ast.ScalarSubquery)


class TestJoins:
    def test_inner_join_on(self):
        ref = parse_one("SELECT 1 FROM a JOIN b ON a.x = b.x").from_clause
        assert isinstance(ref, ast.JoinRef)
        assert ref.join_type == "inner"
        assert ref.condition is not None

    def test_left_right_full(self):
        for keyword, kind in [("LEFT", "left"), ("LEFT OUTER", "left"),
                              ("RIGHT", "right"), ("FULL OUTER", "full")]:
            ref = parse_one(f"SELECT 1 FROM a {keyword} JOIN b ON a.x = b.x") \
                .from_clause
            assert ref.join_type == kind

    def test_cross_join(self):
        ref = parse_one("SELECT 1 FROM a CROSS JOIN b").from_clause
        assert ref.join_type == "cross"

    def test_comma_join(self):
        ref = parse_one("SELECT 1 FROM a, b").from_clause
        assert isinstance(ref, ast.JoinRef)
        assert ref.join_type == "cross"

    def test_using(self):
        ref = parse_one("SELECT 1 FROM a JOIN b USING (x, y)").from_clause
        assert ref.using_columns == ["x", "y"]

    def test_join_requires_condition(self):
        with pytest.raises(ParserError):
            parse_one("SELECT 1 FROM a JOIN b")

    def test_subquery_in_from(self):
        ref = parse_one("SELECT 1 FROM (SELECT 2) sub").from_clause
        assert isinstance(ref, ast.SubqueryRef)
        assert ref.alias == "sub"

    def test_table_function(self):
        ref = parse_one("SELECT 1 FROM read_csv('f.csv') x").from_clause
        assert isinstance(ref, ast.TableFunctionRef)
        assert ref.name == "read_csv"

    def test_bare_csv_path(self):
        ref = parse_one("SELECT 1 FROM 'data.csv'").from_clause
        assert isinstance(ref, ast.TableFunctionRef)
        assert ref.args[0].value == "data.csv"


class TestSetOperations:
    def test_union_all(self):
        statement = parse_one("SELECT 1 UNION ALL SELECT 2")
        assert isinstance(statement, ast.SetOpStatement)
        assert statement.op == "union"
        assert statement.all

    def test_union_distinct(self):
        assert not parse_one("SELECT 1 UNION SELECT 2").all

    def test_except_intersect(self):
        assert parse_one("SELECT 1 EXCEPT SELECT 2").op == "except"
        assert parse_one("SELECT 1 INTERSECT SELECT 2").op == "intersect"

    def test_chained_left_associative(self):
        statement = parse_one("SELECT 1 UNION SELECT 2 UNION SELECT 3")
        assert isinstance(statement.left, ast.SetOpStatement)

    def test_order_by_applies_to_whole(self):
        statement = parse_one("SELECT a FROM t UNION SELECT a FROM u ORDER BY 1")
        assert isinstance(statement, ast.SetOpStatement)
        assert len(statement.order_by) == 1


class TestDML:
    def test_insert_values(self):
        statement = parse_one("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert isinstance(statement, ast.InsertStatement)
        assert statement.columns is None
        assert len(statement.values) == 2

    def test_insert_with_columns(self):
        statement = parse_one("INSERT INTO t (a, b) VALUES (1, 2)")
        assert statement.columns == ["a", "b"]

    def test_insert_select(self):
        statement = parse_one("INSERT INTO t SELECT * FROM u")
        assert statement.values is None
        assert statement.select is not None

    def test_update(self):
        statement = parse_one("UPDATE t SET a = 1, b = b + 1 WHERE c = 2")
        assert isinstance(statement, ast.UpdateStatement)
        assert [column for column, _ in statement.assignments] == ["a", "b"]
        assert statement.where is not None

    def test_delete(self):
        statement = parse_one("DELETE FROM t WHERE a = 1")
        assert isinstance(statement, ast.DeleteStatement)

    def test_delete_without_where(self):
        assert parse_one("DELETE FROM t").where is None


class TestDDL:
    def test_create_table(self):
        statement = parse_one(
            "CREATE TABLE t (a INTEGER NOT NULL, b VARCHAR DEFAULT 'x', "
            "c DOUBLE PRIMARY KEY)")
        assert isinstance(statement, ast.CreateTableStatement)
        specs = statement.columns
        assert not specs[0].nullable
        assert specs[1].default.value == "x"
        assert not specs[2].nullable  # PRIMARY KEY implies NOT NULL

    def test_create_table_if_not_exists(self):
        assert parse_one("CREATE TABLE IF NOT EXISTS t (a INT)").if_not_exists

    def test_create_table_as_select(self):
        statement = parse_one("CREATE TABLE t AS SELECT 1 AS x")
        assert statement.as_select is not None

    def test_typed_widths(self):
        statement = parse_one("CREATE TABLE t (a VARCHAR(20), b DECIMAL(10,2))")
        assert statement.columns[0].type_name == "VARCHAR(20)"

    def test_create_view(self):
        statement = parse_one("CREATE VIEW v AS SELECT a FROM t")
        assert isinstance(statement, ast.CreateViewStatement)
        assert "SELECT" in statement.sql.upper()

    def test_create_or_replace_view(self):
        assert parse_one("CREATE OR REPLACE VIEW v AS SELECT 1").or_replace

    def test_drop(self):
        statement = parse_one("DROP TABLE IF EXISTS t")
        assert statement.kind == "table"
        assert statement.if_exists
        assert parse_one("DROP VIEW v").kind == "view"


class TestMiscStatements:
    def test_transactions(self):
        assert parse_one("BEGIN").action == "begin"
        assert parse_one("BEGIN TRANSACTION").action == "begin"
        assert parse_one("COMMIT").action == "commit"
        assert parse_one("ROLLBACK").action == "rollback"

    def test_checkpoint(self):
        assert isinstance(parse_one("CHECKPOINT"), ast.CheckpointStatement)

    def test_pragma_forms(self):
        assert parse_one("PRAGMA memory_limit='1GB'").value == "1GB"
        assert parse_one("PRAGMA threads=4").value == 4
        assert parse_one("PRAGMA database_size").value is None
        assert parse_one("PRAGMA table_info(t)").value == "t"

    def test_copy_from(self):
        statement = parse_one("COPY t FROM 'x.csv' (HEADER, DELIMITER ';')")
        assert statement.direction == "from"
        assert statement.options == {"header": True, "delimiter": ";"}

    def test_copy_to_query(self):
        statement = parse_one("COPY (SELECT 1) TO 'out.csv'")
        assert statement.direction == "to"
        assert statement.select is not None

    def test_explain(self):
        statement = parse_one("EXPLAIN SELECT 1")
        assert isinstance(statement, ast.ExplainStatement)

    def test_multiple_statements(self):
        statements = parse("SELECT 1; SELECT 2;")
        assert len(statements) == 2

    def test_missing_semicolon(self):
        with pytest.raises(ParserError):
            parse("SELECT 1 SELECT 2")


class TestErrors:
    @pytest.mark.parametrize("sql", [
        "SELECT", "SELECT FROM t", "SELECT a FROM", "INSERT t VALUES (1)",
        "UPDATE t a = 1", "CREATE t", "SELECT a FROM t WHERE",
        "SELECT a FROM t GROUP", "FROB the database",
        "SELECT a NOT 5 FROM t",
    ])
    def test_syntax_errors(self, sql):
        with pytest.raises(ParserError):
            parse_one(sql)

    def test_error_carries_position(self):
        try:
            parse_one("SELECT a FROM")
        except ParserError as error:
            assert error.position >= 0
        else:  # pragma: no cover
            pytest.fail("expected ParserError")
