"""Optimizer tests: folding, filter pushdown, join reordering, limit
pushdown, column pruning (plan shapes), and decision introspection."""

import pytest

import repro
from repro.optimizer import cost, optimize
from repro.planner import (
    Binder,
    LogicalAggregate,
    LogicalEmpty,
    LogicalFilter,
    LogicalGet,
    LogicalJoin,
    LogicalProjection,
)
from repro.planner.logical import LogicalLimit
from repro.planner.expressions import BoundConstant
from repro.sql import parse_one


@pytest.fixture
def plan_for(populated):
    """Bind + optimize a SELECT against the populated connection's catalog."""
    database = populated.database

    def build(sql):
        transaction = database.transaction_manager.begin()
        try:
            binder = Binder(database.catalog, transaction)
            bound = binder.bind_statement(parse_one(sql))
            return optimize(bound.plan)
        finally:
            database.transaction_manager.rollback(transaction)

    return build


def find_ops(plan, kind):
    found = []
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, kind):
            found.append(node)
        stack.extend(node.children)
    return found


class TestConstantFolding:
    def test_arithmetic_folds(self, plan_for):
        plan = plan_for("SELECT 1 + 2 * 3 FROM sample")
        projection = find_ops(plan, LogicalProjection)[0]
        assert isinstance(projection.expressions[0], BoundConstant)
        assert projection.expressions[0].value == 7

    def test_true_filter_removed(self, plan_for):
        plan = plan_for("SELECT i FROM sample WHERE 1 = 1")
        assert not find_ops(plan, LogicalFilter)
        get = find_ops(plan, LogicalGet)[0]
        assert not get.pushed_filters

    def test_false_filter_becomes_empty(self, plan_for):
        plan = plan_for("SELECT i FROM sample WHERE 1 = 2")
        assert find_ops(plan, LogicalEmpty)

    def test_folding_keeps_erroring_expressions(self, plan_for):
        # CAST('x' AS INTEGER) fails: folding must not raise at plan time.
        plan = plan_for("SELECT i FROM sample WHERE i < 5 OR "
                        "CAST('x' AS VARCHAR) = 'x'")
        assert plan is not None

    def test_results_unchanged_by_folding(self, populated):
        rows = populated.execute(
            "SELECT i + (2 * 3) FROM sample WHERE i < 1 + 2 ORDER BY 1"
        ).fetchall()
        assert rows == [(7,), (8,)]


class TestFilterPushdown:
    def test_where_reaches_scan(self, plan_for):
        plan = plan_for("SELECT i FROM sample WHERE d > 1")
        get = find_ops(plan, LogicalGet)[0]
        assert len(get.pushed_filters) == 1
        assert not find_ops(plan, LogicalFilter)

    def test_conjuncts_split(self, plan_for):
        plan = plan_for("SELECT i FROM sample WHERE d > 1 AND i < 5 AND "
                        "s = 'alpha'")
        get = find_ops(plan, LogicalGet)[0]
        assert len(get.pushed_filters) == 3

    def test_pushdown_through_projection(self, plan_for):
        plan = plan_for(
            "SELECT x FROM (SELECT i * 2 AS x FROM sample) sub WHERE x > 4")
        get = find_ops(plan, LogicalGet)[0]
        assert len(get.pushed_filters) == 1  # substituted i*2 > 4

    def test_pushdown_splits_join_sides(self, populated, plan_for):
        populated.execute("CREATE TABLE other (i INTEGER, z DOUBLE)")
        plan = plan_for(
            "SELECT sample.i FROM sample JOIN other ON sample.i = other.i "
            "WHERE sample.d > 1 AND other.z < 5")
        gets = find_ops(plan, LogicalGet)
        assert all(len(get.pushed_filters) == 1 for get in gets)

    def test_cross_join_where_becomes_join_condition(self, populated, plan_for):
        populated.execute("CREATE TABLE other (i INTEGER)")
        plan = plan_for(
            "SELECT sample.i FROM sample, other WHERE sample.i = other.i")
        join = find_ops(plan, LogicalJoin)[0]
        assert join.join_type == "inner"
        assert len(join.conditions) == 1

    def test_left_join_right_filter_not_pushed(self, populated):
        populated.execute("CREATE TABLE other (i INTEGER, z INTEGER)")
        populated.execute("INSERT INTO other VALUES (1, 10)")
        # Filtering on the right side of a LEFT JOIN must apply after
        # null-extension, not before.
        rows = populated.execute(
            "SELECT sample.i, other.z FROM sample LEFT JOIN other "
            "ON sample.i = other.i WHERE other.z IS NULL ORDER BY 1").fetchall()
        assert rows == [(2, None), (3, None), (4, None), (5, None)]

    def test_group_key_filter_pushed_below_aggregate(self, plan_for):
        plan = plan_for(
            "SELECT s, count(*) FROM sample GROUP BY s HAVING s = 'alpha'")
        # The HAVING on a pure group key becomes a scan filter.
        get = find_ops(plan, LogicalGet)[0]
        aggregate = find_ops(plan, LogicalAggregate)[0]
        assert len(get.pushed_filters) == 1

    def test_having_on_aggregate_stays_above(self, plan_for):
        plan = plan_for(
            "SELECT s, count(*) FROM sample GROUP BY s HAVING count(*) > 1")
        filters = find_ops(plan, LogicalFilter)
        assert len(filters) == 1
        assert isinstance(filters[0].children[0], LogicalAggregate)

    def test_results_match_without_optimizer_effects(self, populated):
        # Semantic sanity: pushdown must not change results.
        rows = populated.execute(
            "SELECT s FROM (SELECT * FROM sample) t WHERE i BETWEEN 2 AND 4 "
            "AND s IS NOT NULL ORDER BY i").fetchall()
        assert rows == [("beta",), ("alpha",)]


class TestColumnPruning:
    def test_scan_narrowed_to_used_columns(self, plan_for):
        plan = plan_for("SELECT i FROM sample")
        get = find_ops(plan, LogicalGet)[0]
        assert get.names == ["i"]
        assert get.column_ids == [0]

    def test_filter_columns_kept(self, plan_for):
        plan = plan_for("SELECT i FROM sample WHERE d > 1")
        get = find_ops(plan, LogicalGet)[0]
        assert set(get.names) == {"i", "d"}

    def test_aggregate_prunes_input(self, plan_for):
        plan = plan_for("SELECT sum(i) FROM sample")
        get = find_ops(plan, LogicalGet)[0]
        assert get.names == ["i"]

    def test_join_children_pruned(self, populated, plan_for):
        populated.execute(
            "CREATE TABLE wide (i INTEGER, a INTEGER, b INTEGER, c INTEGER)")
        plan = plan_for(
            "SELECT sample.s, wide.a FROM sample JOIN wide ON sample.i = wide.i")
        gets = {get.table_entry.name: get for get in find_ops(plan, LogicalGet)}
        assert set(gets["sample"].names) == {"i", "s"}
        assert set(gets["wide"].names) == {"i", "a"}

    def test_count_star_scans_one_column(self, plan_for):
        plan = plan_for("SELECT count(*) FROM sample")
        get = find_ops(plan, LogicalGet)[0]
        assert len(get.column_ids) == 1

    def test_order_by_hidden_column_pruned_after_sort(self, populated):
        rows = populated.execute(
            "SELECT s FROM sample ORDER BY d NULLS LAST LIMIT 1").fetchall()
        assert rows == [("gamma",)]

    def test_pruning_preserves_correctness_wide_table(self, con):
        con.execute("CREATE TABLE w (a INTEGER, b INTEGER, c INTEGER, "
                    "d INTEGER, e INTEGER)")
        con.execute("INSERT INTO w VALUES (1, 2, 3, 4, 5), (10, 20, 30, 40, 50)")
        assert con.execute("SELECT c FROM w WHERE e > 10").fetchall() == [(30,)]
        assert con.execute("SELECT e, a FROM w ORDER BY b DESC").fetchall() == \
            [(50, 10), (5, 1)]


@pytest.fixture
def star(con):
    """A small star schema: one fact table, two dimensions of very
    different sizes, so the statistics-driven join order is unambiguous."""
    con.execute("CREATE TABLE facts (k INTEGER, dim_a INTEGER, "
                "dim_b INTEGER, v INTEGER)")
    con.execute("CREATE TABLE dim_small (id INTEGER, label VARCHAR)")
    con.execute("CREATE TABLE dim_large (id INTEGER, payload INTEGER)")
    import numpy as np

    with con.appender("facts") as appender:
        arange = np.arange(4000, dtype=np.int32)
        appender.append_numpy({"k": arange, "dim_a": arange % 20,
                               "dim_b": arange % 500, "v": arange})
    con.executemany("INSERT INTO dim_small VALUES (?, ?)",
                    [(i, f"label-{i}") for i in range(20)])
    con.executemany("INSERT INTO dim_large VALUES (?, ?)",
                    [(i, i * 10) for i in range(500)])
    return con


def _join_shape(plan):
    """(left, right) table/operator labels of every join, top-down."""
    shapes = []
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, LogicalJoin):
            labels = []
            for child in node.children:
                inner = child
                while not isinstance(inner, LogicalGet) and inner.children:
                    inner = inner.children[0] if len(inner.children) == 1 \
                        else inner
                    if isinstance(inner, LogicalJoin):
                        break
                labels.append(inner.table_entry.name
                              if isinstance(inner, LogicalGet) else "join")
            shapes.append(tuple(labels))
        stack.extend(node.children)
    return shapes


class TestJoinReorder:
    SQL = ("SELECT facts.v, dim_small.label FROM facts, dim_large, dim_small "
           "WHERE facts.dim_b = dim_large.id AND facts.dim_a = dim_small.id")

    def test_smallest_relation_starts_the_order(self, star):
        star.execute(self.SQL).fetchall()
        decisions = {row[2]: row for row in star.execute(
            "SELECT * FROM repro_optimizer()").fetchall()}
        order = decisions["join_order"][3]
        assert order.split()[0] == "dim_small"

    def test_large_probe_side_streams(self, star, plan_for):
        plan = plan_for(self.SQL)
        joins = find_ops(plan, LogicalJoin)
        assert len(joins) == 2
        # The big fact table must never be a hash build side (right child).
        for join in joins:
            right = join.children[1]
            while not isinstance(right, LogicalGet):
                right = right.children[0]
            assert right.table_entry.name != "facts"

    def test_results_unchanged_by_reordering(self, star):
        expected = sorted(star.execute(
            "SELECT facts.v, dim_small.label FROM facts "
            "JOIN dim_small ON facts.dim_a = dim_small.id "
            "JOIN dim_large ON facts.dim_b = dim_large.id "
            "WHERE facts.v < 50").fetchall())
        got = sorted(star.execute(
            "SELECT facts.v, dim_small.label FROM dim_large, facts, dim_small "
            "WHERE facts.dim_b = dim_large.id AND facts.dim_a = dim_small.id "
            "AND facts.v < 50").fetchall())
        assert got == expected
        assert len(got) == 50

    def test_column_order_restored_after_reorder(self, star):
        rows = star.execute(
            "SELECT dim_large.payload, facts.k, dim_small.label "
            "FROM dim_large, facts, dim_small "
            "WHERE facts.dim_b = dim_large.id AND facts.dim_a = dim_small.id "
            "AND facts.k = 7").fetchall()
        assert rows == [(70, 7, "label-7")]

    def test_residual_predicates_survive(self, star):
        rows = star.execute(
            "SELECT count(*) FROM facts, dim_large "
            "WHERE facts.dim_b = dim_large.id "
            "AND facts.v + dim_large.payload > 100000").fetchall()
        expected = star.execute(
            "SELECT count(*) FROM facts JOIN dim_large "
            "ON facts.dim_b = dim_large.id "
            "WHERE facts.v + dim_large.payload > 100000").fetchall()
        assert rows == expected

    def test_cross_product_without_conditions(self, star):
        rows = star.execute(
            "SELECT count(*) FROM dim_small, dim_large").fetchall()
        assert rows == [(20 * 500,)]

    def test_outer_joins_not_flattened(self, star):
        rows = star.execute(
            "SELECT count(*) FROM dim_small LEFT JOIN facts "
            "ON dim_small.id = facts.dim_a").fetchall()
        assert rows == [(4000,)]

    def test_disabled_statistics_keep_syntactic_order(self, star, plan_for):
        previous = cost.set_statistics_enabled(False)
        try:
            plan = plan_for(self.SQL)
            joins = find_ops(plan, LogicalJoin)
            rights = []
            for join in joins:
                right = join.children[1]
                while not isinstance(right, LogicalGet):
                    right = right.children[0]
                rights.append(right.table_entry.name)
            # Syntactic left-deep order: the last-listed table stays the
            # build side of the top join.
            assert rights == ["dim_small", "dim_large"]
        finally:
            cost.set_statistics_enabled(previous)

    def test_four_way_chain(self, star):
        star.execute("CREATE TABLE bridge (b_id INTEGER, s_id INTEGER)")
        star.executemany("INSERT INTO bridge VALUES (?, ?)",
                         [(i, i % 20) for i in range(500)])
        rows = star.execute(
            "SELECT count(*) FROM facts, dim_large, bridge, dim_small "
            "WHERE facts.dim_b = dim_large.id AND dim_large.id = bridge.b_id "
            "AND bridge.s_id = dim_small.id").fetchall()
        assert rows == [(4000,)]


class TestLimitPushdown:
    def test_scan_gets_limit_hint(self, plan_for):
        plan = plan_for("SELECT i FROM sample LIMIT 2")
        get = find_ops(plan, LogicalGet)[0]
        assert get.limit_hint == 2

    def test_offset_included_in_hint(self, plan_for):
        plan = plan_for("SELECT i FROM sample LIMIT 2 OFFSET 3")
        get = find_ops(plan, LogicalGet)[0]
        assert get.limit_hint == 5

    def test_stacked_limits_merge(self, plan_for):
        plan = plan_for(
            "SELECT * FROM (SELECT i FROM sample LIMIT 4) t LIMIT 2")
        limits = find_ops(plan, LogicalLimit)
        assert len(limits) == 1
        assert limits[0].limit == 2

    def test_stacked_limit_windows_clip(self, populated):
        rows = populated.execute(
            "SELECT * FROM (SELECT i FROM sample ORDER BY i LIMIT 3) t "
            "LIMIT 5").fetchall()
        assert rows == [(1,), (2,), (3,)]

    def test_offset_stacking_correct(self, populated):
        rows = populated.execute(
            "SELECT * FROM (SELECT i FROM sample ORDER BY i LIMIT 4 OFFSET 1)"
            " t LIMIT 2 OFFSET 1").fetchall()
        assert rows == [(3,), (4,)]

    def test_limit_exact_with_hint(self, con):
        con.execute("CREATE TABLE big (a INTEGER)")
        con.executemany("INSERT INTO big VALUES (?)",
                        [(i,) for i in range(100)])
        rows = con.execute("SELECT a FROM big WHERE a >= 10 LIMIT 7").fetchall()
        assert len(rows) == 7
        assert all(a >= 10 for (a,) in rows)

    def test_topn_fusion_still_happens(self, populated):
        rows = populated.execute("EXPLAIN ANALYZE SELECT i FROM sample "
                                 "ORDER BY i DESC LIMIT 2").fetchall()
        text = "\n".join(row[0] for row in rows)
        assert "TOP_N" in text
        result = populated.execute(
            "SELECT i FROM sample ORDER BY i DESC LIMIT 2").fetchall()
        assert result == [(5,), (4,)]


class TestOptimizerIntrospection:
    def test_estimates_in_explain(self, star):
        rows = star.execute(
            "EXPLAIN SELECT count(*) FROM facts WHERE v < 100").fetchall()
        text = "\n".join(row[0] for row in rows)
        assert "(est=" in text

    def test_explain_analyze_pairs_est_with_actual(self, star):
        rows = star.execute(
            "EXPLAIN ANALYZE SELECT facts.v, dim_small.label "
            "FROM facts, dim_large, dim_small "
            "WHERE facts.dim_b = dim_large.id "
            "AND facts.dim_a = dim_small.id").fetchall()
        text = "\n".join(row[0] for row in rows)
        assert "est_rows=" in text
        assert "rows_out=" in text

    def test_optimizer_log_reports_join_order_and_scans(self, star):
        star.execute(
            "SELECT count(*) FROM facts, dim_small "
            "WHERE facts.dim_a = dim_small.id AND facts.v < 100").fetchall()
        rows = star.execute("SELECT phase, decision, detail "
                            "FROM repro_optimizer()").fetchall()
        phases = {row[0] for row in rows}
        assert "join_order" in phases
        assert "scan" in phases
        scan_details = [row[2] for row in rows if row[0] == "scan"]
        assert any("selectivity=" in detail for detail in scan_details)

    def test_reading_log_does_not_clobber_it(self, star):
        star.execute("SELECT count(*) FROM facts WHERE v = 1").fetchall()
        first = star.execute("SELECT * FROM repro_optimizer()").fetchall()
        second = star.execute("SELECT * FROM repro_optimizer()").fetchall()
        assert first == second
        assert first  # the SELECT on facts was recorded

    def test_limit_decisions_recorded(self, star):
        star.execute("SELECT v FROM facts LIMIT 5").fetchall()
        rows = star.execute("SELECT decision FROM repro_optimizer() "
                            "WHERE phase = 'limit'").fetchall()
        assert any("limit hint" in row[0] for row in rows)
