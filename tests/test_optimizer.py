"""Optimizer tests: folding, filter pushdown, column pruning (plan shapes)."""

import pytest

import repro
from repro.optimizer import optimize
from repro.planner import (
    Binder,
    LogicalAggregate,
    LogicalEmpty,
    LogicalFilter,
    LogicalGet,
    LogicalJoin,
    LogicalProjection,
)
from repro.planner.expressions import BoundConstant
from repro.sql import parse_one


@pytest.fixture
def plan_for(populated):
    """Bind + optimize a SELECT against the populated connection's catalog."""
    database = populated.database

    def build(sql):
        transaction = database.transaction_manager.begin()
        try:
            binder = Binder(database.catalog, transaction)
            bound = binder.bind_statement(parse_one(sql))
            return optimize(bound.plan)
        finally:
            database.transaction_manager.rollback(transaction)

    return build


def find_ops(plan, kind):
    found = []
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, kind):
            found.append(node)
        stack.extend(node.children)
    return found


class TestConstantFolding:
    def test_arithmetic_folds(self, plan_for):
        plan = plan_for("SELECT 1 + 2 * 3 FROM sample")
        projection = find_ops(plan, LogicalProjection)[0]
        assert isinstance(projection.expressions[0], BoundConstant)
        assert projection.expressions[0].value == 7

    def test_true_filter_removed(self, plan_for):
        plan = plan_for("SELECT i FROM sample WHERE 1 = 1")
        assert not find_ops(plan, LogicalFilter)
        get = find_ops(plan, LogicalGet)[0]
        assert not get.pushed_filters

    def test_false_filter_becomes_empty(self, plan_for):
        plan = plan_for("SELECT i FROM sample WHERE 1 = 2")
        assert find_ops(plan, LogicalEmpty)

    def test_folding_keeps_erroring_expressions(self, plan_for):
        # CAST('x' AS INTEGER) fails: folding must not raise at plan time.
        plan = plan_for("SELECT i FROM sample WHERE i < 5 OR "
                        "CAST('x' AS VARCHAR) = 'x'")
        assert plan is not None

    def test_results_unchanged_by_folding(self, populated):
        rows = populated.execute(
            "SELECT i + (2 * 3) FROM sample WHERE i < 1 + 2 ORDER BY 1"
        ).fetchall()
        assert rows == [(7,), (8,)]


class TestFilterPushdown:
    def test_where_reaches_scan(self, plan_for):
        plan = plan_for("SELECT i FROM sample WHERE d > 1")
        get = find_ops(plan, LogicalGet)[0]
        assert len(get.pushed_filters) == 1
        assert not find_ops(plan, LogicalFilter)

    def test_conjuncts_split(self, plan_for):
        plan = plan_for("SELECT i FROM sample WHERE d > 1 AND i < 5 AND "
                        "s = 'alpha'")
        get = find_ops(plan, LogicalGet)[0]
        assert len(get.pushed_filters) == 3

    def test_pushdown_through_projection(self, plan_for):
        plan = plan_for(
            "SELECT x FROM (SELECT i * 2 AS x FROM sample) sub WHERE x > 4")
        get = find_ops(plan, LogicalGet)[0]
        assert len(get.pushed_filters) == 1  # substituted i*2 > 4

    def test_pushdown_splits_join_sides(self, populated, plan_for):
        populated.execute("CREATE TABLE other (i INTEGER, z DOUBLE)")
        plan = plan_for(
            "SELECT sample.i FROM sample JOIN other ON sample.i = other.i "
            "WHERE sample.d > 1 AND other.z < 5")
        gets = find_ops(plan, LogicalGet)
        assert all(len(get.pushed_filters) == 1 for get in gets)

    def test_cross_join_where_becomes_join_condition(self, populated, plan_for):
        populated.execute("CREATE TABLE other (i INTEGER)")
        plan = plan_for(
            "SELECT sample.i FROM sample, other WHERE sample.i = other.i")
        join = find_ops(plan, LogicalJoin)[0]
        assert join.join_type == "inner"
        assert len(join.conditions) == 1

    def test_left_join_right_filter_not_pushed(self, populated):
        populated.execute("CREATE TABLE other (i INTEGER, z INTEGER)")
        populated.execute("INSERT INTO other VALUES (1, 10)")
        # Filtering on the right side of a LEFT JOIN must apply after
        # null-extension, not before.
        rows = populated.execute(
            "SELECT sample.i, other.z FROM sample LEFT JOIN other "
            "ON sample.i = other.i WHERE other.z IS NULL ORDER BY 1").fetchall()
        assert rows == [(2, None), (3, None), (4, None), (5, None)]

    def test_group_key_filter_pushed_below_aggregate(self, plan_for):
        plan = plan_for(
            "SELECT s, count(*) FROM sample GROUP BY s HAVING s = 'alpha'")
        # The HAVING on a pure group key becomes a scan filter.
        get = find_ops(plan, LogicalGet)[0]
        aggregate = find_ops(plan, LogicalAggregate)[0]
        assert len(get.pushed_filters) == 1

    def test_having_on_aggregate_stays_above(self, plan_for):
        plan = plan_for(
            "SELECT s, count(*) FROM sample GROUP BY s HAVING count(*) > 1")
        filters = find_ops(plan, LogicalFilter)
        assert len(filters) == 1
        assert isinstance(filters[0].children[0], LogicalAggregate)

    def test_results_match_without_optimizer_effects(self, populated):
        # Semantic sanity: pushdown must not change results.
        rows = populated.execute(
            "SELECT s FROM (SELECT * FROM sample) t WHERE i BETWEEN 2 AND 4 "
            "AND s IS NOT NULL ORDER BY i").fetchall()
        assert rows == [("beta",), ("alpha",)]


class TestColumnPruning:
    def test_scan_narrowed_to_used_columns(self, plan_for):
        plan = plan_for("SELECT i FROM sample")
        get = find_ops(plan, LogicalGet)[0]
        assert get.names == ["i"]
        assert get.column_ids == [0]

    def test_filter_columns_kept(self, plan_for):
        plan = plan_for("SELECT i FROM sample WHERE d > 1")
        get = find_ops(plan, LogicalGet)[0]
        assert set(get.names) == {"i", "d"}

    def test_aggregate_prunes_input(self, plan_for):
        plan = plan_for("SELECT sum(i) FROM sample")
        get = find_ops(plan, LogicalGet)[0]
        assert get.names == ["i"]

    def test_join_children_pruned(self, populated, plan_for):
        populated.execute(
            "CREATE TABLE wide (i INTEGER, a INTEGER, b INTEGER, c INTEGER)")
        plan = plan_for(
            "SELECT sample.s, wide.a FROM sample JOIN wide ON sample.i = wide.i")
        gets = {get.table_entry.name: get for get in find_ops(plan, LogicalGet)}
        assert set(gets["sample"].names) == {"i", "s"}
        assert set(gets["wide"].names) == {"i", "a"}

    def test_count_star_scans_one_column(self, plan_for):
        plan = plan_for("SELECT count(*) FROM sample")
        get = find_ops(plan, LogicalGet)[0]
        assert len(get.column_ids) == 1

    def test_order_by_hidden_column_pruned_after_sort(self, populated):
        rows = populated.execute(
            "SELECT s FROM sample ORDER BY d NULLS LAST LIMIT 1").fetchall()
        assert rows == [("gamma",)]

    def test_pruning_preserves_correctness_wide_table(self, con):
        con.execute("CREATE TABLE w (a INTEGER, b INTEGER, c INTEGER, "
                    "d INTEGER, e INTEGER)")
        con.execute("INSERT INTO w VALUES (1, 2, 3, 4, 5), (10, 20, 30, 40, 50)")
        assert con.execute("SELECT c FROM w WHERE e > 10").fetchall() == [(30,)]
        assert con.execute("SELECT e, a FROM w ORDER BY b DESC").fetchall() == \
            [(50, 10), (5, 1)]
