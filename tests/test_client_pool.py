"""The redesigned client API: pools, prepared statements, paramstyles.

PR9 satellites: ``repro.connect(pool_size=N)`` returning a
:class:`~repro.client.pool.ConnectionPool`, ``Connection.prepare()``
returning a :class:`~repro.client.prepared.PreparedStatement`, unified
qmark/named paramstyles across every entry point, and the PEP 249
closed-handle contract (``InterfaceError``, never an internal engine
error) for closed connections, cursors, and pool-returned proxies.
"""

import pytest

import repro
from repro.client import Connection, ConnectionPool, PreparedStatement
from repro.database import Database
from repro.errors import (
    ClosedHandleError,
    InterfaceError,
    InvalidInputError,
    ParserError,
)


# -- pooled connections -----------------------------------------------------

def test_connect_with_pool_size_returns_pool():
    with repro.connect(pool_size=2) as pool:
        assert isinstance(pool, ConnectionPool)
        assert pool.size == 2
        with pool.connection() as con:
            con.execute("CREATE TABLE t (i INTEGER)")
            con.execute("INSERT INTO t VALUES (1)")
            assert pool.available == 1
        assert pool.available == 2
        # Pooled connections share the one database.
        with pool.connection() as con:
            assert con.execute("SELECT count(*) FROM t").fetchone() == (1,)


def test_pool_pragmas_do_not_leak_across_borrowers():
    with repro.connect(pool_size=1) as pool:
        default_threads = pool._database.config.threads
        with pool.connection() as con:
            con.execute("PRAGMA threads=3")
            assert con.session_config.threads == 3
        # The next borrower gets a pristine config.
        with pool.connection() as con:
            assert con.session_config.threads == default_threads
        assert pool._database.config.threads == default_threads


def test_pool_rolls_back_abandoned_transaction():
    with repro.connect(pool_size=1) as pool:
        with pool.connection() as con:
            con.execute("CREATE TABLE t (i INTEGER)")
        with pool.connection() as con:
            con.execute("BEGIN")
            con.execute("INSERT INTO t VALUES (1)")
            # Returned to the pool mid-transaction: rolled back.
        with pool.connection() as con:
            assert con.execute("SELECT count(*) FROM t").fetchone() == (0,)


def test_released_proxy_raises_interface_error():
    with repro.connect(pool_size=1) as pool:
        con = pool.acquire()
        con.execute("SELECT 1")
        con.close()
        assert con.released
        with pytest.raises(InterfaceError):
            con.execute("SELECT 1")
        with pytest.raises(InterfaceError):
            con.cursor()
        con.close()  # idempotent


def test_pool_acquire_timeout_raises_interface_error():
    with repro.connect(pool_size=1) as pool:
        borrowed = pool.acquire()
        with pytest.raises(InterfaceError):
            pool.acquire(timeout=0.05)
        borrowed.close()
        pool.acquire(timeout=0.05).close()


def test_closed_pool_raises_interface_error():
    pool = repro.connect(pool_size=1)
    pool.close()
    with pytest.raises(InterfaceError):
        pool.acquire()


def test_pool_size_must_be_positive():
    with pytest.raises(InvalidInputError):
        repro.connect(pool_size=0)


# -- prepared statements ----------------------------------------------------

def test_prepared_statement_execute(con):
    con.execute("CREATE TABLE t (i INTEGER, s VARCHAR)")
    insert = con.prepare("INSERT INTO t VALUES (?, ?)")
    assert isinstance(insert, PreparedStatement)
    insert.execute((1, "one"))
    insert.executemany([(2, "two"), (3, "three")])
    with con.prepare("SELECT s FROM t WHERE i = ?") as select:
        assert select.execute((2,)).fetchone() == ("two",)
        assert select.execute((3,)).fetchone() == ("three",)


def test_prepared_statement_named_parameters(con):
    con.execute("CREATE TABLE t (i INTEGER)")
    con.execute("INSERT INTO t VALUES (1), (2), (3)")
    statement = con.prepare("SELECT count(*) FROM t WHERE i > :low")
    assert statement.execute({"low": 0}).fetchone() == (3,)
    assert statement.execute({"low": 2}).fetchone() == (1,)


def test_prepared_statement_reuses_cached_plan(con):
    con.execute("CREATE TABLE t (i INTEGER)")
    con.execute("INSERT INTO t VALUES (1), (2), (3)")
    statement = con.prepare("SELECT count(*) FROM t WHERE i > ?")
    before = con.database.plan_cache.stats()
    for value in (0, 1, 2):
        statement.execute((value,))
    after = con.database.plan_cache.stats()
    assert after["misses"] - before["misses"] == 1
    assert after["hits"] - before["hits"] == 2


def test_prepared_statement_rejects_multi_statement(con):
    with pytest.raises(InvalidInputError):
        con.prepare("SELECT 1; SELECT 2")
    with pytest.raises(InvalidInputError):
        con.prepare("   ")


def test_closed_prepared_statement_raises(con):
    statement = con.prepare("SELECT 1")
    statement.close()
    with pytest.raises(ClosedHandleError):
        statement.execute()


# -- unified paramstyles ----------------------------------------------------

def test_named_parameters_on_connection_and_cursor(con):
    con.execute("CREATE TABLE t (i INTEGER, s VARCHAR)")
    con.execute("INSERT INTO t VALUES (:i, :s)", {"i": 1, "s": "one"})
    cursor = con.cursor()
    cursor.execute("SELECT s FROM t WHERE i = :i", {"i": 1})
    assert cursor.fetchone() == ("one",)
    cursor.executemany("INSERT INTO t VALUES (:i, :s)",
                       [{"i": 2, "s": "two"}, {"i": 3, "s": "three"}])
    assert con.execute("SELECT count(*) FROM t").fetchone() == (3,)


def test_named_parameter_reused_twice_in_one_statement(con):
    result = con.execute("SELECT :x + :x", {"x": 21})
    assert result.fetchone() == (42,)


def test_mixed_paramstyles_rejected(con):
    with pytest.raises(ParserError):
        con.execute("SELECT ? + :x", {"x": 1})


def test_string_parameters_rejected(con):
    with pytest.raises(InvalidInputError):
        con.execute("SELECT ?", "oops")


def test_parameter_types_key_distinct_plans(con):
    con.execute("CREATE TABLE t (d DOUBLE)")
    con.execute("INSERT INTO t VALUES (1.5)")
    before = con.database.plan_cache.stats()
    sql = "SELECT count(*) FROM t WHERE d > ?"
    assert con.execute(sql, (1,)).fetchone() == (1,)
    assert con.execute(sql, (1.0,)).fetchone() == (1,)
    after = con.database.plan_cache.stats()
    # int and float fingerprints bind separate plans -- a cached cast for
    # one type is never replayed against the other.
    assert after["misses"] - before["misses"] == 2


# -- closed-handle contract -------------------------------------------------

def test_closed_connection_raises_interface_error():
    con = repro.connect()
    con.close()
    with pytest.raises(InterfaceError):
        con.execute("SELECT 1")
    with pytest.raises(ClosedHandleError):
        con.cursor()


def test_closed_cursor_raises_interface_error(con):
    cursor = con.cursor()
    cursor.close()
    with pytest.raises(InterfaceError):
        cursor.execute("SELECT 1")
    with pytest.raises(InterfaceError):
        cursor.fetchall()


# -- migration shims --------------------------------------------------------

def test_direct_connection_construction_warns():
    database = Database(":memory:")
    try:
        with pytest.warns(DeprecationWarning):
            con = Connection(database)
        con.execute("SELECT 1")
        con.close()
    finally:
        database.close()


def test_factory_paths_do_not_warn(recwarn):
    with repro.connect() as con:
        con.execute("SELECT 1")
        with con.duplicate() as dup:
            dup.execute("SELECT 1")
    with repro.connect(pool_size=1) as pool:
        with pool.connection() as pooled:
            pooled.execute("SELECT 1")
    assert not [w for w in recwarn.list
                if issubclass(w.category, DeprecationWarning)]
