"""Buffer manager tests: accounting, OOM, eviction, memtest quarantine."""

import numpy as np
import pytest

from repro.config import DatabaseConfig
from repro.errors import OutOfMemoryError
from repro.resilience.faults import FaultyMemory
from repro.storage.buffer_manager import BufferManager


def manager(limit=1 << 20, **options):
    config = DatabaseConfig(memory_limit=limit, **options)
    return BufferManager(config)


class TestAccounting:
    def test_reserve_release(self):
        buffers = manager()
        buffers.reserve(1000, "test")
        assert buffers.used_bytes == 1000
        buffers.release(1000)
        assert buffers.used_bytes == 0

    def test_over_limit_raises(self):
        buffers = manager(limit=1000)
        with pytest.raises(OutOfMemoryError):
            buffers.reserve(2000, "too much")

    def test_error_mentions_description_and_pragma(self):
        buffers = manager(limit=1000)
        with pytest.raises(OutOfMemoryError, match="hash table"):
            buffers.reserve(5000, "hash table")
        with pytest.raises(OutOfMemoryError, match="memory_limit"):
            buffers.reserve(5000, "x")

    def test_peak_tracking(self):
        buffers = manager()
        buffers.reserve(500, "a")
        buffers.reserve(300, "b")
        buffers.release(800)
        assert buffers.peak_bytes == 800
        assert buffers.used_bytes == 0

    def test_pressure(self):
        buffers = manager(limit=1000)
        buffers.reserve(500, "x")
        assert buffers.memory_pressure() == pytest.approx(0.5)

    def test_reservation_context_manager(self):
        buffers = manager()
        with buffers.reservation(400, "scoped"):
            assert buffers.used_bytes == 400
        assert buffers.used_bytes == 0

    def test_reservation_resize(self):
        buffers = manager()
        with buffers.reservation(100, "grow") as reservation:
            reservation.resize(900)
            assert buffers.used_bytes == 900
            reservation.resize(200)
            assert buffers.used_bytes == 200
        assert buffers.used_bytes == 0

    def test_can_reserve(self):
        buffers = manager(limit=1000)
        assert buffers.can_reserve(1000)
        buffers.reserve(800, "x")
        assert not buffers.can_reserve(300)


class TestBufferAllocation:
    def test_allocate_and_free(self):
        buffers = manager()
        buffer = buffers.allocate_buffer(4096)
        assert buffer.size == 4096
        assert (buffer.array == 0).all()
        assert buffers.used_bytes == 4096
        buffer.release()
        assert buffers.used_bytes == 0

    def test_buffers_are_writable(self):
        buffers = manager()
        buffer = buffers.allocate_buffer(128)
        buffer.array[:] = 7
        assert (buffer.array == 7).all()

    def test_allocation_respects_limit(self):
        buffers = manager(limit=10_000)
        with pytest.raises(OutOfMemoryError):
            buffers.allocate_buffer(20_000)
        assert buffers.used_bytes == 0  # failed allocation fully released

    def test_double_free_is_harmless(self):
        buffers = manager()
        buffer = buffers.allocate_buffer(100)
        buffer.release()
        buffer.release()
        assert buffers.used_bytes == 0


class TestMemtestIntegration:
    def test_healthy_arena_passes(self):
        buffers = BufferManager(DatabaseConfig(buffer_memtest=True))
        buffer = buffers.allocate_buffer(2048)
        assert buffer.size == 2048
        assert buffers.memtest_reports
        assert buffers.memtest_reports[-1].passed
        assert not buffers.quarantined

    def test_faulty_region_quarantined_and_avoided(self):
        """Paper §3: find broken regions and avoid using them."""
        arena = FaultyMemory(1 << 16, seed=1)
        arena.inject_stuck_region(2048, 1024, faults_per_kib=16)
        config = DatabaseConfig(buffer_memtest=True)
        buffers = BufferManager(config, arena=arena)
        allocated = [buffers.allocate_buffer(2048) for _ in range(4)]
        assert buffers.quarantined  # the bad region was found
        bad_ranges = buffers.quarantined
        for buffer in allocated:
            for bad_start, bad_end in bad_ranges:
                overlap = (buffer.arena_offset < bad_end
                           and bad_start < buffer.arena_offset + buffer.size)
                assert not overlap, "allocation overlaps quarantined range"

    def test_memtest_disabled_hands_out_faulty_memory(self):
        arena = FaultyMemory(1 << 16, seed=1)
        arena.inject_stuck_region(0, 4096, faults_per_kib=16)
        buffers = BufferManager(DatabaseConfig(buffer_memtest=False), arena=arena)
        buffer = buffers.allocate_buffer(2048)
        # Without memtests the engine blindly uses the broken region.
        assert buffer.arena_offset < 4096

    def test_periodic_retest_detects_new_faults(self):
        arena = FaultyMemory(1 << 16, seed=2)
        buffers = BufferManager(DatabaseConfig(buffer_memtest=True), arena=arena)
        buffer = buffers.allocate_buffer(4096)
        assert buffers.retest_buffers() == []  # healthy so far
        # Memory degrades at run time (the paper's aging-hardware scenario).
        arena.inject_stuck_bit(buffer.arena_offset + 100, bit=3, value=1)
        failing = buffers.retest_buffers()
        assert len(failing) == 1
        assert not failing[0].passed


class TestBlockCache:
    def test_cache_round_trip(self):
        buffers = manager()
        buffers.cache_block(1, b"payload one")
        assert buffers.get_cached_block(1) == b"payload one"
        assert buffers.get_cached_block(2) is None

    def test_lru_eviction_under_budget(self):
        buffers = manager(limit=4000)  # cache budget = 1000 bytes
        buffers.cache_block(1, b"a" * 400)
        buffers.cache_block(2, b"b" * 400)
        buffers.cache_block(3, b"c" * 400)  # evicts block 1
        assert buffers.get_cached_block(1) is None
        assert buffers.get_cached_block(3) is not None

    def test_access_refreshes_lru(self):
        buffers = manager(limit=4000)
        buffers.cache_block(1, b"a" * 400)
        buffers.cache_block(2, b"b" * 400)
        buffers.get_cached_block(1)  # freshen 1
        buffers.cache_block(3, b"c" * 400)  # evicts 2, not 1
        assert buffers.get_cached_block(1) is not None
        assert buffers.get_cached_block(2) is None

    def test_invalidate(self):
        buffers = manager()
        buffers.cache_block(1, b"x")
        buffers.invalidate_cache()
        assert buffers.get_cached_block(1) is None

    def test_reserve_evicts_cache_first(self):
        buffers = manager(limit=1000)
        buffers.cache_block(1, b"a" * 200)
        buffers.reserve(900, "big")  # must evict the cached block
        assert buffers.used_bytes == 900
        assert buffers.get_cached_block(1) is None

    def test_stats(self):
        buffers = manager()
        buffers.reserve(100, "x")
        stats = buffers.stats()
        assert stats["used_bytes"] == 100
        assert stats["memory_limit"] == 1 << 20
