"""End-to-end SELECT tests through the full SQL pipeline."""

import datetime

import pytest

import repro
from repro.errors import BinderError, CatalogError, InvalidInputError


class TestProjectionAndFilter:
    def test_select_star(self, populated):
        rows = populated.execute("SELECT * FROM sample ORDER BY i").fetchall()
        assert rows[0] == (1, "alpha", 1.5)
        assert len(rows) == 5

    def test_column_subset_and_expressions(self, populated):
        rows = populated.execute(
            "SELECT i * 10, s FROM sample WHERE i <= 2 ORDER BY i").fetchall()
        assert rows == [(10, "alpha"), (20, "beta")]

    def test_where_excludes_nulls(self, populated):
        rows = populated.execute(
            "SELECT i FROM sample WHERE d > 0 ORDER BY i").fetchall()
        assert rows == [(1,), (2,), (4,), (5,)]  # i=3 has NULL d

    def test_where_is_null(self, populated):
        assert populated.execute(
            "SELECT i FROM sample WHERE d IS NULL").fetchall() == [(3,)]

    def test_between_and_in(self, populated):
        rows = populated.execute(
            "SELECT i FROM sample WHERE i BETWEEN 2 AND 4 AND i IN (2, 4, 9) "
            "ORDER BY i").fetchall()
        assert rows == [(2,), (4,)]

    def test_like(self, populated):
        rows = populated.execute(
            "SELECT DISTINCT s FROM sample WHERE s LIKE 'a%' ").fetchall()
        assert rows == [("alpha",)]

    def test_ilike(self, populated):
        rows = populated.execute(
            "SELECT DISTINCT s FROM sample WHERE s ILIKE 'ALPHA'").fetchall()
        assert rows == [("alpha",)]

    def test_not_like_excludes_null(self, populated):
        rows = populated.execute(
            "SELECT i FROM sample WHERE s NOT LIKE 'a%' ORDER BY i").fetchall()
        assert rows == [(2,), (5,)]  # NULL s row is filtered, not matched

    def test_qualified_names_and_alias(self, populated):
        rows = populated.execute(
            "SELECT smp.i FROM sample AS smp WHERE smp.i = 1").fetchall()
        assert rows == [(1,)]

    def test_unknown_column(self, populated):
        with pytest.raises(BinderError):
            populated.execute("SELECT nope FROM sample")

    def test_unknown_table(self, populated):
        with pytest.raises(CatalogError):
            populated.execute("SELECT 1 FROM nope")


class TestOrderLimit:
    def test_order_desc(self, populated):
        rows = populated.execute("SELECT i FROM sample ORDER BY i DESC").fetchall()
        assert rows == [(5,), (4,), (3,), (2,), (1,)]

    def test_order_by_alias_and_position(self, populated):
        by_alias = populated.execute(
            "SELECT i * -1 AS neg FROM sample ORDER BY neg").fetchall()
        by_position = populated.execute(
            "SELECT i * -1 FROM sample ORDER BY 1").fetchall()
        assert by_alias == by_position == [(-5,), (-4,), (-3,), (-2,), (-1,)]

    def test_order_by_expression_not_in_select(self, populated):
        rows = populated.execute(
            "SELECT s FROM sample ORDER BY i DESC LIMIT 2").fetchall()
        assert rows == [("gamma",), (None,)]

    def test_order_nulls_first_last(self, populated):
        first = populated.execute(
            "SELECT d FROM sample ORDER BY d NULLS FIRST").fetchall()
        assert first[0] == (None,)
        last = populated.execute(
            "SELECT d FROM sample ORDER BY d NULLS LAST").fetchall()
        assert last[-1] == (None,)

    def test_default_null_placement(self, populated):
        ascending = populated.execute(
            "SELECT d FROM sample ORDER BY d").fetchall()
        assert ascending[-1] == (None,)  # ASC defaults to NULLS LAST
        descending = populated.execute(
            "SELECT d FROM sample ORDER BY d DESC").fetchall()
        assert descending[0] == (None,)  # DESC defaults to NULLS FIRST

    def test_limit_offset(self, populated):
        rows = populated.execute(
            "SELECT i FROM sample ORDER BY i LIMIT 2 OFFSET 1").fetchall()
        assert rows == [(2,), (3,)]

    def test_limit_zero(self, populated):
        assert populated.execute("SELECT i FROM sample LIMIT 0").fetchall() == []

    def test_limit_larger_than_result(self, populated):
        assert len(populated.execute(
            "SELECT i FROM sample LIMIT 100").fetchall()) == 5

    def test_negative_limit_rejected(self, populated):
        with pytest.raises(BinderError):
            populated.execute("SELECT i FROM sample LIMIT -1")

    def test_order_stability_multi_key(self, con):
        con.execute("CREATE TABLE mk (a INTEGER, b INTEGER)")
        con.execute("INSERT INTO mk VALUES (1, 2), (1, 1), (0, 9)")
        rows = con.execute("SELECT a, b FROM mk ORDER BY a, b DESC").fetchall()
        assert rows == [(0, 9), (1, 2), (1, 1)]


class TestDistinctAndSetOps:
    def test_distinct(self, populated):
        rows = populated.execute(
            "SELECT DISTINCT s FROM sample ORDER BY s NULLS FIRST").fetchall()
        assert rows == [(None,), ("alpha",), ("beta",), ("gamma",)]

    def test_distinct_multi_column(self, con):
        con.execute("CREATE TABLE dup (a INTEGER, b INTEGER)")
        con.execute("INSERT INTO dup VALUES (1,1), (1,1), (1,2)")
        assert len(con.execute("SELECT DISTINCT a, b FROM dup").fetchall()) == 2

    def test_union_all(self, populated):
        rows = populated.execute(
            "SELECT i FROM sample UNION ALL SELECT i FROM sample").fetchall()
        assert len(rows) == 10

    def test_union_deduplicates(self, populated):
        rows = populated.execute(
            "SELECT s FROM sample UNION SELECT s FROM sample "
            "ORDER BY s NULLS FIRST").fetchall()
        assert rows == [(None,), ("alpha",), ("beta",), ("gamma",)]

    def test_except(self, populated):
        rows = populated.execute(
            "SELECT i FROM sample EXCEPT SELECT i FROM sample WHERE i > 2 "
            "ORDER BY 1").fetchall()
        assert rows == [(1,), (2,)]

    def test_intersect(self, populated):
        rows = populated.execute(
            "SELECT i FROM sample INTERSECT SELECT i FROM sample WHERE i IN (2, 4)"
        ).fetchall()
        assert sorted(rows) == [(2,), (4,)]

    def test_union_type_unification(self, con):
        rows = con.execute("SELECT 1 UNION ALL SELECT 2.5 ORDER BY 1").fetchall()
        assert rows == [(1.0,), (2.5,)]

    def test_union_column_count_mismatch(self, con):
        with pytest.raises(BinderError):
            con.execute("SELECT 1 UNION SELECT 1, 2")


class TestSubqueriesAndCTEs:
    def test_from_subquery(self, populated):
        rows = populated.execute(
            "SELECT x * 2 FROM (SELECT i AS x FROM sample WHERE i < 3) sub "
            "ORDER BY 1").fetchall()
        assert rows == [(2,), (4,)]

    def test_subquery_column_aliases(self, populated):
        rows = populated.execute(
            "SELECT a FROM (SELECT i, s FROM sample) AS t2(a, b) "
            "WHERE a = 1").fetchall()
        assert rows == [(1,)]

    def test_scalar_subquery(self, populated):
        rows = populated.execute(
            "SELECT i FROM sample WHERE i = (SELECT max(i) FROM sample)"
        ).fetchall()
        assert rows == [(5,)]

    def test_scalar_subquery_empty_is_null(self, populated):
        value = populated.execute(
            "SELECT (SELECT i FROM sample WHERE i > 100)").fetchvalue()
        assert value is None

    def test_scalar_subquery_multiple_rows_errors(self, populated):
        with pytest.raises(InvalidInputError):
            populated.execute("SELECT (SELECT i FROM sample)").fetchall()

    def test_in_subquery(self, populated):
        rows = populated.execute(
            "SELECT i FROM sample WHERE i IN (SELECT i FROM sample WHERE i < 3) "
            "ORDER BY i").fetchall()
        assert rows == [(1,), (2,)]

    def test_not_in_subquery_with_nulls(self, con):
        con.execute("CREATE TABLE a (x INTEGER)")
        con.execute("CREATE TABLE b (x INTEGER)")
        con.execute("INSERT INTO a VALUES (1), (2)")
        con.execute("INSERT INTO b VALUES (1), (NULL)")
        # NOT IN against a set containing NULL never returns TRUE (SQL 3VL).
        rows = con.execute("SELECT x FROM a WHERE x NOT IN (SELECT x FROM b)"
                           ).fetchall()
        assert rows == []

    def test_exists(self, populated):
        rows = populated.execute(
            "SELECT count(*) FROM sample WHERE EXISTS (SELECT 1 FROM sample "
            "WHERE i > 4)").fetchall()
        assert rows == [(5,)]

    def test_not_exists_empty(self, populated):
        value = populated.execute(
            "SELECT count(*) FROM sample WHERE EXISTS "
            "(SELECT 1 FROM sample WHERE i > 100)").fetchvalue()
        assert value == 0

    def test_cte(self, populated):
        rows = populated.execute(
            "WITH small AS (SELECT i FROM sample WHERE i <= 2), "
            "big AS (SELECT i FROM sample WHERE i >= 4) "
            "SELECT * FROM small UNION ALL SELECT * FROM big ORDER BY 1"
        ).fetchall()
        assert rows == [(1,), (2,), (4,), (5,)]

    def test_cte_shadows_table(self, populated):
        rows = populated.execute(
            "WITH sample AS (SELECT 42 AS i) SELECT i FROM sample").fetchall()
        assert rows == [(42,)]

    def test_correlated_subquery_rejected(self, populated):
        with pytest.raises((BinderError, CatalogError)):
            populated.execute(
                "SELECT i FROM sample s1 WHERE d = "
                "(SELECT max(d) FROM sample s2 WHERE s2.s = s1.s)")


class TestSelectWithoutFrom:
    def test_constants(self, con):
        assert con.execute("SELECT 1, 'a', 2.5, NULL").fetchall() == \
            [(1, "a", 2.5, None)]

    def test_expressions(self, con):
        assert con.execute("SELECT 2 + 3 * 4").fetchvalue() == 14

    def test_functions(self, con):
        assert con.execute("SELECT upper('duck') || '!' ").fetchvalue() == "DUCK!"

    def test_parameters(self, con):
        assert con.execute("SELECT ? + ?", [3, 4]).fetchvalue() == 7

    def test_missing_parameters(self, con):
        with pytest.raises(BinderError):
            con.execute("SELECT ?")


class TestViews:
    def test_create_and_query_view(self, populated):
        populated.execute(
            "CREATE VIEW positive AS SELECT i, s FROM sample WHERE d > 1")
        rows = populated.execute("SELECT i FROM positive ORDER BY i").fetchall()
        assert rows == [(1,), (2,), (4,)]

    def test_view_reflects_new_data(self, populated):
        populated.execute("CREATE VIEW all_i AS SELECT i FROM sample")
        populated.execute("INSERT INTO sample VALUES (99, 'zz', 1.0)")
        values = [row[0] for row in populated.execute(
            "SELECT i FROM all_i").fetchall()]
        assert 99 in values

    def test_or_replace(self, populated):
        populated.execute("CREATE VIEW v AS SELECT 1 AS x")
        populated.execute("CREATE OR REPLACE VIEW v AS SELECT 2 AS x")
        assert populated.execute("SELECT x FROM v").fetchvalue() == 2

    def test_drop_view(self, populated):
        populated.execute("CREATE VIEW v AS SELECT 1 AS x")
        populated.execute("DROP VIEW v")
        with pytest.raises(CatalogError):
            populated.execute("SELECT * FROM v")

    def test_insert_into_view_fails(self, populated):
        populated.execute("CREATE VIEW v AS SELECT i FROM sample")
        with pytest.raises(CatalogError):
            populated.execute("INSERT INTO v VALUES (1)")


class TestLargerThanVectorSize:
    def test_scan_order_filter_across_chunks(self, con):
        con.execute("CREATE TABLE big (i INTEGER)")
        with con.appender("big") as appender:
            import numpy as np

            appender.append_numpy({"i": np.arange(10_000, dtype=np.int32)})
        assert con.query_value("SELECT count(*) FROM big") == 10_000
        assert con.query_value("SELECT sum(i) FROM big") == sum(range(10_000))
        rows = con.execute(
            "SELECT i FROM big WHERE i % 1000 = 0 ORDER BY i DESC").fetchall()
        assert rows == [(9000,), (8000,), (7000,), (6000,), (5000,),
                        (4000,), (3000,), (2000,), (1000,), (0,)]
