"""Join tests: all types, algorithms, keys, and edge cases."""

import numpy as np
import pytest

import repro
from repro.client.connection import Connection
from repro.cooperation.controller import ReactiveController
from repro.cooperation.monitor import ResourceMonitor


@pytest.fixture
def joined(con):
    con.execute("CREATE TABLE l (id INTEGER, tag VARCHAR)")
    con.execute("CREATE TABLE r (id INTEGER, val DOUBLE)")
    con.execute("INSERT INTO l VALUES (1, 'one'), (2, 'two'), (3, 'three'), "
                "(NULL, 'nil')")
    con.execute("INSERT INTO r VALUES (2, 2.0), (3, 3.0), (3, 3.5), (4, 4.0), "
                "(NULL, 0.0)")
    return con


class TestInnerJoin:
    def test_basic(self, joined):
        rows = joined.execute(
            "SELECT l.id, r.val FROM l JOIN r ON l.id = r.id ORDER BY 1, 2"
        ).fetchall()
        assert rows == [(2, 2.0), (3, 3.0), (3, 3.5)]

    def test_null_keys_never_match(self, joined):
        rows = joined.execute(
            "SELECT count(*) FROM l JOIN r ON l.id = r.id WHERE l.id IS NULL"
        ).fetchall()
        assert rows == [(0,)]

    def test_using(self, joined):
        rows = joined.execute(
            "SELECT tag, val FROM l JOIN r USING (id) ORDER BY val").fetchall()
        assert rows == [("two", 2.0), ("three", 3.0), ("three", 3.5)]

    def test_where_to_join_condition(self, joined):
        # Comma join + WHERE equality should behave as an inner join.
        rows = joined.execute(
            "SELECT l.id, r.val FROM l, r WHERE l.id = r.id ORDER BY 1, 2"
        ).fetchall()
        assert rows == [(2, 2.0), (3, 3.0), (3, 3.5)]

    def test_string_keys(self, con):
        con.execute("CREATE TABLE a (k VARCHAR, x INTEGER)")
        con.execute("CREATE TABLE b (k VARCHAR, y INTEGER)")
        con.execute("INSERT INTO a VALUES ('p', 1), ('q', 2), (NULL, 3)")
        con.execute("INSERT INTO b VALUES ('q', 20), ('r', 30), (NULL, 40)")
        rows = con.execute(
            "SELECT a.k, x, y FROM a JOIN b ON a.k = b.k").fetchall()
        assert rows == [("q", 2, 20)]

    def test_multi_key(self, con):
        con.execute("CREATE TABLE a (k1 INTEGER, k2 VARCHAR, x INTEGER)")
        con.execute("CREATE TABLE b (k1 INTEGER, k2 VARCHAR, y INTEGER)")
        con.execute("INSERT INTO a VALUES (1, 'x', 10), (1, 'y', 11), (2, 'x', 12)")
        con.execute("INSERT INTO b VALUES (1, 'x', 100), (2, 'x', 200), (2, 'z', 201)")
        rows = con.execute(
            "SELECT x, y FROM a JOIN b ON a.k1 = b.k1 AND a.k2 = b.k2 "
            "ORDER BY x").fetchall()
        assert rows == [(10, 100), (12, 200)]

    def test_expression_keys(self, joined):
        rows = joined.execute(
            "SELECT l.id FROM l JOIN r ON l.id + 1 = r.id ORDER BY 1").fetchall()
        # l.id=2 matches both r.id=3 rows.
        assert rows == [(1,), (2,), (2,), (3,)]

    def test_residual_condition(self, joined):
        rows = joined.execute(
            "SELECT l.id, r.val FROM l JOIN r ON l.id = r.id AND r.val > 3.0"
        ).fetchall()
        assert rows == [(3, 3.5)]

    def test_non_equi_join(self, joined):
        rows = joined.execute(
            "SELECT l.id, r.id FROM l JOIN r ON l.id < r.id "
            "WHERE r.id = 4 ORDER BY 1").fetchall()
        assert rows == [(1, 4), (2, 4), (3, 4)]

    def test_self_join(self, joined):
        rows = joined.execute(
            "SELECT a.id, b.id FROM l a JOIN l b ON a.id = b.id - 1 "
            "ORDER BY 1").fetchall()
        assert rows == [(1, 2), (2, 3)]


class TestOuterJoins:
    def test_left_join(self, joined):
        rows = joined.execute(
            "SELECT l.id, l.tag, r.val FROM l LEFT JOIN r ON l.id = r.id "
            "ORDER BY l.id NULLS FIRST, r.val").fetchall()
        assert rows == [(None, "nil", None), (1, "one", None),
                        (2, "two", 2.0), (3, "three", 3.0), (3, "three", 3.5)]

    def test_right_join(self, joined):
        rows = joined.execute(
            "SELECT l.tag, r.id FROM l RIGHT JOIN r ON l.id = r.id "
            "ORDER BY r.id NULLS FIRST, l.tag").fetchall()
        assert rows == [(None, None), ("two", 2), ("three", 3), ("three", 3),
                        (None, 4)]

    def test_full_join(self, joined):
        rows = joined.execute(
            "SELECT l.id, r.id FROM l FULL JOIN r ON l.id = r.id").fetchall()
        left_ids = sorted(row[0] for row in rows if row[0] is not None)
        right_ids = sorted(row[1] for row in rows if row[1] is not None)
        assert left_ids == [1, 2, 3, 3]
        assert right_ids == [2, 3, 3, 4]
        # Unmatched rows from both sides present.
        assert (None, 4) in rows
        assert any(row[0] == 1 and row[1] is None for row in rows)

    def test_left_join_with_residual(self, joined):
        rows = joined.execute(
            "SELECT l.id, r.val FROM l LEFT JOIN r ON l.id = r.id AND r.val > 3 "
            "ORDER BY l.id NULLS FIRST, r.val").fetchall()
        # Only (3, 3.5) survives the residual; others null-extend.
        assert (3, 3.5) in rows
        assert (2, None) in rows
        assert len(rows) == 4

    def test_full_join_with_residual(self, joined):
        # Rows failing the residual condition must still null-extend on
        # BOTH sides of a FULL join.
        rows = joined.execute(
            "SELECT l.id, r.id, r.val FROM l FULL JOIN r "
            "ON l.id = r.id AND r.val > 3").fetchall()
        # Only the (3, 3.5) pairing passes the residual.
        assert (3, 3, 3.5) in rows
        # Every left row without a qualifying partner null-extends once
        # (l.id = 3 matched, so it does not).
        unmatched_left = sorted(row[0] for row in rows if row[1] is None
                                and row[2] is None and row[0] is not None)
        assert unmatched_left == [1, 2]
        assert (None, None, None) in rows  # the NULL-id left row
        # Right rows that only appeared in rejected pairs survive too.
        unmatched_right = sorted(row[2] for row in rows if row[0] is None
                                 and row[2] is not None)
        assert unmatched_right == [0.0, 2.0, 3.0, 4.0]
        assert len(rows) == 8

    def test_cross_join(self, joined):
        count = joined.query_value("SELECT count(*) FROM l CROSS JOIN r")
        assert count == 20


class TestMergeJoin:
    def _merge_controller(self):
        """A controller that always picks merge join."""

        class AlwaysMerge:
            def compression_level(self):
                from repro.storage.compression import CompressionLevel

                return CompressionLevel.NONE

            def choose_join_algorithm(self, estimate):
                return "merge"

        return AlwaysMerge()

    def test_merge_matches_hash(self, con):
        con.execute("CREATE TABLE a (k INTEGER, x INTEGER)")
        con.execute("CREATE TABLE b (k INTEGER, y INTEGER)")
        rng = np.random.default_rng(42)
        with con.appender("a") as appender:
            keys = rng.integers(0, 500, 3000).astype(np.int32)
            appender.append_numpy({"k": keys,
                                   "x": np.arange(3000, dtype=np.int32)})
        with con.appender("b") as appender:
            keys = rng.integers(0, 500, 2000).astype(np.int32)
            appender.append_numpy({"k": keys,
                                   "y": np.arange(2000, dtype=np.int32)})
        sql = ("SELECT a.k, x, y FROM a JOIN b ON a.k = b.k "
               "ORDER BY 1, 2, 3")
        hash_rows = con.execute(sql).fetchall()
        con.database.resource_controller = self._merge_controller()
        merge_rows = con.execute(sql).fetchall()
        con.database.disable_reactive_resources()
        assert merge_rows == hash_rows
        assert len(hash_rows) > 0

    def test_merge_left_join_matches_hash(self, con):
        con.execute("CREATE TABLE a (k INTEGER)")
        con.execute("CREATE TABLE b (k INTEGER)")
        con.execute("INSERT INTO a VALUES (1), (2), (2), (5), (NULL)")
        con.execute("INSERT INTO b VALUES (2), (2), (3), (NULL)")
        sql = ("SELECT a.k, b.k FROM a LEFT JOIN b ON a.k = b.k "
               "ORDER BY 1 NULLS FIRST, 2 NULLS FIRST")
        hash_rows = con.execute(sql).fetchall()
        con.database.resource_controller = self._merge_controller()
        merge_rows = con.execute(sql).fetchall()
        con.database.disable_reactive_resources()
        assert merge_rows == hash_rows

    def test_merge_join_duplicates_across_chunks(self, con):
        # Keys with heavy duplication exercise the merge window carry logic.
        con.execute("CREATE TABLE a (k INTEGER)")
        con.execute("CREATE TABLE b (k INTEGER)")
        with con.appender("a") as appender:
            appender.append_numpy(
                {"k": np.repeat(np.arange(4, dtype=np.int32), 2500)})
        with con.appender("b") as appender:
            appender.append_numpy(
                {"k": np.repeat(np.arange(4, dtype=np.int32), 3)})
        con.database.resource_controller = self._merge_controller()
        count = con.query_value(
            "SELECT count(*) FROM a JOIN b ON a.k = b.k")
        con.database.disable_reactive_resources()
        assert count == 4 * 2500 * 3


class TestJoinScale:
    def test_large_join_across_chunks(self, con):
        con.execute("CREATE TABLE f (k INTEGER, v INTEGER)")
        con.execute("CREATE TABLE d (k INTEGER, name VARCHAR)")
        n = 20_000
        with con.appender("f") as appender:
            appender.append_numpy({
                "k": (np.arange(n) % 100).astype(np.int32),
                "v": np.arange(n, dtype=np.int32),
            })
        with con.appender("d") as appender:
            appender.append_numpy({
                "k": np.arange(100, dtype=np.int32),
                "name": np.array([f"dim{i}" for i in range(100)], dtype=object),
            })
        count = con.query_value("SELECT count(*) FROM f JOIN d ON f.k = d.k")
        assert count == n
        total = con.query_value(
            "SELECT sum(v) FROM f JOIN d ON f.k = d.k WHERE d.name = 'dim0'")
        assert total == sum(range(0, n, 100))

    def test_empty_build_side(self, con):
        con.execute("CREATE TABLE a (k INTEGER)")
        con.execute("CREATE TABLE b (k INTEGER)")
        con.execute("INSERT INTO a VALUES (1), (2)")
        assert con.query_value(
            "SELECT count(*) FROM a JOIN b ON a.k = b.k") == 0
        rows = con.execute(
            "SELECT a.k, b.k FROM a LEFT JOIN b ON a.k = b.k ORDER BY 1"
        ).fetchall()
        assert rows == [(1, None), (2, None)]

    def test_empty_probe_side(self, con):
        con.execute("CREATE TABLE a (k INTEGER)")
        con.execute("CREATE TABLE b (k INTEGER)")
        con.execute("INSERT INTO b VALUES (1)")
        assert con.query_value(
            "SELECT count(*) FROM a JOIN b ON a.k = b.k") == 0
        rows = con.execute(
            "SELECT a.k, b.k FROM a RIGHT JOIN b ON a.k = b.k").fetchall()
        assert rows == [(None, 1)]
