"""MVCC tests: snapshot isolation, conflicts, rollback, concurrency.

These exercise the paper's §2 scenario directly: concurrent bulk ETL
writers and OLAP readers over the same tables, with HyPer-style in-place
updates + undo buffers keeping every reader's snapshot stable.
"""

import threading

import numpy as np
import pytest

import repro
from repro.errors import TransactionConflict, TransactionContextError


@pytest.fixture
def two(con):
    con.execute("CREATE TABLE t (i INTEGER, v INTEGER)")
    con.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
    return con, con.duplicate()


class TestSnapshotIsolation:
    def test_reader_does_not_see_uncommitted_insert(self, two):
        writer, reader = two
        writer.execute("BEGIN")
        writer.execute("INSERT INTO t VALUES (4, 40)")
        assert reader.query_value("SELECT count(*) FROM t") == 3
        writer.execute("COMMIT")
        assert reader.query_value("SELECT count(*) FROM t") == 4

    def test_reader_does_not_see_uncommitted_update(self, two):
        writer, reader = two
        writer.execute("BEGIN")
        writer.execute("UPDATE t SET v = 99 WHERE i = 1")
        assert reader.query_value("SELECT v FROM t WHERE i = 1") == 10
        writer.execute("COMMIT")
        assert reader.query_value("SELECT v FROM t WHERE i = 1") == 99

    def test_reader_does_not_see_uncommitted_delete(self, two):
        writer, reader = two
        writer.execute("BEGIN")
        writer.execute("DELETE FROM t WHERE i = 2")
        assert reader.query_value("SELECT count(*) FROM t") == 3
        writer.execute("COMMIT")
        assert reader.query_value("SELECT count(*) FROM t") == 2

    def test_repeatable_reads_in_explicit_transaction(self, two):
        writer, reader = two
        reader.execute("BEGIN")
        before = reader.query_value("SELECT sum(v) FROM t")
        writer.execute("UPDATE t SET v = v * 10")
        # The reader's snapshot predates the committed update.
        assert reader.query_value("SELECT sum(v) FROM t") == before
        reader.execute("COMMIT")
        assert reader.query_value("SELECT sum(v) FROM t") == before * 10

    def test_own_writes_visible(self, two):
        writer, _ = two
        writer.execute("BEGIN")
        writer.execute("UPDATE t SET v = 111 WHERE i = 1")
        assert writer.query_value("SELECT v FROM t WHERE i = 1") == 111
        writer.execute("INSERT INTO t VALUES (9, 90)")
        assert writer.query_value("SELECT count(*) FROM t") == 4
        writer.execute("ROLLBACK")

    def test_snapshot_across_bulk_update(self, con):
        """An OLAP reader mid-scan sees a stable snapshot of a bulk update."""
        con.execute("CREATE TABLE wide (x INTEGER)")
        with con.appender("wide") as appender:
            appender.append_numpy({"x": np.zeros(10_000, dtype=np.int32)})
        reader = con.duplicate()
        reader.execute("BEGIN")
        assert reader.query_value("SELECT sum(x) FROM wide") == 0
        con.execute("UPDATE wide SET x = 1")
        # Undo reconstruction: reader still sees all zeros.
        assert reader.query_value("SELECT sum(x) FROM wide") == 0
        assert reader.query_value("SELECT max(x) FROM wide") == 0
        reader.execute("COMMIT")
        assert reader.query_value("SELECT sum(x) FROM wide") == 10_000


class TestConflicts:
    def test_write_write_update_conflict(self, two):
        first, second = two
        first.execute("BEGIN")
        second.execute("BEGIN")
        first.execute("UPDATE t SET v = 1 WHERE i = 1")
        with pytest.raises(TransactionConflict):
            second.execute("UPDATE t SET v = 2 WHERE i = 1")
        first.execute("COMMIT")

    def test_update_delete_conflict(self, two):
        first, second = two
        first.execute("BEGIN")
        second.execute("BEGIN")
        first.execute("UPDATE t SET v = 1 WHERE i = 1")
        with pytest.raises(TransactionConflict):
            second.execute("DELETE FROM t WHERE i = 1")
        first.execute("ROLLBACK")

    def test_delete_update_conflict(self, two):
        first, second = two
        first.execute("BEGIN")
        second.execute("BEGIN")
        first.execute("DELETE FROM t WHERE i = 2")
        with pytest.raises(TransactionConflict):
            second.execute("UPDATE t SET v = 0 WHERE i = 2")
        first.execute("ROLLBACK")

    def test_disjoint_rows_no_conflict(self, two):
        first, second = two
        first.execute("BEGIN")
        second.execute("BEGIN")
        first.execute("UPDATE t SET v = 1 WHERE i = 1")
        second.execute("UPDATE t SET v = 2 WHERE i = 2")
        first.execute("COMMIT")
        second.execute("COMMIT")
        rows = first.execute("SELECT i, v FROM t ORDER BY i").fetchall()
        assert rows == [(1, 1), (2, 2), (3, 30)]

    def test_committed_after_start_conflicts(self, two):
        """First-writer-wins also applies to already-committed writes."""
        first, second = two
        second.execute("BEGIN")
        second.query_value("SELECT count(*) FROM t")  # take the snapshot
        first.execute("UPDATE t SET v = 5 WHERE i = 1")  # autocommit
        with pytest.raises(TransactionConflict):
            second.execute("UPDATE t SET v = 6 WHERE i = 1")

    def test_failed_statement_aborts_transaction(self, two):
        first, second = two
        first.execute("BEGIN")
        second.execute("BEGIN")
        first.execute("UPDATE t SET v = 1 WHERE i = 1")
        with pytest.raises(TransactionConflict):
            second.execute("UPDATE t SET v = 2 WHERE i = 1")
        # The conflicting transaction rolled back entirely.
        assert not second.in_transaction
        first.execute("COMMIT")


class TestRollback:
    def test_rollback_insert(self, two):
        writer, _ = two
        writer.execute("BEGIN")
        writer.execute("INSERT INTO t VALUES (7, 70)")
        writer.execute("ROLLBACK")
        assert writer.query_value("SELECT count(*) FROM t") == 3

    def test_rollback_update_restores_values(self, two):
        writer, _ = two
        writer.execute("BEGIN")
        writer.execute("UPDATE t SET v = 0")
        writer.execute("ROLLBACK")
        assert writer.query_value("SELECT sum(v) FROM t") == 60

    def test_rollback_delete(self, two):
        writer, _ = two
        writer.execute("BEGIN")
        writer.execute("DELETE FROM t")
        writer.execute("ROLLBACK")
        assert writer.query_value("SELECT count(*) FROM t") == 3

    def test_rollback_ddl(self, two):
        writer, reader = two
        writer.execute("BEGIN")
        writer.execute("CREATE TABLE temp_table (x INTEGER)")
        writer.execute("INSERT INTO temp_table VALUES (1)")
        writer.execute("ROLLBACK")
        with pytest.raises(repro.CatalogError):
            writer.execute("SELECT * FROM temp_table")

    def test_rollback_drop(self, two):
        writer, _ = two
        writer.execute("BEGIN")
        writer.execute("DROP TABLE t")
        with pytest.raises(repro.CatalogError):
            writer.execute("SELECT * FROM t")  # invisible to the dropper
        writer.execute("ROLLBACK")
        assert writer.query_value("SELECT count(*) FROM t") == 3

    def test_update_after_rollback_succeeds(self, two):
        first, second = two
        first.execute("BEGIN")
        first.execute("UPDATE t SET v = 1 WHERE i = 1")
        first.execute("ROLLBACK")
        second.execute("UPDATE t SET v = 2 WHERE i = 1")
        assert second.query_value("SELECT v FROM t WHERE i = 1") == 2


class TestTransactionControl:
    def test_nested_begin_rejected(self, con):
        con.execute("BEGIN")
        with pytest.raises(TransactionContextError):
            con.execute("BEGIN")
        con.execute("ROLLBACK")

    def test_commit_without_begin_rejected(self, con):
        with pytest.raises(TransactionContextError):
            con.execute("COMMIT")

    def test_rollback_without_begin_rejected(self, con):
        with pytest.raises(TransactionContextError):
            con.execute("ROLLBACK")

    def test_ddl_is_transactional(self, two):
        writer, reader = two
        writer.execute("BEGIN")
        writer.execute("CREATE TABLE fresh (x INTEGER)")
        with pytest.raises(repro.CatalogError):
            reader.execute("SELECT * FROM fresh")
        writer.execute("COMMIT")
        assert reader.query_value("SELECT count(*) FROM fresh") == 0


class TestConcurrentThreads:
    def test_concurrent_appends(self, con):
        """The dashboard scenario: multiple writers appending concurrently."""
        con.execute("CREATE TABLE log (worker INTEGER, seq INTEGER)")
        errors = []

        def worker(worker_id):
            try:
                local = con.duplicate()
                for sequence in range(50):
                    local.execute("INSERT INTO log VALUES (?, ?)",
                                  [worker_id, sequence])
                local.close()
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert con.query_value("SELECT count(*) FROM log") == 200
        rows = con.execute(
            "SELECT worker, count(*) FROM log GROUP BY worker ORDER BY 1"
        ).fetchall()
        assert rows == [(0, 50), (1, 50), (2, 50), (3, 50)]

    def test_reader_concurrent_with_etl_writer(self, con):
        """OLAP aggregation running while an ETL writer mutates (paper §2)."""
        con.execute("CREATE TABLE metrics (k INTEGER, v INTEGER)")
        with con.appender("metrics") as appender:
            appender.append_numpy({
                "k": (np.arange(20_000) % 10).astype(np.int32),
                "v": np.ones(20_000, dtype=np.int32),
            })
        stop = threading.Event()
        reader_failures = []

        def olap_reader():
            local = con.duplicate()
            while not stop.is_set():
                total = local.query_value("SELECT sum(v) FROM metrics")
                # Every snapshot must see a consistent multiple of 20000
                # (the writer always updates ALL rows by +1).
                if total % 20_000 != 0:
                    reader_failures.append(total)
            local.close()

        reader_thread = threading.Thread(target=olap_reader)
        reader_thread.start()
        writer = con.duplicate()
        for _ in range(5):
            writer.execute("UPDATE metrics SET v = v + 1")
        stop.set()
        reader_thread.join()
        writer.close()
        assert not reader_failures
        assert con.query_value("SELECT sum(v) FROM metrics") == 6 * 20_000


class TestQuiescedCheckpointing:
    """run_quiesced pins: checkpoints hold the commit lock end to end.

    Regression for a checkpoint/commit race: ``checkpoint`` used to check
    ``active_count() == 0`` and then write the snapshot + truncate the WAL
    without the manager lock, so a transaction committing in that window
    raced the WAL file handle ("write to closed file") and had its log
    records silently truncated.
    """

    def test_raises_when_transactions_are_active(self, con):
        manager = con._database.transaction_manager
        txn = manager.begin()
        try:
            with pytest.raises(TransactionContextError):
                manager.run_quiesced(lambda bootstrap: None)
        finally:
            manager.rollback(txn)

    def test_bootstrap_is_cleaned_up_after_work_raises(self, con):
        manager = con._database.transaction_manager
        with pytest.raises(ZeroDivisionError):
            manager.run_quiesced(lambda bootstrap: 1 // 0)
        assert manager.active_count() == 0

    def test_no_commit_lands_while_quiesced(self, con):
        manager = con._database.transaction_manager
        entered = threading.Event()
        release = threading.Event()
        begun_at = []

        def late_begin():
            entered.wait(timeout=30)
            txn = manager.begin()  # must block until run_quiesced returns
            begun_at.append(release.is_set())
            manager.rollback(txn)

        thread = threading.Thread(target=late_begin)
        thread.start()

        def work(bootstrap):
            entered.set()
            thread.join(timeout=0.2)  # give late_begin a chance to race
            assert thread.is_alive(), "begin() completed during quiescence"
            release.set()
            return bootstrap.transaction_id

        assert manager.run_quiesced(work) is not None
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert begun_at == [True]
