"""quacktrace: spans, metrics registry, slow-query log, EXPLAIN ANALYZE.

Tests here toggle the *process-wide* tracer, so every toggle goes through
the ``traced``/``untraced`` fixtures, which restore whatever state the
session started with (the CI trace job runs the whole suite under
``REPRO_TRACE=1``).
"""

import logging

import numpy as np
import pytest

import repro
from repro import observability as obs
from repro.observability import (
    MetricsRegistry,
    Span,
    SlowQueryLog,
    TraceSink,
    Tracer,
    engine_span,
    render_span_tree,
    render_trace,
    worker_summary,
)


@pytest.fixture
def traced():
    """A fresh process-wide tracer (own sink); restores prior state."""
    was_enabled = obs.tracing_enabled()
    obs.disable_tracing()
    tracer = obs.enable_tracing()
    yield tracer
    obs.disable_tracing()
    if was_enabled:
        obs.enable_tracing()


@pytest.fixture
def untraced():
    """Process-wide tracing off for the test; restores prior state."""
    was_enabled = obs.tracing_enabled()
    obs.disable_tracing()
    yield
    if was_enabled:
        obs.enable_tracing()


class TestSpanCore:
    def test_span_tree_identity(self):
        tracer = Tracer()
        root = tracer.start_query("SELECT 1")
        child = tracer.start_span("child", kind="operator")
        assert child.parent_id == root.span_id
        assert child.trace_id == root.trace_id == root.span_id
        tracer.end_span(child)
        tracer.finish_query(root, wall_ns=1000, cpu_ns=500)
        assert tracer.current() is None
        spans = tracer.sink.trace(root.trace_id)
        assert [span.name for span in spans] == ["child", "SELECT 1"]

    def test_end_span_is_idempotent(self):
        tracer = Tracer()
        span = tracer.start_span("once")
        tracer.end_span(span)
        tracer.end_span(span)
        assert len(tracer.sink) == 1

    def test_span_context_manager_times_and_closes(self):
        tracer = Tracer()
        with tracer.span("wal.commit_group", kind="wal") as span:
            assert tracer.current() is span
        assert span.closed
        assert span.wall_ns >= 0
        assert tracer.current() is None

    def test_sink_is_a_ring_buffer(self):
        sink = TraceSink(capacity=3)
        tracer = Tracer(sink)
        for i in range(5):
            tracer.end_span(tracer.start_span(f"s{i}"))
        assert len(sink) == 3
        assert [span.name for span in sink.spans()] == ["s2", "s3", "s4"]

    def test_trace_filters_by_trace_id(self):
        tracer = Tracer()
        a = tracer.start_query("A")
        tracer.finish_query(a, 0, 0)
        b = tracer.start_query("B")
        tracer.finish_query(b, 0, 0)
        assert [s.name for s in tracer.sink.trace(a.trace_id)] == ["A"]
        assert [s.name for s in tracer.sink.trace(b.trace_id)] == ["B"]


class TestProcessWideToggle:
    def test_enable_disable_roundtrip(self, untraced):
        assert obs.tracing_enabled() is False
        assert obs.get_tracer() is None
        tracer = obs.enable_tracing()
        assert obs.tracing_enabled() is True
        assert obs.enable_tracing() is tracer  # idempotent
        obs.disable_tracing()
        assert obs.get_tracer() is None

    def test_engine_span_noop_singleton_when_disabled(self, untraced):
        # The disabled fast path allocates nothing: the same shared no-op
        # context manager object is returned every time.
        first = engine_span("checkpoint", kind="checkpoint")
        second = engine_span("wal.commit_group", kind="wal")
        assert first is second
        with first as span:
            assert span is None

    def test_engine_span_records_when_enabled(self, traced):
        with engine_span("checkpoint", kind="checkpoint", path="x") as span:
            assert span is not None
        spans = [s for s in traced.sink.spans() if s.name == "checkpoint"]
        assert spans and spans[0].kind == "checkpoint"
        assert spans[0].attrs == {"path": "x"}

    def test_disabled_connection_has_no_tracer(self, untraced):
        # Explicit config: under the CI trace job REPRO_TRACE=1 would
        # otherwise flow into the config default and re-enable tracing.
        con = repro.connect(config={"trace_enabled": False})
        try:
            assert con._database.tracer is None
            assert con.execute("SELECT 41 + 1").fetchvalue() == 42
        finally:
            con.close()


class TestQueryTracing:
    def test_statement_produces_query_rooted_span_tree(self, traced,
                                                       populated):
        populated.execute("SELECT i, d FROM sample WHERE i > 1").fetchall()
        spans = traced.sink.spans()
        roots = [s for s in spans if s.kind == "query"]
        assert roots, "no query root span was recorded"
        root = roots[-1]
        operators = [s for s in spans
                     if s.kind == "operator" and s.trace_id == root.trace_id]
        assert operators, "no operator spans attached to the query root"
        by_id = {s.span_id for s in operators} | {root.span_id}
        assert all(s.parent_id in by_id for s in operators)
        assert root.wall_ns > 0
        assert any(s.rows > 0 for s in operators)

    def test_streaming_result_closes_query_span(self, traced, populated):
        result = populated.execute("SELECT i FROM sample", stream=True)
        assert result.fetchone() is not None
        result.close()
        roots = [s for s in traced.sink.spans() if s.kind == "query"]
        assert roots and roots[-1].closed

    def test_explain_analyze_reports_operator_profile(self, populated):
        text = "\n".join(row[0] for row in populated.execute(
            "EXPLAIN ANALYZE SELECT s, count(*) FROM sample GROUP BY s"
        ).fetchall())
        assert "-- execution statistics --" in text
        assert "result rows: 4" in text
        assert "-- operator profile (quacktrace) --" in text
        assert "rows_out=" in text

    def test_explain_analyze_does_not_enable_global_tracing(self, untraced):
        con = repro.connect(config={"trace_enabled": False})
        try:
            con.execute("EXPLAIN ANALYZE SELECT 1").fetchall()
            assert obs.tracing_enabled() is False
        finally:
            con.close()


class TestRender:
    def _spans(self):
        tracer = Tracer()
        root = tracer.start_query("SELECT ...")
        op = tracer.start_span("SEQ_SCAN sample", kind="operator")
        op.rows = 100
        op.add_timing(2_000_000, 1_000_000)
        tracer.end_span(op)
        tracer.finish_query(root, 3_000_000, 1_500_000)
        return tracer.sink.trace(root.trace_id), root

    def test_render_span_tree(self):
        spans, root = self._spans()
        lines = render_span_tree(spans, root)
        assert any("SEQ_SCAN sample" in line for line in lines)
        assert any("rows_out=100" in line for line in lines)

    def test_render_trace_has_title(self):
        spans, _ = self._spans()
        text = render_trace(spans, title="trace of SELECT")
        assert text.startswith("trace of SELECT")

    def test_worker_summary_groups_by_thread(self):
        tracer = Tracer()
        root = tracer.start_query("Q")
        for rows in (10, 20):
            morsel = tracer.start_span("morsel", kind="morsel")
            morsel.rows = rows
            tracer.end_span(morsel)
        tracer.finish_query(root, 0, 0)
        summary = worker_summary(tracer.sink.trace(root.trace_id))
        assert len(summary) == 1
        _, morsels, rows = summary[0]
        assert (morsels, rows) == (2, 30)


class TestMetrics:
    def test_factories_are_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("c", "help") is reg.counter("c")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_counter_gauge_histogram_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("queries", "q").inc(3)
        reg.gauge("buffer").set(42.0)
        reg.histogram("latency", bounds=(0.1, 1.0)).observe(0.5)
        snap = reg.snapshot()
        assert snap["queries"] == 3
        assert snap["buffer"] == 42.0
        assert snap["latency"]["count"] == 1
        assert snap["latency"]["buckets"][1.0] == 1
        assert snap["latency"]["buckets"][0.1] == 0

    def test_render_text_is_prometheus_format(self):
        reg = MetricsRegistry()
        reg.counter("repro_queries_total", "Statements executed").inc()
        reg.histogram("repro_statement_seconds", "latency",
                      bounds=(0.1,)).observe(0.05)
        text = reg.render_text()
        assert "# HELP repro_queries_total Statements executed" in text
        assert "# TYPE repro_queries_total counter" in text
        assert "repro_queries_total 1" in text
        assert 'repro_statement_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_statement_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_statement_seconds_count 1" in text
        assert text.endswith("\n")

    def test_reset_zeroes_but_keeps_instruments(self):
        reg = MetricsRegistry()
        counter = reg.counter("c")
        counter.inc(5)
        reg.reset()
        assert counter.value == 0
        assert reg.counter("c") is counter

    def test_connection_metrics_counts_statements(self, populated):
        before = obs.registry().counter("repro_queries_total").value
        populated.execute("SELECT i FROM sample").fetchall()
        metrics = populated.metrics()
        assert metrics["repro_queries_total"] >= before + 1
        assert "repro_statement_seconds" in metrics
        assert "repro_buffer_used_bytes" in metrics

    def test_rows_returned_counter(self, populated):
        before = obs.registry().counter("repro_rows_returned_total").value
        populated.execute("SELECT i FROM sample").fetchall()
        after = obs.registry().counter("repro_rows_returned_total").value
        assert after >= before + 5

    def test_connection_metrics_text(self, populated):
        populated.execute("SELECT 1").fetchall()
        text = populated.metrics_text()
        assert "# TYPE repro_queries_total counter" in text


class TestExpositionFormat:
    """The text format's escaping rules, held to a round trip.

    A scraper unescapes label values by the Prometheus spec: ``\\\\`` ->
    backslash, ``\\"`` -> quote, ``\\n`` -> newline.  Rendering then
    unescaping must recover the original value exactly -- the spec's own
    definition of correct escaping.
    """

    @staticmethod
    def _unescape(value):
        out = []
        index = 0
        while index < len(value):
            char = value[index]
            if char == "\\" and index + 1 < len(value):
                nxt = value[index + 1]
                out.append({"\\": "\\", '"': '"', "n": "\n"}[nxt])
                index += 2
            else:
                out.append(char)
                index += 1
        return "".join(out)

    @pytest.mark.parametrize("raw", [
        'plain',
        'with "quotes"',
        "back\\slash",
        "new\nline",
        'every\\thing "at\nonce\\"',
        '\\n',  # literal backslash-n must not collapse into a newline
    ])
    def test_label_value_round_trip(self, raw):
        from repro.observability.metrics import _render_labels

        rendered = _render_labels({"lock": raw})
        assert rendered.startswith('{lock="') and rendered.endswith('"}')
        inner = rendered[len('{lock="'):-len('"}')]
        # The rendered form is a single physical line ...
        assert "\n" not in inner
        # ... and unescaping recovers the original value exactly.
        assert self._unescape(inner) == raw

    def test_non_finite_values_render_per_spec(self):
        from repro.observability.metrics import _format_value

        assert _format_value(float("inf")) == "+Inf"
        assert _format_value(float("-inf")) == "-Inf"
        assert _format_value(float("nan")) == "NaN"
        assert _format_value(3.0) == "3"
        assert _format_value(3.5) == "3.5"

    def test_non_finite_gauge_renders_without_raising(self):
        reg = MetricsRegistry()
        reg.gauge("g_inf").set(float("inf"))
        reg.gauge("g_nan").set(float("nan"))
        text = reg.render_text()
        assert "g_inf +Inf" in text
        assert "g_nan NaN" in text


class TestSlowQueryLog:
    def test_record_and_render(self):
        log = SlowQueryLog(capacity=2)
        log.record("SELECT 1", duration_ms=12.5, threshold_ms=1.0)
        log.record("SELECT 2", duration_ms=20.0, threshold_ms=1.0)
        log.record("SELECT 3", duration_ms=30.0, threshold_ms=1.0)
        records = log.records()
        assert [r.sql for r in records] == ["SELECT 2", "SELECT 3"]
        assert "slow query (30.00 ms" in records[-1].render()

    def test_threshold_triggers_slow_log(self, traced):
        con = repro.connect(config={"slow_query_ms": 1e-6})
        try:
            con.execute("CREATE TABLE t (i INTEGER)")
            con.execute("INSERT INTO t VALUES (1), (2)")
            con.execute("SELECT * FROM t").fetchall()
            records = con.slow_queries()
            assert records
            select = [r for r in records if r.sql.startswith("SELECT")]
            assert select and select[-1].duration_ms > 0
            # Tracing was on, so the record carries the rendered trace.
            assert select[-1].span_count > 0
            assert "kind=query" not in (select[-1].trace_text or "")
        finally:
            con.close()

    def test_zero_threshold_disables_log(self, populated):
        populated.execute("SELECT i FROM sample").fetchall()
        assert populated.slow_queries() == []

    def test_slow_log_emits_logging_warning(self, caplog):
        log = SlowQueryLog()
        with caplog.at_level(logging.WARNING, logger="repro.slowlog"):
            log.record("SELECT slow", duration_ms=99.0, threshold_ms=1.0)
        assert any("SELECT slow" in message for message in caplog.messages)


class TestParallelTracing:
    def test_morsel_spans_carry_worker_identity(self, traced):
        rows = 50_000  # several morsels' worth (morsels align to scan chunks)
        con = repro.connect(config={"threads": 4, "morsel_size": 16384})
        try:
            con.execute("CREATE TABLE big (i INTEGER)")
            with con.appender("big") as appender:
                appender.append_numpy(
                    {"i": np.arange(rows, dtype=np.int64)})
            con.execute("SELECT sum(i) FROM big").fetchall()
            morsels = [s for s in traced.sink.spans() if s.kind == "morsel"]
            assert morsels, "parallel scan recorded no morsel spans"
            assert all(s.attrs.get("morsel") is not None for s in morsels)
            summary = worker_summary(morsels)
            assert sum(row_count for _, _, row_count in summary) == rows
        finally:
            con.close()
