"""ETL tests: CSV sniffing, streaming reads, writes, COPY, recoding."""

import numpy as np
import pytest

import repro
from repro.errors import InvalidInputError
from repro.etl import read_csv_chunks, sniff_csv, write_csv
from repro.types import BIGINT, BOOLEAN, DATE, DOUBLE, TIMESTAMP, VARCHAR


def write_file(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


class TestSniffer:
    def test_comma_with_header(self, tmp_path):
        path = write_file(tmp_path, "a.csv",
                          "id,name,score\n1,ann,1.5\n2,bob,2.5\n")
        sniffed = sniff_csv(path)
        assert sniffed.delimiter == ","
        assert sniffed.has_header
        assert sniffed.names == ["id", "name", "score"]
        assert sniffed.types == [BIGINT, VARCHAR, DOUBLE]

    def test_semicolon_delimiter(self, tmp_path):
        path = write_file(tmp_path, "b.csv", "a;b\n1;2\n3;4\n")
        sniffed = sniff_csv(path)
        assert sniffed.delimiter == ";"
        assert sniffed.types == [BIGINT, BIGINT]

    def test_tab_and_pipe(self, tmp_path):
        tab = write_file(tmp_path, "c.csv", "a\tb\n1\t2\n")
        assert sniff_csv(tab).delimiter == "\t"
        pipe = write_file(tmp_path, "d.csv", "a|b\n1|2\n")
        assert sniff_csv(pipe).delimiter == "|"

    def test_no_header_generates_names(self, tmp_path):
        path = write_file(tmp_path, "e.csv", "1,2.5\n3,4.5\n")
        sniffed = sniff_csv(path)
        assert not sniffed.has_header
        assert sniffed.names == ["column0", "column1"]

    def test_all_text_no_header_hint(self, tmp_path):
        # First row text + later rows numeric => header.
        path = write_file(tmp_path, "f.csv", "x,y\nfoo,1\nbar,2\n")
        sniffed = sniff_csv(path)
        assert sniffed.has_header
        assert sniffed.types == [VARCHAR, BIGINT]

    def test_type_widening(self, tmp_path):
        path = write_file(tmp_path, "g.csv", "v\n1\n2.5\n")
        assert sniff_csv(path).types == [DOUBLE]
        path = write_file(tmp_path, "h.csv", "v\n1\nhello\n")
        assert sniff_csv(path).types == [VARCHAR]

    def test_date_and_timestamp_detection(self, tmp_path):
        path = write_file(tmp_path, "i.csv",
                          "d,ts\n2020-01-01,2020-01-01 10:00:00\n")
        assert sniff_csv(path).types == [DATE, TIMESTAMP]

    def test_boolean_detection(self, tmp_path):
        path = write_file(tmp_path, "j.csv", "flag\ntrue\nfalse\n")
        assert sniff_csv(path).types == [BOOLEAN]

    def test_nulls_do_not_affect_types(self, tmp_path):
        path = write_file(tmp_path, "k.csv", "v\n1\n\nNA\n3\n")
        assert sniff_csv(path).types == [BIGINT]

    def test_all_null_column_defaults_varchar(self, tmp_path):
        path = write_file(tmp_path, "l.csv", "v,w\n,1\nNA,2\n")
        assert sniff_csv(path).types == [VARCHAR, BIGINT]

    def test_missing_file(self):
        with pytest.raises(InvalidInputError):
            sniff_csv("/nonexistent/file.csv")

    def test_empty_file(self, tmp_path):
        # A zero-byte file sniffs to an empty schema rather than erroring;
        # COPY FROM uses this to load zero rows.
        path = write_file(tmp_path, "m.csv", "")
        sniffed = sniff_csv(path)
        assert sniffed.names == []
        assert sniffed.types == []

    def test_blank_lines_only(self, tmp_path):
        path = write_file(tmp_path, "n.csv", "\n\n\n")
        sniffed = sniff_csv(path)
        assert sniffed.types == []


class TestReader:
    def test_streaming_chunks(self, tmp_path):
        lines = "v\n" + "\n".join(str(i) for i in range(5000)) + "\n"
        path = write_file(tmp_path, "big.csv", lines)
        chunks = list(read_csv_chunks(path, [BIGINT], header=True,
                                      chunk_size=2048))
        assert sum(chunk.size for chunk in chunks) == 5000
        assert len(chunks) > 1  # actually streamed
        total = sum(int(chunk.columns[0].data[chunk.columns[0].validity].sum())
                    for chunk in chunks)
        assert total == sum(range(5000))

    def test_null_tokens(self, tmp_path):
        # Blank lines are skipped (csv convention); explicit tokens are NULL.
        path = write_file(tmp_path, "n.csv", "v\n1\n\nNULL\nna\n4\n")
        chunks = list(read_csv_chunks(path, [BIGINT], header=True))
        assert chunks[0].columns[0].to_pylist() == [1, None, None, 4]

    def test_null_tokens_multi_column(self, tmp_path):
        path = write_file(tmp_path, "n2.csv", "a,b\n1,\nN/A,2\n")
        chunk = next(read_csv_chunks(path, [BIGINT, BIGINT], header=True))
        assert chunk.to_rows() == [(1, None), (None, 2)]

    def test_short_rows_padded_with_null(self, tmp_path):
        path = write_file(tmp_path, "o.csv", "a,b\n1,2\n3\n")
        chunk = next(read_csv_chunks(path, [BIGINT, BIGINT], header=True))
        assert chunk.to_rows() == [(1, 2), (3, None)]

    def test_quoted_fields(self, tmp_path):
        path = write_file(tmp_path, "p.csv",
                          'a,b\n"hello, world",2\n"say ""hi""",3\n')
        chunk = next(read_csv_chunks(path, [VARCHAR, BIGINT], header=True))
        assert chunk.row(0) == ("hello, world", 2)
        assert chunk.row(1) == ('say "hi"', 3)


class TestWriter:
    def test_round_trip_via_files(self, tmp_path, populated):
        out = str(tmp_path / "out.csv")
        chunks = populated.execute("SELECT * FROM sample ORDER BY i").chunks()
        count = write_csv(out, chunks, ["i", "s", "d"])
        assert count == 5
        sniffed = sniff_csv(out)
        assert sniffed.names == ["i", "s", "d"]
        back = list(read_csv_chunks(out, sniffed.types, header=True))
        assert sum(chunk.size for chunk in back) == 5


class TestCopyStatements:
    def test_copy_to_and_from(self, tmp_path, populated):
        out = str(tmp_path / "dump.csv")
        result = populated.execute(f"COPY sample TO '{out}'")
        assert result.rowcount == 5
        populated.execute("CREATE TABLE restored (i INTEGER, s VARCHAR, d DOUBLE)")
        result = populated.execute(f"COPY restored FROM '{out}'")
        assert result.rowcount == 5
        original = populated.execute("SELECT * FROM sample ORDER BY i").fetchall()
        restored = populated.execute("SELECT * FROM restored ORDER BY i").fetchall()
        assert restored == original

    def test_copy_query_to(self, tmp_path, populated):
        out = str(tmp_path / "q.csv")
        populated.execute(
            f"COPY (SELECT s, count(*) AS n FROM sample GROUP BY s) TO '{out}'")
        sniffed = sniff_csv(out)
        assert sniffed.names == ["s", "n"]

    def test_copy_from_column_count_mismatch(self, tmp_path, populated):
        out = str(tmp_path / "bad.csv")
        (tmp_path / "bad.csv").write_text("a,b\n1,2\n")
        populated.execute("CREATE TABLE narrow (x INTEGER)")
        with pytest.raises(InvalidInputError):
            populated.execute(f"COPY narrow FROM '{out}'")

    def test_copy_delimiter_option(self, tmp_path, populated):
        out = str(tmp_path / "semi.csv")
        populated.execute(f"COPY sample TO '{out}' (DELIMITER ';')")
        content = (tmp_path / "semi.csv").read_text()
        assert ";" in content.splitlines()[0]

    def test_copy_is_transactional(self, tmp_path, con):
        out = str(tmp_path / "x.csv")
        (tmp_path / "x.csv").write_text("v\n1\n2\n")
        con.execute("CREATE TABLE t (v INTEGER)")
        con.execute("BEGIN")
        con.execute(f"COPY t FROM '{out}'")
        con.execute("ROLLBACK")
        assert con.query_value("SELECT count(*) FROM t") == 0

    def test_copy_from_empty_file_loads_zero_rows(self, tmp_path, con):
        # Regression: a zero-byte CSV used to raise InvalidInputError; it
        # should behave like the header-only case and load nothing.
        out = str(tmp_path / "empty.csv")
        (tmp_path / "empty.csv").write_text("")
        con.execute("CREATE TABLE t (v INTEGER)")
        result = con.execute(f"COPY t FROM '{out}'")
        assert result.fetchall() == [(0,)]
        assert con.query_value("SELECT count(*) FROM t") == 0

    def test_copy_from_header_only_file(self, tmp_path, con):
        out = str(tmp_path / "header.csv")
        (tmp_path / "header.csv").write_text("v\n")
        con.execute("CREATE TABLE t (v INTEGER)")
        result = con.execute(f"COPY t FROM '{out}'")
        assert result.fetchall() == [(0,)]
        assert con.query_value("SELECT count(*) FROM t") == 0


class TestDirectCSVQueries:
    def test_select_from_csv_file(self, tmp_path, con):
        path = write_file(tmp_path, "direct.csv",
                          "region,amount\neast,10\nwest,20\neast,5\n")
        rows = con.execute(
            f"SELECT region, sum(amount) FROM '{path}' GROUP BY region "
            "ORDER BY region").fetchall()
        assert rows == [("east", 15), ("west", 20)]

    def test_read_csv_function(self, tmp_path, con):
        path = write_file(tmp_path, "fn.csv", "x\n1\n2\n")
        assert con.query_value(
            f"SELECT sum(x) FROM read_csv('{path}')") == 3

    def test_read_csv_of_empty_file_rejected(self, tmp_path, con):
        # SELECT needs a schema; an empty file has none to infer.
        from repro.errors import BinderError

        path = write_file(tmp_path, "void.csv", "")
        with pytest.raises(BinderError, match="empty"):
            con.execute(f"SELECT * FROM read_csv('{path}')")

    def test_etl_pipeline_csv_to_table(self, tmp_path, con):
        """Paper §2: scan a file, reshape, append to a persistent table."""
        path = write_file(tmp_path, "raw.csv",
                          "id,value\n1,-999\n2,10\n3,-999\n4,20\n")
        con.execute("CREATE TABLE clean AS "
                    f"SELECT id, nullif(value, -999) AS value FROM '{path}'")
        rows = con.execute("SELECT id, value FROM clean ORDER BY id").fetchall()
        assert rows == [(1, None), (2, 10), (3, None), (4, 20)]
