"""Aggregation tests: grouping, NULL handling, DISTINCT, HAVING."""

import math

import numpy as np
import pytest

import repro
from repro.errors import BinderError


class TestUngrouped:
    def test_count_star(self, populated):
        assert populated.query_value("SELECT count(*) FROM sample") == 5

    def test_count_column_skips_nulls(self, populated):
        assert populated.query_value("SELECT count(s) FROM sample") == 4
        assert populated.query_value("SELECT count(d) FROM sample") == 4

    def test_sum_avg(self, populated):
        assert populated.query_value("SELECT sum(i) FROM sample") == 15
        assert populated.query_value("SELECT avg(i) FROM sample") == 3.0

    def test_sum_ignores_nulls(self, populated):
        assert populated.query_value("SELECT sum(d) FROM sample") == \
            pytest.approx(9.0)

    def test_min_max(self, populated):
        assert populated.query_value("SELECT min(d) FROM sample") == 0.5
        assert populated.query_value("SELECT max(d) FROM sample") == 4.5

    def test_min_max_strings(self, populated):
        assert populated.query_value("SELECT min(s) FROM sample") == "alpha"
        assert populated.query_value("SELECT max(s) FROM sample") == "gamma"

    def test_stddev(self, con):
        con.execute("CREATE TABLE v (x DOUBLE)")
        con.execute("INSERT INTO v VALUES (1), (2), (3), (4)")
        import statistics

        assert con.query_value("SELECT stddev(x) FROM v") == \
            pytest.approx(statistics.stdev([1, 2, 3, 4]))
        assert con.query_value("SELECT var_samp(x) FROM v") == \
            pytest.approx(statistics.variance([1, 2, 3, 4]))

    def test_stddev_single_row_is_null(self, con):
        con.execute("CREATE TABLE v (x DOUBLE)")
        con.execute("INSERT INTO v VALUES (1)")
        assert con.query_value("SELECT stddev(x) FROM v") is None

    def test_aggregates_over_empty_table(self, con):
        con.execute("CREATE TABLE e (x INTEGER)")
        row = con.execute(
            "SELECT count(*), count(x), sum(x), min(x), avg(x) FROM e"
        ).fetchone()
        assert row == (0, 0, None, None, None)

    def test_aggregates_over_all_null(self, con):
        con.execute("CREATE TABLE n (x INTEGER)")
        con.execute("INSERT INTO n VALUES (NULL), (NULL)")
        row = con.execute("SELECT count(x), sum(x), max(x) FROM n").fetchone()
        assert row == (0, None, None)

    def test_expression_inside_aggregate(self, populated):
        assert populated.query_value("SELECT sum(i * 2) FROM sample") == 30

    def test_expression_of_aggregates(self, populated):
        value = populated.query_value(
            "SELECT sum(i) * 1.0 / count(*) FROM sample")
        assert value == pytest.approx(3.0)

    def test_sum_type_integer_stays_integer(self, populated):
        result = populated.execute("SELECT sum(i) FROM sample")
        from repro.types import BIGINT

        assert result.types[0] == BIGINT


class TestGrouped:
    def test_group_by(self, populated):
        rows = populated.execute(
            "SELECT s, count(*), sum(i) FROM sample GROUP BY s "
            "ORDER BY s NULLS FIRST").fetchall()
        assert rows == [(None, 1, 4), ("alpha", 2, 4), ("beta", 1, 2),
                        ("gamma", 1, 5)]

    def test_null_forms_its_own_group(self, populated):
        rows = populated.execute(
            "SELECT s FROM sample GROUP BY s").fetchall()
        assert (None,) in rows
        assert len(rows) == 4

    def test_group_by_expression(self, populated):
        rows = populated.execute(
            "SELECT i % 2, count(*) FROM sample GROUP BY i % 2 ORDER BY 1"
        ).fetchall()
        assert rows == [(0, 2), (1, 3)]

    def test_group_by_position_and_alias(self, populated):
        by_position = populated.execute(
            "SELECT s, count(*) FROM sample GROUP BY 1 ORDER BY 1 NULLS FIRST"
        ).fetchall()
        by_alias = populated.execute(
            "SELECT s AS tag, count(*) FROM sample GROUP BY tag "
            "ORDER BY 1 NULLS FIRST").fetchall()
        assert by_position == by_alias

    def test_multi_column_groups(self, con):
        con.execute("CREATE TABLE g (a INTEGER, b VARCHAR, x INTEGER)")
        con.execute("INSERT INTO g VALUES (1,'x',10), (1,'x',11), (1,'y',12), "
                    "(2,'x',13)")
        rows = con.execute(
            "SELECT a, b, sum(x) FROM g GROUP BY a, b ORDER BY a, b").fetchall()
        assert rows == [(1, "x", 21), (1, "y", 12), (2, "x", 13)]

    def test_bare_column_requires_group_by(self, populated):
        with pytest.raises(BinderError):
            populated.execute("SELECT s, sum(i) FROM sample")

    def test_group_key_usable_in_expressions(self, populated):
        rows = populated.execute(
            "SELECT upper(s), count(*) FROM sample WHERE s IS NOT NULL "
            "GROUP BY s ORDER BY 1").fetchall()
        assert rows == [("ALPHA", 2), ("BETA", 1), ("GAMMA", 1)]

    def test_having(self, populated):
        rows = populated.execute(
            "SELECT s, count(*) AS c FROM sample GROUP BY s HAVING count(*) > 1"
        ).fetchall()
        assert rows == [("alpha", 2)]

    def test_having_without_groups_rejected(self, populated):
        with pytest.raises(BinderError):
            populated.execute("SELECT i FROM sample HAVING i > 1")

    def test_aggregate_in_where_rejected(self, populated):
        with pytest.raises(BinderError):
            populated.execute("SELECT i FROM sample WHERE sum(i) > 1")

    def test_nested_aggregate_rejected(self, populated):
        with pytest.raises(BinderError):
            populated.execute("SELECT sum(count(*)) FROM sample")

    def test_order_by_aggregate(self, populated):
        rows = populated.execute(
            "SELECT s, sum(i) FROM sample GROUP BY s ORDER BY sum(i) DESC, "
            "s NULLS FIRST").fetchall()
        assert rows[0][1] == 5

    def test_many_groups(self, con):
        con.execute("CREATE TABLE m (k INTEGER, v INTEGER)")
        with con.appender("m") as appender:
            n = 50_000
            appender.append_numpy({
                "k": (np.arange(n) % 1000).astype(np.int32),
                "v": np.ones(n, dtype=np.int32),
            })
        rows = con.execute(
            "SELECT k, count(*) FROM m GROUP BY k ORDER BY k LIMIT 3").fetchall()
        assert rows == [(0, 50), (1, 50), (2, 50)]
        assert con.query_value(
            "SELECT count(*) FROM (SELECT k FROM m GROUP BY k) sub") == 1000


class TestDistinctAggregates:
    def test_count_distinct(self, populated):
        assert populated.query_value(
            "SELECT count(DISTINCT s) FROM sample") == 3

    def test_sum_distinct(self, con):
        con.execute("CREATE TABLE d (x INTEGER)")
        con.execute("INSERT INTO d VALUES (1), (1), (2), (2), (3)")
        assert con.query_value("SELECT sum(DISTINCT x) FROM d") == 6
        assert con.query_value("SELECT sum(x) FROM d") == 9

    def test_count_distinct_grouped(self, con):
        con.execute("CREATE TABLE d (g VARCHAR, x INTEGER)")
        con.execute("INSERT INTO d VALUES ('a',1), ('a',1), ('a',2), ('b',5)")
        rows = con.execute(
            "SELECT g, count(DISTINCT x) FROM d GROUP BY g ORDER BY g").fetchall()
        assert rows == [("a", 2), ("b", 1)]

    def test_count_distinct_strings(self, con):
        con.execute("CREATE TABLE d (s VARCHAR)")
        con.execute("INSERT INTO d VALUES ('x'), ('x'), ('y'), (NULL)")
        assert con.query_value("SELECT count(DISTINCT s) FROM d") == 2

    def test_distinct_on_scalar_function_rejected(self, populated):
        with pytest.raises(BinderError):
            populated.execute("SELECT upper(DISTINCT s) FROM sample")


class TestFirstAggregate:
    def test_first(self, con):
        con.execute("CREATE TABLE f (g INTEGER, v VARCHAR)")
        con.execute("INSERT INTO f VALUES (1, 'a'), (1, 'b'), (2, 'c')")
        rows = con.execute(
            "SELECT g, first(v) FROM f GROUP BY g ORDER BY g").fetchall()
        assert rows == [(1, "a"), (2, "c")]
