"""Config parsing and binary serialization unit tests."""

import numpy as np
import pytest

from repro.config import DatabaseConfig, parse_memory_size
from repro.errors import CorruptionError, InvalidInputError
from repro.storage.serialize import BinaryReader, BinaryWriter


class TestMemorySizeParsing:
    @pytest.mark.parametrize("text,expected", [
        ("100", 100),
        ("1KB", 1000),
        ("2MB", 2 * 10**6),
        ("3GB", 3 * 10**9),
        ("1KiB", 1024),
        ("2MiB", 2 << 20),
        ("1GiB", 1 << 30),
        ("1.5MB", 1_500_000),
        (" 64 MiB ", 64 << 20),
        (12345, 12345),
    ])
    def test_valid(self, text, expected):
        assert parse_memory_size(text) == expected

    @pytest.mark.parametrize("bad", ["", "lots", "12XB", -5, 0, "MB"])
    def test_invalid(self, bad):
        with pytest.raises(InvalidInputError):
            parse_memory_size(bad)


class TestDatabaseConfig:
    def test_defaults(self):
        config = DatabaseConfig()
        assert config.memory_limit == 1 << 31
        assert config.threads == 1
        assert config.verify_checksums is True

    def test_from_dict(self):
        config = DatabaseConfig.from_dict({
            "memory_limit": "128MB",
            "threads": 4,
            "verify_checksums": "off",
            "buffer_memtest": "on",
        })
        assert config.memory_limit == 128 * 10**6
        assert config.threads == 4
        assert config.verify_checksums is False
        assert config.buffer_memtest is True

    def test_unknown_option(self):
        with pytest.raises(InvalidInputError):
            DatabaseConfig.from_dict({"quack_level": 11})

    def test_bad_boolean(self):
        with pytest.raises(InvalidInputError):
            DatabaseConfig.from_dict({"verify_checksums": "perhaps"})

    def test_threads_must_be_positive(self):
        with pytest.raises(InvalidInputError):
            DatabaseConfig.from_dict({"threads": 0})

    def test_get_option(self):
        config = DatabaseConfig()
        assert config.get_option("threads") == 1
        with pytest.raises(InvalidInputError):
            config.get_option("nonsense")

    def test_wal_autocheckpoint_zero_disables(self):
        config = DatabaseConfig.from_dict({"wal_autocheckpoint": 0})
        assert config.wal_autocheckpoint == 0


class TestBinarySerialization:
    def test_scalar_round_trips(self):
        writer = BinaryWriter()
        writer.write_bool(True)
        writer.write_bool(False)
        writer.write_uint8(255)
        writer.write_uint32(4_000_000_000)
        writer.write_uint64(2**60)
        writer.write_int64(-(2**60))
        writer.write_double(3.14159)
        reader = BinaryReader(writer.getvalue())
        assert reader.read_bool() is True
        assert reader.read_bool() is False
        assert reader.read_uint8() == 255
        assert reader.read_uint32() == 4_000_000_000
        assert reader.read_uint64() == 2**60
        assert reader.read_int64() == -(2**60)
        assert reader.read_double() == pytest.approx(3.14159)
        assert reader.exhausted()

    def test_strings(self):
        writer = BinaryWriter()
        writer.write_string("hello 🦆")
        writer.write_optional_string(None)
        writer.write_optional_string("there")
        reader = BinaryReader(writer.getvalue())
        assert reader.read_string() == "hello 🦆"
        assert reader.read_optional_string() is None
        assert reader.read_optional_string() == "there"

    def test_bytes_and_arrays(self):
        writer = BinaryWriter()
        writer.write_bytes(b"\x00\x01\x02")
        writer.write_int64_array(np.array([1, -2, 3], dtype=np.int64))
        reader = BinaryReader(writer.getvalue())
        assert reader.read_bytes() == b"\x00\x01\x02"
        np.testing.assert_array_equal(reader.read_int64_array(), [1, -2, 3])

    def test_truncated_stream_raises(self):
        writer = BinaryWriter()
        writer.write_uint64(7)
        data = writer.getvalue()[:4]
        with pytest.raises(CorruptionError):
            BinaryReader(data).read_uint64()

    def test_hostile_length_raises(self):
        writer = BinaryWriter()
        writer.write_string("x")
        data = bytearray(writer.getvalue())
        data[0] = 0xFF  # inflate declared length
        data[1] = 0xFF
        with pytest.raises(CorruptionError):
            BinaryReader(bytes(data)).read_string()

    def test_hostile_array_length(self):
        writer = BinaryWriter()
        writer.write_int64_array(np.array([1], dtype=np.int64))
        data = bytearray(writer.getvalue())
        data[0] = 0xFF  # declared count far beyond the stream
        data[3] = 0x7F
        with pytest.raises(CorruptionError):
            BinaryReader(bytes(data)).read_int64_array()

    def test_empty_containers(self):
        writer = BinaryWriter()
        writer.write_string("")
        writer.write_bytes(b"")
        writer.write_int64_array(np.array([], dtype=np.int64))
        reader = BinaryReader(writer.getvalue())
        assert reader.read_string() == ""
        assert reader.read_bytes() == b""
        assert len(reader.read_int64_array()) == 0

    def test_offset_property(self):
        writer = BinaryWriter()
        writer.write_uint32(1)
        reader = BinaryReader(writer.getvalue())
        reader.read_uint32()
        assert reader.offset == 4
