"""DML execution paths: INSERT variants, CTAS, defaults, multi-statement."""

import numpy as np
import pytest

import repro
from repro.errors import BinderError, CatalogError, ConstraintError


class TestInsert:
    def test_insert_from_select(self, populated):
        populated.execute("CREATE TABLE copy1 (i INTEGER, s VARCHAR, d DOUBLE)")
        result = populated.execute(
            "INSERT INTO copy1 SELECT * FROM sample WHERE i <= 3")
        assert result.rowcount == 3
        assert populated.query_value("SELECT count(*) FROM copy1") == 3

    def test_insert_from_select_with_cast(self, con):
        con.execute("CREATE TABLE src (x INTEGER)")
        con.execute("INSERT INTO src VALUES (1), (2)")
        con.execute("CREATE TABLE dst (x DOUBLE)")
        con.execute("INSERT INTO dst SELECT x FROM src")
        assert con.execute("SELECT x FROM dst ORDER BY x").fetchall() == \
            [(1.0,), (2.0,)]

    def test_insert_column_subset_fills_defaults(self, con):
        con.execute("CREATE TABLE t (a INTEGER, b VARCHAR DEFAULT 'dflt', "
                    "c DOUBLE DEFAULT 2.5)")
        con.execute("INSERT INTO t (a) VALUES (1)")
        con.execute("INSERT INTO t (c, a) VALUES (9.0, 2)")
        rows = con.execute("SELECT a, b, c FROM t ORDER BY a").fetchall()
        assert rows == [(1, "dflt", 2.5), (2, "dflt", 9.0)]

    def test_insert_missing_column_without_default_is_null(self, con):
        con.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
        con.execute("INSERT INTO t (a) VALUES (1)")
        assert con.execute("SELECT b FROM t").fetchall() == [(None,)]

    def test_insert_missing_not_null_column_fails(self, con):
        con.execute("CREATE TABLE t (a INTEGER, b INTEGER NOT NULL)")
        with pytest.raises(ConstraintError):
            con.execute("INSERT INTO t (a) VALUES (1)")

    def test_insert_wrong_value_count(self, con):
        con.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
        with pytest.raises(BinderError):
            con.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(BinderError):
            con.execute("INSERT INTO t (a) VALUES (1, 2)")

    def test_insert_duplicate_target_column(self, con):
        con.execute("CREATE TABLE t (a INTEGER)")
        with pytest.raises(BinderError):
            con.execute("INSERT INTO t (a, a) VALUES (1, 2)")

    def test_insert_string_coercion(self, con):
        con.execute("CREATE TABLE t (a INTEGER, d DATE)")
        con.execute("INSERT INTO t VALUES ('42', '2021-05-06')")
        import datetime

        assert con.execute("SELECT a, d FROM t").fetchone() == \
            (42, datetime.date(2021, 5, 6))

    def test_insert_bad_string_coercion_fails(self, con):
        con.execute("CREATE TABLE t (a INTEGER)")
        with pytest.raises(repro.ConversionError):
            con.execute("INSERT INTO t VALUES ('duck')")

    def test_insert_expression_values(self, con):
        con.execute("CREATE TABLE t (a INTEGER)")
        con.execute("INSERT INTO t VALUES (1 + 2 * 3), (abs(-4))")
        assert con.execute("SELECT a FROM t ORDER BY a").fetchall() == \
            [(4,), (7,)]

    def test_insert_select_column_count_mismatch(self, populated):
        populated.execute("CREATE TABLE narrow (i INTEGER)")
        with pytest.raises(BinderError):
            populated.execute("INSERT INTO narrow SELECT i, s FROM sample")


class TestCreateTableAs:
    def test_ctas_with_aggregation(self, populated):
        result = populated.execute(
            "CREATE TABLE summary AS SELECT s, count(*) AS n, sum(i) AS total "
            "FROM sample GROUP BY s")
        assert result.rowcount == 4
        rows = populated.execute(
            "SELECT * FROM summary ORDER BY s NULLS FIRST").fetchall()
        assert rows[0] == (None, 1, 4)

    def test_ctas_types_follow_query(self, populated):
        populated.execute("CREATE TABLE derived AS "
                          "SELECT i * 1.5 AS x, upper(s) AS u FROM sample")
        from repro.types import DOUBLE, VARCHAR

        result = populated.execute("SELECT x, u FROM derived")
        assert result.types == [DOUBLE, VARCHAR]

    def test_ctas_from_join(self, con):
        con.execute("CREATE TABLE a (k INTEGER, x VARCHAR)")
        con.execute("CREATE TABLE b (k INTEGER, y DOUBLE)")
        con.execute("INSERT INTO a VALUES (1, 'one')")
        con.execute("INSERT INTO b VALUES (1, 1.5)")
        con.execute("CREATE TABLE joined AS "
                    "SELECT x, y FROM a JOIN b ON a.k = b.k")
        assert con.execute("SELECT * FROM joined").fetchall() == [("one", 1.5)]

    def test_ctas_duplicate_name(self, populated):
        with pytest.raises(CatalogError):
            populated.execute("CREATE TABLE sample AS SELECT 1 AS x")

    def test_create_if_not_exists(self, populated):
        populated.execute("CREATE TABLE IF NOT EXISTS sample (z INTEGER)")
        # The original table is untouched.
        assert populated.query_value("SELECT count(*) FROM sample") == 5


class TestUpdateExpressions:
    def test_update_references_other_columns(self, con):
        con.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
        con.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
        con.execute("UPDATE t SET a = b + a")
        assert con.execute("SELECT a FROM t ORDER BY a").fetchall() == \
            [(11,), (22,)]

    def test_update_swap_semantics(self, con):
        """SET a = b, b = a must read both from the OLD row."""
        con.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
        con.execute("INSERT INTO t VALUES (1, 2)")
        con.execute("UPDATE t SET a = b, b = a")
        assert con.execute("SELECT a, b FROM t").fetchone() == (2, 1)

    def test_update_with_case(self, populated):
        populated.execute(
            "UPDATE sample SET s = CASE WHEN i % 2 = 0 THEN 'even' "
            "ELSE 'odd' END")
        rows = populated.execute("SELECT DISTINCT s FROM sample "
                                 "ORDER BY s").fetchall()
        assert rows == [("even",), ("odd",)]

    def test_update_not_null_violation(self, con):
        con.execute("CREATE TABLE t (a INTEGER NOT NULL)")
        con.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(ConstraintError):
            con.execute("UPDATE t SET a = NULL")

    def test_update_same_column_twice_rejected(self, con):
        con.execute("CREATE TABLE t (a INTEGER)")
        with pytest.raises(BinderError):
            con.execute("UPDATE t SET a = 1, a = 2")

    def test_update_rowcount_respects_where(self, populated):
        assert populated.execute(
            "UPDATE sample SET d = 0 WHERE i > 3").rowcount == 2

    def test_update_no_matches(self, populated):
        assert populated.execute(
            "UPDATE sample SET d = 0 WHERE i > 100").rowcount == 0

    def test_halloween_safety(self, con):
        """An UPDATE must see each row exactly once, even when the SET
        moves rows into the WHERE range (no Halloween problem)."""
        con.execute("CREATE TABLE t (x INTEGER)")
        with con.appender("t") as appender:
            appender.append_numpy({"x": np.arange(50_000, dtype=np.int32)})
        updated = con.execute("UPDATE t SET x = x + 100000 "
                              "WHERE x < 100000").rowcount
        assert updated == 50_000
        assert con.query_value("SELECT min(x) FROM t") == 100_000


class TestDelete:
    def test_delete_all(self, populated):
        assert populated.execute("DELETE FROM sample").rowcount == 5
        assert populated.query_value("SELECT count(*) FROM sample") == 0
        # Table remains usable.
        populated.execute("INSERT INTO sample VALUES (9, 'z', 1.0)")
        assert populated.query_value("SELECT count(*) FROM sample") == 1

    def test_delete_twice_idempotent(self, populated):
        populated.execute("BEGIN")
        assert populated.execute("DELETE FROM sample WHERE i = 1").rowcount == 1
        assert populated.execute("DELETE FROM sample WHERE i = 1").rowcount == 0
        populated.execute("COMMIT")

    def test_delete_with_subquery(self, populated):
        populated.execute(
            "DELETE FROM sample WHERE i IN (SELECT i FROM sample WHERE d > 2)")
        assert populated.query_value("SELECT count(*) FROM sample") == 3


class TestMultiStatement:
    def test_script_execution(self, con):
        result = con.execute("""
            CREATE TABLE log (x INTEGER);
            INSERT INTO log VALUES (1);
            INSERT INTO log VALUES (2);
            SELECT sum(x) FROM log;
        """)
        assert result.fetchvalue() == 3

    def test_script_stops_at_first_error(self, con):
        con.execute("CREATE TABLE t (x INTEGER)")
        with pytest.raises(CatalogError):
            con.execute("INSERT INTO t VALUES (1); SELECT * FROM nonexistent; "
                        "INSERT INTO t VALUES (2)")
        # First statement committed (autocommit per statement), third never ran.
        assert con.query_value("SELECT count(*) FROM t") == 1


class TestPragmaMemtest:
    def test_pragma_memtest_runs(self, con):
        con.database.buffer_manager.allocate_buffer(4096)
        lines = con.execute("PRAGMA memtest").fetchall()
        assert lines[0][0] == "buffers failing: 0"
