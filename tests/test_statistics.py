"""Statistics layer tests: sketches, per-column summaries, persistence,
selectivity estimation, and the ablation switch."""

import numpy as np
import pytest

import repro
from repro.optimizer import cost
from repro.optimizer.statistics import (
    EXACT_NDV_LIMIT,
    ColumnStatistics,
    DistinctCounter,
    HyperLogLog,
    compute_column_statistics,
    restore_column_statistics,
)
from repro.planner.expressions import BoundColumnRef, BoundConstant, BoundOperator
from repro.types import BOOLEAN, INTEGER, VARCHAR


class TestHyperLogLog:
    def test_accuracy_large_integers(self):
        sketch = HyperLogLog()
        values = np.arange(100_000, dtype=np.int64)
        sketch.add_array(values)
        estimate = sketch.estimate()
        assert 0.93 * 100_000 < estimate < 1.07 * 100_000

    def test_duplicates_do_not_inflate(self):
        sketch = HyperLogLog()
        for _ in range(10):
            sketch.add_array(np.arange(1000, dtype=np.int64))
        assert sketch.estimate() < 1200

    def test_small_cardinality_linear_counting(self):
        sketch = HyperLogLog()
        sketch.add_array(np.arange(10, dtype=np.int64))
        assert 8 <= sketch.estimate() <= 12

    def test_merge_is_union(self):
        a, b = HyperLogLog(), HyperLogLog()
        a.add_array(np.arange(0, 50_000, dtype=np.int64))
        b.add_array(np.arange(25_000, 75_000, dtype=np.int64))
        a.merge(b)
        assert 0.9 * 75_000 < a.estimate() < 1.1 * 75_000

    def test_float_negative_zero_canonicalized(self):
        sketch = HyperLogLog()
        sketch.add_array(np.array([0.0, -0.0], dtype=np.float64))
        assert sketch.estimate() <= 2


class TestDistinctCounter:
    def test_exact_below_limit(self):
        counter = DistinctCounter()
        counter.add_array(np.arange(100, dtype=np.int64))
        counter.add_array(np.arange(50, dtype=np.int64))  # duplicates
        assert counter.estimate() == 100.0
        assert not counter.approximate

    def test_promotion_keeps_estimate_consistent(self):
        # Values seen before promotion must hash the same as values added
        # after, or re-adding the same data would double-count.
        counter = DistinctCounter(limit=512)
        counter.add_array(np.arange(400, dtype=np.int64))
        assert not counter.approximate
        counter.add_array(np.arange(400, dtype=np.int64))  # same values again
        counter.add_array(np.arange(400, 1000, dtype=np.int64))  # promotes
        assert counter.approximate
        estimate = counter.estimate()
        assert 0.9 * 1000 < estimate < 1.1 * 1000

    def test_string_promotion_consistent(self):
        counter = DistinctCounter(limit=64)
        values = np.array([f"key-{i}" for i in range(50)], dtype=object)
        counter.add_array(values)
        counter.add_array(
            np.array([f"key-{i}" for i in range(120)], dtype=object))
        assert counter.approximate
        assert 100 < counter.estimate() < 140

    def test_default_limit(self):
        counter = DistinctCounter()
        counter.add_array(np.arange(EXACT_NDV_LIMIT, dtype=np.int64))
        assert not counter.approximate


class TestColumnStatistics:
    def test_observe_append_tracks_min_max_nulls(self):
        stats = ColumnStatistics(INTEGER)
        data = np.array([5, 2, 9, 7], dtype=np.int32)
        validity = np.array([True, True, False, True])
        stats.observe_append(data, validity)
        assert stats.row_count == 4
        assert stats.null_count == 1
        assert stats.min_value == 2
        assert stats.max_value == 7
        assert not stats.stale

    def test_update_widens_and_marks_stale(self):
        stats = ColumnStatistics(INTEGER)
        stats.observe_append(np.array([1, 2, 3], dtype=np.int32),
                             np.ones(3, dtype=bool))
        stats.observe_update(np.array([100], dtype=np.int32),
                             np.ones(1, dtype=bool))
        assert stats.stale
        assert stats.max_value == 100
        assert stats.min_value == 1

    def test_restore_uses_baseline_ndv_floor(self):
        stats = restore_column_statistics(INTEGER, 1000, 10, 250.0, False,
                                          0, 999)
        assert stats.ndv == 250.0
        # Fresh observations below the baseline do not lower the estimate.
        stats.observe_append(np.array([1, 2], dtype=np.int32),
                             np.ones(2, dtype=bool))
        assert stats.ndv == 250.0

    def test_compute_exact(self):
        data = np.array([3, 1, 3, 2], dtype=np.int32)
        stats = compute_column_statistics(data, np.ones(4, dtype=bool),
                                          INTEGER)
        assert stats.min_value == 1
        assert stats.max_value == 3
        assert stats.ndv == 3.0


def _stats_for(values, nulls=0):
    data = np.asarray(values, dtype=np.int64)
    validity = np.ones(len(data), dtype=bool)
    stats = compute_column_statistics(data, validity, INTEGER)
    stats.null_count = nulls
    stats.row_count += nulls
    return stats


class TestSelectivity:
    def test_equality_is_one_over_ndv(self):
        stats = _stats_for(range(100))
        resolver = lambda position: stats
        predicate = BoundOperator("=", [BoundColumnRef(0, INTEGER, "c"),
                                        BoundConstant(42, INTEGER)], BOOLEAN)
        assert cost.predicate_selectivity(predicate, resolver) == \
            pytest.approx(0.01)

    def test_out_of_range_equality_is_zero(self):
        stats = _stats_for(range(100))
        predicate = BoundOperator("=", [BoundColumnRef(0, INTEGER, "c"),
                                        BoundConstant(5000, INTEGER)], BOOLEAN)
        assert cost.predicate_selectivity(predicate, lambda p: stats) == 0.0

    def test_range_interval_fraction(self):
        stats = _stats_for(range(101))  # min 0, max 100
        predicate = BoundOperator("<", [BoundColumnRef(0, INTEGER, "c"),
                                        BoundConstant(25, INTEGER)], BOOLEAN)
        assert cost.predicate_selectivity(predicate, lambda p: stats) == \
            pytest.approx(0.25)

    def test_flipped_comparison(self):
        stats = _stats_for(range(101))
        # 25 > c  is  c < 25
        predicate = BoundOperator(">", [BoundConstant(25, INTEGER),
                                        BoundColumnRef(0, INTEGER, "c")],
                                  BOOLEAN)
        assert cost.predicate_selectivity(predicate, lambda p: stats) == \
            pytest.approx(0.25)

    def test_null_fraction_scales_estimates(self):
        stats = _stats_for(range(50), nulls=50)  # half the rows are NULL
        predicate = BoundOperator("<", [BoundColumnRef(0, INTEGER, "c"),
                                        BoundConstant(1000, INTEGER)], BOOLEAN)
        selectivity = cost.predicate_selectivity(predicate, lambda p: stats)
        assert selectivity == pytest.approx(0.5)

    def test_conjunction_multiplies(self):
        stats = _stats_for(range(101))
        ref = BoundColumnRef(0, INTEGER, "c")
        conjunct = BoundOperator("and", [
            BoundOperator("<", [ref, BoundConstant(50, INTEGER)], BOOLEAN),
            BoundOperator(">=", [ref, BoundConstant(0, INTEGER)], BOOLEAN),
        ], BOOLEAN)
        assert cost.predicate_selectivity(conjunct, lambda p: stats) == \
            pytest.approx(0.5, abs=0.01)

    def test_defaults_without_stats(self):
        predicate = BoundOperator("=", [BoundColumnRef(0, INTEGER, "c"),
                                        BoundConstant(1, INTEGER)], BOOLEAN)
        selectivity = cost.predicate_selectivity(predicate, lambda p: None)
        assert selectivity == pytest.approx(
            cost.DEFAULT_EQUALITY_SELECTIVITY
            * (1.0 - cost.DEFAULT_NULL_FRACTION))


class TestStatisticsLifecycle:
    def test_append_maintains_stats(self, con):
        con.execute("CREATE TABLE t (a INTEGER, s VARCHAR)")
        con.executemany("INSERT INTO t VALUES (?, ?)",
                        [(i, f"v{i % 10}") for i in range(500)])
        row = con.execute(
            "SELECT row_count, null_count, ndv, min_value, max_value, stale "
            "FROM repro_column_stats() "
            "WHERE table_name = 't' AND column_name = 'a'").fetchall()[0]
        assert row[0] == 500
        assert row[1] == 0
        assert row[2] == 500.0
        assert row[3] == "0" and row[4] == "499"
        assert row[5] is False

    def test_update_marks_stale(self, con):
        con.execute("CREATE TABLE t (a INTEGER)")
        con.execute("INSERT INTO t VALUES (1), (2), (3)")
        con.execute("UPDATE t SET a = 99 WHERE a = 2")
        row = con.execute(
            "SELECT stale, max_value FROM repro_column_stats() "
            "WHERE table_name = 't'").fetchall()[0]
        assert row[0] is True
        assert row[1] == "99"

    def test_delete_marks_stale(self, con):
        con.execute("CREATE TABLE t (a INTEGER)")
        con.execute("INSERT INTO t VALUES (1), (2), (3)")
        con.execute("DELETE FROM t WHERE a = 3")
        row = con.execute("SELECT stale FROM repro_column_stats() "
                          "WHERE table_name = 't'").fetchall()[0]
        assert row[0] is True

    def test_checkpoint_persists_stats(self, db_path):
        con = repro.connect(db_path)
        con.execute("CREATE TABLE t (a INTEGER, s VARCHAR)")
        con.executemany("INSERT INTO t VALUES (?, ?)",
                        [(i, f"name-{i % 7}") for i in range(300)])
        con.close()

        con = repro.connect(db_path)
        rows = {row[0]: row for row in con.execute(
            "SELECT column_name, row_count, ndv, min_value, max_value, stale "
            "FROM repro_column_stats() WHERE table_name = 't'").fetchall()}
        assert rows["a"][1] == 300
        assert rows["a"][2] == 300.0
        assert rows["a"][3] == "0" and rows["a"][4] == "299"
        assert rows["a"][5] is False
        assert rows["s"][2] == 7.0
        assert rows["s"][3] == "'name-0'"
        con.close()

    def test_checkpoint_recomputes_stale_stats(self, db_path):
        con = repro.connect(db_path)
        con.execute("CREATE TABLE t (a INTEGER)")
        con.executemany("INSERT INTO t VALUES (?)", [(i,) for i in range(100)])
        con.execute("DELETE FROM t WHERE a >= 10")
        con.close()  # checkpoint: compaction + exact recompute

        con = repro.connect(db_path)
        row = con.execute(
            "SELECT row_count, ndv, min_value, max_value, stale "
            "FROM repro_column_stats() WHERE table_name = 't'").fetchall()[0]
        assert row[0] == 10
        assert row[1] == 10.0
        assert row[2] == "0" and row[3] == "9"
        assert row[4] is False
        con.close()

    def test_rolled_back_insert_not_persisted(self, db_path):
        con = repro.connect(db_path)
        con.execute("CREATE TABLE t (a INTEGER)")
        con.execute("INSERT INTO t VALUES (1)")
        con.execute("BEGIN TRANSACTION")
        con.execute("INSERT INTO t VALUES (1000000)")
        con.execute("ROLLBACK")
        con.close()

        con = repro.connect(db_path)
        assert con.execute("SELECT count(*), max(a) FROM t").fetchall() == \
            [(1, 1)]
        con.close()


class TestAblationSwitch:
    def test_disabling_statistics_restores_defaults(self, con):
        con.execute("CREATE TABLE t (a INTEGER)")
        con.executemany("INSERT INTO t VALUES (?)", [(i,) for i in range(100)])
        previous = cost.set_statistics_enabled(False)
        try:
            rows = con.execute(
                "EXPLAIN SELECT a FROM t WHERE a = 1").fetchall()
            text = "\n".join(row[0] for row in rows)
            # 100 rows * default equality selectivity, not 1/NDV.
            assert "est=10 rows" in text
        finally:
            cost.set_statistics_enabled(previous)
        rows = con.execute("EXPLAIN SELECT a FROM t WHERE a = 1").fetchall()
        text = "\n".join(row[0] for row in rows)
        assert "est=1 rows" in text
