"""quacklint: the engine-aware static analyzer.

Each rule family is exercised against inline good/bad fixtures analyzed
under *virtual paths* (the path decides which scopes apply), the
suppression machinery is tested on its own, and -- the payoff -- the live
source tree is asserted clean, so the suite fails the moment a change
regresses one of the paper's pillars without a justified suppression.
"""

import os
import subprocess
import sys
import textwrap

import pytest

from repro.analysis import (
    ALL_RULES,
    AnalysisConfig,
    ThreadSafetyRegistry,
    all_rule_ids,
    analyze_paths,
    analyze_source,
    package_path,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_TREE = os.path.join(REPO_ROOT, "src", "repro")


def check(source, path):
    """Analyze a dedented fixture under a virtual package path."""
    return analyze_source(textwrap.dedent(source), path)


def rule_ids(violations):
    return [violation.rule for violation in violations]


# -- engine plumbing ---------------------------------------------------------

class TestEngine:
    def test_package_path_normalization(self):
        assert package_path("src/repro/types/vector.py") == \
            "repro/types/vector.py"
        assert package_path("/abs/checkout/src/repro/a.py") == "repro/a.py"
        assert package_path("repro/functions/fixture.py") == \
            "repro/functions/fixture.py"

    def test_parse_error_is_reported_not_raised(self):
        violations = check("def broken(:\n", "repro/storage/x.py")
        assert rule_ids(violations) == ["QLP000"]

    def test_rule_ids_are_unique_across_families(self):
        ids = all_rule_ids()
        assert len(ids) == len(set(ids))
        assert {"QLC001", "QLV001", "QLZ001", "QLE001", "QLR001"} <= set(ids)

    def test_violation_render_format(self):
        violations = check("try:\n    pass\nexcept Exception:\n    pass\n",
                           "repro/storage/x.py")
        assert len(violations) == 1
        rendered = violations[0].render()
        assert rendered.startswith("repro/storage/x.py:3:")
        assert "QLE001" in rendered

    def test_excluded_paths_are_skipped(self):
        # The tuple-at-a-time baseline exists to be slow; it may loop.
        source = """
        def scan(vector):
            for value in vector.data:
                yield value
        """
        assert check(source, "repro/baselines/tuple_engine.py") == []
        assert rule_ids(check(source, "repro/functions/f.py")) == ["QLV002"]

    def test_disabled_rules_config(self):
        config = AnalysisConfig(disabled_rules=("QLE",))
        source = textwrap.dedent(
            "try:\n    pass\nexcept Exception:\n    pass\n")
        assert analyze_source(source, "repro/storage/x.py", config) == []


# -- suppression comments ----------------------------------------------------

class TestSuppression:
    BAD_EXCEPT = "except Exception:"

    def test_same_line_disable(self):
        source = """
        try:
            pass
        except Exception:  # quacklint: disable=QLE001 -- probing only
            pass
        """
        assert check(source, "repro/storage/x.py") == []

    def test_disable_on_other_line_does_not_apply(self):
        source = """
        # quacklint: disable=QLE001
        try:
            pass
        except Exception:
            pass
        """
        assert rule_ids(check(source, "repro/storage/x.py")) == ["QLE001"]

    def test_family_prefix_matches(self):
        source = """
        try:
            pass
        except Exception:  # quacklint: disable=QLE
            pass
        """
        assert check(source, "repro/storage/x.py") == []

    def test_bare_disable_suppresses_everything_on_the_line(self):
        source = """
        try:
            pass
        except Exception:  # quacklint: disable
            pass
        """
        assert check(source, "repro/storage/x.py") == []

    def test_disable_file(self):
        source = """
        # quacklint: disable-file=QLE001
        try:
            pass
        except Exception:
            pass
        """
        assert check(source, "repro/storage/x.py") == []

    def test_unrelated_rule_still_fires(self):
        source = """
        try:
            pass
        except Exception:  # quacklint: disable=QLR001
            pass
        """
        assert rule_ids(check(source, "repro/storage/x.py")) == ["QLE001"]


# -- QLC: concurrency --------------------------------------------------------

class TestConcurrencyRule:
    PATH = "repro/execution/physical.py"  # registered: ExecutionContext

    def test_unlocked_write_to_shared_state_flagged(self):
        source = """
        class ExecutionContext:
            def record(self, rows):
                self.total_rows += rows
        """
        assert rule_ids(check(source, self.PATH)) == ["QLC001"]

    def test_write_under_registered_lock_is_clean(self):
        source = """
        class ExecutionContext:
            def record(self, rows):
                with self._stats_lock:
                    self.total_rows += rows
        """
        assert check(source, self.PATH) == []

    def test_mutator_call_without_lock_flagged(self):
        source = """
        class ExecutionContext:
            def record(self, item):
                self.items.append(item)
        """
        assert rule_ids(check(source, self.PATH)) == ["QLC001"]

    def test_init_is_exempt(self):
        source = """
        class ExecutionContext:
            def __init__(self):
                self.total_rows = 0
        """
        assert check(source, self.PATH) == []

    def test_locked_suffix_method_is_exempt(self):
        source = """
        class ExecutionContext:
            def _bump_locked(self):
                self.total_rows += 1
        """
        assert check(source, self.PATH) == []

    def test_registered_benign_attribute_is_exempt(self):
        # ExecutionContext.interrupted is a documented benign race
        # (cooperative cancellation flag).
        source = """
        class ExecutionContext:
            def interrupt(self):
                self.interrupted = True
        """
        assert check(source, self.PATH) == []

    def test_nested_function_does_not_inherit_lock(self):
        source = """
        class ExecutionContext:
            def record(self):
                with self._stats_lock:
                    def callback():
                        self.total_rows += 1
                    return callback
        """
        assert rule_ids(check(source, self.PATH)) == ["QLC001"]

    def test_unregistered_class_is_not_checked(self):
        source = """
        class ScratchPad:
            def record(self, rows):
                self.total_rows += rows
        """
        assert check(source, self.PATH) == []

    def test_global_statement_in_worker_reachable_module(self):
        source = """
        COUNTER = 0

        def bump():
            global COUNTER
            COUNTER += 1
        """
        assert rule_ids(check(source, "repro/functions/f.py")) == ["QLC002"]
        # Outside worker-reachable code, module-level mutable state is the
        # planner's own business.
        assert check(source, "repro/planner/binder.py") == []

    def test_registry_defaults(self):
        registry = ThreadSafetyRegistry()
        spec = registry.spec_for("repro/execution/physical.py",
                                 "ExecutionContext")
        assert spec is not None and spec.lock_attr == "_stats_lock"
        assert registry.is_worker_reachable("repro/functions/scalar.py")
        assert not registry.is_worker_reachable("repro/sql/parser.py")

    def test_registry_lock_hierarchy(self):
        registry = ThreadSafetyRegistry()
        assert registry.lock_level("connection") == 0
        assert registry.lock_level("telemetry.history") == \
            len(registry.lock_hierarchy) - 1
        assert registry.lock_level("operator_stats") == \
            len(registry.lock_hierarchy) - 2
        assert registry.lock_level("not_a_lock") is None
        # self.<attr> resolves through the per-class table...
        assert registry.resolve_lock_attr(
            "repro/catalog/catalog.py", "Catalog", "_lock", True) == "catalog"
        # ...other receivers only through the unambiguous global names.
        assert registry.resolve_lock_attr(
            "repro/client/connection.py", "Connection",
            "_checkpoint_lock", False) == "database.checkpoint"
        assert registry.resolve_lock_attr(
            "repro/sql/parser.py", None, "_lock", False) is None

    # -- QLC003 + interprocedural propagation -------------------------------

    def test_locked_method_called_without_lock_flagged(self):
        source = """
        class ExecutionContext:
            def _bump_locked(self):
                self.total_rows += 1

            def record(self):
                self._bump_locked()
        """
        assert rule_ids(check(source, self.PATH)) == ["QLC003"]

    def test_locked_method_called_under_lock_is_clean(self):
        source = """
        class ExecutionContext:
            def _bump_locked(self):
                self.total_rows += 1

            def record(self):
                with self._stats_lock:
                    self._bump_locked()
        """
        assert check(source, self.PATH) == []

    def test_private_helper_called_only_under_lock_is_clean(self):
        # Interprocedural: every call site of _bump holds the lock, so its
        # unguarded writes are fine even without the _locked suffix.
        source = """
        class ExecutionContext:
            def _bump(self):
                self.total_rows += 1

            def record(self):
                with self._stats_lock:
                    self._bump()
        """
        assert check(source, self.PATH) == []

    def test_two_hop_helper_chain_is_clean(self):
        source = """
        class ExecutionContext:
            def _bump(self):
                self.total_rows += 1

            def _relay(self):
                self._bump()

            def record(self):
                with self._stats_lock:
                    self._relay()
        """
        assert check(source, self.PATH) == []

    def test_helper_with_one_unlocked_call_site_still_flagged(self):
        source = """
        class ExecutionContext:
            def _bump(self):
                self.total_rows += 1

            def record(self):
                with self._stats_lock:
                    self._bump()

            def sneaky(self):
                self._bump()
        """
        assert rule_ids(check(source, self.PATH)) == ["QLC001"]

    def test_public_helper_never_propagates(self):
        # Only private methods inherit "effectively held": a public method
        # is API surface and may be called from anywhere.
        source = """
        class ExecutionContext:
            def bump(self):
                self.total_rows += 1

            def record(self):
                with self._stats_lock:
                    self.bump()
        """
        assert rule_ids(check(source, self.PATH)) == ["QLC001"]

    def test_call_site_in_nested_def_does_not_credit_helper(self):
        # The closure may run after the with-block exits, so its call site
        # must not count as lock-held for propagation.
        source = """
        class ExecutionContext:
            def _bump(self):
                self.total_rows += 1

            def record(self):
                with self._stats_lock:
                    def later():
                        self._bump()
                    return later
        """
        assert rule_ids(check(source, self.PATH)) == ["QLC001"]


# -- QLL: lock order ---------------------------------------------------------

class TestLockOrderRule:
    PATH = "repro/storage/table_data.py"  # TableData.lock -> "table_data"

    def test_direct_inversion_flagged(self):
        source = """
        class TableData:
            def bad(self):
                with self.lock:
                    with self.database._checkpoint_lock:
                        pass
        """
        assert rule_ids(check(source, self.PATH)) == ["QLL001"]

    def test_declared_order_is_clean(self):
        source = """
        class Database:
            def checkpoint(self):
                with self._checkpoint_lock:
                    with self.table.lock:
                        pass
        """
        assert check(source, "repro/database.py") == []

    def test_multi_item_with_inversion_flagged(self):
        source = """
        class TableData:
            def bad(self):
                with self.lock, self.database._checkpoint_lock:
                    pass
        """
        assert rule_ids(check(source, self.PATH)) == ["QLL001"]

    def test_same_name_reentrancy_is_clean(self):
        source = """
        class TableData:
            def outer(self):
                with self.lock:
                    with self.lock:
                        pass
        """
        assert check(source, self.PATH) == []

    def test_one_hop_call_inversion_flagged(self):
        source = """
        class TableData:
            def _grab_checkpoint(self):
                with self.database._checkpoint_lock:
                    pass

            def bad(self):
                with self.lock:
                    self._grab_checkpoint()
        """
        assert rule_ids(check(source, self.PATH)) == ["QLL002"]

    def test_two_hop_call_inversion_flagged(self):
        source = """
        class TableData:
            def _grab_checkpoint(self):
                with self.database._checkpoint_lock:
                    pass

            def _relay(self):
                self._grab_checkpoint()

            def bad(self):
                with self.lock:
                    self._relay()
        """
        assert rule_ids(check(source, self.PATH)) == ["QLL002"]

    def test_call_acquiring_inner_lock_is_clean(self):
        source = """
        class Database:
            def _grab_table(self):
                with self.table.lock:
                    pass

            def checkpoint(self):
                with self._checkpoint_lock:
                    self._grab_table()
        """
        assert check(source, "repro/database.py") == []

    def test_unresolvable_lock_is_ignored(self):
        source = """
        class TableData:
            def fine(self):
                with self.some_mutex:
                    with self.database._checkpoint_lock:
                        pass
        """
        assert check(source, self.PATH) == []

    def test_nested_def_resets_held_stack(self):
        source = """
        class TableData:
            def fine(self):
                with self.lock:
                    def later(self):
                        with self.database._checkpoint_lock:
                            pass
                    return later
        """
        assert check(source, self.PATH) == []


# -- QLV: vectorization ------------------------------------------------------

class TestVectorizationRule:
    PATH = "repro/functions/fixture.py"

    def test_element_loop_over_vector_data_flagged(self):
        source = """
        def kernel(vector, out, count):
            for index in range(count):
                out[index] = vector.data[index] * 2
        """
        assert rule_ids(check(source, self.PATH)) == ["QLV001"]

    def test_direct_iteration_over_data_flagged(self):
        source = """
        def kernel(vector):
            total = 0
            for value in vector.data:
                total += value
            return total
        """
        assert rule_ids(check(source, self.PATH)) == ["QLV002"]

    def test_iteration_over_validity_flagged(self):
        source = """
        def kernel(vector):
            for index, valid in enumerate(vector.validity):
                pass
        """
        assert rule_ids(check(source, self.PATH)) == ["QLV002"]

    def test_masked_bulk_operation_is_clean(self):
        source = """
        def kernel(left, right, out):
            mask = left.validity & right.validity
            out[mask] = left.data[mask] + right.data[mask]
        """
        assert check(source, self.PATH) == []

    def test_loop_over_argument_vectors_is_clean(self):
        # Looping once per *argument* (not per value) is the vectorized
        # idiom for n-ary kernels like concat().
        source = """
        def kernel(vectors, out):
            for vector in vectors:
                valid = vector.validity
                out[valid] = out[valid] + vector.data[valid]
        """
        assert check(source, self.PATH) == []

    def test_out_of_scope_module_not_checked(self):
        source = """
        def helper(vector):
            for value in vector.data:
                yield value
        """
        assert check(source, "repro/sql/parser.py") == []

    def test_one_violation_per_loop(self):
        source = """
        def kernel(vector, out, count):
            for index in range(count):
                out[index] = vector.data[index] + vector.data[index]
        """
        assert rule_ids(check(source, self.PATH)) == ["QLV001"]


# -- QLZ: zero-copy ----------------------------------------------------------

class TestZeroCopyRule:
    PATH = "repro/client/result.py"

    def test_np_copy_flagged(self):
        source = """
        import numpy as np

        def export(vector):
            return np.copy(vector.data)
        """
        assert rule_ids(check(source, self.PATH)) == ["QLZ001"]

    def test_tolist_flagged(self):
        source = """
        def export(vector):
            return vector.data.tolist()
        """
        assert rule_ids(check(source, self.PATH)) == ["QLZ002"]

    def test_np_array_without_copy_false_flagged(self):
        source = """
        import numpy as np

        def wrap(values):
            return np.array(values)
        """
        assert rule_ids(check(source, self.PATH)) == ["QLZ003"]

    def test_np_array_with_copy_false_is_clean(self):
        source = """
        import numpy as np

        def wrap(values):
            return np.array(values, copy=False)
        """
        assert check(source, self.PATH) == []

    def test_asarray_is_clean(self):
        source = """
        import numpy as np

        def wrap(values):
            return np.asarray(values)
        """
        assert check(source, self.PATH) == []

    def test_rule_only_applies_to_transfer_path(self):
        # np.array copies are fine outside the client/vector hand-over path
        # (e.g. building test data or plans).
        source = """
        import numpy as np

        def build():
            return np.array([1, 2, 3])
        """
        assert check(source, "repro/storage/checkpoint.py") == []


# -- QLE: exception discipline -----------------------------------------------

class TestExceptionRule:
    def test_swallowing_broad_except_flagged(self):
        source = """
        def load():
            try:
                risky()
            except Exception:
                return None
        """
        assert rule_ids(check(source, "repro/storage/x.py")) == ["QLE001"]

    def test_broad_except_that_reraises_is_clean(self):
        source = """
        def load():
            try:
                risky()
            except Exception as exc:
                raise StorageError(f"load failed: {exc}") from exc
        """
        assert check(source, "repro/storage/x.py") == []

    def test_bare_except_always_flagged(self):
        source = """
        def load():
            try:
                risky()
            except:
                raise
        """
        assert rule_ids(check(source, "repro/storage/x.py")) == ["QLE002"]

    def test_tuple_with_broad_member_flagged(self):
        source = """
        def load():
            try:
                risky()
            except (ValueError, Exception):
                return None
        """
        assert rule_ids(check(source, "repro/storage/x.py")) == ["QLE001"]

    def test_narrow_except_is_clean(self):
        source = """
        def load():
            try:
                risky()
            except ValueError:
                return None
        """
        assert check(source, "repro/storage/x.py") == []

    def test_raise_inside_nested_def_does_not_count(self):
        source = """
        def load():
            try:
                risky()
            except Exception:
                def fail():
                    raise ValueError("later")
                return fail
        """
        assert rule_ids(check(source, "repro/storage/x.py")) == ["QLE001"]


# -- QLR: resource discipline ------------------------------------------------

class TestResourceRule:
    PATH = "repro/storage/fixture.py"

    def test_unmanaged_open_flagged(self):
        source = """
        def read(path):
            handle = open(path)
            return handle.read()
        """
        assert rule_ids(check(source, self.PATH)) == ["QLR001"]

    def test_with_open_is_clean(self):
        source = """
        def read(path):
            with open(path) as handle:
                return handle.read()
        """
        assert check(source, self.PATH) == []

    def test_managed_attribute_is_clean(self):
        source = """
        class BlockFile:
            def __init__(self, path):
                self._file = open(path, "r+b")

            def close(self):
                self._file.close()
        """
        assert check(source, self.PATH) == []

    def test_conditional_managed_attribute_is_clean(self):
        source = """
        class Log:
            def __init__(self, path):
                self._file = open(path, "ab") if path else None

            def close(self):
                if self._file is not None:
                    self._file.close()
        """
        assert check(source, self.PATH) == []

    def test_unmanaged_attribute_on_closeless_class_flagged(self):
        source = """
        class Leaky:
            def __init__(self, path):
                self._file = open(path)
        """
        assert rule_ids(check(source, self.PATH)) == ["QLR001"]

    def test_try_finally_close_is_clean(self):
        source = """
        def read(path):
            handle = open(path)
            try:
                return handle.read()
            finally:
                handle.close()
        """
        assert check(source, self.PATH) == []

    def test_bare_acquire_flagged(self):
        source = """
        def locked_work(lock):
            lock.acquire()
            work()
            lock.release()
        """
        assert rule_ids(check(source, self.PATH)) == ["QLR002"]

    def test_acquire_with_finally_release_is_clean(self):
        source = """
        def locked_work(lock):
            lock.acquire()
            try:
                work()
            finally:
                lock.release()
        """
        assert check(source, self.PATH) == []

    def test_rule_scoped_to_storage(self):
        source = """
        def read(path):
            handle = open(path)
            return handle.read()
        """
        assert check(source, "repro/sql/reader.py") == []


class TestObservabilityRule:
    PATH = "repro/execution/fixture.py"

    def test_unclosed_span_flagged(self):
        source = """
        def profile(tracer, op):
            span = tracer.start_span(op.name, kind="operator")
            return op.execute()
        """
        assert rule_ids(check(source, self.PATH)) == ["QLO001"]

    def test_span_closed_in_same_function_is_clean(self):
        source = """
        def profile(tracer, op):
            span = tracer.start_span(op.name, kind="operator")
            try:
                return list(op.execute())
            finally:
                tracer.end_span(span)
        """
        assert check(source, self.PATH) == []

    def test_query_span_closed_across_methods_is_clean(self):
        source = """
        class Runner:
            def start(self, tracer, sql):
                self._span = tracer.start_query(sql)

            def finish(self, tracer, wall, cpu):
                tracer.finish_query(self._span, wall, cpu)
        """
        assert check(source, self.PATH) == []

    def test_query_span_never_closed_by_class_flagged(self):
        source = """
        class Runner:
            def start(self, tracer, sql):
                self._span = tracer.start_query(sql)
        """
        assert rule_ids(check(source, self.PATH)) == ["QLO001"]

    def test_context_manager_span_is_clean(self):
        source = """
        def commit(tracer, data):
            with tracer.span("wal.commit_group", kind="wal"):
                write(data)
        """
        assert check(source, self.PATH) == []

    def test_off_registry_metric_flagged(self):
        source = """
        def count_queries():
            counter = Counter("repro_queries_total")
            counter.inc()
        """
        assert rule_ids(check(source, self.PATH)) == ["QLO002"]

    def test_off_registry_metric_via_module_flagged(self):
        source = """
        def gauge_memory(metrics):
            return metrics.Gauge("repro_buffer_used_bytes")
        """
        assert rule_ids(check(source, self.PATH)) == ["QLO002"]

    def test_registry_factory_is_clean(self):
        source = """
        def count_queries(registry):
            registry.counter("repro_queries_total", "help").inc()
        """
        assert check(source, self.PATH) == []

    def test_observability_package_is_exempt(self):
        source = """
        class MetricsRegistry:
            def counter(self, name):
                metric = Counter(name)
                return metric
        """
        assert check(source, "repro/observability/metrics.py") == []

    INTROSPECTION_PATH = "repro/introspection/fixture.py"

    def test_yield_under_lock_in_provider_flagged(self):
        source = """
        def locks_rows(database, transaction):
            with database._lock:
                for name, stats in database.locks.items():
                    yield (name, stats.acquisitions)
        """
        assert rule_ids(check(source, self.INTROSPECTION_PATH)) == ["QLO003"]

    def test_yield_from_under_lock_flagged(self):
        source = """
        def traces_rows(sink):
            with sink._span_lock:
                yield from sink.spans
        """
        assert rule_ids(check(source, self.INTROSPECTION_PATH)) == ["QLO003"]

    def test_copy_then_release_provider_is_clean(self):
        source = """
        def locks_rows(database, transaction):
            with database._lock:
                snapshot = list(database.locks.items())
            for name, stats in snapshot:
                yield (name, stats.acquisitions)
        """
        assert check(source, self.INTROSPECTION_PATH) == []

    def test_non_lock_with_block_yield_is_clean(self):
        source = """
        def dump_rows(path):
            with open(path) as handle:
                yield from handle
        """
        assert check(source, self.INTROSPECTION_PATH) == []

    def test_yield_under_lock_outside_introspection_not_flagged(self):
        # QLO003 enforces the snapshot discipline of introspection
        # providers; generators elsewhere are out of scope (QLC rules
        # govern their locking).
        source = """
        def rows(self):
            with self._lock:
                yield from self._rows
        """
        assert check(source, self.PATH) == []

    def test_emit_under_lock_flagged(self):
        source = """
        def fold(self, sink):
            with self._registry_lock:
                for record in self._pending:
                    sink.emit_statement(record)
        """
        assert rule_ids(check(source, self.PATH)) == ["QLO004"]

    def test_emit_under_nested_non_lock_with_flagged(self):
        source = """
        def flush(self, sink, path):
            with self._lock:
                with open(path) as handle:
                    sink.emit_sample(handle.read())
        """
        assert rule_ids(check(source, self.PATH)) == ["QLO004"]

    def test_copy_then_release_emit_is_clean(self):
        source = """
        def fold(self, sink):
            with self._registry_lock:
                pending = list(self._pending)
            for record in pending:
                sink.emit_statement(record)
        """
        assert check(source, self.PATH) == []

    def test_emit_under_plain_with_is_clean(self):
        source = """
        def flush(self, sink, path):
            with open(path) as handle:
                sink.emit_sample(handle.read())
        """
        assert check(source, self.PATH) == []


class TestPlanDiscipline:
    PATH = "repro/optimizer/fixture.py"

    def test_cross_node_schema_assign_flagged(self):
        source = """
        def rewrite(plan, child):
            plan.schema = child.schema
            return plan
        """
        assert rule_ids(check(source, self.PATH)) == ["QLP001"]

    def test_column_ids_assign_flagged(self):
        source = """
        def prune(plan, keep):
            plan.column_ids = [plan.column_ids[old] for old in keep]
            return plan
        """
        assert rule_ids(check(source, self.PATH)) == ["QLP001"]

    def test_self_schema_assign_is_construction(self):
        source = """
        class LogicalThing:
            def __init__(self, schema):
                self.schema = schema
                self.column_ids = list(range(len(schema)))
        """
        assert check(source, self.PATH) == []

    def test_borrowed_schema_is_warning(self):
        source = """
        def rebuild(plan, child):
            return LogicalAggregate(child, plan.groups, plan.aggregates,
                                    plan.schema)
        """
        violations = check(source, self.PATH)
        assert rule_ids(violations) == ["QLP002"]
        assert violations[0].severity == "warning"
        assert "[warning]" in violations[0].render()

    def test_rederived_schema_is_clean(self):
        source = """
        def rebuild(plan, child, derive):
            schema = derive(plan.groups, plan.aggregates)
            return LogicalAggregate(child, plan.groups, plan.aggregates,
                                    schema)
        """
        assert check(source, self.PATH) == []

    def test_own_schema_passthrough_is_clean(self):
        source = """
        class Planner:
            def lower(self, child):
                return PhysicalFilter(child, self.schema)
        """
        assert check(source, self.PATH) == []

    def test_list_growth_flagged(self):
        source = """
        def push(plan, conjuncts):
            plan.pushed_filters.extend(conjuncts)
            return plan
        """
        assert rule_ids(check(source, self.PATH)) == ["QLP003"]

    def test_local_list_growth_is_clean(self):
        source = """
        def collect(plans):
            conjuncts = []
            for plan in plans:
                conjuncts.append(plan)
            return conjuncts
        """
        assert check(source, self.PATH) == []

    def test_physical_planner_in_scope(self):
        source = """
        def lower(plan, child):
            plan.schema = child.schema
        """
        path = "repro/execution/physical_planner.py"
        assert rule_ids(check(source, path)) == ["QLP001"]

    def test_executor_modules_out_of_scope(self):
        # Executors legitimately adjust their own state; QLP governs the
        # plan-constructing layers only.
        source = """
        def lower(plan, child):
            plan.schema = child.schema
        """
        assert check(source, "repro/execution/basic.py") == []

    def test_suppression_with_justification(self):
        source = """
        def prune(plan, keep):
            plan.schema = [plan.schema[old] for old in keep]  # quacklint: disable=QLP001 -- leaf rebind
            return plan
        """
        assert check(source, self.PATH) == []


# -- the live tree and the CLI -----------------------------------------------

class TestLiveTree:
    def test_source_tree_is_clean(self):
        """THE gate: the shipped engine passes its own analyzer."""
        violations = analyze_paths([SRC_TREE])
        assert violations == [], "\n".join(v.render() for v in violations)

    def test_every_rule_has_fixture_coverage(self):
        # Guards against a rule family being added without tests: every
        # registered family must appear in this module's fixture classes.
        assert {rule.name for rule in ALL_RULES} == {
            "concurrency", "lockorder", "vectorization", "zero-copy",
            "exception-discipline", "resource-discipline", "observability",
            "plans", "kernels",
        }


class TestCommandLine:
    def run_cli(self, *args, cwd=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True, text=True, env=env, cwd=cwd or REPO_ROOT)

    def test_clean_tree_exits_zero(self):
        proc = self.run_cli(SRC_TREE)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 violations" in proc.stdout

    def test_seeded_violation_exits_nonzero(self, tmp_path):
        bad = tmp_path / "repro" / "storage" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(textwrap.dedent("""
            def load():
                try:
                    handle = open("x")
                except Exception:
                    return None
        """))
        proc = self.run_cli(str(bad), cwd=str(tmp_path))
        assert proc.returncode == 1
        assert "QLE001" in proc.stdout
        assert "QLR001" in proc.stdout

    def test_disable_flag(self, tmp_path):
        bad = tmp_path / "repro" / "storage" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "try:\n    pass\nexcept Exception:\n    pass\n")
        proc = self.run_cli("--disable", "QLE001", str(bad), cwd=str(tmp_path))
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_list_rules(self):
        proc = self.run_cli("--list-rules")
        assert proc.returncode == 0
        for rule_id in ("QLC001", "QLC003", "QLL001", "QLL002", "QLV001",
                        "QLZ001", "QLE001", "QLR001", "QLO001", "QLO002"):
            assert rule_id in proc.stdout

    BAD_FIXTURE = ("def load():\n"
                   "    try:\n"
                   "        pass\n"
                   "    except Exception:\n"
                   "        return None\n")

    def seed_bad_file(self, tmp_path):
        bad = tmp_path / "repro" / "storage" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(self.BAD_FIXTURE)
        return bad

    def test_format_json_structure(self, tmp_path):
        import json as json_module

        bad = self.seed_bad_file(tmp_path)
        proc = self.run_cli("--format", "json", str(bad), cwd=str(tmp_path))
        assert proc.returncode == 1
        report = json_module.loads(proc.stdout)
        assert report["violation_count"] == 1
        assert report["files_scanned"] == 1
        assert report["files_flagged"] == 1
        (violation,) = report["violations"]
        assert violation["rule"] == "QLE001"
        assert violation["line"] == 4

    def test_json_flag_is_alias_for_format_json(self, tmp_path):
        import json as json_module

        bad = self.seed_bad_file(tmp_path)
        proc = self.run_cli("--json", str(bad), cwd=str(tmp_path))
        assert proc.returncode == 1
        report = json_module.loads(proc.stdout)
        assert report["violation_count"] == 1

    def test_format_json_clean_tree(self):
        import json as json_module

        proc = self.run_cli("--format", "json", SRC_TREE)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        report = json_module.loads(proc.stdout)
        assert report["violations"] == []
        assert report["files_scanned"] > 0

    def test_format_github_annotations(self, tmp_path):
        bad = self.seed_bad_file(tmp_path)
        proc = self.run_cli("--format", "github", str(bad),
                            cwd=str(tmp_path))
        assert proc.returncode == 1
        (line,) = proc.stdout.splitlines()
        assert line.startswith("::error file=")
        assert "line=4," in line
        assert "title=QLE001::" in line

    def test_format_github_clean_is_silent(self):
        proc = self.run_cli("--format", "github", SRC_TREE)
        assert proc.returncode == 0
        assert proc.stdout.strip() == ""

    WARNING_FIXTURE = ("def rebuild(plan, child):\n"
                       "    return LogicalAggregate(child, plan.groups,\n"
                       "                            plan.aggregates,\n"
                       "                            plan.schema)\n")

    def seed_warning_file(self, tmp_path):
        bad = tmp_path / "repro" / "optimizer" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(self.WARNING_FIXTURE)
        return bad

    def test_fail_on_default_fails_on_warnings(self, tmp_path):
        bad = self.seed_warning_file(tmp_path)
        proc = self.run_cli(str(bad), cwd=str(tmp_path))
        assert proc.returncode == 1
        assert "QLP002" in proc.stdout
        assert "[warning]" in proc.stdout
        assert "(0 errors, 1 warnings)" in proc.stdout

    def test_fail_on_error_passes_warnings(self, tmp_path):
        bad = self.seed_warning_file(tmp_path)
        proc = self.run_cli("--fail-on", "error", str(bad), cwd=str(tmp_path))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        # The warning is still reported, it just does not gate the run.
        assert "QLP002" in proc.stdout

    def test_fail_on_error_still_fails_on_errors(self, tmp_path):
        bad = self.seed_bad_file(tmp_path)
        proc = self.run_cli("--fail-on", "error", str(bad), cwd=str(tmp_path))
        assert proc.returncode == 1

    def test_json_severity_counts(self, tmp_path):
        import json as json_module

        self.seed_bad_file(tmp_path)
        self.seed_warning_file(tmp_path)
        proc = self.run_cli("--format", "json", "repro", cwd=str(tmp_path))
        assert proc.returncode == 1
        report = json_module.loads(proc.stdout)
        assert report["error_count"] == 1  # QLE001
        assert report["warning_count"] == 1
        severities = {v["rule"]: v["severity"] for v in report["violations"]}
        assert severities["QLP002"] == "warning"
        assert severities["QLE001"] == "error"

    def test_github_warning_annotation(self, tmp_path):
        bad = self.seed_warning_file(tmp_path)
        proc = self.run_cli("--format", "github", str(bad), cwd=str(tmp_path))
        assert proc.returncode == 1
        (line,) = proc.stdout.splitlines()
        assert line.startswith("::warning file=")
        assert "title=QLP002::" in line

    def test_github_mixed_severities_in_one_run(self, tmp_path):
        # Regression strength for the --format github severity fix: a run
        # with both an error- and a warning-severity violation must emit
        # one ::error and one ::warning annotation, not two ::error lines.
        self.seed_bad_file(tmp_path)
        self.seed_warning_file(tmp_path)
        proc = self.run_cli("--format", "github", "repro", cwd=str(tmp_path))
        assert proc.returncode == 1
        lines = proc.stdout.splitlines()
        assert len(lines) == 2
        assert sum(1 for line in lines if line.startswith("::error ")) == 1
        assert sum(1 for line in lines if line.startswith("::warning ")) == 1


# -- QLK: kernel contracts ---------------------------------------------------

class TestKernelContractRules:
    GOOD_KERNEL = """
    import numpy as np
    from repro.types import DOUBLE, Vector

    def _good_execute(vectors, count):
        source = vectors[0]
        data = np.sqrt(np.abs(source.data))
        return Vector(DOUBLE, data, source.validity.copy())
    """

    def test_good_kernel_is_clean(self):
        assert check(self.GOOD_KERNEL, "repro/functions/fixture.py") == []

    def test_qlk001_lossy_dtype(self):
        source = """
        import numpy as np
        from repro.types import INTEGER, Vector

        def _bad_execute(vectors, count):
            data = np.zeros(count, dtype=np.float64)
            data[:] = vectors[0].data[:count]
            validity = vectors[0].validity.copy()
            return Vector(INTEGER, data, validity)
        """
        violations = check(source, "repro/functions/fixture.py")
        assert rule_ids(violations) == ["QLK001"]
        assert violations[0].severity == "error"

    def test_qlk001_sees_inline_astype(self):
        source = """
        import numpy as np
        from repro.types import BOOLEAN, Vector

        def _bad_execute(vectors, count):
            source = vectors[0]
            return Vector(BOOLEAN, source.data.astype(np.float64, copy=False),
                          source.validity.copy())
        """
        assert rule_ids(check(source, "repro/functions/fixture.py")) == \
            ["QLK001"]

    def test_qlk002_data_without_validity(self):
        source = """
        import numpy as np
        from repro.types import DOUBLE, Vector

        def _leaky_execute(vectors, count):
            data = np.sqrt(vectors[0].data)
            return Vector(DOUBLE, data)
        """
        violations = check(source, "repro/functions/fixture.py")
        assert rule_ids(violations) == ["QLK002"]

    def test_qlk002_docstring_contract_is_accepted(self):
        source = '''
        import numpy as np
        from repro.types import DOUBLE, Vector

        def _documented_execute(vectors, count):
            """Every output lane is valid; NULL inputs are treated as 0."""
            data = np.sqrt(vectors[0].data)
            return Vector(DOUBLE, data)
        '''
        assert check(source, "repro/functions/fixture.py") == []

    def test_qlk003_avoidable_copy_is_a_warning(self):
        source = """
        import numpy as np
        from repro.types import BOOLEAN, Vector

        def _copy_execute(vectors, count):
            source = vectors[0]
            data = source.data.astype(np.bool_)
            return Vector(BOOLEAN, data, source.validity.copy())
        """
        violations = check(source, "repro/functions/fixture.py")
        # The lossless-dtype rule stays quiet (bool -> BOOLEAN); only the
        # copy advisory fires, downgraded to warning severity.
        assert rule_ids(violations) == ["QLK003"]
        assert violations[0].severity == "warning"

    def test_qlk003_copy_false_is_clean(self):
        source = """
        import numpy as np
        from repro.types import BOOLEAN, Vector

        def _view_execute(vectors, count):
            source = vectors[0]
            data = source.data.astype(np.bool_, copy=False)
            return Vector(BOOLEAN, data, source.validity.copy())
        """
        assert check(source, "repro/functions/fixture.py") == []

    def test_qlk004_module_global_mutation(self):
        source = """
        import numpy as np
        from repro.types import DOUBLE, Vector

        _CACHE = {}

        def _stateful_execute(vectors, count):
            source = vectors[0]
            _CACHE[count] = source.data
            return Vector(DOUBLE, source.data.copy(), source.validity.copy())
        """
        violations = check(source, "repro/functions/fixture.py")
        assert rule_ids(violations) == ["QLK004"]

    def test_qlk004_global_statement(self):
        source = """
        import numpy as np
        from repro.types import DOUBLE, Vector

        _CALLS = 0

        def _counting_execute(vectors, count):
            global _CALLS
            _CALLS += 1
            source = vectors[0]
            return Vector(DOUBLE, source.data.copy(), source.validity.copy())
        """
        violations = check(source, "repro/functions/fixture.py")
        assert "QLK004" in rule_ids(violations)

    def test_non_kernel_functions_are_ignored(self):
        # No Vector construction => not a kernel => no QLK scrutiny.
        source = """
        def helper(values):
            return [value.data for value in values]
        """
        assert check(source, "repro/functions/fixture.py") == []

    def test_rule_scoped_to_kernel_modules(self):
        source = """
        import numpy as np
        from repro.types import DOUBLE, Vector

        _CACHE = {}

        def _stateful_execute(vectors, count):
            _CACHE[0] = vectors
            return Vector(DOUBLE, np.zeros(0), np.zeros(0, dtype=bool))
        """
        assert check(source, "repro/storage/fixture.py") == []
