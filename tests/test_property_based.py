"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.execution.keys import BuildIndex, factorize_for_groups
from repro.execution.sort import ExternalSorter, SortKey, sort_order
from repro.resilience.ancodes import an_encode, an_verify
from repro.storage.compression import CompressionLevel, decode_array, encode_array
from repro.types import (
    BIGINT,
    DOUBLE,
    INTEGER,
    VARCHAR,
    DataChunk,
    Vector,
    cast_vector,
)

_settings = settings(max_examples=60, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])

int_lists = st.lists(st.one_of(st.none(),
                               st.integers(-2**31 + 1, 2**31 - 1)),
                     max_size=200)
string_lists = st.lists(st.one_of(st.none(), st.text(max_size=20)),
                        max_size=100)


class TestVectorProperties:
    @_settings
    @given(int_lists)
    def test_from_values_round_trips(self, values):
        vector = Vector.from_values(values, INTEGER)
        assert vector.to_pylist() == values

    @_settings
    @given(string_lists)
    def test_string_vector_round_trips(self, values):
        vector = Vector.from_values(values, VARCHAR)
        assert vector.to_pylist() == values

    @_settings
    @given(int_lists)
    def test_cast_to_double_and_back_preserves(self, values):
        vector = Vector.from_values(values, INTEGER)
        doubled = cast_vector(vector, DOUBLE)
        back = cast_vector(doubled, INTEGER)
        assert back.to_pylist() == values

    @_settings
    @given(int_lists)
    def test_cast_to_varchar_and_back(self, values):
        vector = Vector.from_values(values, BIGINT)
        rendered = cast_vector(vector, VARCHAR)
        back = cast_vector(rendered, BIGINT)
        assert back.to_pylist() == values

    @_settings
    @given(int_lists, int_lists)
    def test_concat_preserves_order(self, first, second):
        left = Vector.from_values(first, INTEGER)
        right = Vector.from_values(second, INTEGER)
        assert left.concat(right).to_pylist() == first + second


class TestCompressionProperties:
    @_settings
    @given(st.lists(st.integers(-2**62, 2**62), max_size=300),
           st.sampled_from([CompressionLevel.NONE, CompressionLevel.LIGHT,
                            CompressionLevel.HEAVY]))
    def test_int_arrays_round_trip(self, values, level):
        array = np.array(values, dtype=np.int64)
        np.testing.assert_array_equal(decode_array(encode_array(array, level)),
                                      array)

    @_settings
    @given(st.lists(st.floats(allow_nan=False), max_size=300),
           st.sampled_from([CompressionLevel.NONE, CompressionLevel.LIGHT,
                            CompressionLevel.HEAVY]))
    def test_float_arrays_round_trip(self, values, level):
        array = np.array(values, dtype=np.float64)
        np.testing.assert_array_equal(decode_array(encode_array(array, level)),
                                      array)

    @_settings
    @given(st.lists(st.text(max_size=30), max_size=100),
           st.sampled_from([CompressionLevel.NONE, CompressionLevel.HEAVY]))
    def test_string_arrays_round_trip(self, values, level):
        array = np.array(values, dtype=object)
        decoded = decode_array(encode_array(array, level))
        assert list(decoded) == values

    @_settings
    @given(st.lists(st.booleans(), max_size=300))
    def test_bool_arrays_round_trip(self, values):
        array = np.array(values, dtype=np.bool_)
        for level in (CompressionLevel.NONE, CompressionLevel.LIGHT,
                      CompressionLevel.HEAVY):
            np.testing.assert_array_equal(
                decode_array(encode_array(array, level)), array)


class TestFactorizationProperties:
    @_settings
    @given(st.lists(st.one_of(st.none(), st.integers(-50, 50)),
                    min_size=1, max_size=300))
    def test_group_ids_match_python_grouping(self, keys):
        vector = Vector.from_values(keys, INTEGER)
        group_ids, count, representatives = factorize_for_groups([vector])
        # Same key <=> same group id.
        seen = {}
        for key, group in zip(keys, group_ids):
            if key in seen:
                assert seen[key] == group
            else:
                seen[key] = group
        assert count == len(set(keys))
        assert len(representatives) == count

    @_settings
    @given(st.lists(st.integers(-20, 20), min_size=0, max_size=200),
           st.lists(st.integers(-20, 20), min_size=0, max_size=200))
    def test_join_index_matches_python_join(self, build_keys, probe_keys):
        build = Vector.from_values(build_keys, INTEGER)
        probe = Vector.from_values(probe_keys, INTEGER)
        if not build_keys:
            return
        index = BuildIndex([build])
        probe_positions, build_rows = index.match([probe])
        pairs = sorted(zip(probe_positions.tolist(), build_rows.tolist()))
        expected = sorted(
            (pi, bi)
            for pi, pk in enumerate(probe_keys)
            for bi, bk in enumerate(build_keys)
            if pk == bk
        )
        assert pairs == expected


class TestSortProperties:
    @_settings
    @given(st.lists(st.one_of(st.none(), st.integers(-100, 100)),
                    min_size=0, max_size=300),
           st.booleans(), st.booleans())
    def test_sort_matches_python_sorted(self, values, ascending, nulls_first):
        chunk = DataChunk([Vector.from_values(values, INTEGER)])
        order = sort_order(chunk, [SortKey(0, ascending, nulls_first)])
        result = [values[i] for i in order]
        non_null = sorted(v for v in values if v is not None)
        if not ascending:
            non_null.reverse()
        nulls = [None] * (len(values) - len(non_null))
        expected = nulls + non_null if nulls_first else non_null + nulls
        assert result == expected

    @_settings
    @given(st.lists(st.integers(0, 1000), min_size=0, max_size=2000))
    def test_external_sorter_with_tiny_runs(self, values):
        sorter = ExternalSorter([INTEGER], [SortKey(0)], None,
                                run_limit_bytes=256)
        for start in range(0, len(values), 37):
            batch = values[start:start + 37]
            if batch:
                sorter.append(DataChunk([Vector.from_values(batch, INTEGER)]))
        result = []
        for chunk in sorter.sorted_chunks():
            result.extend(chunk.columns[0].to_pylist())
        assert result == sorted(values)


class TestANCodeProperties:
    @_settings
    @given(st.lists(st.integers(-2**40, 2**40), min_size=1, max_size=100),
           st.integers(0, 62))
    def test_single_bit_flip_always_detected(self, values, bit):
        codes = an_encode(np.array(values, dtype=np.int64))
        corrupted = codes.copy()
        corrupted[0] ^= np.int64(1) << np.int64(bit)
        assert not bool(an_verify(corrupted)[0])


class TestSQLSemanticsVsPython:
    """Random data through SQL vs the same computation in plain Python."""

    @_settings
    @given(st.lists(st.tuples(st.integers(0, 5),
                              st.one_of(st.none(), st.integers(-1000, 1000))),
                    max_size=150))
    def test_group_by_sum_count(self, rows):
        con = repro.connect()
        try:
            con.execute("CREATE TABLE t (g INTEGER, v INTEGER)")
            with con.appender("t") as appender:
                for g, v in rows:
                    appender.append_row(g, v)
            got = {g: (s, c) for g, s, c in con.execute(
                "SELECT g, sum(v), count(v) FROM t GROUP BY g").fetchall()}
            expected = {}
            for g, v in rows:
                total, count = expected.get(g, (None, 0))
                if v is not None:
                    total = v if total is None else total + v
                    count += 1
                expected[g] = (total, count)
            assert got == expected
        finally:
            con.close()

    @_settings
    @given(st.lists(st.integers(-100, 100), max_size=150),
           st.integers(-100, 100))
    def test_filter_matches_python(self, values, threshold):
        con = repro.connect()
        try:
            con.execute("CREATE TABLE t (v INTEGER)")
            with con.appender("t") as appender:
                for v in values:
                    appender.append_row(v)
            got = [row[0] for row in con.execute(
                "SELECT v FROM t WHERE v > ? ORDER BY v", [threshold]
            ).fetchall()]
            assert got == sorted(v for v in values if v > threshold)
        finally:
            con.close()

    @_settings
    @given(st.lists(st.integers(0, 20), max_size=100),
           st.lists(st.integers(0, 20), max_size=100))
    def test_join_count_matches_python(self, left, right):
        con = repro.connect()
        try:
            con.execute("CREATE TABLE l (k INTEGER)")
            con.execute("CREATE TABLE r (k INTEGER)")
            with con.appender("l") as appender:
                for k in left:
                    appender.append_row(k)
            with con.appender("r") as appender:
                for k in right:
                    appender.append_row(k)
            got = con.query_value(
                "SELECT count(*) FROM l JOIN r ON l.k = r.k")
            expected = sum(left.count(k) * right.count(k) for k in set(left))
            assert got == expected
        finally:
            con.close()


class TestMVCCRandomOperations:
    @_settings
    @given(st.lists(st.tuples(st.sampled_from(["insert", "update", "delete"]),
                              st.integers(0, 30), st.integers(-100, 100)),
                    max_size=40))
    def test_single_connection_matches_model(self, operations):
        """Random DML sequence vs a dict-based model of the table."""
        con = repro.connect()
        try:
            con.execute("CREATE TABLE t (k INTEGER, v INTEGER)")
            model = {}
            for action, key, value in operations:
                if action == "insert":
                    if key not in model:
                        con.execute("INSERT INTO t VALUES (?, ?)", [key, value])
                        model[key] = value
                elif action == "update":
                    con.execute("UPDATE t SET v = ? WHERE k = ?", [value, key])
                    if key in model:
                        model[key] = value
                else:
                    con.execute("DELETE FROM t WHERE k = ?", [key])
                    model.pop(key, None)
            got = dict(con.execute("SELECT k, v FROM t").fetchall())
            assert got == model
        finally:
            con.close()


class TestWindowProperties:
    @_settings
    @given(st.lists(st.tuples(st.integers(0, 4),
                              st.one_of(st.none(), st.integers(-100, 100))),
                    max_size=120))
    def test_running_sum_matches_python(self, rows):
        con = repro.connect()
        try:
            con.execute("CREATE TABLE t (g INTEGER, v INTEGER)")
            with con.appender("t") as appender:
                for index, (g, v) in enumerate(rows):
                    appender.append_row(g, v)
            got = con.execute(
                "SELECT g, v, sum(v) OVER (PARTITION BY g ORDER BY rid), rid "
                "FROM (SELECT g, v, row_number() OVER () AS rid FROM t) s "
                "ORDER BY rid").fetchall()
            running = {}
            for g, v, total, rid in got:
                prev = running.get(g)
                if v is not None:
                    prev = v if prev is None else prev + v
                    running[g] = prev
                assert total == prev
        finally:
            con.close()

    @_settings
    @given(st.lists(st.integers(0, 15), min_size=0, max_size=80),
           st.lists(st.integers(0, 15), min_size=0, max_size=80))
    def test_merge_join_matches_hash_join(self, left, right):
        from repro.storage.compression import CompressionLevel

        class AlwaysMerge:
            def compression_level(self):
                return CompressionLevel.NONE

            def choose_join_algorithm(self, estimate):
                return "merge"

        con = repro.connect()
        try:
            con.execute("CREATE TABLE l (k INTEGER)")
            con.execute("CREATE TABLE r (k INTEGER)")
            with con.appender("l") as appender:
                for k in left:
                    appender.append_row(k)
            with con.appender("r") as appender:
                for k in right:
                    appender.append_row(k)
            sql = ("SELECT l.k, r.k FROM l JOIN r ON l.k = r.k "
                   "ORDER BY 1, 2")
            hash_rows = con.execute(sql).fetchall()
            con.database.resource_controller = AlwaysMerge()
            merge_rows = con.execute(sql).fetchall()
            assert merge_rows == hash_rows
        finally:
            con.close()
