"""ChunkBuffer tests: compression levels, spilling, memory accounting."""

import numpy as np
import pytest

from repro.config import DatabaseConfig
from repro.execution.intermediates import ChunkBuffer
from repro.storage.buffer_manager import BufferManager
from repro.storage.compression import CompressionLevel
from repro.types import DataChunk, INTEGER, VARCHAR, Vector


class FixedController:
    def __init__(self, level):
        self.level = level

    def compression_level(self):
        return self.level

    def choose_join_algorithm(self, estimate):
        return "hash"


class FakeContext:
    """Minimal ExecutionContext stand-in for buffer tests."""

    def __init__(self, level=CompressionLevel.NONE, limit=1 << 30):
        self.controller = FixedController(level)
        self.buffer_manager = BufferManager(DatabaseConfig(memory_limit=limit))
        self.memory_limit = limit


def sample_chunk(n=1000, offset=0):
    return DataChunk.from_pylists(
        [list(range(offset, offset + n)),
         [f"s{i}" for i in range(offset, offset + n)]],
        [INTEGER, VARCHAR])


class TestBasics:
    def test_append_scan_round_trip(self):
        buffer = ChunkBuffer([INTEGER, VARCHAR])
        buffer.append(sample_chunk(100))
        buffer.append(sample_chunk(50, offset=100))
        chunks = list(buffer.scan())
        assert sum(chunk.size for chunk in chunks) == 150
        assert buffer.row_count == 150
        buffer.close()

    def test_materialize(self):
        buffer = ChunkBuffer([INTEGER, VARCHAR])
        buffer.append(sample_chunk(10))
        buffer.append(sample_chunk(10, offset=10))
        combined = buffer.materialize()
        assert combined.size == 20
        assert combined.row(19) == (19, "s19")
        buffer.close()

    def test_empty_buffer(self):
        buffer = ChunkBuffer([INTEGER])
        assert buffer.materialize().size == 0
        assert list(buffer.scan()) == []
        buffer.close()

    def test_empty_chunks_ignored(self):
        buffer = ChunkBuffer([INTEGER, VARCHAR])
        buffer.append(DataChunk.from_pylists([[], []], [INTEGER, VARCHAR]))
        assert buffer.row_count == 0
        buffer.close()


class TestCompression:
    def test_light_compression_round_trip(self):
        context = FakeContext(CompressionLevel.LIGHT)
        buffer = ChunkBuffer([INTEGER, VARCHAR], context)
        buffer.append(sample_chunk(500))
        assert buffer.compressed_appends == 1
        assert buffer.materialize().row(499) == (499, "s499")
        buffer.close()

    def test_heavy_compression_shrinks_memory(self):
        repetitive = DataChunk.from_pylists([[7] * 5000], [INTEGER])
        raw = ChunkBuffer([INTEGER], FakeContext(CompressionLevel.NONE))
        raw.append(repetitive.copy())
        heavy = ChunkBuffer([INTEGER], FakeContext(CompressionLevel.HEAVY))
        heavy.append(repetitive.copy())
        assert heavy.memory_bytes() < raw.memory_bytes() / 10
        np.testing.assert_array_equal(heavy.materialize().columns[0].data,
                                      raw.materialize().columns[0].data)
        raw.close()
        heavy.close()

    def test_level_sampled_per_append(self):
        context = FakeContext(CompressionLevel.NONE)
        buffer = ChunkBuffer([INTEGER], context)
        buffer.append(DataChunk.from_pylists([[1] * 100], [INTEGER]))
        context.controller.level = CompressionLevel.HEAVY
        buffer.append(DataChunk.from_pylists([[2] * 100], [INTEGER]))
        assert buffer.compressed_appends == 1
        values = buffer.materialize().columns[0].data
        assert list(values[:100]) == [1] * 100
        assert list(values[100:]) == [2] * 100
        buffer.close()


class TestSpilling:
    def test_spills_when_over_limit(self):
        context = FakeContext(CompressionLevel.NONE, limit=64 * 1024)
        buffer = ChunkBuffer([INTEGER], context, "spill test")
        for batch in range(40):
            values = np.arange(batch * 2048, (batch + 1) * 2048, dtype=np.int32)
            buffer.append(DataChunk.from_numpy([values], [INTEGER]))
        assert buffer.spilled_chunks > 0
        total = 0
        expected = 0
        for index, chunk in enumerate(buffer.scan()):
            total += int(chunk.columns[0].data.sum())
        assert total == sum(range(40 * 2048))
        buffer.close()

    def test_spilled_strings_round_trip(self):
        context = FakeContext(CompressionLevel.NONE, limit=32 * 1024)
        buffer = ChunkBuffer([VARCHAR], context)
        for batch in range(20):
            values = [f"value-{batch}-{i}" for i in range(1000)]
            buffer.append(DataChunk.from_pylists([values], [VARCHAR]))
        materialized = buffer.materialize()
        assert materialized.size == 20_000
        assert materialized.columns[0].get_value(0) == "value-0-0"
        assert materialized.columns[0].get_value(19_999) == "value-19-999"
        buffer.close()

    def test_close_releases_reservation(self):
        context = FakeContext(CompressionLevel.NONE)
        buffer = ChunkBuffer([INTEGER], context)
        buffer.append(sample_chunk(1000).project([0]))
        assert context.buffer_manager.used_bytes > 0
        buffer.close()
        assert context.buffer_manager.used_bytes == 0

    def test_context_manager(self):
        context = FakeContext()
        with ChunkBuffer([INTEGER], context) as buffer:
            buffer.append(DataChunk.from_pylists([[1, 2]], [INTEGER]))
        assert context.buffer_manager.used_bytes == 0


class TestNullPreservation:
    @pytest.mark.parametrize("level", [CompressionLevel.NONE,
                                       CompressionLevel.LIGHT,
                                       CompressionLevel.HEAVY])
    def test_validity_survives(self, level):
        buffer = ChunkBuffer([INTEGER, VARCHAR], FakeContext(level))
        chunk = DataChunk.from_pylists([[1, None, 3], ["a", "b", None]],
                                       [INTEGER, VARCHAR])
        buffer.append(chunk)
        assert buffer.materialize().to_rows() == [(1, "a"), (None, "b"),
                                                  (3, None)]
        buffer.close()
