"""Tests for the logical type system."""

import datetime

import numpy as np
import pytest

from repro.errors import ConversionError, InternalError
from repro.types import (
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    FLOAT,
    INTEGER,
    SMALLINT,
    SQLNULL,
    TIMESTAMP,
    TINYINT,
    VARCHAR,
    LogicalType,
    LogicalTypeId,
    common_type,
    infer_type_of_value,
    type_from_string,
)
from repro.types.logical import (
    date_to_days,
    days_to_date,
    max_numeric_type,
    micros_to_timestamp,
    timestamp_to_micros,
)


class TestInterning:
    def test_same_id_is_same_object(self):
        assert LogicalType(LogicalTypeId.INTEGER) is INTEGER

    def test_equality_and_hash(self):
        assert INTEGER == LogicalType(LogicalTypeId.INTEGER)
        assert INTEGER != BIGINT
        assert hash(INTEGER) == hash(LogicalType(LogicalTypeId.INTEGER))

    def test_immutable(self):
        with pytest.raises(InternalError):
            INTEGER.id = LogicalTypeId.BIGINT


class TestClassification:
    def test_numeric(self):
        for dtype in (TINYINT, SMALLINT, INTEGER, BIGINT, FLOAT, DOUBLE):
            assert dtype.is_numeric()
        for dtype in (BOOLEAN, VARCHAR, DATE, TIMESTAMP):
            assert not dtype.is_numeric()

    def test_integer(self):
        assert INTEGER.is_integer()
        assert not DOUBLE.is_integer()

    def test_temporal(self):
        assert DATE.is_temporal()
        assert TIMESTAMP.is_temporal()
        assert not INTEGER.is_temporal()

    def test_integer_ranges(self):
        assert TINYINT.integer_range() == (-128, 127)
        assert SMALLINT.integer_range() == (-32768, 32767)
        assert INTEGER.integer_range() == (-(2**31), 2**31 - 1)
        assert BIGINT.integer_range() == (-(2**63), 2**63 - 1)

    def test_integer_range_on_non_integer_raises(self):
        with pytest.raises(InternalError):
            DOUBLE.integer_range()

    def test_numpy_dtypes(self):
        assert INTEGER.numpy_dtype == np.dtype(np.int32)
        assert BIGINT.numpy_dtype == np.dtype(np.int64)
        assert DOUBLE.numpy_dtype == np.dtype(np.float64)
        assert VARCHAR.numpy_dtype == np.dtype(object)
        assert DATE.numpy_dtype == np.dtype(np.int32)
        assert TIMESTAMP.numpy_dtype == np.dtype(np.int64)


class TestTypeFromString:
    @pytest.mark.parametrize("name,expected", [
        ("INTEGER", INTEGER), ("int", INTEGER), ("INT4", INTEGER),
        ("bigint", BIGINT), ("LONG", BIGINT),
        ("double", DOUBLE), ("FLOAT8", DOUBLE), ("NUMERIC", DOUBLE),
        ("real", FLOAT),
        ("text", VARCHAR), ("VARCHAR", VARCHAR), ("string", VARCHAR),
        ("bool", BOOLEAN), ("BOOLEAN", BOOLEAN),
        ("date", DATE), ("DATETIME", TIMESTAMP), ("timestamp", TIMESTAMP),
        ("tinyint", TINYINT), ("smallint", SMALLINT),
    ])
    def test_aliases(self, name, expected):
        assert type_from_string(name) == expected

    def test_parenthesized_width_is_ignored(self):
        assert type_from_string("VARCHAR(32)") == VARCHAR
        assert type_from_string("DECIMAL(10, 2)") == DOUBLE

    def test_unknown_type(self):
        with pytest.raises(ConversionError):
            type_from_string("BLOBFISH")


class TestInference:
    def test_none(self):
        assert infer_type_of_value(None) == SQLNULL

    def test_bool_before_int(self):
        assert infer_type_of_value(True) == BOOLEAN

    def test_small_int(self):
        assert infer_type_of_value(42) == INTEGER

    def test_large_int(self):
        assert infer_type_of_value(2**40) == BIGINT

    def test_too_large_int(self):
        with pytest.raises(ConversionError):
            infer_type_of_value(2**70)

    def test_float(self):
        assert infer_type_of_value(1.5) == DOUBLE

    def test_str(self):
        assert infer_type_of_value("hello") == VARCHAR

    def test_date_and_datetime(self):
        assert infer_type_of_value(datetime.date(2020, 1, 1)) == DATE
        assert infer_type_of_value(datetime.datetime(2020, 1, 1)) == TIMESTAMP

    def test_numpy_scalars(self):
        assert infer_type_of_value(np.int32(5)) == INTEGER
        assert infer_type_of_value(np.float64(5.0)) == DOUBLE
        assert infer_type_of_value(np.bool_(True)) == BOOLEAN

    def test_unmappable(self):
        with pytest.raises(ConversionError):
            infer_type_of_value(object())


class TestCommonType:
    def test_identity(self):
        assert common_type(INTEGER, INTEGER) == INTEGER

    def test_null_unifies_with_anything(self):
        assert common_type(SQLNULL, VARCHAR) == VARCHAR
        assert common_type(DATE, SQLNULL) == DATE

    def test_numeric_ladder(self):
        assert common_type(TINYINT, INTEGER) == INTEGER
        assert common_type(INTEGER, BIGINT) == BIGINT
        assert common_type(BIGINT, DOUBLE) == DOUBLE
        assert common_type(FLOAT, DOUBLE) == DOUBLE
        assert common_type(BOOLEAN, INTEGER) == INTEGER

    def test_date_widens_to_timestamp(self):
        assert common_type(DATE, TIMESTAMP) == TIMESTAMP

    def test_varchar_does_not_unify_with_numeric(self):
        assert common_type(VARCHAR, INTEGER) is None

    def test_date_does_not_unify_with_numeric(self):
        assert common_type(DATE, INTEGER) is None

    def test_max_numeric(self):
        assert max_numeric_type(SMALLINT, FLOAT) == FLOAT


class TestTemporalConversions:
    def test_date_round_trip(self):
        for day in (datetime.date(1970, 1, 1), datetime.date(2024, 2, 29),
                    datetime.date(1899, 12, 31)):
            assert days_to_date(date_to_days(day)) == day

    def test_epoch_is_zero(self):
        assert date_to_days(datetime.date(1970, 1, 1)) == 0

    def test_timestamp_round_trip(self):
        moments = [
            datetime.datetime(1970, 1, 1),
            datetime.datetime(2024, 7, 1, 13, 37, 59, 123456),
            datetime.datetime(1969, 12, 31, 23, 59, 59),
        ]
        for moment in moments:
            assert micros_to_timestamp(timestamp_to_micros(moment)) == moment
