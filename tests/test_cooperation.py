"""Cooperation tests: monitor, reactive controller, join/compression choices."""

import numpy as np
import pytest

import repro
from repro.cooperation import (
    ReactiveController,
    ResourceMonitor,
    SimulatedApplication,
    StaticController,
)
from repro.storage.compression import CompressionLevel

MB = 1 << 20


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestSimulatedApplication:
    def test_phases(self):
        clock = FakeClock()
        app = SimulatedApplication(
            [(10.0, 100 * MB, 0.2), (10.0, 500 * MB, 0.8)], clock=clock)
        assert app.ram_usage() == 100 * MB
        clock.advance(12)
        assert app.ram_usage() == 500 * MB
        assert app.cpu_usage() == 0.8

    def test_profile_repeats(self):
        clock = FakeClock()
        app = SimulatedApplication([(5.0, 1, 0.0), (5.0, 2, 0.0)], clock=clock)
        clock.advance(11)  # wraps into the first phase again
        assert app.ram_usage() == 1

    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError):
            SimulatedApplication([])


class TestResourceMonitor:
    def test_sample_combines_sources(self):
        clock = FakeClock()
        app = SimulatedApplication([(100.0, 300 * MB, 0.5)], clock=clock)
        monitor = ResourceMonitor(1000 * MB, lambda: 200 * MB, app, clock=clock)
        sample = monitor.sample()
        assert sample.app_ram == 300 * MB
        assert sample.dbms_ram == 200 * MB
        assert sample.ram_pressure == pytest.approx(0.5)
        assert monitor.history == [sample]

    def test_without_application(self):
        monitor = ResourceMonitor(100 * MB, lambda: 50 * MB)
        assert monitor.sample().ram_pressure == pytest.approx(0.5)


class TestStaticController:
    def test_fixed_behaviour(self):
        controller = StaticController()
        assert controller.compression_level() is CompressionLevel.NONE
        assert controller.choose_join_algorithm(10**12) == "hash"

    def test_configurable_level(self):
        controller = StaticController(CompressionLevel.HEAVY)
        assert controller.compression_level() is CompressionLevel.HEAVY


class TestReactiveController:
    def controller_with_app_ram(self, clock, phases, total=1000 * MB,
                                dbms=0):
        app = SimulatedApplication(phases, clock=clock)
        monitor = ResourceMonitor(total, lambda: dbms, app, clock=clock)
        return ReactiveController(monitor)

    def test_escalates_none_light_heavy(self):
        """The Figure 1 staircase: rising app RAM escalates compression."""
        clock = FakeClock()
        controller = self.controller_with_app_ram(clock, [
            (10.0, 200 * MB, 0.1),   # pressure 0.2 -> NONE
            (10.0, 600 * MB, 0.1),   # pressure 0.6 -> LIGHT
            (10.0, 900 * MB, 0.1),   # pressure 0.9 -> HEAVY
        ])
        assert controller.compression_level() is CompressionLevel.NONE
        clock.advance(10)
        assert controller.compression_level() is CompressionLevel.LIGHT
        clock.advance(10)
        assert controller.compression_level() is CompressionLevel.HEAVY

    def test_deescalates_when_pressure_drops(self):
        clock = FakeClock()
        controller = self.controller_with_app_ram(clock, [
            (10.0, 900 * MB, 0.1),
            (10.0, 100 * MB, 0.1),
        ])
        assert controller.compression_level() is CompressionLevel.HEAVY
        clock.advance(10)
        assert controller.compression_level() is CompressionLevel.NONE

    def test_hysteresis_prevents_oscillation(self):
        clock = FakeClock()
        # Pressure hovers just below the LIGHT threshold after being above.
        controller = self.controller_with_app_ram(clock, [
            (10.0, 600 * MB, 0.1),   # 0.6 -> LIGHT
            (10.0, 480 * MB, 0.1),   # 0.48, within hysteresis of 0.5
            (10.0, 300 * MB, 0.1),   # 0.3, clearly below -> NONE
        ])
        assert controller.compression_level() is CompressionLevel.LIGHT
        clock.advance(10)
        assert controller.compression_level() is CompressionLevel.LIGHT  # sticky
        clock.advance(10)
        assert controller.compression_level() is CompressionLevel.NONE

    def test_decision_trace_recorded(self):
        clock = FakeClock()
        controller = self.controller_with_app_ram(clock, [(10.0, 100 * MB, 0.1)])
        controller.compression_level()
        controller.compression_level()
        assert len(controller.decisions) == 2

    def test_join_choice_under_pressure(self):
        clock = FakeClock()
        controller = self.controller_with_app_ram(clock, [
            (10.0, 100 * MB, 0.1),   # plenty of headroom
            (10.0, 950 * MB, 0.9),   # almost no headroom
        ])
        assert controller.choose_join_algorithm(100 * MB) == "hash"
        clock.advance(10)
        assert controller.choose_join_algorithm(100 * MB) == "merge"

    def test_small_build_stays_hash_even_under_pressure(self):
        clock = FakeClock()
        controller = self.controller_with_app_ram(clock, [(10.0, 900 * MB, 0.9)])
        assert controller.choose_join_algorithm(1 * MB) == "hash"


class TestDatabaseIntegration:
    def test_enable_reactive_resources(self, con):
        controller = con.database.enable_reactive_resources(1000 * MB)
        assert con.database.resource_controller is controller
        con.database.disable_reactive_resources()
        assert isinstance(con.database.resource_controller, StaticController)

    def test_intermediates_compressed_under_pressure(self, con):
        """End-to-end Figure 1 behaviour: an aggregation run while the app
        hogs RAM buffers its intermediates compressed."""
        clock = FakeClock()
        app = SimulatedApplication([(1000.0, 900 * MB, 0.1)], clock=clock)
        con.database.enable_reactive_resources(1000 * MB, app, clock=clock)
        con.execute("CREATE TABLE t (g INTEGER, v INTEGER)")
        with con.appender("t") as appender:
            appender.append_numpy({
                "g": (np.arange(20_000) % 7).astype(np.int32),
                "v": np.ones(20_000, dtype=np.int32),
            })
        rows = con.execute(
            "SELECT g, sum(v) FROM t GROUP BY g ORDER BY g").fetchall()
        assert [count for _, count in rows] == [2858, 2857, 2857, 2857,
                                                2857, 2857, 2857]
        controller = con.database.resource_controller
        assert any(level is CompressionLevel.HEAVY
                   for _, _, level in controller.decisions)
        con.database.disable_reactive_resources()

    def test_pragma_reactive_resources(self, con):
        con.execute("PRAGMA reactive_resources=true")
        assert con.database.config.reactive_resources is True

    def test_memory_usage_reported(self, populated):
        assert populated.database.memory_usage() > 0
