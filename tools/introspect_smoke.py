"""CI smoke check: every registered system table function answers SQL.

Runs ``SELECT count(*) FROM <fn>()`` over the full registry against a live
connection (with some user data and statement history behind it, so the
catalog/metric/trace providers have something to show), then spot-checks
composability.  Exits non-zero on any failure.  Run twice in CI: once
plain, once with ``REPRO_TRACE=1``.
"""

import os
import sys

import repro
from repro import introspection


def main() -> int:
    con = repro.connect()
    con.execute("CREATE TABLE smoke (a INTEGER, b VARCHAR)")
    con.execute("INSERT INTO smoke VALUES (1, 'x'), (2, 'y'), (3, 'z')")
    con.execute("SELECT count(*) FROM smoke").fetchall()

    failures = 0
    for name in introspection.function_names():
        try:
            count = con.execute(f"SELECT count(*) FROM {name}()").fetchvalue()
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            print(f"FAIL {name}(): {type(exc).__name__}: {exc}")
            failures += 1
            continue
        print(f"ok   {name}(): {count} rows")

    joined = con.execute(
        "SELECT count(*) FROM repro_tables() t "
        "JOIN repro_columns() c ON t.name = c.table_name").fetchvalue()
    if joined != 2:
        print(f"FAIL join over system tables: expected 2 rows, got {joined}")
        failures += 1
    else:
        print("ok   repro_tables() x repro_columns() join")

    if os.environ.get("REPRO_TRACE"):
        spans = con.execute(
            "SELECT count(*) FROM repro_traces()").fetchvalue()
        if spans <= 0:
            print("FAIL tracing on but repro_traces() is empty")
            failures += 1
        else:
            print(f"ok   repro_traces() carries {spans} spans under "
                  f"REPRO_TRACE=1")

    con.close()
    if failures:
        print(f"{failures} system table function check(s) failed")
        return 1
    print("all system table functions answered")
    return 0


if __name__ == "__main__":
    sys.exit(main())
