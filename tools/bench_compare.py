#!/usr/bin/env python
"""Compare two repro-bench-v1 JSON reports and gate on regression.

CI usage (the ``telemetry`` job)::

    python tools/bench_compare.py BENCH_PR9.json BENCH_PR10.json \
        --metric p99_ms --threshold 25

Prints a side-by-side of the serving metrics and exits 2 if the gated
metric regressed by more than ``--threshold`` percent.  Latency metrics
(``*_ms``, ``wall_seconds``) regress upward; throughput metrics
(``statements_per_second``, ``plan_cache_hit_rate``) regress downward.
Benchmarks on shared CI runners are noisy -- gate with a generous
threshold and treat the printed table as the real signal.
"""

import argparse
import json
import sys

#: Metrics where a *larger* value is better (regression = decrease).
_HIGHER_IS_BETTER = ("statements_per_second", "plan_cache_hit_rate")

_REPORT_METRICS = ("statements", "errors", "p50_ms", "p99_ms", "max_ms",
                   "wall_seconds", "statements_per_second",
                   "plan_cache_hit_rate")


def load_serving(path):
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    if report.get("format") != "repro-bench-v1":
        raise SystemExit(f"{path}: not a repro-bench-v1 report")
    serving = report.get("serving")
    if not isinstance(serving, dict):
        raise SystemExit(f"{path}: missing 'serving' section")
    return serving


def change_percent(metric, base, new):
    """Signed regression percentage (positive = worse)."""
    if base == 0:
        return 0.0
    delta = (new - base) / base * 100.0
    if metric in _HIGHER_IS_BETTER:
        delta = -delta
    return delta


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Diff two repro-bench-v1 reports, gate on a metric")
    parser.add_argument("baseline", help="older report (e.g. BENCH_PR9.json)")
    parser.add_argument("candidate", help="newer report")
    parser.add_argument("--metric", default="p99_ms",
                        help="serving metric to gate on (default p99_ms)")
    parser.add_argument("--threshold", type=float, default=25.0,
                        help="max tolerated regression in percent "
                             "(default 25)")
    args = parser.parse_args(argv)

    base = load_serving(args.baseline)
    new = load_serving(args.candidate)

    print(f"{'metric':<24} {'baseline':>12} {'candidate':>12} {'change':>9}")
    for metric in _REPORT_METRICS:
        if metric not in base or metric not in new:
            continue
        delta = change_percent(metric, base[metric], new[metric])
        sign = "+" if delta >= 0 else ""
        print(f"{metric:<24} {base[metric]:>12.3f} {new[metric]:>12.3f} "
              f"{sign}{delta:>7.1f}%")

    if args.metric not in base or args.metric not in new:
        raise SystemExit(
            f"metric {args.metric!r} missing from one of the reports")
    gated = change_percent(args.metric, base[args.metric], new[args.metric])
    if gated > args.threshold:
        print(f"FAIL: {args.metric} regressed {gated:.1f}% "
              f"(threshold {args.threshold:.1f}%)", file=sys.stderr)
        return 2
    print(f"OK: {args.metric} within threshold "
          f"({gated:+.1f}% vs {args.threshold:.1f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
