#!/usr/bin/env python
"""Serving load-generator CLI: drive N mixed OLAP/ETL sessions at a server.

CI smoke usage (the ``serve`` job)::

    PYTHONPATH=src REPRO_SANITIZE=1 REPRO_THREADS=4 \
        python tools/load_generator.py --sessions 200 --output BENCH_PR9.json

Builds an in-memory :class:`repro.server.QueryServer`, seeds the workload
schema, runs :func:`repro.server.loadgen.run_load`, prints a human summary,
and optionally writes the machine-readable JSON report.  Exits non-zero if
any session statement errored, so CI fails loudly.
"""

import argparse
import json
import sys

import repro
from repro import sanitizer
from repro.server import loadgen


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Run a mixed OLAP/ETL session load against a QueryServer")
    parser.add_argument("--sessions", type=int, default=1000,
                        help="total client sessions to run (default 1000)")
    parser.add_argument("--workers", type=int, default=8,
                        help="concurrent session threads (default 8)")
    parser.add_argument("--statements", type=int, default=4,
                        help="statements per session (default 4)")
    parser.add_argument("--olap-fraction", type=float, default=0.8,
                        help="fraction of OLAP statements (default 0.8)")
    parser.add_argument("--rows", type=int, default=2000,
                        help="seed rows in the events table (default 2000)")
    parser.add_argument("--max-concurrent-queries", type=int, default=8,
                        help="admission-controller concurrency (default 8)")
    parser.add_argument("--seed", type=int, default=7,
                        help="workload RNG seed (default 7); the schema seed "
                             "is derived from it so two runs with the same "
                             "seed issue identical statements")
    parser.add_argument("--capture", default=None,
                        help="capture every session statement to this JSONL "
                             "path (replayable with tools/replay_workload.py; "
                             "use --workers 1 for a deterministic capture)")
    parser.add_argument("--output", default=None,
                        help="write the JSON summary to this path")
    args = parser.parse_args(argv)

    config = {"max_concurrent_queries": args.max_concurrent_queries}
    if args.capture:
        config["capture_path"] = args.capture
        config["capture_enabled"] = True
    with repro.serve(config=config) as server:
        loadgen.prepare_schema(server, rows=args.rows, seed=args.seed + 4)
        summary = loadgen.run_load(
            server,
            sessions=args.sessions,
            statements_per_session=args.statements,
            olap_fraction=args.olap_fraction,
            workers=args.workers,
            seed=args.seed,
        )

    print(f"sessions={summary['sessions']} workers={summary['workers']} "
          f"statements={summary['statements']} errors={summary['errors']}")
    print(f"p50={summary['p50_ms']:.3f}ms p99={summary['p99_ms']:.3f}ms "
          f"max={summary['max_ms']:.3f}ms "
          f"throughput={summary['statements_per_second']:.0f} stmt/s")
    print(f"plan_cache hit_rate={summary['plan_cache_hit_rate']:.3f} "
          f"{summary['plan_cache']}")
    print(f"result_cache {summary['result_cache']}")
    print(f"admission {summary['admission']}")
    if summary["error_samples"]:
        for sample in summary["error_samples"]:
            print(f"error: {sample}", file=sys.stderr)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump({"format": "repro-bench-v1", "serving": summary},
                      handle, indent=2)
        print(f"wrote {args.output}")

    if sanitizer.enabled():
        sanitizer.assert_clean()
        print("sanitizer: clean")

    return 1 if summary["errors"] else 0


if __name__ == "__main__":
    sys.exit(main())
