#!/usr/bin/env python
"""Replay a captured workload (JSONL) against a fresh QueryServer.

Pair of the load generator's ``--capture`` flag::

    PYTHONPATH=src python tools/load_generator.py --sessions 13 --workers 1 \
        --seed 5 --capture capture.jsonl
    PYTHONPATH=src python tools/replay_workload.py --input capture.jsonl \
        --strict --output BENCH_REPLAY.json

Every captured statement is re-executed in file order on a session of the
same name; row counts and error outcomes are compared against the recorded
run.  ``--speed recorded`` honors the captured inter-statement gaps (for
load-shape reproduction); the default ``max`` replays as fast as possible
(for regression latency measurement).  The JSON summary has the same
``repro-bench-v1`` serving shape the load generator emits, plus a
``replay`` section with the match/mismatch tally.  ``--strict`` exits
non-zero on any mismatch -- a capture taken with ``--workers 1`` is
deterministic and must replay exactly; concurrent captures interleave
writes and are compared best-effort.
"""

import argparse
import json
import sys

from repro import sanitizer
from repro.server import replay_workload


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Replay a captured JSONL workload against a fresh server")
    parser.add_argument("--input", required=True,
                        help="capture file written by PRAGMA capture_path / "
                             "load_generator --capture")
    parser.add_argument("--speed", choices=("max", "recorded"), default="max",
                        help="'max' replays back-to-back; 'recorded' sleeps "
                             "to reproduce the captured inter-statement gaps")
    parser.add_argument("--max-concurrent-queries", type=int, default=8,
                        help="admission-controller concurrency (default 8)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero if any statement's row count or "
                             "error outcome differs from the capture")
    parser.add_argument("--output", default=None,
                        help="write the JSON summary to this path")
    args = parser.parse_args(argv)

    config = {"max_concurrent_queries": args.max_concurrent_queries}
    report = replay_workload(args.input, speed=args.speed, config=config)
    serving = report["serving"]
    replay = report["replay"]

    print(f"replayed {replay['statements']} statements from "
          f"{replay['source']} at speed={replay['speed']}")
    print(f"sessions={serving['sessions']} errors={serving['errors']} "
          f"p50={serving['p50_ms']:.3f}ms p99={serving['p99_ms']:.3f}ms "
          f"throughput={serving['statements_per_second']:.0f} stmt/s")
    print(f"matches={replay['matches']} mismatches={replay['mismatches']}")
    for sample in replay["mismatch_samples"]:
        print(f"mismatch: {sample}", file=sys.stderr)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {args.output}")

    if sanitizer.enabled():
        sanitizer.assert_clean()
        print("sanitizer: clean")

    return 1 if (args.strict and replay["mismatches"]) else 0


if __name__ == "__main__":
    sys.exit(main())
