"""Tuple-at-a-time Volcano baseline engine.

The comparator for experiment C7: the paper (§2, §6) argues that an
embedded OLAP engine must spend "a comparably low amount of CPU cycles per
value", which rules out the classic tuple-at-a-time iterator model.  This
module implements exactly that classic model -- each operator's ``next()``
produces ONE Python tuple, every expression is re-interpreted per row -- so
benchmarks can measure the per-value interpretation overhead the vectorized
engine amortizes away.

The baseline is deliberately written the way a careful implementer would
write a row-based interpreter (no gratuitous slowdowns): the gap against
the vectorized engine is the architectural gap, not a strawman.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = ["TupleScan", "TupleFilter", "TupleProjection", "TupleAggregate",
           "TupleHashJoin", "run_to_list"]

Row = Tuple[Any, ...]


class TupleOperator:
    """Classic Volcano iterator: open / next / close, one row at a time."""

    def open(self) -> None:
        raise NotImplementedError

    def next(self) -> Optional[Row]:
        """The next row, or None when exhausted."""
        raise NotImplementedError

    def close(self) -> None:
        pass


class TupleScan(TupleOperator):
    """Scans a list of Python rows (a materialized table)."""

    def __init__(self, rows: List[Row]) -> None:
        self.rows = rows
        self._position = 0

    def open(self) -> None:
        self._position = 0

    def next(self) -> Optional[Row]:
        if self._position >= len(self.rows):
            return None
        row = self.rows[self._position]
        self._position += 1
        return row


class TupleFilter(TupleOperator):
    """Applies a per-row predicate function."""

    def __init__(self, child: TupleOperator,
                 predicate: Callable[[Row], bool]) -> None:
        self.child = child
        self.predicate = predicate

    def open(self) -> None:
        self.child.open()

    def next(self) -> Optional[Row]:
        while True:
            row = self.child.next()
            if row is None:
                return None
            if self.predicate(row):
                return row

    def close(self) -> None:
        self.child.close()


class TupleProjection(TupleOperator):
    """Evaluates per-row expression functions."""

    def __init__(self, child: TupleOperator,
                 expressions: List[Callable[[Row], Any]]) -> None:
        self.child = child
        self.expressions = expressions

    def open(self) -> None:
        self.child.open()

    def next(self) -> Optional[Row]:
        row = self.child.next()
        if row is None:
            return None
        return tuple(expression(row) for expression in self.expressions)

    def close(self) -> None:
        self.child.close()


class TupleAggregate(TupleOperator):
    """Hash aggregation, one row at a time into a dict of running states.

    ``aggregates`` is a list of (init, step, finish) function triples; the
    step function receives (state, row) and returns the new state.
    """

    def __init__(self, child: TupleOperator,
                 key: Optional[Callable[[Row], Any]],
                 aggregates: List[Tuple[Callable[[], Any],
                                        Callable[[Any, Row], Any],
                                        Callable[[Any], Any]]]) -> None:
        self.child = child
        self.key = key
        self.aggregates = aggregates
        self._results: Optional[Iterator[Row]] = None

    def open(self) -> None:
        self.child.open()
        groups: Dict[Any, List[Any]] = {}
        while True:
            row = self.child.next()
            if row is None:
                break
            group_key = self.key(row) if self.key is not None else None
            state = groups.get(group_key)
            if state is None:
                state = [init() for init, _, _ in self.aggregates]
                groups[group_key] = state
            for index, (_, step, _) in enumerate(self.aggregates):
                state[index] = step(state[index], row)
        if self.key is None and not groups:
            groups[None] = [init() for init, _, _ in self.aggregates]
        results = []
        for group_key, state in groups.items():
            finished = tuple(finish(value) for (_, _, finish), value
                             in zip(self.aggregates, state))
            if self.key is not None:
                results.append((group_key,) + finished)
            else:
                results.append(finished)
        self._results = iter(results)

    def next(self) -> Optional[Row]:
        assert self._results is not None
        return next(self._results, None)

    def close(self) -> None:
        self.child.close()


class TupleHashJoin(TupleOperator):
    """Classic hash join: build a dict row by row, probe row by row."""

    def __init__(self, left: TupleOperator, right: TupleOperator,
                 left_key: Callable[[Row], Any],
                 right_key: Callable[[Row], Any]) -> None:
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self._table: Dict[Any, List[Row]] = {}
        self._pending: List[Row] = []

    def open(self) -> None:
        self.right.open()
        self._table = {}
        while True:
            row = self.right.next()
            if row is None:
                break
            key = self.right_key(row)
            if key is None:
                continue
            self._table.setdefault(key, []).append(row)
        self.left.open()
        self._pending = []

    def next(self) -> Optional[Row]:
        while not self._pending:
            row = self.left.next()
            if row is None:
                return None
            key = self.left_key(row)
            if key is None:
                continue
            matches = self._table.get(key)
            if matches:
                self._pending = [row + match for match in matches]
        return self._pending.pop()

    def close(self) -> None:
        self.left.close()
        self.right.close()


def run_to_list(plan: TupleOperator) -> List[Row]:
    """Drive a tuple plan to completion, collecting all rows."""
    plan.open()
    rows = []
    while True:
        row = plan.next()
        if row is None:
            break
        rows.append(row)
    plan.close()
    return rows
