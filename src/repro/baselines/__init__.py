"""Baseline implementations the paper's claims are measured against."""

from .tuple_engine import (
    TupleAggregate,
    TupleFilter,
    TupleHashJoin,
    TupleProjection,
    TupleScan,
    run_to_list,
)

__all__ = [
    "TupleScan",
    "TupleFilter",
    "TupleProjection",
    "TupleAggregate",
    "TupleHashJoin",
    "run_to_list",
]
