"""quackplan orchestration: sessions, the check log, and loud failure.

:class:`PlanVerifier` is the engine-facing object (one per
:class:`~repro.database.Database`, consulted only when
``config.verify_plans`` is on -- the disabled cost is one attribute test in
the optimizer).  The optimizer opens a :class:`VerificationSession` per
statement and runs every rewrite pass through it; the physical planner
reports each root lowering.  Results land in the :class:`PlanCheckLog`
behind the ``repro_plan_checks()`` system table, and -- in strict mode,
which is what ``REPRO_VERIFY_PLANS=1`` enables -- any violation raises
:class:`~repro.errors.PlanVerificationError` carrying the offending pass
name and before/after plan snippets.

Thread safety: one session belongs to one statement on one thread, but the
verifier and its log are shared engine state -- subquery lowerings verified
mid-execution and statements on concurrent connections all report here, so
both classes serialize behind instance locks (see the thread-safety
registry in :mod:`repro.analysis.registry`).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from ..errors import PlanVerificationError
from ..planner.logical import LogicalIntrospectionScan, LogicalOperator
from . import invariants
from .invariants import PlanViolation

__all__ = [
    "PlanCheckLog",
    "PlanCheckRecord",
    "PlanVerifier",
    "VerificationSession",
    "active_verifier",
]

#: Cap on plan-snippet length inside one log record (plans can be big; the
#: exception carries the full text, the table carries the gist).
_SNIPPET_CHARS = 400

#: The system table fed by the log; statements reading it must not reset it.
_PLAN_CHECKS_FUNCTION = "repro_plan_checks"


def _snippet(text: str) -> str:
    flat = " / ".join(part.strip() for part in text.splitlines())
    if len(flat) > _SNIPPET_CHARS:
        flat = flat[:_SNIPPET_CHARS - 3] + "..."
    return flat


def _scans_plan_checks(plan: LogicalOperator) -> bool:
    """True when the plan reads ``repro_plan_checks()`` -- such statements
    are still verified but must not overwrite the log they report."""
    for node in invariants.iter_nodes(plan):
        if isinstance(node, LogicalIntrospectionScan) \
                and node.function.name == _PLAN_CHECKS_FUNCTION:
            return True
    return False


def active_verifier(database) -> Optional["PlanVerifier"]:
    """The database's verifier when plan verification is enabled, else None.

    This is the whole disabled-mode cost: two attribute reads per optimize
    call and per root lowering.
    """
    if database is None:
        return None
    config = getattr(database, "config", None)
    if config is None or not getattr(config, "verify_plans", False):
        return None
    return database.plan_verifier


class PlanCheckRecord:
    """One check outcome of one verified statement."""

    __slots__ = ("statement_id", "seq", "stage", "invariant", "status",
                 "operator", "detail")

    def __init__(self, statement_id: int, seq: int, stage: str,
                 invariant: str, status: str, operator: str,
                 detail: str) -> None:
        self.statement_id = statement_id
        self.seq = seq
        self.stage = stage
        self.invariant = invariant
        self.status = status
        self.operator = operator
        self.detail = detail

    def __repr__(self) -> str:
        return (f"PlanCheckRecord({self.stage}/{self.invariant}: "
                f"{self.status})")


class PlanCheckLog:
    """Verification results of the most recently verified statement.

    Unlike :class:`~repro.optimizer.cost.OptimizerLog` (which atomically
    *replaces* its records once), records accumulate per statement: the
    optimizer stages land first, the lowering stage(s) -- including
    subquery lowerings that happen mid-execution -- append to the same
    statement.  Readers get a snapshot copy (copy-then-release)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._statement_id = 0
        self._records: List[PlanCheckRecord] = []

    def start_statement(self) -> int:
        with self._lock:
            self._statement_id += 1
            self._records = []
            return self._statement_id

    def record(self, stage: str, invariant: str, status: str,
               operator: str, detail: str) -> None:
        with self._lock:
            self._records.append(PlanCheckRecord(
                self._statement_id, len(self._records), stage, invariant,
                status, operator, detail))

    def snapshot(self) -> List[PlanCheckRecord]:
        with self._lock:
            return list(self._records)


class PlanVerifier:
    """Static plan checks after every optimizer pass and at lowering."""

    def __init__(self, log: Optional[PlanCheckLog] = None,
                 strict: bool = True) -> None:
        self.log = log if log is not None else PlanCheckLog()
        #: Raise :class:`PlanVerificationError` on any violation.  The
        #: non-strict mode records violations to the log only (used by
        #: tests that inspect ``repro_plan_checks()`` output).
        self.strict = strict
        self._lock = threading.Lock()
        self._checks_run = 0
        self._violations_found = 0

    # -- entry points --------------------------------------------------------

    def begin(self, plan: LogicalOperator) -> "VerificationSession":
        """Start verifying one statement; checks the binder's output too."""
        publish = not _scans_plan_checks(plan)
        if publish:
            self.log.start_statement()
        session = VerificationSession(self, publish)
        text = plan.explain()
        session._report("binder", invariants.check_logical(plan), text, text)
        return session

    def check_lowering(self, logical: LogicalOperator, physical) -> None:
        """Verify one root logical->physical translation."""
        violations = invariants.check_lowering(logical, physical)
        self._finish_stage("lowering", violations,
                           logical.explain(), physical.explain(),
                           publish=not _scans_plan_checks(logical))

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"checks_run": self._checks_run,
                    "violations_found": self._violations_found}

    # -- internals -----------------------------------------------------------

    def _finish_stage(self, stage: str, violations: List[PlanViolation],
                      before: str, after: str, publish: bool) -> None:
        with self._lock:
            self._checks_run += 1
            self._violations_found += len(violations)
        if publish:
            if not violations:
                self.log.record(stage, "all", "ok", "", "")
            for violation in violations:
                self.log.record(
                    stage, violation.invariant, "violation",
                    violation.operator,
                    f"{violation.message} | before: {_snippet(before)} | "
                    f"after: {_snippet(after)}")
        if violations and self.strict:
            first = violations[0]
            raise PlanVerificationError(
                f"quackplan: {len(violations)} plan invariant violation(s) "
                f"after {stage!r}: [{first.invariant}] {first.operator}: "
                f"{first.message}\n"
                f"-- plan before {stage} --\n{before}\n"
                f"-- plan after {stage} --\n{after}")


class VerificationSession:
    """Per-statement driver: wraps each optimizer pass with checks."""

    def __init__(self, verifier: PlanVerifier, publish: bool) -> None:
        self._verifier = verifier
        self._publish = publish

    def run_pass(self, name: str,
                 fn: Callable[[LogicalOperator], LogicalOperator],
                 plan: LogicalOperator) -> LogicalOperator:
        """Run one rewrite pass and verify what it produced.

        Passes mutate plans in place, so the before-snapshot (explain text,
        schema signature, output bound) is captured eagerly."""
        before_text = plan.explain()
        before_signature = invariants.schema_signature(plan)
        before_bound = invariants.output_bound(plan)
        result = fn(plan)
        violations = invariants.check_logical(result)
        violations.extend(
            invariants.check_schema_preserved(before_signature, result))
        after_bound = invariants.output_bound(result)
        if before_bound is not None \
                and (after_bound is None or after_bound > before_bound):
            violations.append(PlanViolation(
                "limit_monotonic", type(result).__name__,
                f"pass raised the plan's output bound from "
                f"{before_bound:g} to "
                f"{'unbounded' if after_bound is None else format(after_bound, 'g')}"
                f" rows -- ancestors may now see more rows than the "
                f"original LIMIT allowed"))
        self._report(name, violations, before_text, result.explain())
        return result

    def check_annotated(self, plan: LogicalOperator) -> None:
        """Cardinality sanity after ``cost.annotate`` stamped the tree."""
        text = plan.explain()
        self._report("annotate", invariants.check_cardinality(plan),
                     text, text)

    def _report(self, stage: str, violations: List[PlanViolation],
                before: str, after: str) -> None:
        self._verifier._finish_stage(stage, violations, before, after,
                                     self._publish)
