"""quackplan: static plan verification for optimizer rewrites.

PR 6 made the optimizer cost-based -- join reordering, limit pushdown, and
scan hints rewrite plans aggressively, and a bad rewrite produces silently
wrong answers, not errors.  quackplan closes that gap: a static analysis
pass over logical and physical plan trees that runs after every optimizer
pass and at logical->physical translation, checking column-binding
integrity, schema/type preservation, limit soundness, ordering propagation
into Sort/Top-N, and cardinality sanity (see
:mod:`repro.verifier.invariants` for the full invariant list).

Off by default with near-zero overhead; ``REPRO_VERIFY_PLANS=1`` (or
``PRAGMA verify_plans = 1``) turns it on, in which case every violation is
recorded to the ``repro_plan_checks()`` system table and raised as
:class:`~repro.errors.PlanVerificationError` with the offending pass named
and before/after plan snippets attached.
"""

from .invariants import PlanViolation
from .verifier import (
    PlanCheckLog,
    PlanCheckRecord,
    PlanVerifier,
    VerificationSession,
    active_verifier,
)

__all__ = [
    "PlanCheckLog",
    "PlanCheckRecord",
    "PlanVerifier",
    "PlanViolation",
    "VerificationSession",
    "active_verifier",
]
