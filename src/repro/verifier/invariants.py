"""quackplan invariants: pure structural checks over plan trees.

Every function here is side-effect free: it walks a logical (or physical)
operator tree and returns a list of :class:`PlanViolation`\\ s.  The
orchestration -- when to run which check, how to report, whether to raise --
lives in :mod:`repro.verifier.verifier`.

The invariants encode what every optimizer rewrite must preserve:

``column_binding``
    Every :class:`~repro.planner.expressions.BoundColumnRef` inside an
    operator's expressions resolves to a position inside its child's output
    schema, with a matching type.  (Subquery plans hang off expression
    attributes, not ``children``, so walking expression children never
    crosses into a subquery's separate coordinate space.)
``schema_shape`` / ``schema_types``
    An operator's declared output schema is structurally consistent with
    its inputs (projection width == expression count, join width == left +
    right, aggregate width == groups + aggregates, ...).
``schema_preserved``
    A whole rewrite pass leaves the *root* schema -- names, order, types --
    untouched: parents bound against the old output must never notice.
``limit_bounds`` / ``limit_hint`` / ``limit_monotonic``
    LIMIT/OFFSET values stay non-negative, every scan ``limit_hint`` is
    dominated by an actual Limit directly above the scan, and no pass
    increases the number of rows the plan may emit.
``ordering``
    Sort/Top-N operators carry at least one sort key and every key is
    bound; Top-N windows are non-negative.
``cardinality``
    After :func:`repro.optimizer.cost.annotate`, every node carries a
    finite, non-negative ``estimated_rows``, monotone through filters and
    limits.
``lowering_schema``
    The physical root produced by the planner matches the logical root's
    arity, types, and column names.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Tuple

from ..planner.expressions import BoundColumnRef, BoundExpression
from ..planner.logical import (
    ColumnSchema,
    LogicalAggregate,
    LogicalDistinct,
    LogicalEmpty,
    LogicalFilter,
    LogicalGet,
    LogicalJoin,
    LogicalLimit,
    LogicalOperator,
    LogicalOrder,
    LogicalProjection,
    LogicalSetOp,
    LogicalValues,
)
from ..planner.window import LogicalWindow

__all__ = [
    "PlanViolation",
    "SchemaSignature",
    "check_cardinality",
    "check_logical",
    "check_lowering",
    "check_schema_preserved",
    "iter_nodes",
    "output_bound",
    "schema_signature",
]

#: Relative slack for estimate-monotonicity comparisons (floats accumulate
#: rounding across selectivity products).
_EST_EPSILON = 1e-6


class PlanViolation:
    """One invariant violation found in one operator."""

    __slots__ = ("invariant", "operator", "message")

    def __init__(self, invariant: str, operator: str, message: str) -> None:
        self.invariant = invariant
        self.operator = operator
        self.message = message

    def __repr__(self) -> str:
        return f"PlanViolation({self.invariant} @ {self.operator}: {self.message})"


#: ``[(column name, rendered type), ...]`` -- the order-sensitive identity
#: of an operator's output schema.
SchemaSignature = List[Tuple[str, str]]


def schema_signature(plan: LogicalOperator) -> SchemaSignature:
    return [(column.name, str(column.dtype)) for column in plan.schema]


def iter_nodes(plan) -> Iterator:
    """All operators of a tree (logical or physical), pre-order."""
    stack = [plan]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children)


def _iter_edges(plan: LogicalOperator
                ) -> Iterator[Tuple[Optional[LogicalOperator],
                                    LogicalOperator]]:
    """All (parent, child) pairs, the root paired with ``None``."""
    stack: List[Tuple[Optional[LogicalOperator], LogicalOperator]] = \
        [(None, plan)]
    while stack:
        parent, node = stack.pop()
        yield parent, node
        for child in node.children:
            stack.append((node, child))


def _label(node) -> str:
    explain = getattr(node, "_explain_line", None)
    if explain is not None:
        return explain()
    return type(node).__name__


# ---------------------------------------------------------------------------
# column-binding integrity
# ---------------------------------------------------------------------------

def _check_bound(expression: BoundExpression, schema: List[ColumnSchema],
                 operator: str, context: str,
                 out: List[PlanViolation]) -> None:
    """Check every column ref of one expression against an input schema."""
    stack: List[BoundExpression] = [expression]
    while stack:
        node = stack.pop()
        if isinstance(node, BoundColumnRef):
            if not 0 <= node.position < len(schema):
                out.append(PlanViolation(
                    "column_binding", operator,
                    f"{context}: dangling column ref #{node.position} "
                    f"(input width is {len(schema)})"))
            elif node.return_type != schema[node.position].dtype:
                out.append(PlanViolation(
                    "column_binding", operator,
                    f"{context}: column ref #{node.position} typed "
                    f"{node.return_type} but the input column "
                    f"{schema[node.position].name!r} is "
                    f"{schema[node.position].dtype}"))
        stack.extend(node.children)


def _check_widths(node: LogicalOperator, operator: str,
                  out: List[PlanViolation]) -> None:
    """Pass-through operators must not change the column count."""
    child = node.children[0]
    if len(node.schema) != len(child.schema):
        out.append(PlanViolation(
            "schema_shape", operator,
            f"declares {len(node.schema)} output columns but its child "
            f"produces {len(child.schema)}"))


def _check_node_bindings(node: LogicalOperator, operator: str,
                         out: List[PlanViolation]) -> None:
    if isinstance(node, LogicalGet):
        if len(node.column_ids) != len(node.schema):
            out.append(PlanViolation(
                "schema_shape", operator,
                f"scans {len(node.column_ids)} physical columns but "
                f"declares {len(node.schema)} output columns"))
        for index, predicate in enumerate(node.pushed_filters):
            _check_bound(predicate, node.schema, operator,
                         f"pushed filter #{index}", out)
        return
    if isinstance(node, LogicalFilter):
        _check_widths(node, operator, out)
        _check_bound(node.predicate, node.children[0].schema, operator,
                     "predicate", out)
        return
    if isinstance(node, LogicalProjection):
        if len(node.expressions) != len(node.schema):
            out.append(PlanViolation(
                "schema_shape", operator,
                f"projects {len(node.expressions)} expressions but declares "
                f"{len(node.schema)} output columns"))
        child_schema = node.children[0].schema
        for index, expression in enumerate(node.expressions):
            _check_bound(expression, child_schema, operator,
                         f"expression #{index}", out)
            if index < len(node.schema) \
                    and node.schema[index].dtype != expression.return_type:
                out.append(PlanViolation(
                    "schema_types", operator,
                    f"output column #{index} "
                    f"({node.schema[index].name!r}) declared "
                    f"{node.schema[index].dtype} but its expression "
                    f"returns {expression.return_type}"))
        return
    if isinstance(node, LogicalAggregate):
        expected = len(node.groups) + len(node.aggregates)
        if len(node.schema) != expected:
            out.append(PlanViolation(
                "schema_shape", operator,
                f"declares {len(node.schema)} output columns but has "
                f"{len(node.groups)} groups + {len(node.aggregates)} "
                f"aggregates"))
        child_schema = node.children[0].schema
        for index, group in enumerate(node.groups):
            _check_bound(group, child_schema, operator, f"group #{index}",
                         out)
        for index, aggregate in enumerate(node.aggregates):
            _check_bound(aggregate, child_schema, operator,
                         f"aggregate #{index}", out)
        return
    if isinstance(node, LogicalJoin):
        left, right = node.children
        if len(node.schema) != len(left.schema) + len(right.schema):
            out.append(PlanViolation(
                "schema_shape", operator,
                f"declares {len(node.schema)} output columns but its "
                f"children produce {len(left.schema)} + "
                f"{len(right.schema)}"))
        for index, condition in enumerate(node.conditions):
            _check_bound(condition.left, left.schema, operator,
                         f"condition #{index} left side", out)
            _check_bound(condition.right, right.schema, operator,
                         f"condition #{index} right side", out)
        if node.residual is not None:
            _check_bound(node.residual,
                         list(left.schema) + list(right.schema),
                         operator, "residual", out)
        return
    if isinstance(node, LogicalOrder):
        _check_widths(node, operator, out)
        for index, item in enumerate(node.items):
            _check_bound(item.expression, node.children[0].schema, operator,
                         f"sort key #{index}", out)
        if not node.items:
            out.append(PlanViolation(
                "ordering", operator, "ORDER BY carries no sort keys"))
        return
    if isinstance(node, LogicalLimit):
        _check_widths(node, operator, out)
        if node.limit is not None and node.limit < 0:
            out.append(PlanViolation(
                "limit_bounds", operator, f"negative limit {node.limit}"))
        if node.offset < 0:
            out.append(PlanViolation(
                "limit_bounds", operator, f"negative offset {node.offset}"))
        return
    if isinstance(node, LogicalDistinct):
        _check_widths(node, operator, out)
        return
    if isinstance(node, LogicalWindow):
        child = node.children[0]
        if len(node.schema) != len(child.schema) + len(node.windows):
            out.append(PlanViolation(
                "schema_shape", operator,
                f"declares {len(node.schema)} output columns but its child "
                f"produces {len(child.schema)} + {len(node.windows)} "
                f"windows"))
        for index, window in enumerate(node.windows):
            _check_bound(window, child.schema, operator,
                         f"window #{index}", out)
        return
    if isinstance(node, LogicalSetOp):
        for side, child in zip(("left", "right"), node.children):
            if len(child.schema) != len(node.schema):
                out.append(PlanViolation(
                    "schema_shape", operator,
                    f"{side} input produces {len(child.schema)} columns "
                    f"but the set operation declares {len(node.schema)}"))
        return
    if isinstance(node, LogicalValues):
        for index, row in enumerate(node.rows):
            if len(row) != len(node.schema):
                out.append(PlanViolation(
                    "schema_shape", operator,
                    f"row #{index} has {len(row)} values but the schema "
                    f"declares {len(node.schema)} columns"))
                break
        return
    # Leaf sources (CSV scan, introspection scan, EMPTY) and any future
    # operator: nothing positional to check beyond what the walk covers.


def _check_limit_hints(plan: LogicalOperator,
                       out: List[PlanViolation]) -> None:
    """Every scan ``limit_hint`` must be dominated by an actual Limit.

    A hint lets the scan stop fetching after N rows -- sound only when the
    node directly above is a LIMIT needing at most that many rows.  Any
    rewrite that moves the Limit away (or inflates the hint) silently
    truncates results.
    """
    for parent, node in _iter_edges(plan):
        if not isinstance(node, LogicalGet) or node.limit_hint is None:
            continue
        operator = _label(node)
        if not isinstance(parent, LogicalLimit):
            out.append(PlanViolation(
                "limit_hint", operator,
                f"limit_hint={node.limit_hint} on a scan whose parent is "
                f"{_label(parent) if parent is not None else 'the root'}, "
                f"not a LIMIT -- the scan may stop early and drop rows"))
        elif parent.limit is None:
            out.append(PlanViolation(
                "limit_hint", operator,
                f"limit_hint={node.limit_hint} under an unbounded LIMIT "
                f"(offset-only) -- the scan may stop early and drop rows"))
        elif parent.limit + parent.offset > node.limit_hint:
            out.append(PlanViolation(
                "limit_hint", operator,
                f"limit_hint={node.limit_hint} is smaller than the "
                f"dominating LIMIT's window "
                f"{parent.limit} + offset {parent.offset}"))


def check_logical(plan: LogicalOperator) -> List[PlanViolation]:
    """Binding + structural + limit-hint checks over a whole logical tree."""
    out: List[PlanViolation] = []
    for node in iter_nodes(plan):
        _check_node_bindings(node, _label(node), out)
    _check_limit_hints(plan, out)
    return out


# ---------------------------------------------------------------------------
# schema preservation across a pass
# ---------------------------------------------------------------------------

def check_schema_preserved(before: SchemaSignature,
                           plan: LogicalOperator) -> List[PlanViolation]:
    """The rewrite must keep the root's column list, order, and types."""
    after = schema_signature(plan)
    operator = _label(plan)
    if len(after) != len(before):
        return [PlanViolation(
            "schema_preserved", operator,
            f"pass changed the root width from {len(before)} to "
            f"{len(after)} columns (before: {before}, after: {after})")]
    out: List[PlanViolation] = []
    for index, (old, new) in enumerate(zip(before, after)):
        if old != new:
            out.append(PlanViolation(
                "schema_preserved", operator,
                f"root column #{index} changed from {old[0]!r} {old[1]} "
                f"to {new[0]!r} {new[1]}"))
    return out


# ---------------------------------------------------------------------------
# output bound (limit monotonicity across a pass)
# ---------------------------------------------------------------------------

def output_bound(plan: LogicalOperator) -> Optional[float]:
    """A conservative upper bound on the rows the plan can emit, or None.

    Derived purely from LIMIT structure (not estimates), so comparing the
    bound before and after a pass is an exact soundness statement: a pass
    that *raises* the bound may emit rows the original plan never could.
    """
    if isinstance(plan, LogicalLimit):
        bounds = [output_bound(plan.children[0])]
        if plan.limit is not None:
            bounds.append(float(plan.limit))
        known = [bound for bound in bounds if bound is not None]
        return min(known) if known else None
    if isinstance(plan, (LogicalFilter, LogicalProjection, LogicalOrder,
                         LogicalDistinct, LogicalWindow)):
        return output_bound(plan.children[0])
    if isinstance(plan, LogicalAggregate):
        return None if plan.groups else 1.0
    if isinstance(plan, LogicalEmpty):
        return 0.0
    if isinstance(plan, LogicalValues):
        return float(len(plan.rows))
    return None


# ---------------------------------------------------------------------------
# cardinality sanity (after cost.annotate)
# ---------------------------------------------------------------------------

def _estimate_invalid(estimate: float) -> bool:
    return math.isnan(estimate) or math.isinf(estimate) or estimate < 0


def check_cardinality(plan: LogicalOperator) -> List[PlanViolation]:
    """Estimates exist, are finite and non-negative, and shrink where the
    operator can only drop rows (filters, limits)."""
    out: List[PlanViolation] = []
    for node in iter_nodes(plan):
        operator = _label(node)
        estimate = node.estimated_rows
        if estimate is None:
            out.append(PlanViolation(
                "cardinality", operator,
                "no estimated_rows after annotation"))
            continue
        if _estimate_invalid(estimate):
            out.append(PlanViolation(
                "cardinality", operator,
                f"invalid estimate {estimate!r} (must be finite and >= 0)"))
            continue
        child_estimate = node.children[0].estimated_rows \
            if isinstance(node, (LogicalFilter, LogicalLimit)) else None
        if child_estimate is None or _estimate_invalid(child_estimate):
            continue
        ceiling = child_estimate
        if isinstance(node, LogicalLimit) and node.limit is not None:
            ceiling = min(ceiling, float(node.limit))
        if estimate > ceiling * (1.0 + _EST_EPSILON) + _EST_EPSILON:
            out.append(PlanViolation(
                "cardinality", operator,
                f"estimate {estimate:g} exceeds its input's "
                f"{child_estimate:g}"
                + (f" (limit {node.limit})"
                   if isinstance(node, LogicalLimit)
                   and node.limit is not None else "")
                + " -- this operator can only drop rows"))
    return out


# ---------------------------------------------------------------------------
# physical plans (logical -> physical translation)
# ---------------------------------------------------------------------------

def _check_bound_types(expression: BoundExpression, types: List,
                       operator: str, context: str,
                       out: List[PlanViolation]) -> None:
    """Physical twin of :func:`_check_bound`: inputs are type lists."""
    stack: List[BoundExpression] = [expression]
    while stack:
        node = stack.pop()
        if isinstance(node, BoundColumnRef):
            if not 0 <= node.position < len(types):
                out.append(PlanViolation(
                    "column_binding", operator,
                    f"{context}: dangling column ref #{node.position} "
                    f"(input width is {len(types)})"))
            elif node.return_type != types[node.position]:
                out.append(PlanViolation(
                    "column_binding", operator,
                    f"{context}: column ref #{node.position} typed "
                    f"{node.return_type} but the input column is "
                    f"{types[node.position]}"))
        stack.extend(node.children)


def _check_physical_node(node, operator: str,
                         out: List[PlanViolation]) -> None:
    # Imported lazily: repro.execution imports the optimizer (which imports
    # this package), so a module-level import would cycle.
    from ..execution.basic import (
        PhysicalFilter,
        PhysicalLimit,
        PhysicalProjection,
    )
    from ..execution.joins import (
        PhysicalHashJoin,
        PhysicalMergeJoin,
        PhysicalNestedLoopJoin,
    )
    from ..execution.sort import PhysicalOrder, PhysicalTopN

    estimate = node.estimated_rows
    if estimate is not None and _estimate_invalid(estimate):
        out.append(PlanViolation(
            "cardinality", operator,
            f"invalid estimate {estimate!r} (must be finite and >= 0)"))
    if isinstance(node, PhysicalFilter):
        _check_bound_types(node.predicate, node.children[0].types, operator,
                           "predicate", out)
        return
    if isinstance(node, PhysicalProjection):
        if len(node.expressions) != len(node.types):
            out.append(PlanViolation(
                "schema_shape", operator,
                f"projects {len(node.expressions)} expressions but "
                f"declares {len(node.types)} output columns"))
        for index, expression in enumerate(node.expressions):
            _check_bound_types(expression, node.children[0].types, operator,
                               f"expression #{index}", out)
        return
    if isinstance(node, (PhysicalHashJoin, PhysicalMergeJoin,
                         PhysicalNestedLoopJoin)):
        left, right = node.children
        if len(node.types) != len(left.types) + len(right.types):
            out.append(PlanViolation(
                "schema_shape", operator,
                f"declares {len(node.types)} output columns but its "
                f"children produce {len(left.types)} + {len(right.types)}"))
        for index, condition in enumerate(node.conditions):
            _check_bound_types(condition.left, left.types, operator,
                               f"condition #{index} left side", out)
            _check_bound_types(condition.right, right.types, operator,
                               f"condition #{index} right side", out)
        if node.residual is not None:
            _check_bound_types(node.residual,
                               list(left.types) + list(right.types),
                               operator, "residual", out)
        return
    if isinstance(node, PhysicalOrder):
        if not node.items:
            out.append(PlanViolation(
                "ordering", operator, "sort carries no sort keys"))
        for index, item in enumerate(node.items):
            _check_bound_types(item.expression, node.children[0].types,
                               operator, f"sort key #{index}", out)
        return
    if isinstance(node, PhysicalTopN):
        if not node.items:
            out.append(PlanViolation(
                "ordering", operator,
                "Top-N carries no sort keys (ordering property lost in "
                "LIMIT+ORDER BY fusion)"))
        for index, item in enumerate(node.items):
            _check_bound_types(item.expression, node.children[0].types,
                               operator, f"sort key #{index}", out)
        if node.limit < 0 or node.offset < 0:
            out.append(PlanViolation(
                "limit_bounds", operator,
                f"negative Top-N window limit={node.limit} "
                f"offset={node.offset}"))
        return
    if isinstance(node, PhysicalLimit):
        if (node.limit is not None and node.limit < 0) or node.offset < 0:
            out.append(PlanViolation(
                "limit_bounds", operator,
                f"negative limit/offset {node.limit}/{node.offset}"))
        return


def check_lowering(logical: LogicalOperator,
                   physical) -> List[PlanViolation]:
    """Root schema agreement plus per-node physical binding checks."""
    out: List[PlanViolation] = []
    operator = _label(physical)
    logical_types = logical.types
    if len(physical.types) != len(logical_types):
        out.append(PlanViolation(
            "lowering_schema", operator,
            f"physical root produces {len(physical.types)} columns but the "
            f"logical root declares {len(logical_types)}"))
    else:
        for index, (phys, logi) in enumerate(zip(physical.types,
                                                 logical_types)):
            if phys != logi:
                out.append(PlanViolation(
                    "lowering_schema", operator,
                    f"root column #{index} lowered as {phys} but the "
                    f"logical plan declares {logi}"))
    for node in iter_nodes(physical):
        _check_physical_node(node, _label(node), out)
    return out
