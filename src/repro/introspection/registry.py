"""The system-table-function registry: engine state, addressable from SQL.

Each entry maps one zero-argument table function name (``repro_metrics``,
``repro_tables``, ...) to a static output schema plus a *provider*: a plain
function that snapshots one slice of engine state into a list of row
tuples.  The binder resolves the name through :func:`lookup`, the physical
layer materializes the snapshot through :meth:`SystemTableFunction.rows`,
and everything above the scan -- WHERE, JOIN, ORDER BY, aggregates -- is
the ordinary relational engine.

Provider discipline (enforced by quacklint's QLO003): providers snapshot
under the engine's declared lock hierarchy and **copy then release** --
they return fully materialized row lists and never yield while holding an
engine lock, so a slow client draining an introspection query can never
stall the engine.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import InternalError
from ..types import LogicalType

__all__ = ["SystemTableFunction", "Provider", "register", "lookup",
           "function_names", "functions", "unregister"]

#: A provider snapshots ``(database, transaction)`` into row tuples.
Provider = Callable[[Any, Any], List[Tuple[Any, ...]]]


class SystemTableFunction:
    """One SQL-queryable view over engine internals."""

    __slots__ = ("name", "description", "columns", "provider")

    def __init__(self, name: str, description: str,
                 columns: Sequence[Tuple[str, LogicalType]],
                 provider: Provider) -> None:
        self.name = name.lower()
        self.description = description
        #: Ordered ``(column name, logical type)`` output schema.
        self.columns: Tuple[Tuple[str, LogicalType], ...] = tuple(columns)
        self.provider = provider

    @property
    def column_names(self) -> List[str]:
        return [name for name, _ in self.columns]

    @property
    def column_types(self) -> List[LogicalType]:
        return [dtype for _, dtype in self.columns]

    def rows(self, database: Any, transaction: Any) -> List[Tuple[Any, ...]]:
        """Materialize the snapshot (called once per scan, at execute time)."""
        if database is None:
            raise InternalError(
                f"System table function {self.name}() needs a database "
                f"handle in its execution context")
        return self.provider(database, transaction)

    def __repr__(self) -> str:
        return f"SystemTableFunction({self.name})"


_FUNCTIONS: Dict[str, SystemTableFunction] = {}


def register(function: SystemTableFunction) -> SystemTableFunction:
    """Register a system table function (idempotent by name)."""
    _FUNCTIONS[function.name] = function
    return function


def unregister(name: str) -> None:
    """Remove a registered function (tests register throwaway fixtures)."""
    _FUNCTIONS.pop(name.lower(), None)


def lookup(name: str) -> Optional[SystemTableFunction]:
    """The registered function for ``name``, or None (case-insensitive)."""
    return _FUNCTIONS.get(name.lower())


def function_names() -> List[str]:
    """All registered system table function names, sorted."""
    return sorted(_FUNCTIONS)


def functions() -> List[SystemTableFunction]:
    """All registered functions, sorted by name."""
    return [_FUNCTIONS[name] for name in function_names()]
