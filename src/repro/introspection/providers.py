"""Snapshot providers behind the built-in system table functions.

Every provider turns one slice of engine state into a list of plain row
tuples.  The sources are the same structures the Python-level APIs expose
(``connection.metrics()``, the trace sink, the slow-query log, quacksan's
lock statistics, the catalog, the transaction manager, the storage layer)
-- this module only flattens them into relational shape.

All providers follow the copy-then-release rule (quacklint QLO003): state
guarded by an engine lock is copied into the result list inside the lock's
scope and the lock is released before any row is handed to the scan; no
provider is a generator that yields mid-snapshot.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Any, List, Tuple

from .. import observability
from ..sanitizer import lock_statistics
from ..types import BIGINT, BOOLEAN, DOUBLE, VARCHAR
from .registry import SystemTableFunction, register

__all__ = ["register_builtin_functions"]

Row = Tuple[Any, ...]


# -- observability -----------------------------------------------------------

def metrics_rows(database: Any, transaction: Any) -> List[Row]:
    """Every registry instrument as ``(name, kind, value)`` rows."""
    database.fold_metrics()
    reg = observability.registry()
    rows: List[Row] = []
    for name, counter in sorted(reg.counters.items()):
        rows.append((name, "counter", float(counter.value)))
    for name, gauge in sorted(reg.gauges.items()):
        rows.append((name, "gauge", float(gauge.value)))
    for name, histogram in sorted(reg.histograms.items()):
        rows.append((name + "_count", "histogram", float(histogram.count)))
        rows.append((name + "_sum", "histogram", float(histogram.sum)))
    return rows


def traces_rows(database: Any, transaction: Any) -> List[Row]:
    """Completed quacktrace spans (empty while tracing is disabled)."""
    tracer = database.tracer
    if tracer is None:
        return []
    rows: List[Row] = []
    for span in tracer.sink.spans():
        rows.append((span.span_id, span.parent_id, span.trace_id, span.name,
                     span.kind, span.thread_ident, span.wall_ms, span.cpu_ms,
                     span.rows, span.chunks, span.bytes_processed))
    return rows


def slow_queries_rows(database: Any, transaction: Any) -> List[Row]:
    rows: List[Row] = []
    for record in database.slow_log.records():
        rows.append((record.sql, record.duration_ms, record.threshold_ms,
                     record.timestamp, record.span_count,
                     record.session_id, record.statement_seq))
    return rows


def metrics_history_rows(database: Any, transaction: Any) -> List[Row]:
    """Time-series metrics samples across every retention tier.

    Each row is one instrument at one sample point: ``value`` is the
    instrument's level at that moment, ``delta`` its movement over the
    tier's window (one interval for ``raw``, the summed window for the
    downsampled tiers).  Empty until the telemetry sampler has run
    (``telemetry_interval_ms`` > 0 or ``PRAGMA telemetry_sample``).
    """
    return list(database.telemetry.history.rows())


def statement_log_rows(database: Any, transaction: Any) -> List[Row]:
    """Per-statement resource bills, oldest first (bounded ring)."""
    return list(database.statement_log.rows())


def activity_rows(database: Any, transaction: Any) -> List[Row]:
    """Statements in flight *right now*, one row per busy session.

    A session querying this table sees its own statement (phase
    ``executing``) -- the query observing the activity is itself activity.
    """
    rows: List[Row] = []
    for info in database.session_registry.activity_snapshot():
        rows.append((info["session_id"], info["name"],
                     info["statement_seq"], info["sql"], info["phase"],
                     info["started_at"], info["elapsed_ms"],
                     info["rows_so_far"]))
    return rows


def profile_rows(database: Any, transaction: Any) -> List[Row]:
    """Sampling-profiler buckets (empty until ``PRAGMA enable_profiling``)."""
    return list(database.profiler.snapshot())


# -- configuration -----------------------------------------------------------

def settings_rows(database: Any, transaction: Any) -> List[Row]:
    config = database.config
    rows: List[Row] = []
    for field in dataclasses.fields(config):
        rows.append((field.name, str(getattr(config, field.name))))
    return rows


# -- catalog -----------------------------------------------------------------

def tables_rows(database: Any, transaction: Any) -> List[Row]:
    """Catalog entries visible to the *introspecting* transaction (MVCC)."""
    rows: List[Row] = []
    for table in database.catalog.tables(transaction):
        rows.append((table.name, "table", len(table.columns),
                     table.data.row_count, table.created_by))
    for view in database.catalog.views(transaction):
        rows.append((view.name, "view", None, None, view.created_by))
    return rows


def columns_rows(database: Any, transaction: Any) -> List[Row]:
    rows: List[Row] = []
    for table in database.catalog.tables(transaction):
        for index, column in enumerate(table.columns):
            rows.append((table.name, column.name, index, str(column.dtype),
                         column.nullable))
    return rows


# -- transactions ------------------------------------------------------------

def transactions_rows(database: Any, transaction: Any) -> List[Row]:
    rows: List[Row] = []
    for info in database.transaction_manager.snapshot_active():
        rows.append((info["transaction_id"], info["start_time"],
                     info["state"], info["has_writes"], info["wal_records"],
                     info["modified_tables"]))
    return rows


# -- locks (quacksan) --------------------------------------------------------

def locks_rows(database: Any, transaction: Any) -> List[Row]:
    """Per-lock statistics from quacksan (empty while REPRO_SANITIZE is off)."""
    rows: List[Row] = []
    for name, stats in sorted(lock_statistics().items()):
        data = stats.as_dict()
        rows.append((name, int(data["acquisitions"]), int(data["contentions"]),
                     float(data["wait_time"]), float(data["hold_time"]),
                     float(data["max_hold"]), int(data["same_name_nestings"])))
    return rows


# -- optimizer ---------------------------------------------------------------

def optimizer_rows(database: Any, transaction: Any) -> List[Row]:
    """Decisions the optimizer took for the most recent statement.

    Statements that themselves read ``repro_optimizer()`` do not overwrite
    the log, so the report always describes the last *other* statement.
    """
    rows: List[Row] = []
    for decision in database.optimizer_log.snapshot():
        rows.append((decision.statement_id, decision.seq, decision.phase,
                     decision.decision, decision.detail,
                     decision.estimated_rows))
    return rows


def plan_checks_rows(database: Any, transaction: Any) -> List[Row]:
    """quackplan results for the most recently verified statement.

    Empty unless the database runs with ``verify_plans``.  Statements that
    themselves read ``repro_plan_checks()`` are verified but do not reset
    the log, so the report always describes the last *other* statement.
    """
    rows: List[Row] = []
    for record in database.plan_check_log.snapshot():
        rows.append((record.statement_id, record.seq, record.stage,
                     record.invariant, record.status, record.operator,
                     record.detail))
    return rows


def column_stats_rows(database: Any, transaction: Any) -> List[Row]:
    """Per-column statistics backing the cost model (min/max/NDV/nulls)."""
    rows: List[Row] = []
    for table in database.catalog.tables(transaction):
        for index, column in enumerate(table.columns):
            stats = table.data.columns[index].stats
            rows.append((table.name, column.name, int(stats.row_count),
                         int(stats.null_count), float(stats.ndv),
                         repr(stats.min_value) if stats.min_value is not None
                         else None,
                         repr(stats.max_value) if stats.max_value is not None
                         else None,
                         bool(stats.stale)))
    return rows


# -- kernels -----------------------------------------------------------------

def kernels_rows(database: Any, transaction: Any) -> List[Row]:
    """Kernel capability manifest rows (quackkernel static analysis).

    Backed by the committed ``kernel_manifest.json`` -- the same facts the
    ``--check-manifest`` drift gate verifies -- so the table reflects what
    was analyzed and reviewed, not a live re-analysis on every query.
    """
    from ..analysis.kernelcheck import manifest_entries
    rows: List[Row] = []
    for fact in manifest_entries():
        rows.append((fact.name, fact.kind, fact.arity, fact.signature,
                     fact.declared_type, fact.inferred_dtype,
                     fact.null_contract, fact.copy_behaviour,
                     bool(fact.vectorized), bool(fact.pure),
                     bool(fact.thread_safe), bool(fact.fusable),
                     fact.source))
    return rows


# -- storage -----------------------------------------------------------------

def storage_rows(database: Any, transaction: Any) -> List[Row]:
    storage = database.storage
    buffers = database.buffer_manager
    block_file_bytes = 0
    if storage.block_file is not None and os.path.exists(storage.block_file.path):
        block_file_bytes = os.path.getsize(storage.block_file.path)
    checkpoint_stats = dict(storage.last_checkpoint_stats)
    pairs: List[Tuple[str, int]] = [
        ("in_memory", int(storage.in_memory)),
        ("wal_enabled", int(storage.wal.enabled)),
        ("wal_bytes", int(storage.wal.size())),
        ("block_file_bytes", int(block_file_bytes)),
        ("checkpoints_written", int(storage.checkpoints_written)),
        ("last_checkpoint_bytes", int(checkpoint_stats.get("bytes_written", 0))),
        ("buffer_used_bytes", int(buffers.used_bytes)),
        ("buffer_peak_bytes", int(buffers.peak_bytes)),
        ("buffer_memory_limit", int(buffers.memory_limit)),
        ("block_cache_hits", int(buffers.cache_hits)),
        ("block_cache_misses", int(buffers.cache_misses)),
        ("block_cache_evictions", int(buffers.cache_evictions)),
    ]
    return [(name, value) for name, value in pairs]


# -- serving front end -------------------------------------------------------

def sessions_rows(database: Any, transaction: Any) -> List[Row]:
    """Live serving sessions with their per-session statistics.

    Copy-then-release: the registry snapshots every session's stats inside
    one ``server.sessions`` critical section (sessions alias that lock for
    their stat writes), then the rows are built lock-free.
    """
    rows: List[Row] = []
    for info in database.session_registry.snapshot():
        rows.append((info["session_id"], info["name"], info["state"],
                     info["statements"], info["rows_returned"],
                     info["errors"], info["last_sql"], info["created_at"],
                     info["wall_ms"], info["cpu_ms"], info["rows_scanned"],
                     info["buffer_hits"], info["buffer_misses"],
                     info["peak_memory"]))
    return rows


def serving_rows(database: Any, transaction: Any) -> List[Row]:
    """Serving-layer counters: sessions, plan/result caches, admission."""
    pairs: List[Tuple[str, int]] = []
    for prefix, stats in (
        ("sessions", database.session_registry.stats()),
        ("plan_cache", database.plan_cache.stats()),
        ("result_cache", database.result_cache.stats()),
        ("admission", database.admission.stats()),
    ):
        for name, value in stats.items():
            pairs.append((f"{prefix}.{name}", int(value)))
    return pairs


# -- registration ------------------------------------------------------------

def register_builtin_functions() -> None:
    """Register the built-in system table functions (idempotent; called at
    package import)."""
    register(SystemTableFunction(
        "repro_metrics", "process-wide engine metrics (quacktrace registry)",
        [("name", VARCHAR), ("kind", VARCHAR), ("value", DOUBLE)],
        metrics_rows))
    register(SystemTableFunction(
        "repro_traces", "completed quacktrace spans, oldest first",
        [("span_id", BIGINT), ("parent_id", BIGINT), ("trace_id", BIGINT),
         ("name", VARCHAR), ("kind", VARCHAR), ("thread", BIGINT),
         ("wall_ms", DOUBLE), ("cpu_ms", DOUBLE), ("rows", BIGINT),
         ("chunks", BIGINT), ("bytes", BIGINT)],
        traces_rows))
    register(SystemTableFunction(
        "repro_slow_queries", "slow-query log records, oldest first",
        [("sql", VARCHAR), ("duration_ms", DOUBLE), ("threshold_ms", DOUBLE),
         ("timestamp", DOUBLE), ("span_count", BIGINT),
         ("session_id", BIGINT), ("statement_seq", BIGINT)],
        slow_queries_rows))
    register(SystemTableFunction(
        "repro_metrics_history",
        "time-series metrics samples across retention tiers",
        [("tier", VARCHAR), ("sample", BIGINT), ("timestamp", DOUBLE),
         ("name", VARCHAR), ("kind", VARCHAR), ("value", DOUBLE),
         ("delta", DOUBLE)],
        metrics_history_rows))
    register(SystemTableFunction(
        "repro_statement_log",
        "per-statement resource accounting, oldest first",
        [("session_id", BIGINT), ("statement_seq", BIGINT), ("sql", VARCHAR),
         ("timestamp", DOUBLE), ("wall_ms", DOUBLE), ("cpu_ms", DOUBLE),
         ("rows_out", BIGINT), ("rows_scanned", BIGINT),
         ("vectors", BIGINT), ("buffer_hits", BIGINT),
         ("buffer_misses", BIGINT), ("memory_bytes", BIGINT),
         ("error", VARCHAR)],
        statement_log_rows))
    register(SystemTableFunction(
        "repro_activity",
        "live per-session activity: the statements in flight right now",
        [("session_id", BIGINT), ("name", VARCHAR),
         ("statement_seq", BIGINT), ("sql", VARCHAR), ("phase", VARCHAR),
         ("started_at", DOUBLE), ("elapsed_ms", DOUBLE),
         ("rows_so_far", BIGINT)],
        activity_rows))
    register(SystemTableFunction(
        "repro_settings", "current database configuration options",
        [("name", VARCHAR), ("value", VARCHAR)],
        settings_rows))
    register(SystemTableFunction(
        "repro_tables", "catalog tables and views visible to this transaction",
        [("name", VARCHAR), ("type", VARCHAR), ("column_count", BIGINT),
         ("row_count", BIGINT), ("created_by", BIGINT)],
        tables_rows))
    register(SystemTableFunction(
        "repro_columns", "columns of every visible table",
        [("table_name", VARCHAR), ("column_name", VARCHAR),
         ("column_index", BIGINT), ("dtype", VARCHAR),
         ("nullable", BOOLEAN)],
        columns_rows))
    register(SystemTableFunction(
        "repro_transactions", "active transactions in this database",
        [("transaction_id", BIGINT), ("start_time", BIGINT),
         ("state", VARCHAR), ("has_writes", BOOLEAN),
         ("wal_records", BIGINT), ("modified_tables", BIGINT)],
        transactions_rows))
    register(SystemTableFunction(
        "repro_locks", "quacksan per-lock statistics (needs REPRO_SANITIZE)",
        [("lock", VARCHAR), ("acquisitions", BIGINT),
         ("contentions", BIGINT), ("wait_seconds", DOUBLE),
         ("hold_seconds", DOUBLE), ("max_hold_seconds", DOUBLE),
         ("same_name_nestings", BIGINT)],
        locks_rows))
    register(SystemTableFunction(
        "repro_storage", "block file, WAL, and buffer-manager statistics",
        [("name", VARCHAR), ("value", BIGINT)],
        storage_rows))
    register(SystemTableFunction(
        "repro_profile", "sampling-profiler self time per operator and phase",
        [("operator", VARCHAR), ("phase", VARCHAR), ("samples", BIGINT),
         ("self_seconds", DOUBLE)],
        profile_rows))
    register(SystemTableFunction(
        "repro_optimizer", "optimizer decisions for the last statement",
        [("statement", BIGINT), ("seq", BIGINT), ("phase", VARCHAR),
         ("decision", VARCHAR), ("detail", VARCHAR),
         ("estimated_rows", DOUBLE)],
        optimizer_rows))
    register(SystemTableFunction(
        "repro_plan_checks",
        "quackplan verification results for the last statement",
        [("statement", BIGINT), ("seq", BIGINT), ("stage", VARCHAR),
         ("invariant", VARCHAR), ("status", VARCHAR),
         ("operator", VARCHAR), ("detail", VARCHAR)],
        plan_checks_rows))
    register(SystemTableFunction(
        "repro_kernels",
        "kernel capability manifest: dtype, NULL, copy, and purity contracts",
        [("name", VARCHAR), ("kind", VARCHAR), ("arity", VARCHAR),
         ("signature", VARCHAR), ("declared_type", VARCHAR),
         ("inferred_dtype", VARCHAR), ("null_contract", VARCHAR),
         ("copy_behaviour", VARCHAR), ("vectorized", BOOLEAN),
         ("pure", BOOLEAN), ("thread_safe", BOOLEAN), ("fusable", BOOLEAN),
         ("source", VARCHAR)],
        kernels_rows))
    register(SystemTableFunction(
        "repro_sessions",
        "live serving sessions and their per-session statistics",
        [("session_id", BIGINT), ("name", VARCHAR), ("state", VARCHAR),
         ("statements", BIGINT), ("rows_returned", BIGINT),
         ("errors", BIGINT), ("last_sql", VARCHAR),
         ("created_at", DOUBLE), ("wall_ms", DOUBLE), ("cpu_ms", DOUBLE),
         ("rows_scanned", BIGINT), ("buffer_hits", BIGINT),
         ("buffer_misses", BIGINT), ("peak_memory", BIGINT)],
        sessions_rows))
    register(SystemTableFunction(
        "repro_serving",
        "serving-layer counters: caches, admission, session registry",
        [("name", VARCHAR), ("value", BIGINT)],
        serving_rows))
    register(SystemTableFunction(
        "repro_column_stats", "per-column statistics behind the cost model",
        [("table_name", VARCHAR), ("column_name", VARCHAR),
         ("row_count", BIGINT), ("null_count", BIGINT), ("ndv", DOUBLE),
         ("min_value", VARCHAR), ("max_value", VARCHAR),
         ("stale", BOOLEAN)],
        column_stats_rows))
