"""Sampling wall-clock profiler: always-on-able, in-band, low overhead.

``EXPLAIN ANALYZE`` profiles one statement by instrumenting every operator
pull; that is exact but costs a tracer on the hot path.  This profiler is
the complementary tool for *production*: a background thread wakes
``profile_hz`` times per second, walks every other thread's Python stack
(:func:`sys._current_frames`), and attributes the sample to the innermost
engine frame -- the physical operator whose method is on CPU (morsel
workers included; they are ordinary threads) and a coarse engine phase
derived from the module path.  The engine itself runs unmodified: zero
instrumentation, zero per-operator cost, overhead bounded by the sampling
rate (gated < 3% by ``benchmarks/test_profile_overhead.py``).

Sample buckets are queryable from SQL via ``repro_profile()`` and
accumulate until :meth:`SamplingProfiler.reset`.  Enablement:
``PRAGMA enable_profiling``, ``config.profile_enabled``, or
``REPRO_PROFILE=1``.
"""

from __future__ import annotations

import os
import sys
import threading
from types import FrameType
from typing import Dict, List, Optional, Tuple

__all__ = ["SamplingProfiler", "DEFAULT_HZ"]

#: Default sampling rate; deliberately off the 100 Hz timer-tick beat.
DEFAULT_HZ = 97.0

#: Innermost-match module-path prefixes -> engine phase label.
_PHASES: Tuple[Tuple[str, str], ...] = (
    ("repro/execution/parallel", "parallel"),
    ("repro/execution/", "execute"),
    ("repro/functions/", "execute"),
    ("repro/types/", "execute"),
    ("repro/storage/wal", "wal"),
    ("repro/storage/", "storage"),
    ("repro/sql/", "parse"),
    ("repro/planner/", "plan"),
    ("repro/optimizer/", "plan"),
    ("repro/transaction/", "transaction"),
    ("repro/catalog/", "catalog"),
    ("repro/etl/", "etl"),
    ("repro/client/", "client"),
)

#: Placeholder operator label for engine samples outside any operator.
_NO_OPERATOR = "(engine)"


def _engine_path(filename: str) -> Optional[str]:
    """``repro/...`` package path of a frame's file, or None if foreign."""
    normalized = filename.replace(os.sep, "/")
    index = normalized.rfind("/repro/")
    if index < 0:
        return None
    return normalized[index + 1:]


def _phase_of(pkg_path: str) -> str:
    for prefix, phase in _PHASES:
        if pkg_path.startswith(prefix):
            return phase
    return "other"


class SamplingProfiler:
    """Walks thread stacks on a timer into per-operator/per-phase buckets.

    Thread-safe: the sampler thread writes buckets under ``_lock`` while
    introspection queries snapshot them.  Start/stop are idempotent; the
    sampler is a daemon thread so it never blocks interpreter exit.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._buckets: Dict[Tuple[str, str], int] = {}
        self._interval = 1.0 / DEFAULT_HZ
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._total_samples = 0

    # -- lifecycle ---------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None

    @property
    def total_samples(self) -> int:
        return self._total_samples

    def start(self, hz: float = DEFAULT_HZ) -> None:
        """Start (or retune) the sampler; idempotent."""
        with self._lock:
            self._interval = 1.0 / min(max(float(hz), 1.0), 1000.0)
            if self._thread is not None:
                return
            self._stop = threading.Event()
            self._thread = threading.Thread(
                target=self._run, name="repro-profiler", daemon=True)
            self._thread.start()

    def stop(self) -> None:
        """Stop sampling; collected buckets remain queryable."""
        with self._lock:
            thread = self._thread
            self._thread = None
            if thread is None:
                return
            self._stop.set()
        thread.join(timeout=2.0)

    def reset(self) -> None:
        with self._lock:
            self._buckets.clear()
            self._total_samples = 0

    # -- sampling ----------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self.sample_once()

    def sample_once(self) -> int:
        """Take one sample of every foreign thread; returns engine hits."""
        own = threading.get_ident()
        hits: List[Tuple[str, str]] = []
        for ident, frame in sys._current_frames().items():
            if ident == own:
                continue
            attribution = self._attribute(frame)
            if attribution is not None:
                hits.append(attribution)
        with self._lock:
            self._total_samples += 1
            for key in hits:
                self._buckets[key] = self._buckets.get(key, 0) + 1
        return len(hits)

    def _attribute(self, frame: Optional[FrameType]
                   ) -> Optional[Tuple[str, str]]:
        """(operator, phase) of the innermost engine frame, else None.

        The phase comes from the innermost frame inside the ``repro``
        package; the operator label from the innermost frame executing a
        method of a physical operator (``self`` is a PhysicalOperator).
        Foreign stacks -- application threads not currently inside the
        engine -- produce no attribution at all, so an embedded profiler
        never charges host-application work to the database.
        """
        from ..execution.physical import PhysicalOperator

        phase: Optional[str] = None
        operator: Optional[str] = None
        node = frame
        while node is not None:
            pkg_path = _engine_path(node.f_code.co_filename)
            if pkg_path is not None and not pkg_path.startswith(
                    "repro/introspection/"):
                if phase is None:
                    phase = _phase_of(pkg_path)
                if operator is None:
                    self_obj = node.f_locals.get("self")
                    if isinstance(self_obj, PhysicalOperator):
                        operator = type(self_obj).__name__
            if phase is not None and operator is not None:
                break
            node = node.f_back
        if phase is None:
            return None
        return (operator or _NO_OPERATOR, phase)

    # -- export ------------------------------------------------------------
    def snapshot(self) -> List[Tuple[str, str, int, float]]:
        """``(operator, phase, samples, self_seconds)`` rows, copy-then-
        release: buckets are copied under the lock, rows built outside it."""
        with self._lock:
            interval = self._interval
            buckets = dict(self._buckets)
        return [(operator, phase, count, count * interval)
                for (operator, phase), count in sorted(buckets.items())]
