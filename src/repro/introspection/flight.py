"""Crash flight recorder: the last moments of the engine, preserved as JSON.

The resilience pillar (paper §6) assumes consumer hardware and unattended
deployments: when an embedded engine fails there is no server log to pull,
only whatever the process left behind.  This module keeps a bounded ring of
recent statements (SQL, duration, rows, outcome) at near-zero cost, and on
demand -- ``PRAGMA flight_dump``, or automatically when an *engine fault*
escapes execution -- writes a single self-contained JSON file
(``repro_flight_<pid>.json``) holding the statement ring, metric deltas
since the recorder started, recent trace spans (when tracing is on), and
the active configuration.

An engine fault is an error that indicts the engine rather than the query:
internal errors, detected corruption, memory faults, hardware faults -- or
any exception that is not part of the :mod:`repro.errors` hierarchy at all
(an escaping ``KeyError`` is by definition an engine bug).  User errors
(parser, binder, constraint, ...) are recorded in the ring but never
trigger a dump.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence

from .. import observability
from ..errors import (
    CorruptionError,
    Error,
    HardwareError,
    InternalError,
    MemoryFaultError,
)

__all__ = ["FlightRecorder", "is_engine_fault", "DEFAULT_CAPACITY",
           "MAX_SQL_CHARS", "MAX_DUMPED_SPANS"]

logger = logging.getLogger("repro.flight")

#: Statements retained in the ring before the oldest fall out.
DEFAULT_CAPACITY = 128
#: SQL text is truncated in the ring: the recorder must stay cheap even
#: when the application sends megabyte statements.
MAX_SQL_CHARS = 500
#: Most-recent trace spans included in a dump.
MAX_DUMPED_SPANS = 200

#: Exception types that indict the engine itself.
_FAULT_TYPES = (InternalError, CorruptionError, MemoryFaultError,
                HardwareError)


def is_engine_fault(error: BaseException) -> bool:
    """Does this exception warrant an automatic flight dump?"""
    if isinstance(error, _FAULT_TYPES):
        return True
    # Anything escaping the engine that is not a repro error (and not an
    # interpreter-control exception) is an unclassified engine bug.
    if isinstance(error, Error):
        return False
    return isinstance(error, Exception)


class FlightRecorder:
    """Bounded, thread-safe ring of recent statements plus JSON dumping."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._lock = threading.Lock()
        self._statements: Deque[Dict[str, Any]] = deque(
            maxlen=max(1, capacity))
        self._baseline: Dict[str, float] = self._scalar_metrics()
        self._dumps_written = 0

    # -- recording ---------------------------------------------------------
    def record_statement(self, sql: str, duration_ms: float, rows: int,
                         error: Optional[BaseException] = None) -> None:
        entry: Dict[str, Any] = {
            "sql": sql[:MAX_SQL_CHARS],
            "timestamp": time.time(),
            "duration_ms": round(duration_ms, 3),
            "rows": rows,
            "status": "ok" if error is None else "error",
        }
        if error is not None:
            entry["error"] = f"{type(error).__name__}: {error}"
        with self._lock:
            self._statements.append(entry)

    def statements(self) -> List[Dict[str, Any]]:
        """Snapshot of the ring, oldest first."""
        with self._lock:
            return [dict(entry) for entry in self._statements]

    @property
    def dumps_written(self) -> int:
        return self._dumps_written

    # -- metric deltas -----------------------------------------------------
    @staticmethod
    def _scalar_metrics() -> Dict[str, float]:
        """Scalar counter/gauge values from the process registry."""
        out: Dict[str, float] = {}
        for name, value in observability.registry().snapshot().items():
            if isinstance(value, (int, float)):
                out[name] = float(value)
        return out

    def metric_deltas(self) -> Dict[str, float]:
        """Change of every scalar metric since the recorder was created."""
        current = self._scalar_metrics()
        deltas: Dict[str, float] = {}
        for name, value in current.items():
            delta = value - self._baseline.get(name, 0.0)
            if delta:
                deltas[name] = delta
        return deltas

    # -- dumping -----------------------------------------------------------
    def dump(self, directory: Optional[str] = None, reason: str = "",
             error: Optional[BaseException] = None,
             spans: Optional[Sequence[Any]] = None,
             config: Optional[Dict[str, Any]] = None) -> str:
        """Write ``repro_flight_<pid>.json``; returns the file path."""
        payload: Dict[str, Any] = {
            "format": "repro-flight-recorder-v1",
            "pid": os.getpid(),
            "created_at": time.time(),
            "reason": reason,
            "statements": self.statements(),
            "metric_deltas": self.metric_deltas(),
        }
        if error is not None:
            payload["error"] = {"type": type(error).__name__,
                                "message": str(error)}
        if config is not None:
            payload["config"] = config
        payload["spans"] = [
            {"span_id": span.span_id, "parent_id": span.parent_id,
             "trace_id": span.trace_id, "name": span.name, "kind": span.kind,
             "wall_ms": span.wall_ms, "cpu_ms": span.cpu_ms,
             "rows": span.rows, "chunks": span.chunks}
            for span in (spans or [])[-MAX_DUMPED_SPANS:]
        ]
        path = os.path.join(directory or os.getcwd(),
                            f"repro_flight_{os.getpid()}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, default=str)
        with self._lock:
            self._dumps_written += 1
        return path

    def try_dump(self, directory: Optional[str] = None, reason: str = "",
                 error: Optional[BaseException] = None,
                 spans: Optional[Sequence[Any]] = None,
                 config: Optional[Dict[str, Any]] = None) -> Optional[str]:
        """Best-effort :meth:`dump` for failure paths: a recorder that
        cannot write (read-only filesystem, disk full) must never mask the
        original engine error it is documenting."""
        try:
            return self.dump(directory, reason, error, spans, config)
        except OSError as dump_error:
            logger.warning("flight-recorder dump failed: %s", dump_error)
            return None
