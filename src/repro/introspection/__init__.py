"""In-band introspection: the engine's state, queryable from the engine.

The cooperation pillar (paper §4/§5) puts the database *inside* the host
process; there is no server console, so the inspection interface must be
the same one the application already speaks -- SQL.  This package surfaces
engine internals three ways:

* **system table functions** (:mod:`.registry`, :mod:`.providers`) --
  zero-argument table functions usable in any FROM clause::

      SELECT name, value FROM repro_metrics() WHERE name LIKE 'repro_wal%'
      SELECT t.name, count(*) FROM repro_tables() t
      JOIN repro_columns() c ON t.name = c.table_name GROUP BY t.name

  They bind like ``read_csv`` does, lower to a generator-backed
  introspection scan yielding standard 2048-value vectors, and therefore
  compose with WHERE/JOIN/ORDER BY/aggregates like any other relation.
  Providers snapshot engine state copy-then-release under the declared
  lock hierarchy (quacklint QLO003 enforces the discipline).

* a **sampling profiler** (:mod:`.profiler`) -- a background thread walking
  worker stacks at ``profile_hz`` into per-operator/per-phase self time,
  queryable via ``repro_profile()``; enabled by ``PRAGMA enable_profiling``
  or ``REPRO_PROFILE=1``.

* a **flight recorder** (:mod:`.flight`) -- a bounded ring of recent
  statements plus metric deltas, dumped as ``repro_flight_<pid>.json`` on
  unhandled engine faults and on ``PRAGMA flight_dump``.
"""

from __future__ import annotations

from .flight import FlightRecorder, is_engine_fault
from .profiler import SamplingProfiler
from .providers import register_builtin_functions
from .registry import (
    SystemTableFunction,
    function_names,
    functions,
    lookup,
    register,
    unregister,
)

__all__ = [
    "SystemTableFunction",
    "register",
    "unregister",
    "lookup",
    "function_names",
    "functions",
    "register_builtin_functions",
    "SamplingProfiler",
    "FlightRecorder",
    "is_engine_fault",
]

register_builtin_functions()
