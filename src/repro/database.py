"""The Database: one embedded database instance.

Owns the catalog, the transaction manager, the storage manager (single file
+ WAL), the buffer manager, and the cooperation controller.  Multiple
:class:`~repro.client.connection.Connection` objects -- potentially on
different threads, e.g. an ETL writer and a dashboard reader (paper §2) --
can share one Database; MVCC keeps them consistent.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .catalog.catalog import Catalog
from .config import DatabaseConfig
from .cooperation.controller import ReactiveController, StaticController
from .cooperation.monitor import ResourceMonitor, SimulatedApplication
from .errors import ConnectionError as DatabaseConnectionError
from .sanitizer import SanLock
from .storage.buffer_manager import BufferManager
from .storage.storage_manager import StorageManager
from .transaction.manager import TransactionManager

__all__ = ["Database"]


class Database:
    """An embedded analytical database instance (in-memory or single-file)."""

    def __init__(self, path: str = ":memory:",
                 config: Optional[DatabaseConfig] = None) -> None:
        self.path = path
        self.config = config or DatabaseConfig()
        self.buffer_manager = BufferManager(self.config)
        self.catalog = Catalog()
        self.transaction_manager = TransactionManager()
        self.storage = StorageManager(path, self.config, self.buffer_manager)
        self.transaction_manager.pre_commit_hooks.append(self.storage.commit_hook)
        #: Cooperation controller; swapped for a ReactiveController when
        #: reactive resources are enabled (see :meth:`enable_reactive_resources`).
        self.resource_controller = StaticController()
        #: Serializes checkpoints (explicit, auto, and on-close).  Lock
        #: order: a connection's ``_lock`` may be held when this is taken
        #: (``connection`` -> ``database.checkpoint`` in the declared
        #: hierarchy, see :mod:`repro.sanitizer.hierarchy`); the reverse
        #: order is forbidden everywhere.
        self._checkpoint_lock = SanLock("database.checkpoint")
        self._closed = False
        self.storage.load(self.catalog, self.transaction_manager)

    # -- lifecycle ----------------------------------------------------------
    def connect(self):
        """Open a new connection (its own transaction context)."""
        self.check_open()
        from .client.connection import Connection

        return Connection(self)

    def check_open(self) -> None:
        if self._closed:
            raise DatabaseConnectionError("The database has been closed")

    def close(self) -> None:
        # Checkpoint-on-close runs under the same ``_checkpoint_lock`` as
        # explicit/auto checkpoints (and in the same position in the lock
        # hierarchy: the closing connection already holds its ``_lock``),
        # so a concurrent CHECKPOINT or auto-checkpoint can never interleave
        # with shutdown.
        with self._checkpoint_lock:
            if self._closed:
                return
            self._closed = True
            self.storage.close(self.catalog, self.transaction_manager)

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- checkpointing --------------------------------------------------------
    def checkpoint(self, force: bool = False) -> bool:
        """Fold the WAL into the data file (no-op for in-memory databases)."""
        self.check_open()
        with self._checkpoint_lock:
            return self.storage.checkpoint(self.catalog, self.transaction_manager,
                                           force=force)

    def maybe_auto_checkpoint(self) -> None:
        """Checkpoint when the WAL grew past the configured threshold."""
        if self._closed:
            return
        if self.storage.should_auto_checkpoint():
            with self._checkpoint_lock:
                if self.storage.should_auto_checkpoint():
                    self.storage.checkpoint(self.catalog,
                                            self.transaction_manager)

    # -- cooperation ------------------------------------------------------------
    def memory_usage(self) -> int:
        """Approximate resident bytes: buffers + undo + table data."""
        total = self.buffer_manager.used_bytes
        total += self.transaction_manager.retired_undo_memory()
        bootstrap = self.transaction_manager.begin()
        try:
            for table in self.catalog.tables(bootstrap):
                total += table.data.memory_usage()
        finally:
            self.transaction_manager.rollback(bootstrap)
        return total

    def enable_reactive_resources(self, total_ram: int,
                                  application: Optional[SimulatedApplication] = None,
                                  clock=None) -> ReactiveController:
        """Turn on the Figure 1 reactive controller against a RAM budget."""
        monitor = ResourceMonitor(total_ram, lambda: self.buffer_manager.used_bytes,
                                  application, clock=clock)
        controller = ReactiveController(monitor)
        self.resource_controller = controller
        self.config.reactive_resources = True
        return controller

    def disable_reactive_resources(self) -> None:
        self.resource_controller = StaticController()
        self.config.reactive_resources = False

    def __repr__(self) -> str:
        kind = "in-memory" if self.storage.in_memory else self.path
        return f"Database({kind})"
