"""The Database: one embedded database instance.

Owns the catalog, the transaction manager, the storage manager (single file
+ WAL), the buffer manager, and the cooperation controller.  Multiple
:class:`~repro.client.connection.Connection` objects -- potentially on
different threads, e.g. an ETL writer and a dashboard reader (paper §2) --
can share one Database; MVCC keeps them consistent.
"""

from __future__ import annotations

import dataclasses
import os
from typing import TYPE_CHECKING, Any, Dict, Optional

from . import observability
from .catalog.catalog import Catalog
from .config import DatabaseConfig
from .cooperation.controller import ReactiveController, StaticController
from .cooperation.monitor import ResourceMonitor, SimulatedApplication
from .errors import ConnectionError as DatabaseConnectionError
from .errors import InvalidInputError
from .introspection.flight import FlightRecorder
from .introspection.profiler import SamplingProfiler
from .observability.accounting import StatementLog
from .observability.export import JsonlTelemetrySink
from .observability.history import DEFAULT_INTERVAL_MS, TelemetrySampler
from .observability.slowlog import SlowQueryLog
from .observability.trace import Tracer
from .optimizer.cost import OptimizerLog
from .sanitizer import SanLock
from .server.admission import AdmissionController
from .server.cache import PlanCache, ResultCache
from .server.session import SessionRegistry
from .storage.buffer_manager import BufferManager
from .storage.storage_manager import StorageManager
from .transaction.manager import TransactionManager
from .verifier import PlanCheckLog, PlanVerifier

if TYPE_CHECKING:
    from .server.capture import WorkloadCapture

__all__ = ["Database"]


class Database:
    """An embedded analytical database instance (in-memory or single-file)."""

    def __init__(self, path: str = ":memory:",
                 config: Optional[DatabaseConfig] = None) -> None:
        self.path = path
        self.config = config or DatabaseConfig()
        self.buffer_manager = BufferManager(self.config)
        self.catalog = Catalog()
        self.transaction_manager = TransactionManager()
        self.storage = StorageManager(path, self.config, self.buffer_manager)
        self.transaction_manager.pre_commit_hooks.append(self.storage.commit_hook)
        #: Cooperation controller; swapped for a ReactiveController when
        #: reactive resources are enabled (see :meth:`enable_reactive_resources`).
        self.resource_controller = StaticController()
        #: Serializes checkpoints (explicit, auto, and on-close).  Lock
        #: order: a connection's ``_lock`` may be held when this is taken
        #: (``connection`` -> ``database.checkpoint`` in the declared
        #: hierarchy, see :mod:`repro.sanitizer.hierarchy`); the reverse
        #: order is forbidden everywhere.
        self._checkpoint_lock = SanLock("database.checkpoint")
        self._closed = False
        #: In-process slow-query log (see config.slow_query_ms).
        self.slow_log = SlowQueryLog()
        #: Crash flight recorder: bounded ring of recent statements plus
        #: metric baselines, dumped as JSON on engine faults and on
        #: ``PRAGMA flight_dump`` (see :meth:`dump_flight`).
        self.flight_recorder = FlightRecorder()
        #: Sampling wall-clock profiler; idle until ``profile_enabled``.
        self.profiler = SamplingProfiler()
        #: Decisions taken while optimizing the most recent statement,
        #: served by the ``repro_optimizer()`` system table.
        self.optimizer_log = OptimizerLog()
        #: quackplan results for the most recently verified statement,
        #: served by the ``repro_plan_checks()`` system table.
        self.plan_check_log = PlanCheckLog()
        #: Static plan verifier; consulted by the optimizer and the
        #: physical planner only while ``config.verify_plans`` is on.
        self.plan_verifier = PlanVerifier(self.plan_check_log)
        #: Shared plan cache: bound+optimized SELECT plans keyed on
        #: (SQL, parameter-type fingerprint), invalidated by DDL commits.
        self.plan_cache = PlanCache(self.config)
        #: Shared read-only result cache, keyed on (SQL, parameter values,
        #: data version) -- any committed write supersedes its entries.
        self.result_cache = ResultCache(self.config)
        #: Live serving sessions (see :mod:`repro.server.session`), the
        #: source of the ``repro_sessions()`` system table.
        self.session_registry = SessionRegistry()
        #: Admission controller shared by every serving session.
        self.admission = AdmissionController(self)
        #: Last buffer-manager counter values folded into the metrics
        #: registry (see :meth:`fold_metrics`).
        self._metrics_baseline: Dict[str, int] = {}
        #: Per-statement resource-accounting ring, served by the
        #: ``repro_statement_log()`` system table.
        self.statement_log = StatementLog(self.config.statement_log_entries)
        #: Continuous-telemetry sampler + ring-buffer metrics history,
        #: served by ``repro_metrics_history()`` (see :meth:`sync_telemetry`).
        self.telemetry = TelemetrySampler(self)
        #: Workload capture (JSONL statement recorder) when
        #: ``config.capture_enabled`` (see :meth:`sync_capture`).
        self.workload_capture: Optional["WorkloadCapture"] = None
        if self.config.trace_enabled:
            observability.enable_tracing()
        if self.config.profile_enabled:
            self.profiler.start(self.config.profile_hz)
        self.sync_telemetry()
        self.sync_capture()
        self.storage.load(self.catalog, self.transaction_manager)

    # -- observability --------------------------------------------------------
    @property
    def tracer(self) -> Optional[Tracer]:
        """The active quacktrace tracer, or ``None`` while tracing is off.

        ``PRAGMA trace_enabled = 1`` takes effect on the next statement:
        the property installs the process-wide tracer on demand.
        """
        if self.config.trace_enabled:
            return observability.enable_tracing()
        return observability.get_tracer()

    def sync_profiler(self) -> None:
        """Bring the sampling profiler in line with the current config.

        Called after ``PRAGMA enable_profiling`` / ``profile_enabled`` /
        ``profile_hz`` changes: starts (or retunes) the sampler when
        profiling is on, stops it otherwise.  Accumulated buckets survive a
        stop so ``repro_profile()`` stays queryable after disabling.
        """
        if self.config.profile_enabled and not self._closed:
            self.profiler.start(self.config.profile_hz)
        else:
            self.profiler.stop()

    def sync_telemetry(self) -> None:
        """Bring the telemetry sampler in line with the current config.

        Called at open and after ``PRAGMA telemetry_interval_ms`` /
        ``telemetry_path`` changes.  An interval > 0 starts (or retunes)
        the background sampler; a configured path additionally attaches a
        JSONL export sink (and implies the default cadence when no
        interval was set).  Interval 0 with no path stops the sampler --
        collected history stays queryable.
        """
        if self._closed:
            return
        path = self.config.telemetry_path
        sink = self.telemetry.sink
        if path:
            if sink is None or getattr(sink, "path", None) != path:
                self.telemetry.set_sink(JsonlTelemetrySink(path))
        elif sink is not None:
            self.telemetry.set_sink(None)
        interval = self.config.telemetry_interval_ms
        if interval > 0:
            self.telemetry.start(interval)
        elif path:
            self.telemetry.start(DEFAULT_INTERVAL_MS)
        else:
            self.telemetry.stop()

    def sync_capture(self) -> None:
        """Bring the workload capture in line with the current config.

        Instance-wide by design: PRAGMA plumbing routes capture option
        changes here against the *database* config even when issued from a
        serving session with a private config copy -- a capture records
        the whole instance's workload or none of it.
        """
        from .server.capture import WorkloadCapture

        if self.config.capture_enabled and not self._closed:
            path = self.config.capture_path
            if not path:
                self.config.capture_enabled = False
                raise InvalidInputError(
                    "capture_enabled requires capture_path to be set")
            if (self.workload_capture is None
                    or self.workload_capture.path != path):
                previous = self.workload_capture
                self.workload_capture = WorkloadCapture(path)
                if previous is not None:
                    previous.close()
        elif self.workload_capture is not None:
            capture, self.workload_capture = self.workload_capture, None
            capture.close()

    def telemetry_sample(self):
        """Force one synchronous telemetry sample (tests, PRAGMA).

        Returns the recorded
        :class:`~repro.observability.history.MetricsSample` (or ``None``
        once the database is closed) so callers can assert against exactly
        the state they sampled instead of racing the background thread.
        """
        return self.telemetry.sample_once()

    def dump_flight(self, reason: str, error: Optional[BaseException] = None,
                    best_effort: bool = False) -> Optional[str]:
        """Write the flight-recorder ring to ``repro_flight_<pid>.json``.

        Persistent databases dump next to their data file; in-memory ones
        dump into the current directory.  With ``best_effort`` the dump
        swallows I/O failures (the crash path must never mask the original
        engine error) and returns ``None`` on failure.
        """
        self.fold_metrics()
        spans = None
        tracer = self.tracer
        if tracer is not None:
            spans = tracer.sink.spans()
        directory = None
        if not self.storage.in_memory:
            directory = os.path.dirname(os.path.abspath(self.path)) or None
        config = dataclasses.asdict(self.config)
        if best_effort:
            return self.flight_recorder.try_dump(
                directory=directory, reason=reason, error=error, spans=spans,
                config=config)
        return self.flight_recorder.dump(
            directory=directory, reason=reason, error=error, spans=spans,
            config=config)

    def fold_metrics(self) -> None:
        """Fold this instance's cheap counters into the process registry.

        The buffer manager counts block-cache traffic with plain ints (no
        registry lock on the I/O path); this folds the deltas into the
        shared counters.  Called at statement boundaries and on metric
        export -- both low-frequency points.
        """
        registry = observability.registry()
        baseline = self._metrics_baseline
        for attr, name, help_text in (
            ("cache_hits", "repro_block_cache_hits_total",
             "Block-cache lookups served from memory"),
            ("cache_misses", "repro_block_cache_misses_total",
             "Block-cache lookups that went to disk"),
            ("cache_evictions", "repro_block_cache_evictions_total",
             "Blocks evicted from the block cache"),
        ):
            current = getattr(self.buffer_manager, attr)
            delta = current - baseline.get(attr, 0)
            if delta > 0:
                registry.counter(name, help_text).inc(delta)
                baseline[attr] = current
        for source, prefix, attrs in (
            (self.plan_cache, "repro_plan_cache", ("hits", "misses",
                                                   "evictions",
                                                   "invalidations")),
            (self.result_cache, "repro_result_cache", ("hits", "misses",
                                                       "evictions")),
            (self.admission, "repro_admission", ("admitted", "waits",
                                                 "timeouts")),
        ):
            stats = source.stats()
            for attr in attrs:
                key = f"{prefix}_{attr}"
                current = stats[attr]
                delta = current - baseline.get(key, 0)
                if delta > 0:
                    registry.counter(f"{key}_total",
                                     f"Serving front end: {prefix[6:]} {attr}"
                                     ).inc(delta)
                    baseline[key] = current
        registry.gauge("repro_sessions_active",
                       "Serving sessions currently open"
                       ).set(len(self.session_registry))
        registry.gauge("repro_queries_active",
                       "Queries currently admitted for execution"
                       ).set(self.admission.active)
        registry.gauge("repro_buffer_used_bytes",
                       "Bytes currently accounted by the buffer manager"
                       ).set(self.buffer_manager.used_bytes)

    # -- lifecycle ----------------------------------------------------------
    def connect(self):
        """Open a new connection (its own transaction context)."""
        self.check_open()
        from .client.connection import Connection

        return Connection(self, _internal=True)

    def check_open(self) -> None:
        if self._closed:
            raise DatabaseConnectionError("The database has been closed")

    def close(self) -> None:
        # Telemetry shuts down before the checkpoint lock is taken: the
        # final flush samples the registry (innermost telemetry.history
        # lock only) and must not race a sampler tick against teardown.
        if not self._closed:
            self.telemetry.close()
            capture, self.workload_capture = self.workload_capture, None
            if capture is not None:
                capture.close()
        # Checkpoint-on-close runs under the same ``_checkpoint_lock`` as
        # explicit/auto checkpoints (and in the same position in the lock
        # hierarchy: the closing connection already holds its ``_lock``),
        # so a concurrent CHECKPOINT or auto-checkpoint can never interleave
        # with shutdown.
        with self._checkpoint_lock:
            if self._closed:
                return
            self._closed = True
            self.profiler.stop()
            self.storage.close(self.catalog, self.transaction_manager)

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- checkpointing --------------------------------------------------------
    def checkpoint(self, force: bool = False) -> bool:
        """Fold the WAL into the data file (no-op for in-memory databases)."""
        self.check_open()
        with self._checkpoint_lock:
            return self.storage.checkpoint(self.catalog, self.transaction_manager,
                                           force=force)

    def maybe_auto_checkpoint(self) -> None:
        """Checkpoint when the WAL grew past the configured threshold."""
        if self._closed:
            return
        if self.storage.should_auto_checkpoint():
            with self._checkpoint_lock:
                if self.storage.should_auto_checkpoint():
                    self.storage.checkpoint(self.catalog,
                                            self.transaction_manager)

    # -- cooperation ------------------------------------------------------------
    def memory_usage(self) -> int:
        """Approximate resident bytes: buffers + undo + table data."""
        total = self.buffer_manager.used_bytes
        total += self.transaction_manager.retired_undo_memory()
        bootstrap = self.transaction_manager.begin()
        try:
            for table in self.catalog.tables(bootstrap):
                total += table.data.memory_usage()
        finally:
            self.transaction_manager.rollback(bootstrap)
        return total

    def enable_reactive_resources(self, total_ram: int,
                                  application: Optional[SimulatedApplication] = None,
                                  clock=None) -> ReactiveController:
        """Turn on the Figure 1 reactive controller against a RAM budget."""
        monitor = ResourceMonitor(total_ram, lambda: self.buffer_manager.used_bytes,
                                  application, clock=clock)
        controller = ReactiveController(monitor)
        self.resource_controller = controller
        self.config.reactive_resources = True
        return controller

    def disable_reactive_resources(self) -> None:
        self.resource_controller = StaticController()
        self.config.reactive_resources = False

    def __repr__(self) -> str:
        kind = "in-memory" if self.storage.in_memory else self.path
        return f"Database({kind})"
