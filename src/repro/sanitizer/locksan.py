"""LockSan: instrumented locks, the lock-order graph, and cycle reports.

Every engine lock is created through :func:`repro.sanitizer.SanLock` /
:func:`repro.sanitizer.SanRLock`.  When the sanitizer is disabled (the
default) those factories return plain :class:`threading.Lock` objects --
zero overhead, bit-identical behavior.  When enabled they return tracked
locks that report to one global :class:`LockSanitizer`:

* **lock-order graph** -- acquiring lock B while holding lock A witnesses
  the directed edge A -> B (keyed by lock *name*, i.e. lock class, so an
  ABBA pattern across two tables or two connections is still one edge
  pair).  The first witness of each edge keeps both acquisition stacks.
  A new edge that closes a cycle is a potential deadlock and is reported
  with the stacks of every edge on the cycle.
* **hierarchy check** -- edges that invert the declared order of
  :data:`~repro.sanitizer.hierarchy.LOCK_HIERARCHY` are reported even
  before a full cycle exists (an inversion is half a deadlock; the static
  QLL rule flags the same pattern without needing to execute it).
* **hold/contention stats** -- per lock name: acquisitions, contended
  acquisitions, total wait time, total/max hold time.  Exported through
  :meth:`repro.cooperation.monitor.ResourceMonitor.lock_stats`.

Same-name nestings (two *instances* of one lock class held at once, e.g.
two tables) cannot be ordered by name and are excluded from the graph;
they are counted in the stats instead.
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import Dict, List, Optional, Set, Tuple

from .hierarchy import lock_level
from .reports import (
    Frame,
    LockEdgeWitness,
    LockOrderReport,
    LockStats,
    capture_stack,
)

__all__ = ["LockSanitizer", "TrackedLock", "TrackedRLock"]


class _HeldEntry:
    """One lock currently held by one thread."""

    __slots__ = ("lock", "stack", "since")

    def __init__(self, lock: "TrackedLock", stack: Tuple[Frame, ...],
                 since: float) -> None:
        self.lock = lock
        self.stack = stack
        self.since = since


class LockSanitizer:
    """Global lock-order graph, per-thread held stacks, and statistics."""

    def __init__(self) -> None:
        # The sanitizer's own mutex is a plain lock and never participates
        # in the graph; critical sections below are tiny and leaf-level.
        self._mu = threading.Lock()
        self._tls = threading.local()
        #: (held_name, acquired_name) -> first witness of that edge.
        self._edges: Dict[Tuple[str, str], LockEdgeWitness] = {}
        #: Adjacency view of the same graph, for cycle search.
        self._successors: Dict[str, Set[str]] = {}
        self._stats: Dict[str, LockStats] = {}
        self.reports: List[LockOrderReport] = []
        self._reported_cycles: Set[frozenset] = set()

    # -- per-thread state -----------------------------------------------------
    def _held(self) -> List[_HeldEntry]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = []
            self._tls.held = held
        return held

    def held_names(self) -> Tuple[str, ...]:
        """Names of the locks the calling thread holds, outermost first."""
        return tuple(entry.lock.name for entry in self._held())

    def thread_holds(self, name: str) -> bool:
        return any(entry.lock.name == name for entry in self._held())

    # -- acquisition / release hooks ------------------------------------------
    def on_acquire(self, lock: "TrackedLock", wait: float,
                   contended: bool) -> None:
        held = self._held()
        stack = capture_stack(skip=3)
        entry = _HeldEntry(lock, stack, perf_counter())
        new_edges: List[Tuple[_HeldEntry, LockEdgeWitness]] = []
        same_name = 0
        thread_name = threading.current_thread().name
        for outer in held:
            if outer.lock.name == lock.name:
                same_name += 1
                continue
            witness = LockEdgeWitness(outer.lock.name, lock.name,
                                      outer.stack, stack, thread_name)
            new_edges.append((outer, witness))
        held.append(entry)
        with self._mu:
            stats = self._stats.get(lock.name)
            if stats is None:
                stats = self._stats[lock.name] = LockStats(lock.name)
            stats.acquisitions += 1
            stats.same_name_nestings += same_name
            if contended:
                stats.contentions += 1
                stats.wait_time += wait
            for outer, witness in new_edges:
                key = (witness.held, witness.acquired)
                if key in self._edges:
                    continue
                self._edges[key] = witness
                self._successors.setdefault(witness.held,
                                            set()).add(witness.acquired)
                self._check_cycle_locked(witness)
                self._check_hierarchy_locked(witness)

    def on_failed_acquire(self, name: str) -> None:
        """A non-blocking acquire that lost the race still counts as
        contention."""
        with self._mu:
            stats = self._stats.get(name)
            if stats is None:
                stats = self._stats[name] = LockStats(name)
            stats.contentions += 1

    def on_release(self, lock: "TrackedLock") -> None:
        held = self._held()
        for index in range(len(held) - 1, -1, -1):
            if held[index].lock is lock:
                entry = held.pop(index)
                duration = perf_counter() - entry.since
                with self._mu:
                    stats = self._stats.get(lock.name)
                    if stats is not None:
                        stats.hold_time += duration
                        if duration > stats.max_hold:
                            stats.max_hold = duration
                return

    # -- cycle / hierarchy detection ------------------------------------------
    def _check_cycle_locked(self, witness: LockEdgeWitness) -> None:
        """After adding edge A -> B, a path B ->* A closes a cycle."""
        path = self._find_path_locked(witness.acquired, witness.held)
        if path is None:
            return
        # path is [B, ..., A]; the cycle is A -> B -> ... -> A.
        cycle = (witness.held,) + tuple(path[:-1])
        key = frozenset(cycle)
        if key in self._reported_cycles:
            return
        self._reported_cycles.add(key)
        edges = [witness]
        for here, there in zip(path, path[1:]):
            edge = self._edges.get((here, there))
            if edge is not None:
                edges.append(edge)
        self.reports.append(LockOrderReport(cycle, tuple(edges)))

    def _find_path_locked(self, source: str,
                          target: str) -> Optional[List[str]]:
        """DFS path source ->* target in the edge graph, or None."""
        stack: List[Tuple[str, List[str]]] = [(source, [source])]
        seen = {source}
        while stack:
            node, path = stack.pop()
            if node == target:
                return path
            for successor in self._successors.get(node, ()):
                if successor not in seen:
                    seen.add(successor)
                    stack.append((successor, path + [successor]))
        return None

    def _check_hierarchy_locked(self, witness: LockEdgeWitness) -> None:
        """An edge that inverts the declared hierarchy is half a deadlock."""
        outer_level = lock_level(witness.held)
        inner_level = lock_level(witness.acquired)
        if outer_level is None or inner_level is None:
            return
        if inner_level >= outer_level:
            return
        key = frozenset((witness.held, witness.acquired, "#hierarchy"))
        if key in self._reported_cycles:
            return
        self._reported_cycles.add(key)
        self.reports.append(LockOrderReport(
            (witness.held, witness.acquired), (witness,)))

    # -- reporting -------------------------------------------------------------
    def statistics(self) -> Dict[str, LockStats]:
        with self._mu:
            return dict(self._stats)

    def order_reports(self) -> List[LockOrderReport]:
        with self._mu:
            return list(self.reports)


class TrackedLock:
    """A non-reentrant lock that reports to the :class:`LockSanitizer`."""

    _reentrant = False

    def __init__(self, name: str, sanitizer: LockSanitizer) -> None:
        self.name = name
        self._san = sanitizer
        self._inner = threading.RLock() if self._reentrant \
            else threading.Lock()
        self._owner: Optional[int] = None
        self._count = 0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        me = threading.get_ident()
        if self._reentrant and self._owner == me:
            self._inner.acquire()
            self._count += 1
            return True
        wait = 0.0
        contended = False
        if not self._inner.acquire(False):
            contended = True
            if not blocking:
                self._san.on_failed_acquire(self.name)
                return False
            started = perf_counter()
            acquired = self._inner.acquire(True, timeout)
            wait = perf_counter() - started
            if not acquired:
                return False
        self._owner = me
        self._count = 1
        self._san.on_acquire(self, wait, contended)
        return True

    def release(self) -> None:
        if self._owner == threading.get_ident():
            self._count -= 1
            if self._count == 0:
                self._owner = None
                self._san.on_release(self)
        self._inner.release()

    def locked(self) -> bool:
        return self._count > 0

    def held_by_current_thread(self) -> bool:
        return self._owner == threading.get_ident()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "locked" if self._count else "unlocked"
        return f"<{type(self).__name__} {self.name!r} {state}>"


class TrackedRLock(TrackedLock):
    """Reentrant variant: nested acquires by the owner do not re-witness
    edges (re-entry cannot deadlock against itself)."""

    _reentrant = True
