"""quacksan report types: captured stacks, findings, and lock statistics.

Stack capture deliberately avoids :func:`traceback.extract_stack` (which
reads source lines from disk): a report only needs ``file:line function``
triples, and acquisition-site capture runs on the hot path whenever the
sanitizer is enabled.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import List, Tuple

__all__ = [
    "Frame",
    "capture_stack",
    "render_stack",
    "LockEdgeWitness",
    "LockOrderReport",
    "RaceAccess",
    "RaceReport",
    "LockStats",
]

#: (filename, lineno, function) -- one captured frame.
Frame = Tuple[str, int, str]


def capture_stack(skip: int = 1, limit: int = 16) -> Tuple[Frame, ...]:
    """Innermost-first summary of the calling stack.

    ``skip`` drops the sanitizer's own frames so reports point at engine
    code; ``limit`` bounds the capture cost.
    """
    frames: List[Frame] = []
    try:
        frame = sys._getframe(skip)
    except ValueError:  # fewer frames than ``skip``
        return ()
    while frame is not None and len(frames) < limit:
        code = frame.f_code
        frames.append((code.co_filename, frame.f_lineno, code.co_name))
        frame = frame.f_back
    return tuple(frames)


def render_stack(stack: Tuple[Frame, ...], indent: str = "    ") -> str:
    if not stack:
        return indent + "<no stack captured>"
    return "\n".join(f"{indent}at {filename}:{lineno} in {function}"
                     for filename, lineno, function in stack)


@dataclass(frozen=True)
class LockEdgeWitness:
    """First observed acquisition of ``acquired`` while ``held`` was held."""

    held: str
    acquired: str
    #: Stack where ``held`` was acquired (by the same thread, earlier).
    held_stack: Tuple[Frame, ...]
    #: Stack where ``acquired`` was then taken under it.
    acquire_stack: Tuple[Frame, ...]
    thread_name: str = ""

    def render(self) -> str:
        return (f"  {self.held} -> {self.acquired}"
                f" (thread {self.thread_name or '?'})\n"
                f"   {self.held} acquired:\n"
                f"{render_stack(self.held_stack)}\n"
                f"   then {self.acquired} acquired:\n"
                f"{render_stack(self.acquire_stack)}")


@dataclass(frozen=True)
class LockOrderReport:
    """A cycle in the witnessed lock-order graph: a potential deadlock."""

    cycle: Tuple[str, ...]
    edges: Tuple[LockEdgeWitness, ...]

    def render(self) -> str:
        ring = " -> ".join(self.cycle + (self.cycle[0],))
        body = "\n".join(edge.render() for edge in self.edges)
        return (f"LockSan: lock-order cycle (potential deadlock): {ring}\n"
                f"{body}")


@dataclass(frozen=True)
class RaceAccess:
    """One side of a racy pair: who touched the structure, and how."""

    thread_name: str
    write: bool
    locked: bool
    stack: Tuple[Frame, ...]

    def render(self) -> str:
        kind = "write" if self.write else "read"
        guard = "holding the owning lock" if self.locked \
            else "WITHOUT the owning lock"
        return (f"  {kind} by thread {self.thread_name} {guard}:\n"
                f"{render_stack(self.stack)}")


@dataclass(frozen=True)
class RaceReport:
    """A write observed concurrently with an access not under the lock."""

    key: str
    first: RaceAccess
    second: RaceAccess

    def render(self) -> str:
        return (f"RaceSan: unsynchronized concurrent access to {self.key}\n"
                f"{self.first.render()}\n{self.second.render()}")


@dataclass
class LockStats:
    """Hold-time and contention accounting for one named lock."""

    name: str
    acquisitions: int = 0
    contentions: int = 0
    wait_time: float = 0.0
    hold_time: float = 0.0
    max_hold: float = 0.0
    #: Same-name nestings observed (two instances of one lock class held at
    #: once); excluded from cycle detection but worth watching.
    same_name_nestings: int = 0

    def as_dict(self) -> dict:
        return {
            "acquisitions": self.acquisitions,
            "contentions": self.contentions,
            "wait_time": self.wait_time,
            "hold_time": self.hold_time,
            "max_hold": self.max_hold,
            "same_name_nestings": self.same_name_nestings,
        }
