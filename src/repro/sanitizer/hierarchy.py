"""The declared engine lock hierarchy: one order, everywhere.

PR 1's morsel-driven worker pool put eight real locks on the hot path.  A
deadlock needs only two of them taken in opposite orders on two threads, so
the engine declares a single global order -- outermost first -- and every
code path must acquire nested locks in (a subsequence of) that order:

    connection                (client/connection.py  Connection._lock)
      -> server.sessions      (server/session.py     SessionRegistry._lock)
        -> server.admission   (server/admission.py   AdmissionController._lock)
          -> server.plan_cache (server/cache.py      PlanCache._lock)
            -> server.result_cache (server/cache.py  ResultCache._lock)
              -> database.checkpoint  (database.py   Database._checkpoint_lock)
                -> transaction_manager (transaction/manager.py TransactionManager._lock)
                  -> catalog          (catalog/catalog.py     Catalog._lock)
                    -> table_data     (storage/table_data.py  TableData.lock)
                      -> buffer_manager (storage/buffer_manager.py BufferManager._lock)
                        -> morsel_driver  (execution/parallel.py MorselDriver._lock)
                          -> operator_stats (execution/physical.py ExecutionContext._stats_lock)
                            -> telemetry.history (observability/history.py MetricsHistory._lock,
                                                  observability/accounting.py StatementLog._lock)

The four ``server.*`` locks of the serving front end sit between the
connection lock and the engine proper: a connection may consult a cache or
the admission controller while holding its own lock (and a cache fold may
run at a statement boundary under it), but no server lock is ever held
while calling back into a connection -- which is why a session close always
leaves the registry's critical section before closing its connection.

Skipping levels is fine (a scan takes ``table_data`` without ``catalog``);
*inverting* them is not.  The hierarchy is enforced twice:

* statically by quacklint's QLL rule family
  (:mod:`repro.analysis.rules.lockorder`), which flags nested ``with``
  acquisitions -- including one/two-hop self-call chains -- whose order
  contradicts this table;
* dynamically by LockSan (:mod:`repro.sanitizer.locksan`), which witnesses
  the orders actually taken under load and reports cycles in the resulting
  lock-order graph.

This module is pure data with no engine imports, so both the analyzer and
the runtime sanitizer can share it without import cycles.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = [
    "LOCK_HIERARCHY",
    "CLASS_LOCK_ATTRS",
    "GLOBAL_LOCK_ATTRS",
    "lock_level",
]

#: Outermost-first declared acquisition order of every named engine lock.
LOCK_HIERARCHY: Tuple[str, ...] = (
    "connection",
    "server.sessions",
    "server.admission",
    "server.plan_cache",
    "server.result_cache",
    "database.checkpoint",
    "transaction_manager",
    "catalog",
    "table_data",
    "buffer_manager",
    "morsel_driver",
    "operator_stats",
    "telemetry.history",
)

_LEVELS: Dict[str, int] = {name: level
                           for level, name in enumerate(LOCK_HIERARCHY)}

#: Lock attributes per (package path, class): which ``self.<attr>`` is which
#: named lock.  Seeded from the eight engine locks instrumented by LockSan.
CLASS_LOCK_ATTRS: Dict[str, Dict[str, Dict[str, str]]] = {
    "repro/database.py": {
        "Database": {"_checkpoint_lock": "database.checkpoint"},
    },
    "repro/client/connection.py": {
        "Connection": {"_lock": "connection"},
    },
    "repro/server/session.py": {
        "SessionRegistry": {"_lock": "server.sessions"},
        "Session": {"_registry_lock": "server.sessions"},
    },
    "repro/server/admission.py": {
        "AdmissionController": {"_lock": "server.admission"},
    },
    "repro/server/cache.py": {
        "PlanCache": {"_lock": "server.plan_cache"},
        "ResultCache": {"_lock": "server.result_cache"},
    },
    "repro/transaction/manager.py": {
        "TransactionManager": {"_lock": "transaction_manager"},
    },
    "repro/catalog/catalog.py": {
        "Catalog": {"_lock": "catalog"},
    },
    "repro/storage/table_data.py": {
        "TableData": {"lock": "table_data"},
    },
    "repro/storage/buffer_manager.py": {
        "BufferManager": {"_lock": "buffer_manager"},
    },
    "repro/execution/parallel.py": {
        "MorselDriver": {"_lock": "morsel_driver"},
    },
    "repro/execution/physical.py": {
        "ExecutionContext": {"_stats_lock": "operator_stats"},
    },
    # Innermost telemetry ring locks: any engine thread may append a
    # metrics sample or statement bill while holding its own locks.  The
    # two classes deliberately share one hierarchy name -- LockSan keys its
    # order graph by name, and the rings never nest in each other.
    "repro/observability/history.py": {
        "MetricsHistory": {"_lock": "telemetry.history"},
    },
    "repro/observability/accounting.py": {
        "StatementLog": {"_lock": "telemetry.history"},
    },
}

#: Attribute names that identify a lock regardless of the receiver
#: expression (``table.data.lock``, ``self._database._checkpoint_lock``).
#: ``_lock`` is deliberately absent -- it is ambiguous across classes and
#: only resolvable through :data:`CLASS_LOCK_ATTRS`.
GLOBAL_LOCK_ATTRS: Dict[str, str] = {
    "_checkpoint_lock": "database.checkpoint",
    "_stats_lock": "operator_stats",
    "lock": "table_data",
}


def lock_level(name: str) -> Optional[int]:
    """Position of ``name`` in the hierarchy (0 = outermost), or None."""
    return _LEVELS.get(name)
