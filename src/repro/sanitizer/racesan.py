"""RaceSan: witness actual unsynchronized interleavings at runtime.

quacklint's QLC family proves statically that registered classes *textually*
wrap their writes in ``with self.<lock>:`` -- it cannot see a write that
reaches shared state through an un-analyzed path, nor one that holds the
*wrong* lock.  RaceSan closes that gap dynamically: structures registered in
the thread-safety registry are instrumented at their touch points with

    with tracked_access(("table_data", id(self)), write=True,
                        lock=self.lock):
        ... mutate ...

Each in-flight access records its thread, direction (read/write), whether
the owning lock is actually held *right now* (asked of the LockSan-tracked
lock object), and its stack.  When a write overlaps in time with any access
from another thread and at least one side does not hold the owning lock,
both stacks are reported.  Because instrumentation sits at chunk/morsel
granularity this is a sampling sanitizer: it costs a dict operation per
chunk when enabled and exactly one ``None`` check when disabled.

``lock`` may be:

* a LockSan-tracked lock -- held-ness is queried precisely;
* ``None`` -- the access is declared lock-free (used by fixtures and by
  coordinator-only state such as the subquery cache, where *any* overlap
  is a violation);
* a plain :class:`threading.Lock` (created before the sanitizer was
  enabled) -- held-ness is unknowable, the access is conservatively treated
  as guarded so stale locks never produce false reports.
"""

from __future__ import annotations

import threading
from typing import Dict, Hashable, List, Set, Tuple

from .reports import RaceAccess, RaceReport, capture_stack

__all__ = ["RaceSanitizer", "AccessToken", "NOOP_ACCESS", "locked_state"]


class _NoopAccess:
    """Shared do-nothing context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopAccess":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


NOOP_ACCESS = _NoopAccess()


class AccessToken:
    """One in-flight access to one registered structure."""

    __slots__ = ("tracker", "key", "write", "locked", "thread",
                 "thread_name", "stack")

    def __init__(self, tracker: "RaceSanitizer", key: Hashable, write: bool,
                 locked: bool) -> None:
        self.tracker = tracker
        self.key = key
        self.write = write
        self.locked = locked
        self.thread = threading.get_ident()
        self.thread_name = threading.current_thread().name
        self.stack = capture_stack(skip=3)

    def __enter__(self) -> "AccessToken":
        self.tracker._begin(self)
        return self

    def __exit__(self, *exc: object) -> None:
        self.tracker._end(self)

    def as_race_access(self) -> RaceAccess:
        return RaceAccess(self.thread_name, self.write, self.locked,
                          self.stack)


class RaceSanitizer:
    """Tracks overlapping accesses per registered structure."""

    #: Stop collecting after this many reports -- a genuinely racy loop
    #: would otherwise flood memory with near-identical findings.
    MAX_REPORTS = 100

    def __init__(self) -> None:
        self._mu = threading.Lock()
        self._inflight: Dict[Hashable, List[AccessToken]] = {}
        self.reports: List[RaceReport] = []
        self._seen: Set[Tuple] = set()

    def access(self, key: Hashable, write: bool, locked: bool) -> AccessToken:
        return AccessToken(self, key, write, locked)

    def _begin(self, token: AccessToken) -> None:
        with self._mu:
            peers = self._inflight.setdefault(token.key, [])
            for other in peers:
                if other.thread == token.thread:
                    continue
                if not (token.write or other.write):
                    continue  # two reads never race
                if token.locked and other.locked:
                    continue  # both serialized by the owning lock
                self._report_locked(other, token)
                break
            peers.append(token)

    def _end(self, token: AccessToken) -> None:
        with self._mu:
            peers = self._inflight.get(token.key)
            if peers is None:
                return
            try:
                peers.remove(token)
            except ValueError:
                pass
            if not peers:
                del self._inflight[token.key]

    def _report_locked(self, first: AccessToken, second: AccessToken) -> None:
        if len(self.reports) >= self.MAX_REPORTS:
            return
        label = self._key_label(second.key)
        signature = (label,
                     first.stack[0] if first.stack else None,
                     second.stack[0] if second.stack else None)
        if signature in self._seen:
            return
        self._seen.add(signature)
        self.reports.append(RaceReport(label, first.as_race_access(),
                                       second.as_race_access()))

    @staticmethod
    def _key_label(key: Hashable) -> str:
        if isinstance(key, tuple) and key and isinstance(key[0], str):
            return f"{key[0]}#{key[1] if len(key) > 1 else ''}"
        return repr(key)

    def race_reports(self) -> List[RaceReport]:
        with self._mu:
            return list(self.reports)

    def inflight_count(self) -> int:
        with self._mu:
            return sum(len(tokens) for tokens in self._inflight.values())


def locked_state(lock: object) -> bool:
    """Best-effort: does the calling thread hold ``lock`` right now?

    Tracked locks answer precisely; ``None`` means declared lock-free;
    anything else (a plain lock predating ``enable()``) is conservatively
    treated as held to avoid false reports.
    """
    if lock is None:
        return False
    probe = getattr(lock, "held_by_current_thread", None)
    if probe is None:
        return True
    return bool(probe())
