"""quacksan: runtime concurrency sanitizer for the parallel engine.

The combined-OLAP-&-ETL pillar (paper §2) means concurrent appenders,
checkpoints, and morsel-parallel scans all share one in-process engine, and
eight real locks sit on that hot path.  quacklint (:mod:`repro.analysis`)
proves lock *discipline* statically; this package witnesses lock *ordering*
and actual interleavings at runtime:

* **LockSan** (:mod:`.locksan`) -- :func:`SanLock` / :func:`SanRLock`
  wrap every engine lock, record per-thread acquisition stacks, build a
  global lock-order graph, and report cycles (potential deadlocks) and
  declared-hierarchy inversions, plus hold-time/contention statistics.
* **RaceSan** (:mod:`.racesan`) -- :func:`tracked_access` samples
  reads/writes of registry-listed structures during execution and reports
  writes observed concurrently with any access not under the owning lock.
* the declared lock hierarchy (:mod:`.hierarchy`) shared with quacklint's
  QLL rule family.

Enablement: set ``REPRO_SANITIZE=1`` in the environment before the engine
is imported/instantiated, or call :func:`enable` programmatically *before*
creating the :class:`~repro.database.Database` (locks created while the
sanitizer is disabled are plain ``threading`` locks and stay untracked --
that is the zero-overhead guarantee).
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Hashable, List, Optional, Union

from .hierarchy import LOCK_HIERARCHY, lock_level
from .locksan import LockSanitizer, TrackedLock, TrackedRLock
from .racesan import NOOP_ACCESS, AccessToken, RaceSanitizer, locked_state
from .reports import (
    LockEdgeWitness,
    LockOrderReport,
    LockStats,
    RaceAccess,
    RaceReport,
)

__all__ = [
    "LOCK_HIERARCHY",
    "lock_level",
    "SanLock",
    "SanRLock",
    "tracked_access",
    "enabled",
    "enable",
    "disable",
    "reset",
    "lock_statistics",
    "lock_order_reports",
    "race_reports",
    "assert_clean",
    "SanitizerError",
    "LockSanitizer",
    "RaceSanitizer",
    "LockOrderReport",
    "LockEdgeWitness",
    "LockStats",
    "RaceAccess",
    "RaceReport",
]

EnvTruthy = ("1", "true", "on", "yes")

_locksan: Optional[LockSanitizer] = None
_racesan: Optional[RaceSanitizer] = None


class SanitizerError(AssertionError):
    """Raised by :func:`assert_clean` when quacksan collected findings."""


def _env_enabled() -> bool:
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in EnvTruthy


def enabled() -> bool:
    """Is the sanitizer collecting right now?"""
    return _locksan is not None


def enable() -> None:
    """Start sanitizing.  Affects locks created from this point on."""
    global _locksan, _racesan
    if _locksan is None:
        _locksan = LockSanitizer()
        _racesan = RaceSanitizer()


def disable() -> None:
    """Stop sanitizing.  Previously created tracked locks keep working
    (they still wrap a real lock) but new locks are plain again."""
    global _locksan, _racesan
    _locksan = None
    _racesan = None


def reset() -> None:
    """Drop all collected state; keeps the enabled/disabled setting."""
    global _locksan, _racesan
    if _locksan is not None:
        _locksan = LockSanitizer()
        _racesan = RaceSanitizer()


if _env_enabled():  # honored at import so engine singletons are tracked
    enable()


# -- lock factories ------------------------------------------------------------
def SanLock(name: str) -> Union[TrackedLock, "threading.Lock"]:
    """A named engine lock: plain ``threading.Lock`` when the sanitizer is
    off (zero overhead), a tracked lock when it is on."""
    san = _locksan
    if san is None:
        return threading.Lock()
    return TrackedLock(name, san)


def SanRLock(name: str) -> Union[TrackedRLock, "threading.RLock"]:
    """Reentrant variant of :func:`SanLock`."""
    san = _locksan
    if san is None:
        return threading.RLock()
    return TrackedRLock(name, san)


# -- access tracking ------------------------------------------------------------
def tracked_access(key: Hashable, write: bool,
                   lock: object = None) -> Union[AccessToken, object]:
    """Context manager marking one access to a registered shared structure.

    ``key`` identifies the structure (conventionally ``(kind, id(obj))``),
    ``write`` its direction, ``lock`` the owning lock object (or None for
    declared lock-free state).  No-op when the sanitizer is disabled.
    """
    tracker = _racesan
    if tracker is None:
        return NOOP_ACCESS
    return tracker.access(key, write, locked_state(lock))


# -- reporting -----------------------------------------------------------------
def lock_statistics() -> Dict[str, LockStats]:
    """Per-lock hold/contention statistics ({} while disabled)."""
    san = _locksan
    return san.statistics() if san is not None else {}


def lock_order_reports() -> List[LockOrderReport]:
    san = _locksan
    return san.order_reports() if san is not None else []


def race_reports() -> List[RaceReport]:
    tracker = _racesan
    return tracker.race_reports() if tracker is not None else []


def assert_clean() -> None:
    """Raise :class:`SanitizerError` listing every collected finding."""
    findings = [report.render() for report in lock_order_reports()]
    findings += [report.render() for report in race_reports()]
    if findings:
        raise SanitizerError(
            f"quacksan collected {len(findings)} finding(s):\n\n"
            + "\n\n".join(findings))
