"""Render captured traces as human-readable operator trees.

``EXPLAIN ANALYZE``, the slow-query log, and the interactive
``repro.observability.render_trace`` helper all share this formatter: a
span tree becomes an indented operator profile with wall/CPU time, rows
in/out, throughput, and -- for parallel pipelines -- per-worker morsel
counts and the skew between the busiest and laziest worker.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .trace import Span

__all__ = ["render_trace", "render_span_tree", "worker_summary"]


def _children_index(spans: Sequence[Span]) -> Dict[int, List[Span]]:
    children: Dict[int, List[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda span: span.span_id)
    return children


def _roots(spans: Sequence[Span]) -> List[Span]:
    ids = {span.span_id for span in spans}
    return [span for span in spans
            if span.parent_id == 0 or span.parent_id not in ids]


def worker_summary(spans: Sequence[Span]) -> List[Tuple[int, int, int]]:
    """Per-worker ``(worker index, morsel count, rows)`` from morsel spans.

    Workers are numbered in first-use order (stable across runs of the same
    plan shape, unlike raw thread idents).
    """
    order: Dict[int, int] = {}
    morsels: Dict[int, int] = {}
    rows: Dict[int, int] = {}
    for span in spans:
        if span.kind != "morsel":
            continue
        ident = span.thread_ident
        index = order.setdefault(ident, len(order))
        morsels[index] = morsels.get(index, 0) + 1
        rows[index] = rows.get(index, 0) + span.rows
    return [(index, morsels[index], rows[index]) for index in sorted(morsels)]


def _format_span(span: Span, rows_in: int) -> str:
    parts = [span.name]
    parts.append(f"wall={span.wall_ms:.3f}ms")
    parts.append(f"cpu={span.cpu_ms:.3f}ms")
    if span.kind in ("operator", "morsel"):
        parts.append(f"rows_in={rows_in}")
        parts.append(f"rows_out={span.rows}")
        # Estimated next to actual: the at-a-glance check of whether the
        # optimizer's statistics matched reality for this operator.
        if "est_rows" in span.attrs:
            parts.append(f"est_rows={span.attrs['est_rows']}")
        parts.append(f"chunks={span.chunks}")
        if span.bytes_processed:
            parts.append(f"bytes={span.bytes_processed}")
    elif span.rows:
        parts.append(f"rows={span.rows}")
    for key, value in sorted(span.attrs.items()):
        if key == "est_rows":
            continue
        parts.append(f"{key}={value}")
    return "  ".join(parts)


def render_span_tree(spans: Sequence[Span],
                     root: Optional[Span] = None,
                     indent: int = 0) -> List[str]:
    """Indented lines for the span tree rooted at ``root`` (or all roots)."""
    children = _children_index(spans)
    lines: List[str] = []

    def visit(span: Span, depth: int) -> None:
        kids = children.get(span.span_id, [])
        rows_in = sum(kid.rows for kid in kids
                      if kid.kind in ("operator", "morsel"))
        lines.append("  " * depth + _format_span(span, rows_in))
        morsel_kids = [kid for kid in kids if kid.kind == "morsel"]
        if morsel_kids:
            for index, count, rows in worker_summary(morsel_kids):
                lines.append("  " * (depth + 1)
                             + f"worker {index}: morsels={count} rows={rows}")
            rows_per_worker = [rows for _, _, rows in
                               worker_summary(morsel_kids)]
            if len(rows_per_worker) > 1 and max(rows_per_worker):
                skew = (max(rows_per_worker) - min(rows_per_worker)) \
                    / max(rows_per_worker)
                lines.append("  " * (depth + 1) + f"worker skew: {skew:.2f}")
        for kid in kids:
            if kid.kind != "morsel":
                visit(kid, depth + 1)

    if root is not None:
        visit(root, indent)
    else:
        for top in _roots(spans):
            visit(top, indent)
    return lines


def render_trace(spans: Sequence[Span], title: Optional[str] = None) -> str:
    """One trace as a multi-line string (the pretty-print entry point)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.extend(render_span_tree(spans))
    if not lines:
        lines.append("(no spans captured)")
    return "\n".join(lines)
