"""quacktrace: the engine's observability layer.

Because the database is embedded (paper §5/§6), the host application owns
diagnosis -- there is no server console to ssh into.  This package is the
application-facing answer, three coordinated pieces:

* **spans/traces** (:mod:`.trace`) -- a low-overhead :class:`Tracer` the
  executor, morsel driver, WAL/checkpoint path, and buffer manager emit
  into.  Off by default; enabled process-wide with ``REPRO_TRACE=1`` or
  ``config.trace_enabled``, and forced per-query by ``EXPLAIN ANALYZE``.
  Disabled cost: ``ExecutionContext.tracer`` is ``None`` and every hot-path
  check is a single ``is None`` test -- the same discipline as the quacksan
  lock wrappers.
* **metrics** (:mod:`.metrics`) -- an always-on process-wide
  :class:`MetricsRegistry` (counters/gauges/histograms with fixed bucket
  bounds) exported via ``connection.metrics()`` and a Prometheus-style text
  dump.
* **surfacing** (:mod:`.render`, :mod:`.slowlog`) -- ``EXPLAIN ANALYZE``
  operator trees built from real spans, a slow-query log with a
  configurable threshold, and :func:`render_trace` for pretty-printing.
"""

from __future__ import annotations

import os
from typing import Any, ContextManager, Optional

from .accounting import StatementLog, StatementRecord
from .export import JsonlTelemetrySink, TelemetrySink
from .history import MetricsHistory, MetricsSample, TelemetrySampler
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
)
from .render import render_span_tree, render_trace, worker_summary
from .slowlog import SlowQueryLog, SlowQueryRecord
from .trace import Span, TraceSink, Tracer

__all__ = [
    "Tracer",
    "Span",
    "TraceSink",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "MetricsHistory",
    "MetricsSample",
    "TelemetrySampler",
    "StatementLog",
    "StatementRecord",
    "TelemetrySink",
    "JsonlTelemetrySink",
    "render_trace",
    "render_span_tree",
    "worker_summary",
    "SlowQueryLog",
    "SlowQueryRecord",
    "tracing_enabled",
    "enable_tracing",
    "disable_tracing",
    "get_tracer",
    "engine_span",
]

_ENV_TRUTHY = ("1", "true", "on", "yes")

_tracer: Optional[Tracer] = None


def _env_enabled() -> bool:
    return os.environ.get("REPRO_TRACE", "").strip().lower() in _ENV_TRUTHY


def tracing_enabled() -> bool:
    """Is the process-wide tracer collecting right now?"""
    return _tracer is not None


def enable_tracing(sink: Optional[TraceSink] = None) -> Tracer:
    """Install (or return) the process-wide tracer.

    Idempotent: when already enabled the existing tracer is returned (a
    custom ``sink`` only applies on the first call).
    """
    global _tracer
    if _tracer is None:
        _tracer = Tracer(sink)
    return _tracer


def disable_tracing() -> None:
    """Remove the process-wide tracer; contexts created after this pay
    nothing again.  In-flight traced queries keep their local references."""
    global _tracer
    _tracer = None


def get_tracer() -> Optional[Tracer]:
    """The process-wide tracer, or ``None`` while tracing is disabled."""
    return _tracer


if _env_enabled():  # honored at import so engine singletons are traced
    enable_tracing()


class _NoopSpanContext:
    """Shared do-nothing context manager: the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> None:
        return None


_NOOP_SPAN_CONTEXT = _NoopSpanContext()


def engine_span(name: str, kind: str = "engine",
                **attrs: Any) -> ContextManager[Any]:
    """Span context manager for engine internals without a database handle.

    The WAL, checkpoint, and buffer-manager paths call this directly; while
    tracing is disabled it returns one shared no-op object (no allocation).
    """
    tracer = _tracer
    if tracer is None:
        return _NOOP_SPAN_CONTEXT
    return tracer.span(name, kind, **attrs)
