"""Per-statement resource accounting: who spent what, attributed.

Aggregate metrics say the buffer cache missed 10k times; this module says
*which statement* of *which session* caused them.  Every statement a
connection finishes -- success or error, served or direct -- produces one
:class:`StatementRecord` carrying wall/CPU time, rows in (scanned) and out
(returned), vectors touched, buffer-manager hits/misses over the
statement's window, and a peak-memory estimate, attributed to
``(session_id, statement_seq)``.  Records land in a bounded
:class:`StatementLog` ring queryable as ``repro_statement_log()`` and are
folded into the owning :class:`~repro.server.session.Session`'s stats.

Sizing: the ring holds ``config.statement_log_entries`` records (default
512, 0 disables).  Like the trace sink, it is deliberately lossy --
accounting must never become the memory leak it exists to find.  Appends
take the innermost ``telemetry.history`` sanitizer lock, so any engine
thread may record while holding its own locks.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, List, Optional, Tuple

from ..sanitizer import SanLock

__all__ = ["StatementRecord", "StatementLog", "DEFAULT_LOG_ENTRIES"]

#: Default bounded capacity of the statement log ring.
DEFAULT_LOG_ENTRIES = 512


class StatementRecord:
    """Resource bill of one finished statement."""

    __slots__ = ("session_id", "statement_seq", "sql", "timestamp", "wall_ms",
                 "cpu_ms", "rows_out", "rows_scanned", "vectors",
                 "buffer_hits", "buffer_misses", "memory_bytes", "error")

    def __init__(self, session_id: int, statement_seq: int, sql: str,
                 wall_ms: float = 0.0, cpu_ms: float = 0.0,
                 rows_out: int = 0, rows_scanned: int = 0, vectors: int = 0,
                 buffer_hits: int = 0, buffer_misses: int = 0,
                 memory_bytes: int = 0, error: str = "",
                 timestamp: Optional[float] = None) -> None:
        self.session_id = session_id
        self.statement_seq = statement_seq
        self.sql = sql
        self.timestamp = time.time() if timestamp is None else timestamp
        self.wall_ms = wall_ms
        self.cpu_ms = cpu_ms
        self.rows_out = rows_out
        self.rows_scanned = rows_scanned
        self.vectors = vectors
        self.buffer_hits = buffer_hits
        self.buffer_misses = buffer_misses
        self.memory_bytes = memory_bytes
        self.error = error

    def as_row(self) -> Tuple[int, int, str, float, float, float, int, int,
                              int, int, int, int, str]:
        """Row shape of the ``repro_statement_log()`` system table."""
        return (self.session_id, self.statement_seq, self.sql,
                self.timestamp, self.wall_ms, self.cpu_ms, self.rows_out,
                self.rows_scanned, self.vectors, self.buffer_hits,
                self.buffer_misses, self.memory_bytes, self.error)

    def __repr__(self) -> str:
        return (f"StatementRecord(session={self.session_id}, "
                f"seq={self.statement_seq}, wall={self.wall_ms:.3f}ms, "
                f"rows_out={self.rows_out})")


class StatementLog:
    """Bounded ring of the most recent statement bills.

    Thread-safe behind the ``telemetry.history`` sanitizer lock (innermost
    in the declared hierarchy; see :mod:`repro.sanitizer.hierarchy`).
    A capacity of 0 disables recording entirely -- :meth:`record` returns
    before allocating anything.
    """

    def __init__(self, capacity: int = DEFAULT_LOG_ENTRIES) -> None:
        self.capacity = max(0, int(capacity))
        self._lock = SanLock("telemetry.history")
        self._records: Deque[StatementRecord] = deque(
            maxlen=self.capacity if self.capacity else 1)
        self._total_recorded = 0

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    @property
    def total_recorded(self) -> int:
        """Statements recorded since creation (not bounded by the ring)."""
        return self._total_recorded

    def record(self, record: StatementRecord) -> None:
        if not self.capacity:
            return
        with self._lock:
            self._records.append(record)
            self._total_recorded += 1

    def records(self) -> List[StatementRecord]:
        """Snapshot, oldest first (copy-then-release)."""
        with self._lock:
            return list(self._records)

    def rows(self) -> List[Tuple[int, int, str, float, float, float, int,
                                 int, int, int, int, int, str]]:
        """System-table rows, oldest first."""
        return [record.as_row() for record in self.records()]

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)
