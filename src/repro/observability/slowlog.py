"""Slow-query log: capture the full trace of statements over a threshold.

The application hosting the engine is the only "DBA" an embedded database
has (paper §5), so the slow-query log lives in process memory where the
application can read it: a bounded ring of
:class:`SlowQueryRecord`\\ s, each carrying the SQL text, the end-to-end
duration, and -- when tracing was active for that statement -- the rendered
span tree of the offending query.  Entries are also emitted through the
standard :mod:`logging` channel ``repro.slowlog`` so existing application
log pipelines pick them up without extra wiring.

The threshold is ``config.slow_query_ms`` (PRAGMA-settable at runtime);
``0`` disables the log entirely, and the per-statement cost while disabled
is a single float comparison.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from typing import Deque, List, Optional, Sequence

from .render import render_trace
from .trace import Span

__all__ = ["SlowQueryRecord", "SlowQueryLog"]

logger = logging.getLogger("repro.slowlog")

#: Retained slow-query records before the oldest fall out.
DEFAULT_CAPACITY = 256


class SlowQueryRecord:
    """One over-threshold statement: SQL, duration, and its trace."""

    __slots__ = ("sql", "duration_ms", "threshold_ms", "timestamp",
                 "trace_text", "span_count", "session_id", "statement_seq")

    def __init__(self, sql: str, duration_ms: float, threshold_ms: float,
                 spans: Optional[Sequence[Span]] = None,
                 session_id: int = 0, statement_seq: int = 0) -> None:
        self.sql = sql
        self.duration_ms = duration_ms
        self.threshold_ms = threshold_ms
        self.timestamp = time.time()
        self.span_count = len(spans) if spans else 0
        self.trace_text = render_trace(spans) if spans else None
        # Attribution: which served session and which of its statements.
        # 0 means "not a server session" (direct embedded connection).
        self.session_id = session_id
        self.statement_seq = statement_seq

    def render(self) -> str:
        header = (f"slow query ({self.duration_ms:.2f} ms, threshold "
                  f"{self.threshold_ms:g} ms): {self.sql}")
        if self.trace_text:
            return header + "\n" + self.trace_text
        return header

    def __repr__(self) -> str:
        return (f"SlowQueryRecord({self.sql!r}, "
                f"duration_ms={self.duration_ms:.2f})")


class SlowQueryLog:
    """Bounded, thread-safe ring of slow-query records."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._records: Deque[SlowQueryRecord] = deque(maxlen=max(1, capacity))
        self._lock = threading.Lock()

    def record(self, sql: str, duration_ms: float, threshold_ms: float,
               spans: Optional[Sequence[Span]] = None,
               session_id: int = 0, statement_seq: int = 0) -> SlowQueryRecord:
        entry = SlowQueryRecord(sql, duration_ms, threshold_ms, spans,
                                session_id=session_id,
                                statement_seq=statement_seq)
        with self._lock:
            self._records.append(entry)
        logger.warning("%s", entry.render())
        return entry

    def records(self) -> List[SlowQueryRecord]:
        """Snapshot, oldest first."""
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)
