"""Time-series metrics history: the engine's own flight-data recorder.

quacktrace metrics (:mod:`.metrics`) answer "what is the counter *now*";
an embedded engine serving long-lived traffic also needs "what did it look
like five minutes ago".  This module adds the time dimension without an
external agent: a background :class:`TelemetrySampler` snapshots the
process-wide :class:`~repro.observability.metrics.MetricsRegistry` every
``telemetry_interval_ms`` into a :class:`MetricsHistory` of fixed-size
ring-buffer tiers, queryable in-band via ``repro_metrics_history()``.

Retention tiers trade resolution for horizon at constant memory.  With
stride counted in raw samples and the default interval of 250 ms:

==========  ======  ========  =======================  ==============
tier        stride  capacity  resolution               horizon
==========  ======  ========  =======================  ==============
``raw``          1       240  every sample (250 ms)    last 60 s
``mid``          8       180  every 8th (2 s)          last 6 min
``coarse``      64       120  every 64th (16 s)        last 32 min
==========  ======  ========  =======================  ==============

Downsampling is loss-aware: a downsampled point's ``value`` is the most
recent raw value in its window (correct for gauges and cumulative
counters) while its ``delta`` is the *sum* of raw deltas over the window
(correct for rates) -- so ``sum(delta)`` over any tier equals the true
counter movement across its horizon, whatever the stride.

Locking: the history ring has its own ``telemetry.history`` lock,
registered innermost in the declared quacksan hierarchy -- any engine
thread may append to it while holding its own locks, and readers
copy-then-release.  Sink emission (file I/O) happens strictly *outside*
that lock, on the sampler thread only (quacklint QLO004 enforces this).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import (TYPE_CHECKING, Any, Deque, Dict, List, Optional, Tuple)

from ..sanitizer import SanLock
from .metrics import registry

if TYPE_CHECKING:
    from ..database import Database
    from .export import TelemetrySink

__all__ = ["MetricsSample", "MetricsHistory", "TelemetrySampler",
           "RETENTION_TIERS", "DEFAULT_INTERVAL_MS"]

#: ``(tier, stride_in_raw_samples, ring_capacity)`` -- documented above.
RETENTION_TIERS: Tuple[Tuple[str, int, int], ...] = (
    ("raw", 1, 240),
    ("mid", 8, 180),
    ("coarse", 64, 120),
)

#: Sampler cadence when telemetry is enabled without an explicit interval.
DEFAULT_INTERVAL_MS = 250.0


class MetricsSample:
    """One point in time: every instrument's value and movement since the
    previous sample of the same tier.

    ``entries`` rows are ``(name, kind, value, delta)``; for counters the
    delta is the increase over the window, for gauges the signed change.
    """

    __slots__ = ("sample_id", "timestamp", "entries")

    def __init__(self, sample_id: int, timestamp: float,
                 entries: Tuple[Tuple[str, str, float, float], ...]) -> None:
        self.sample_id = sample_id
        self.timestamp = timestamp
        self.entries = entries

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly shape for telemetry export."""
        return {
            "type": "metric_sample",
            "sample": self.sample_id,
            "timestamp": self.timestamp,
            "metrics": {name: {"kind": kind, "value": value, "delta": delta}
                        for name, kind, value, delta in self.entries},
        }

    def __repr__(self) -> str:
        return (f"MetricsSample(id={self.sample_id}, "
                f"metrics={len(self.entries)})")


class _Tier:
    """One retention ring plus the delta accumulator feeding it."""

    __slots__ = ("name", "stride", "ring", "pending_deltas", "pending_count")

    def __init__(self, name: str, stride: int, capacity: int) -> None:
        self.name = name
        self.stride = stride
        self.ring: Deque[MetricsSample] = deque(maxlen=capacity)
        self.pending_deltas: Dict[str, float] = {}
        self.pending_count = 0


class MetricsHistory:
    """Fixed-memory, multi-resolution ring of metrics samples.

    Appends are O(instruments); memory is bounded by
    ``sum(tier capacities) x instruments`` regardless of uptime.  All
    mutation happens under the ``telemetry.history`` sanitizer lock;
    :meth:`rows` and :meth:`latest` copy under the lock and build rows
    outside it.
    """

    def __init__(self, tiers: Tuple[Tuple[str, int, int], ...]
                 = RETENTION_TIERS) -> None:
        self._lock = SanLock("telemetry.history")
        self._tiers: Tuple[_Tier, ...] = tuple(
            _Tier(name, stride, capacity) for name, stride, capacity in tiers)
        self._previous: Dict[str, float] = {}
        self._next_sample = 1
        self._total_samples = 0

    @property
    def total_samples(self) -> int:
        """Raw samples recorded since creation (not bounded by the rings)."""
        return self._total_samples

    def record(self, flat: List[Tuple[str, str, float]],
               timestamp: Optional[float] = None) -> MetricsSample:
        """Fold one registry snapshot into every tier; returns the raw
        sample (for export)."""
        when = time.time() if timestamp is None else timestamp
        with self._lock:
            sample_id = self._next_sample
            self._next_sample += 1
            self._total_samples += 1
            entries = tuple(
                (name, kind, value, value - self._previous.get(name, 0.0))
                for name, kind, value in flat)
            for name, _, value in flat:
                self._previous[name] = value
            raw = MetricsSample(sample_id, when, entries)
            for tier in self._tiers:
                if tier.stride == 1:
                    tier.ring.append(raw)
                    continue
                for name, _, _, delta in entries:
                    tier.pending_deltas[name] = (
                        tier.pending_deltas.get(name, 0.0) + delta)
                tier.pending_count += 1
                if tier.pending_count >= tier.stride:
                    tier.ring.append(MetricsSample(sample_id, when, tuple(
                        (name, kind, value, tier.pending_deltas.get(name, 0.0))
                        for name, kind, value, _ in entries)))
                    tier.pending_deltas = {}
                    tier.pending_count = 0
        return raw

    def latest(self) -> Optional[MetricsSample]:
        """Most recent raw sample, or None before the first."""
        with self._lock:
            for tier in self._tiers:
                if tier.stride == 1 and tier.ring:
                    return tier.ring[-1]
        return None

    def samples(self, tier: str = "raw") -> List[MetricsSample]:
        """Snapshot of one tier's retained samples, oldest first."""
        with self._lock:
            for candidate in self._tiers:
                if candidate.name == tier:
                    return list(candidate.ring)
        raise KeyError(f"unknown retention tier: {tier!r}")

    def rows(self) -> List[Tuple[str, int, float, str, str, float, float]]:
        """``(tier, sample, timestamp, name, kind, value, delta)`` rows for
        the ``repro_metrics_history()`` system table, copy-then-release."""
        with self._lock:
            snapshot = [(tier.name, list(tier.ring)) for tier in self._tiers]
        rows: List[Tuple[str, int, float, str, str, float, float]] = []
        for tier_name, samples in snapshot:
            for sample in samples:
                for name, kind, value, delta in sample.entries:
                    rows.append((tier_name, sample.sample_id,
                                 sample.timestamp, name, kind, value, delta))
        return rows

    def clear(self) -> None:
        with self._lock:
            for tier in self._tiers:
                tier.ring.clear()
                tier.pending_deltas = {}
                tier.pending_count = 0
            self._previous = {}


class TelemetrySampler:
    """Background thread turning registry state into history + export.

    Mirrors the :class:`~repro.introspection.profiler.SamplingProfiler`
    lifecycle: idempotent :meth:`start`/:meth:`stop` under a private lock, a
    daemon thread so interpreter exit is never blocked, and a public
    :meth:`sample_once` so tests and ``PRAGMA telemetry_sample`` get
    deterministic samples without sleeping.

    Each tick: fold the owning database's buffer/cache deltas into the
    registry, record a flat snapshot into the history, then -- with every
    lock released -- emit the sample and any newly completed trace spans to
    the configured :class:`~repro.observability.export.TelemetrySink`.
    """

    def __init__(self, database: "Database") -> None:
        self._database = database
        self._lock = threading.Lock()
        self._interval = DEFAULT_INTERVAL_MS / 1000.0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._sink: Optional["TelemetrySink"] = None
        self._span_watermark = 0
        self.history = MetricsHistory()

    # -- lifecycle ---------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None

    @property
    def sink(self) -> Optional["TelemetrySink"]:
        return self._sink

    def set_sink(self, sink: Optional["TelemetrySink"]) -> None:
        """Swap the export sink; the old one is closed."""
        with self._lock:
            previous, self._sink = self._sink, sink
        if previous is not None and previous is not sink:
            previous.close()

    def start(self, interval_ms: float = DEFAULT_INTERVAL_MS) -> None:
        """Start (or retune) the sampler; idempotent."""
        with self._lock:
            self._interval = min(max(float(interval_ms), 1.0), 60_000.0) / 1000.0
            if self._thread is not None:
                return
            self._stop = threading.Event()
            self._thread = threading.Thread(
                target=self._run, name="repro-telemetry", daemon=True)
            self._thread.start()

    def stop(self) -> None:
        """Stop sampling; history stays queryable, the sink stays open."""
        with self._lock:
            thread = self._thread
            self._thread = None
            if thread is None:
                return
            self._stop.set()
        thread.join(timeout=2.0)

    def close(self) -> None:
        """Final flush for database close: stop, last sample, close sink."""
        self.stop()
        if not self._database._closed:
            self.sample_once()
        self.set_sink(None)

    # -- sampling ----------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self.sample_once()

    def sample_once(self) -> Optional[MetricsSample]:
        """Take one sample now; returns it (None once the database closed)."""
        database = self._database
        if database._closed:
            return None
        try:
            database.fold_metrics()
        except Exception:  # quacklint: disable=QLE001 -- the database can close between the check and the fold; a sampler tick must never take the process down
            return None
        sample = self.history.record(registry().flat_snapshot())
        sink = self._sink
        if sink is not None:
            sink.emit_sample(sample.as_dict())
            for payload in self._drain_spans():
                sink.emit_span(payload)
        return sample

    def _drain_spans(self) -> List[Dict[str, Any]]:
        """Spans completed since the last tick, as export payloads.

        The trace sink is a lossy ring; under extreme span rates the
        watermark may skip spans that fell out between ticks -- acceptable
        for an export stream, fatal if it blocked the engine instead.
        """
        from . import get_tracer

        tracer = get_tracer()
        if tracer is None:
            return []
        payloads: List[Dict[str, Any]] = []
        watermark = self._span_watermark
        for span in tracer.sink.spans():
            if span.span_id <= watermark or not span.closed:
                continue
            watermark = max(watermark, span.span_id)
            payloads.append({
                "type": "span",
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "trace_id": span.trace_id,
                "name": span.name,
                "kind": span.kind,
                "started_at": span.started_at,
                "wall_ms": span.wall_ms,
                "cpu_ms": span.cpu_ms,
                "rows": span.rows,
                "chunks": span.chunks,
                "vectors": span.vectors,
                "bytes_processed": span.bytes_processed,
            })
        self._span_watermark = watermark
        return payloads
