"""quacktrace span/trace core: low-overhead in-process query profiling.

The embedded-analytics premise (paper §5/§6) is that the database lives
*inside* the application process, so the application -- not a DBA with a
server console -- owns the diagnosis of slow queries.  This module gives it
the raw material: every executed statement becomes a tree of
:class:`Span`\\ s (query -> operators -> morsels) carrying wall/CPU time,
rows, chunks, and bytes processed, plus morsel and worker identifiers for
parallel pipelines.

Discipline (same as the quacksan wrappers): when tracing is disabled the
engine pays **no allocation and no indirection** on the hot path --
``ExecutionContext.tracer`` is ``None`` and
:meth:`~repro.execution.physical.PhysicalOperator.run` returns the raw
``execute()`` generator untouched.  Spans only exist while a
:class:`Tracer` is installed (``REPRO_TRACE=1``, ``config.trace_enabled``,
or the per-query tracer ``EXPLAIN ANALYZE`` forces).
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict, Iterator, List, Optional

if TYPE_CHECKING:
    from ..types import DataChunk

__all__ = ["Span", "TraceSink", "Tracer", "DEFAULT_SINK_CAPACITY"]

#: Completed spans kept by a ring-buffer sink before the oldest fall out.
DEFAULT_SINK_CAPACITY = 8192

_span_ids = itertools.count(1)


class Span:
    """One timed unit of engine work: a query, an operator, or a morsel.

    Spans form a tree through ``parent_id``; all spans of one statement
    share a ``trace_id`` (the root query span's own id).  Counters are
    cumulative over the span's whole life -- a streaming operator span stays
    open across client polls and closes when its generator is exhausted or
    abandoned.
    """

    __slots__ = ("span_id", "parent_id", "trace_id", "name", "kind",
                 "started_at", "wall_ns", "cpu_ns", "rows", "chunks",
                 "bytes_processed", "vectors", "thread_ident", "attrs",
                 "closed")

    def __init__(self, name: str, kind: str, parent: Optional["Span"],
                 attrs: Optional[Dict[str, Any]] = None) -> None:
        self.span_id = next(_span_ids)
        self.parent_id = parent.span_id if parent is not None else 0
        self.trace_id = parent.trace_id if parent is not None else self.span_id
        self.name = name
        self.kind = kind
        self.started_at = time.time()
        self.wall_ns = 0
        self.cpu_ns = 0
        self.rows = 0
        self.chunks = 0
        self.bytes_processed = 0
        self.vectors = 0
        self.thread_ident = threading.get_ident()
        self.attrs: Dict[str, Any] = attrs or {}
        self.closed = False

    # -- accounting --------------------------------------------------------
    def add_timing(self, wall_ns: int, cpu_ns: int) -> None:
        self.wall_ns += wall_ns
        self.cpu_ns += cpu_ns

    def record_chunk(self, chunk: "DataChunk") -> None:
        self.rows += chunk.size
        self.chunks += 1
        self.vectors += chunk.column_count
        self.bytes_processed += chunk.nbytes()

    @property
    def wall_ms(self) -> float:
        return self.wall_ns / 1e6

    @property
    def cpu_ms(self) -> float:
        return self.cpu_ns / 1e6

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, kind={self.kind}, rows={self.rows}, "
                f"wall={self.wall_ms:.3f}ms)")


class TraceSink:
    """Bounded ring buffer of completed spans.

    The sink is deliberately lossy: observability must never become the
    memory leak it exists to diagnose.  ``capacity`` bounds retained spans;
    the oldest fall out first.  Thread-safe -- morsel workers close spans
    concurrently with the coordinator.
    """

    def __init__(self, capacity: int = DEFAULT_SINK_CAPACITY) -> None:
        self.capacity = max(1, int(capacity))
        self._spans: Deque[Span] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()

    def append(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def spans(self) -> List[Span]:
        """Snapshot of all retained spans, oldest first."""
        with self._lock:
            return list(self._spans)

    def trace(self, trace_id: int) -> List[Span]:
        """All retained spans of one statement, oldest first."""
        with self._lock:
            return [span for span in self._spans if span.trace_id == trace_id]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


class Tracer:
    """Creates spans and tracks the per-thread current span.

    The current-span stack is thread-local: a worker thread entering a
    morsel span nests fragment-operator spans under it without touching the
    coordinator's stack.  Parent links therefore stay correct across the
    generator-chain pull model *and* the morsel worker pool.
    """

    def __init__(self, sink: Optional[TraceSink] = None) -> None:
        self.sink = sink if sink is not None else TraceSink()
        self._local = threading.local()

    # -- current-span stack ------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Optional[Span]:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def push(self, span: Span) -> None:
        self._stack().append(span)

    def pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    # -- span lifecycle ----------------------------------------------------
    def start_span(self, name: str, kind: str = "span",
                   parent: Optional[Span] = None,
                   attrs: Optional[Dict[str, Any]] = None) -> Span:
        """Open a span; the caller must close it via :meth:`end_span`."""
        return Span(name, kind, parent if parent is not None else self.current(),
                    attrs)

    def end_span(self, span: Span) -> None:
        if not span.closed:
            span.closed = True
            self.sink.append(span)

    def start_query(self, sql: str) -> Span:
        """Open the root span of one statement (caller: the connection)."""
        span = self.start_span(sql.strip(), kind="query", parent=None)
        self.push(span)
        return span

    def finish_query(self, span: Span, wall_ns: int, cpu_ns: int) -> None:
        """Close a query root span with its end-to-end timing."""
        self.pop(span)
        span.add_timing(wall_ns, cpu_ns)
        self.end_span(span)

    # -- instrumentation helpers ------------------------------------------
    def span(self, name: str, kind: str = "span",
             **attrs: Any) -> "_SpanContext":
        """Context manager for one-shot engine work (WAL write, checkpoint)."""
        return _SpanContext(self, name, kind, attrs)

    def trace_operator(self, operator: Any,
                       parent: Optional[Span] = None) -> Iterator["DataChunk"]:
        """Wrap a physical operator's chunk generator in a span.

        The span accumulates the wall/CPU time of every pull on this
        operator (inclusive of its children -- the renderer derives self
        time by subtracting child spans) plus rows/chunks/bytes yielded.
        The current-span stack is pushed around each pull so child
        operators started during a pull link to this span.
        """
        span = self.start_span(operator._explain_line(), kind="operator",
                               parent=parent)
        estimated = getattr(operator, "estimated_rows", None)
        if estimated is not None:
            span.attrs["est_rows"] = int(round(estimated))
        source = operator.execute()
        try:
            while True:
                self.push(span)
                wall = time.perf_counter_ns()
                cpu = time.thread_time_ns()
                try:
                    chunk = next(source)
                except StopIteration:
                    return
                finally:
                    span.add_timing(time.perf_counter_ns() - wall,
                                    time.thread_time_ns() - cpu)
                    self.pop(span)
                span.record_chunk(chunk)
                yield chunk
        finally:
            source.close()
            self.end_span(span)


class _SpanContext:
    """``with tracer.span(...)`` -- times one block of engine work."""

    __slots__ = ("_tracer", "_name", "_kind", "_attrs", "_span", "_wall",
                 "_cpu")

    def __init__(self, tracer: Tracer, name: str, kind: str,
                 attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._kind = kind
        self._attrs = attrs
        self._span: Optional[Span] = None
        self._wall = 0
        self._cpu = 0

    def __enter__(self) -> Span:
        self._span = self._tracer.start_span(self._name, self._kind,
                                             attrs=dict(self._attrs))
        self._tracer.push(self._span)
        self._wall = time.perf_counter_ns()
        self._cpu = time.thread_time_ns()
        return self._span

    def __exit__(self, *exc: Any) -> None:
        span = self._span
        if span is None:
            return
        span.add_timing(time.perf_counter_ns() - self._wall,
                        time.thread_time_ns() - self._cpu)
        self._tracer.pop(span)
        self._tracer.end_span(span)
