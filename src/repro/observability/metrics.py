"""Engine metrics: process-wide counters, gauges, and histograms.

The paper's cooperation pillar (§4) says the embedded engine shares a
machine with its host application; this module is how the application
*sees* that sharing: queries executed, rows scanned, block-cache traffic,
WAL bytes, compression-level switches, and (when quacksan is enabled) lock
contention, all exported through ``connection.metrics()`` and a
Prometheus-style text dump that drops straight into a scrape endpoint.

Metrics are **always on**: every instrument is fed from low-frequency
engine points (per statement, per commit group, per block-cache access),
never from the per-value hot path, so the cost is a handful of lock
acquisitions per query.  All metric objects must be created through the
:class:`MetricsRegistry` (``registry().counter(...)``); quacklint's QLO002
flags off-registry construction.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "registry",
           "DEFAULT_TIME_BUCKETS"]

#: Fixed histogram bounds for query latencies, in seconds.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash must go first -- escaping it last would re-escape the
    backslashes introduced for quotes and newlines.
    """
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{_escape_label_value(str(value))}"'
                     for key, value in sorted(labels.items()))
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    # The exposition format spells non-finite values +Inf/-Inf/NaN
    # (histogram +Inf buckets, uninitialized gauges); int() on them raises.
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and not value.is_integer():
        return repr(value)
    return str(int(value))


class Counter:
    """Monotonically increasing count (e.g. queries executed)."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help = help_text
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def render(self) -> List[str]:
        lines = [f"# TYPE {self.name} counter"]
        if self.help:
            lines.insert(0, f"# HELP {self.name} {self.help}")
        lines.append(f"{self.name} {_format_value(self._value)}")
        return lines


class Gauge:
    """A value that can go up and down (e.g. buffer bytes in use)."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help = help_text
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def render(self) -> List[str]:
        lines = [f"# TYPE {self.name} gauge"]
        if self.help:
            lines.insert(0, f"# HELP {self.name} {self.help}")
        lines.append(f"{self.name} {_format_value(self._value)}")
        return lines


class Histogram:
    """Distribution over fixed bucket bounds (cumulative, Prometheus-style)."""

    __slots__ = ("name", "help", "bounds", "_bucket_counts", "_sum", "_count",
                 "_lock")

    def __init__(self, name: str, help_text: str = "",
                 bounds: Sequence[float] = DEFAULT_TIME_BUCKETS) -> None:
        self.name = name
        self.help = help_text
        self.bounds: Tuple[float, ...] = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self._bucket_counts = [0] * len(self.bounds)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    self._bucket_counts[index] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def buckets(self) -> Dict[float, int]:
        """Cumulative count per upper bound (snapshot)."""
        with self._lock:
            return dict(zip(self.bounds, self._bucket_counts))

    def _reset(self) -> None:
        with self._lock:
            self._bucket_counts = [0] * len(self.bounds)
            self._sum = 0.0
            self._count = 0

    def render(self) -> List[str]:
        lines = [f"# TYPE {self.name} histogram"]
        if self.help:
            lines.insert(0, f"# HELP {self.name} {self.help}")
        with self._lock:
            for bound, count in zip(self.bounds, self._bucket_counts):
                lines.append(
                    f'{self.name}_bucket{{le="{bound}"}} {count}')
            lines.append(f'{self.name}_bucket{{le="+Inf"}} {self._count}')
            lines.append(f"{self.name}_sum {repr(self._sum)}")
            lines.append(f"{self.name}_count {self._count}")
        return lines


class MetricsRegistry:
    """Process-wide home of every engine metric.

    Instruments are created lazily and idempotently: the same
    ``counter(name)`` call from two threads returns one shared object.
    Export has two shapes: :meth:`snapshot` (a plain dict for programmatic
    use) and :meth:`render_text` (Prometheus exposition format).  When the
    quacksan sanitizer is active, per-lock contention/hold statistics are
    folded into both exports as synthetic gauges.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument factories ---------------------------------------------
    def counter(self, name: str, help_text: str = "") -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = Counter(name, help_text)
                self._counters[name] = metric
            return metric

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = Gauge(name, help_text)
                self._gauges[name] = metric
            return metric

    def histogram(self, name: str, help_text: str = "",
                  bounds: Sequence[float] = DEFAULT_TIME_BUCKETS) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = Histogram(name, help_text, bounds)
                self._histograms[name] = metric
            return metric

    # -- views --------------------------------------------------------------
    @property
    def counters(self) -> Dict[str, Counter]:
        with self._lock:
            return dict(self._counters)

    @property
    def gauges(self) -> Dict[str, Gauge]:
        with self._lock:
            return dict(self._gauges)

    @property
    def histograms(self) -> Dict[str, Histogram]:
        with self._lock:
            return dict(self._histograms)

    def _lock_stat_gauges(self) -> List[Tuple[str, Mapping[str, str], float]]:
        """Lock contention folded from quacksan (empty while disabled)."""
        from ..sanitizer import lock_statistics

        rows: List[Tuple[str, Mapping[str, str], float]] = []
        for lock_name, stats in sorted(lock_statistics().items()):
            data = stats.as_dict()
            for field in ("acquisitions", "contentions"):
                rows.append((f"repro_lock_{field}",
                             {"lock": lock_name}, float(data.get(field, 0))))
            rows.append(("repro_lock_hold_seconds_total",
                         {"lock": lock_name},
                         float(data.get("hold_time", 0.0))))
        return rows

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict export: counters/gauges as numbers, histograms as
        ``{"count": ..., "sum": ..., "buckets": {bound: cumulative}}``."""
        out: Dict[str, Any] = {}
        for name, counter in sorted(self.counters.items()):
            out[name] = counter.value
        for name, gauge in sorted(self.gauges.items()):
            out[name] = gauge.value
        for name, histogram in sorted(self.histograms.items()):
            out[name] = {"count": histogram.count, "sum": histogram.sum,
                         "buckets": histogram.buckets()}
        for name, labels, value in self._lock_stat_gauges():
            out.setdefault(name, {})[labels["lock"]] = value
        return out

    def flat_snapshot(self) -> List[Tuple[str, str, float]]:
        """Flat ``(name, kind, value)`` rows for time-series sampling.

        Histograms flatten to their ``_count``/``_sum`` scalars -- the
        moments a delta-series can be built from -- rather than per-bucket
        rows, keeping each metrics-history sample O(instruments), not
        O(instruments x buckets).  Sanitizer lock gauges are excluded: they
        are themselves derived telemetry and would double the sample width
        under REPRO_SANITIZE for no time-series value.
        """
        rows: List[Tuple[str, str, float]] = []
        for name, counter in sorted(self.counters.items()):
            rows.append((name, "counter", counter.value))
        for name, gauge in sorted(self.gauges.items()):
            rows.append((name, "gauge", gauge.value))
        for name, histogram in sorted(self.histograms.items()):
            rows.append((f"{name}_count", "counter", float(histogram.count)))
            rows.append((f"{name}_sum", "counter", histogram.sum))
        return rows

    def render_text(self) -> str:
        """Prometheus exposition format (one scrape page)."""
        lines: List[str] = []
        for _, counter in sorted(self.counters.items()):
            lines.extend(counter.render())
        for _, gauge in sorted(self.gauges.items()):
            lines.extend(gauge.render())
        for _, histogram in sorted(self.histograms.items()):
            lines.extend(histogram.render())
        lock_rows = self._lock_stat_gauges()
        seen_types = set()
        for name, labels, value in lock_rows:
            if name not in seen_types:
                lines.append(f"# TYPE {name} gauge")
                seen_types.add(name)
            lines.append(f"{name}{_render_labels(labels)} "
                         f"{_format_value(value)}")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Zero every instrument (tests; instruments stay registered)."""
        with self._lock:
            metrics = (list(self._counters.values())
                       + list(self._gauges.values())
                       + list(self._histograms.values()))
        for metric in metrics:
            metric._reset()


#: The process-wide registry every engine component feeds.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry`."""
    return _REGISTRY
