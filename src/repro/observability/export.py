"""Telemetry export: get engine observability *out* of the process.

The embedded premise (paper §5) cuts both ways: there is no database server
to ssh into, but production fleets still want yesterday's metrics in the
same Grafana/Prometheus stack as everything else.  This module is the
boundary between the in-process telemetry layer (:mod:`.history`,
:mod:`.accounting`, the trace sink) and the outside world:

* :class:`TelemetrySink` -- the abstraction a
  :class:`~repro.observability.history.TelemetrySampler` emits into.  One
  ``emit_sample`` call per metrics-history sample, one ``emit_span`` call
  per completed quacktrace span drained from the ring.
* :class:`JsonlTelemetrySink` -- the built-in implementation: structured
  JSON lines appended to a file (``REPRO_TELEMETRY_PATH`` or
  ``config.telemetry_path``), one object per line, so ``jq``, a log
  shipper, or a fluent-bit tail picks the stream up without a client
  library.

Emission discipline (enforced by quacklint's QLO004): sinks perform I/O,
so **no caller may emit while holding an engine lock** -- the sampler
thread emits after every registry/ring lock is released, and the serving
layer's workload capture emits outside the session-registry critical
section.  A sink that blocks can therefore delay telemetry, never a query.
"""

from __future__ import annotations

import json
import threading
from typing import IO, Any, Dict, Optional

__all__ = ["TelemetrySink", "JsonlTelemetrySink"]


class TelemetrySink:
    """Where exported telemetry goes; subclass and override the emits.

    The base class swallows everything, so a partial implementation (spans
    only, say) stays valid.  Implementations must be thread-safe: the
    sampler daemon and the closing coordinator may emit concurrently.
    """

    def emit_sample(self, payload: Dict[str, Any]) -> None:
        """One metrics-history sample (``type="metric_sample"``)."""

    def emit_span(self, payload: Dict[str, Any]) -> None:
        """One completed quacktrace span (``type="span"``)."""

    def flush(self) -> None:
        """Push buffered output down to the OS (best effort)."""

    def close(self) -> None:
        """Release resources; further emits must be silently ignored."""


class JsonlTelemetrySink(TelemetrySink):
    """Structured JSONL file sink: one JSON object per line, append-only.

    Writes are serialized behind a private lock and flushed per line --
    telemetry is a diagnostic stream, so losing buffered lines to a crash
    would defeat its purpose.  The file handle is opened eagerly so a bad
    path fails at configuration time, not on the sampler thread.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._handle: Optional[IO[str]] = open(  # noqa: SIM115 -- lifetime spans the sink
            path, "a", encoding="utf-8")
        self.samples_written = 0
        self.spans_written = 0

    def _write(self, payload: Dict[str, Any]) -> bool:
        line = json.dumps(payload, default=str, separators=(",", ":"))
        with self._lock:
            handle = self._handle
            if handle is None:
                return False
            handle.write(line + "\n")
            handle.flush()
            return True

    def emit_sample(self, payload: Dict[str, Any]) -> None:
        if self._write(payload):
            with self._lock:
                self.samples_written += 1

    def emit_span(self, payload: Dict[str, Any]) -> None:
        if self._write(payload):
            with self._lock:
                self.spans_written += 1

    @property
    def closed(self) -> bool:
        return self._handle is None

    def flush(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()

    def close(self) -> None:
        with self._lock:
            handle, self._handle = self._handle, None
        if handle is not None:
            handle.close()

    def __repr__(self) -> str:
        state = "closed" if self._handle is None else "open"
        return f"JsonlTelemetrySink({self.path!r}, {state})"
