"""repro -- "QuackDB", an embedded analytical database.

A from-scratch Python reproduction of the system described in Raasveldt &
Mühleisen, *Data Management for Data Science: Towards Embedded Analytics*
(CIDR 2020): an embeddable, vectorized, ACID (MVCC) OLAP database with a
single-file checksummed storage format, combined OLAP/ETL support, resilience
features for consumer hardware, cooperative resource usage, and an efficient
in-process bulk client API.

Quickstart::

    import repro

    con = repro.connect()                      # in-memory database
    con.execute("CREATE TABLE t (i INTEGER, s VARCHAR)")
    con.execute("INSERT INTO t VALUES (1, 'duck'), (2, 'goose')")
    rows = con.execute("SELECT s, i * 2 FROM t WHERE i > 0").fetchall()

Persistent single-file databases are created by passing a path::

    con = repro.connect("analytics.qdb")
"""

from .errors import (
    AdmissionError,
    BinderError,
    CatalogError,
    ClosedHandleError,
    ConstraintError,
    ConversionError,
    CorruptionError,
    Error,
    HardwareError,
    InterfaceError,
    InternalError,
    InterruptError,
    InvalidInputError,
    MemoryFaultError,
    OutOfMemoryError,
    ParserError,
    StorageError,
    TransactionConflict,
    TransactionError,
    WALError,
)

__version__ = "0.1.0"

__all__ = [
    "connect",
    "serve",
    "__version__",
    "Error",
    "AdmissionError",
    "ClosedHandleError",
    "InterfaceError",
    "InternalError",
    "ParserError",
    "BinderError",
    "CatalogError",
    "ConversionError",
    "InvalidInputError",
    "ConstraintError",
    "OutOfMemoryError",
    "TransactionError",
    "TransactionConflict",
    "StorageError",
    "CorruptionError",
    "WALError",
    "HardwareError",
    "MemoryFaultError",
    "InterruptError",
]


def connect(database=":memory:", config=None, pool_size=None):
    """Open a database; return a connection, or a pool when sized.

    Parameters
    ----------
    database:
        Path of the single-file database, or ``":memory:"`` (the default)
        for a transient in-memory database.
    config:
        Optional :class:`~repro.config.DatabaseConfig` or a plain dict of
        option overrides (e.g. ``{"memory_limit": 256 * 2**20}``).
    pool_size:
        When given, return a :class:`~repro.client.pool.ConnectionPool` of
        this many connections over the (pool-owned) database instead of a
        single :class:`~repro.client.connection.Connection`.  Borrow with
        ``pool.acquire()`` / ``with pool.connection() as con:``; each
        borrower gets session-scoped PRAGMAs that reset on return.
    """
    if pool_size is not None:
        from .client.pool import ConnectionPool
        from .config import DatabaseConfig
        from .database import Database

        if isinstance(config, dict) or config is None:
            config = DatabaseConfig.from_dict(config)
        instance = Database(database, config)
        return ConnectionPool(instance, pool_size, owns_database=True)
    from .client.connection import connect as _connect

    return _connect(database, config)


def serve(database=":memory:", config=None):
    """Open a database behind a :class:`~repro.server.QueryServer`.

    The server multiplexes many sessions (``server.session()``) onto one
    database with shared plan/result caches and admission control; it owns
    the database and closes it with the server.
    """
    from .server.server import QueryServer

    return QueryServer(path=database, config=config)
