"""repro -- "QuackDB", an embedded analytical database.

A from-scratch Python reproduction of the system described in Raasveldt &
Mühleisen, *Data Management for Data Science: Towards Embedded Analytics*
(CIDR 2020): an embeddable, vectorized, ACID (MVCC) OLAP database with a
single-file checksummed storage format, combined OLAP/ETL support, resilience
features for consumer hardware, cooperative resource usage, and an efficient
in-process bulk client API.

Quickstart::

    import repro

    con = repro.connect()                      # in-memory database
    con.execute("CREATE TABLE t (i INTEGER, s VARCHAR)")
    con.execute("INSERT INTO t VALUES (1, 'duck'), (2, 'goose')")
    rows = con.execute("SELECT s, i * 2 FROM t WHERE i > 0").fetchall()

Persistent single-file databases are created by passing a path::

    con = repro.connect("analytics.qdb")
"""

from .errors import (
    BinderError,
    CatalogError,
    ConstraintError,
    ConversionError,
    CorruptionError,
    Error,
    HardwareError,
    InternalError,
    InterruptError,
    InvalidInputError,
    MemoryFaultError,
    OutOfMemoryError,
    ParserError,
    StorageError,
    TransactionConflict,
    TransactionError,
    WALError,
)

__version__ = "0.1.0"

__all__ = [
    "connect",
    "__version__",
    "Error",
    "InternalError",
    "ParserError",
    "BinderError",
    "CatalogError",
    "ConversionError",
    "InvalidInputError",
    "ConstraintError",
    "OutOfMemoryError",
    "TransactionError",
    "TransactionConflict",
    "StorageError",
    "CorruptionError",
    "WALError",
    "HardwareError",
    "MemoryFaultError",
    "InterruptError",
]


def connect(database=":memory:", config=None):
    """Open a database and return a :class:`~repro.client.connection.Connection`.

    Parameters
    ----------
    database:
        Path of the single-file database, or ``":memory:"`` (the default)
        for a transient in-memory database.
    config:
        Optional :class:`~repro.config.DatabaseConfig` or a plain dict of
        option overrides (e.g. ``{"memory_limit": 256 * 2**20}``).
    """
    from .client.connection import connect as _connect

    return _connect(database, config)
