"""Resource monitoring: what the DBMS and the co-resident app consume.

Paper §4: *"An embedded OLAP system can monitor resource usage of all other
running applications and then tweak its run-time behavior accordingly, such
that the DBMS will use the resources that are under-utilized at the
moment."*

Two sources are combined:

* the engine's own usage, read from the buffer manager's accounting;
* the *application's* usage.  On a real deployment this would come from OS
  introspection; for reproducible experiments the
  :class:`SimulatedApplication` replays a scripted RAM/CPU profile -- which
  is precisely the scenario Figure 1 sketches.
"""

from __future__ import annotations

import os
import time
from typing import Callable, List, Optional, Tuple

__all__ = ["read_process_rss", "SimulatedApplication", "ResourceMonitor",
           "ResourceSample"]


def read_process_rss() -> int:
    """Resident set size of this process in bytes (Linux; 0 if unknown)."""
    try:
        with open("/proc/self/status", "r") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    parts = line.split()
                    return int(parts[1]) * 1024
    except OSError:
        pass
    return 0


class SimulatedApplication:
    """A co-resident application with a scripted resource profile.

    ``phases`` is a list of ``(duration_seconds, ram_bytes, cpu_fraction)``.
    The profile repeats after the last phase ends.  A custom ``clock`` makes
    the profile fully deterministic in tests.
    """

    def __init__(self, phases: List[Tuple[float, int, float]],
                 clock: Optional[Callable[[], float]] = None) -> None:
        if not phases:
            raise ValueError("SimulatedApplication needs at least one phase")
        self.phases = phases
        self._clock = clock or time.monotonic
        self._start = self._clock()
        self.total_duration = sum(duration for duration, _, _ in phases)

    def restart(self) -> None:
        self._start = self._clock()

    def _current_phase(self) -> Tuple[float, int, float]:
        elapsed = (self._clock() - self._start) % self.total_duration
        for duration, ram, cpu in self.phases:
            if elapsed < duration:
                return duration, ram, cpu
            elapsed -= duration
        return self.phases[-1]

    def ram_usage(self) -> int:
        return self._current_phase()[1]

    def cpu_usage(self) -> float:
        return self._current_phase()[2]


class ResourceSample:
    """One snapshot of machine-wide resource usage."""

    __slots__ = ("timestamp", "app_ram", "dbms_ram", "app_cpu", "total_ram")

    def __init__(self, timestamp: float, app_ram: int, dbms_ram: int,
                 app_cpu: float, total_ram: int) -> None:
        self.timestamp = timestamp
        self.app_ram = app_ram
        self.dbms_ram = dbms_ram
        self.app_cpu = app_cpu
        self.total_ram = total_ram

    @property
    def ram_pressure(self) -> float:
        """Fraction of total RAM in use by app + DBMS together."""
        if self.total_ram <= 0:
            return 0.0
        return (self.app_ram + self.dbms_ram) / self.total_ram

    def __repr__(self) -> str:
        return (f"ResourceSample(app={self.app_ram >> 20}MiB, "
                f"dbms={self.dbms_ram >> 20}MiB, "
                f"pressure={self.ram_pressure:.2f})")


class ResourceMonitor:
    """Samples app + DBMS usage against a total-memory budget."""

    def __init__(self, total_ram: int, dbms_usage: Callable[[], int],
                 application: Optional[SimulatedApplication] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.total_ram = total_ram
        self._dbms_usage = dbms_usage
        self.application = application
        self._clock = clock or time.monotonic
        self.history: List[ResourceSample] = []

    def sample(self) -> ResourceSample:
        app_ram = self.application.ram_usage() if self.application else 0
        app_cpu = self.application.cpu_usage() if self.application else 0.0
        snapshot = ResourceSample(self._clock(), app_ram, self._dbms_usage(),
                                  app_cpu, self.total_ram)
        self.history.append(snapshot)
        return snapshot

    def lock_stats(self) -> dict:
        """Per-lock acquisition/contention/hold-time statistics.

        Populated only while the quacksan sanitizer is enabled
        (``REPRO_SANITIZE=1``); empty otherwise.  Keys are lock-hierarchy
        names (``connection``, ``table_data``, ...), values the dicts from
        :meth:`repro.sanitizer.LockStats.as_dict`.
        """
        from ..sanitizer import lock_statistics

        return {name: stats.as_dict()
                for name, stats in sorted(lock_statistics().items())}
