"""Cooperation: resource monitoring and reactive adaptation (paper §4, Figure 1)."""

from .controller import (
    HEAVY_PRESSURE_THRESHOLD,
    LIGHT_PRESSURE_THRESHOLD,
    ReactiveController,
    StaticController,
)
from .monitor import (
    ResourceMonitor,
    ResourceSample,
    SimulatedApplication,
    read_process_rss,
)

__all__ = [
    "StaticController",
    "ReactiveController",
    "LIGHT_PRESSURE_THRESHOLD",
    "HEAVY_PRESSURE_THRESHOLD",
    "ResourceMonitor",
    "ResourceSample",
    "SimulatedApplication",
    "read_process_rss",
]
