"""The reactive resource controller (paper §4/§6, Figure 1).

The controller is consulted at run time by the engine's memory-hungry
components:

* :class:`~repro.execution.intermediates.ChunkBuffer` asks for the current
  :class:`~repro.storage.compression.CompressionLevel` before buffering a
  chunk -- rising application RAM usage moves the answer from NONE through
  LIGHT to HEAVY, trading DBMS CPU cycles for machine-wide RAM headroom
  (exactly Figure 1's pattern);
* the physical planner asks :meth:`choose_join_algorithm` whether a hash
  join's build side still fits, or whether the plan should fall back to the
  out-of-core merge join.

The default :class:`StaticController` reproduces the non-cooperative
baseline: full speed, no adaptation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..observability import registry as metrics_registry
from ..storage.compression import CompressionLevel
from .monitor import ResourceMonitor, ResourceSample

__all__ = ["StaticController", "ReactiveController",
           "LIGHT_PRESSURE_THRESHOLD", "HEAVY_PRESSURE_THRESHOLD"]

#: RAM pressure (app + DBMS over total) above which light compression starts.
LIGHT_PRESSURE_THRESHOLD = 0.5
#: Pressure above which the controller escalates to heavy compression.
HEAVY_PRESSURE_THRESHOLD = 0.8


class StaticController:
    """Non-adaptive baseline: fixed compression level, always hash join."""

    def __init__(self, level: CompressionLevel = CompressionLevel.NONE) -> None:
        self._level = level
        self.decisions: List[Tuple[float, CompressionLevel]] = []

    def compression_level(self) -> CompressionLevel:
        return self._level

    def choose_join_algorithm(self, estimated_build_bytes: int) -> str:
        return "hash"

    def choose_worker_count(self, requested: int) -> int:
        """Non-cooperative baseline: grant whatever ``threads`` asks for."""
        return max(1, requested)


class ReactiveController:
    """Adapts engine behaviour to observed machine-wide resource pressure."""

    def __init__(self, monitor: ResourceMonitor,
                 light_threshold: float = LIGHT_PRESSURE_THRESHOLD,
                 heavy_threshold: float = HEAVY_PRESSURE_THRESHOLD,
                 hysteresis: float = 0.05) -> None:
        self.monitor = monitor
        self.light_threshold = light_threshold
        self.heavy_threshold = heavy_threshold
        self.hysteresis = hysteresis
        self._last_level = CompressionLevel.NONE
        #: (timestamp, sample, level) decision trace -- the series Figure 1 plots.
        self.decisions: List[Tuple[float, ResourceSample, CompressionLevel]] = []

    def compression_level(self) -> CompressionLevel:
        """Pick the intermediate-compression level for current pressure.

        Hysteresis keeps the controller from oscillating when pressure
        hovers at a threshold: stepping *down* requires the pressure to
        clear the threshold by an extra margin.
        """
        sample = self.monitor.sample()
        pressure = sample.ram_pressure
        level = self._last_level
        if pressure >= self.heavy_threshold:
            level = CompressionLevel.HEAVY
        elif pressure >= self.light_threshold:
            if self._last_level is CompressionLevel.HEAVY \
                    and pressure >= self.heavy_threshold - self.hysteresis:
                level = CompressionLevel.HEAVY
            else:
                level = CompressionLevel.LIGHT
        else:
            if self._last_level is not CompressionLevel.NONE \
                    and pressure >= self.light_threshold - self.hysteresis:
                level = self._last_level if self._last_level is CompressionLevel.LIGHT \
                    else CompressionLevel.LIGHT
            else:
                level = CompressionLevel.NONE
        if level is not self._last_level:
            metrics_registry().counter(
                "repro_compression_level_switches_total",
                "Reactive intermediate-compression level changes").inc()
        self._last_level = level
        self.decisions.append((sample.timestamp, sample, level))
        return level

    def choose_join_algorithm(self, estimated_build_bytes: int) -> str:
        """Hash join while the build fits comfortably; merge join under pressure.

        The paper: *"If the DBMS detects that the application currently uses
        a large amount of main memory but not a lot of CPU cores, it can
        switch to merge join to reduce the load on RAM and use CPU cores and
        the disk instead."*
        """
        sample = self.monitor.sample()
        headroom = sample.total_ram - sample.app_ram - sample.dbms_ram
        if estimated_build_bytes > max(headroom, 0) * 0.8:
            return "merge"
        return "hash"

    def choose_worker_count(self, requested: int) -> int:
        """Degrade parallelism while the application is burning CPU.

        The cooperation requirement (§4) says the CPU cores belong to the
        application first: when the co-resident application occupies a
        fraction of the machine's cores, the morsel worker pool shrinks to
        roughly the cores left idle (never below one -- the query must still
        make progress).
        """
        import os

        sample = self.monitor.sample()
        cores = os.cpu_count() or 1
        app_cpu = min(max(sample.app_cpu, 0.0), 1.0)
        free_cores = int(cores * (1.0 - app_cpu))
        granted = max(1, min(requested, free_cores))
        if granted < requested:
            metrics_registry().counter(
                "repro_worker_degrade_total",
                "Times the cooperation controller shrank a worker pool").inc()
        return granted
