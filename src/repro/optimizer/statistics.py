"""Per-column statistics: min/max, null count, and NDV sketches.

The paper's embedded-analytics pillar wants queries to run "as fast as the
hardware allows" with nobody tuning anything, which puts the burden of
collecting optimizer metadata on the engine itself.  The statistics here are
deliberately cheap to maintain:

* **min / max / null count** are updated incrementally on every append with
  one vectorized reduction over the incoming chunk.
* **NDV** (number of distinct values) starts as an exact set and degrades to
  a HyperLogLog sketch once the set would cost more memory than the estimate
  is worth -- the "HyperLogLog-or-exact" scheme from the issue.  Both paths
  consume whole NumPy arrays, never one value at a time on the hot path
  (``np.unique`` for the exact set, a vectorized splitmix64 for the sketch).
* **updates and deletes** cannot shrink min/max or NDV without a rescan, so
  they only *widen* the summary and flip :attr:`ColumnStatistics.stale`;
  the next checkpoint recomputes exact values for dirty columns (clean
  columns are never re-scanned, preserving the incremental-checkpoint
  property from PR 3).

Statistics are *advisory*: a stale summary may overestimate, never silently
drop rows, because only the cost model consumes it -- correctness always
comes from the scan itself.
"""

from __future__ import annotations

import math
from typing import Any, Optional, Set

import numpy as np

from ..types.logical import LogicalType, LogicalTypeId

__all__ = [
    "HyperLogLog",
    "DistinctCounter",
    "ColumnStatistics",
    "compute_column_statistics",
]

#: Exact distinct sets are kept up to this many members before degrading to
#: a HyperLogLog sketch.
EXACT_NDV_LIMIT = 4096

#: 2**_HLL_P registers; p=12 gives a ~1.6% standard error in ~4 KiB.
_HLL_P = 12
_HLL_M = 1 << _HLL_P
_HLL_ALPHA = 0.7213 / (1.0 + 1.079 / _HLL_M)


def _hash_array(values: np.ndarray) -> np.ndarray:
    """Vectorized 64-bit mix (splitmix64 finalizer) of an array's values.

    Fixed-width dtypes are reinterpreted as unsigned integers and mixed in
    bulk; object (VARCHAR) arrays fall back to Python's string hash per
    value, which is acceptable off the execution hot path.
    """
    if values.dtype == object:
        hashed = np.fromiter((hash(value) for value in values),
                             dtype=np.int64, count=len(values))
        keys = hashed.astype(np.uint64)
    elif values.dtype.kind == "f":
        # Canonicalize to float64 bit patterns (and -0.0 to +0.0) so equal
        # values hash equally across FLOAT and DOUBLE observations.
        as_double = values.astype(np.float64) + 0.0
        keys = as_double.view(np.uint64)
    elif values.dtype.kind == "b":
        keys = values.astype(np.uint64)
    else:
        keys = values.astype(np.int64).view(np.uint64)
    with np.errstate(over="ignore"):
        keys = keys + np.uint64(0x9E3779B97F4A7C15)
        keys = (keys ^ (keys >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        keys = (keys ^ (keys >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        keys = keys ^ (keys >> np.uint64(31))
    return keys


class HyperLogLog:
    """Classic HyperLogLog cardinality sketch over 64-bit hashes."""

    __slots__ = ("registers",)

    def __init__(self) -> None:
        self.registers = np.zeros(_HLL_M, dtype=np.uint8)

    def add_array(self, values: np.ndarray) -> None:
        if len(values) == 0:
            return
        keys = _hash_array(values)
        buckets = (keys >> np.uint64(64 - _HLL_P)).astype(np.int64)
        remainder = keys << np.uint64(_HLL_P) | np.uint64(1 << (_HLL_P - 1))
        # Rank = leading zeros of the remaining bits, + 1; the OR above
        # guarantees a set bit so the subtraction below is well defined.
        bits = np.uint64(64)
        # np.log2 on uint64 loses precision above 2**53; shift down to the
        # top 32 bits, which is all the rank computation can ever use here.
        top = (remainder >> np.uint64(32)).astype(np.float64)
        low = (remainder & np.uint64(0xFFFFFFFF)).astype(np.float64)
        magnitude = np.where(top > 0, np.floor(np.log2(np.maximum(top, 1))) + 32,
                             np.floor(np.log2(np.maximum(low, 1))))
        rank = (63 - magnitude + 1).astype(np.uint8)
        np.maximum.at(self.registers, buckets, rank)

    def merge(self, other: "HyperLogLog") -> None:
        np.maximum(self.registers, other.registers, out=self.registers)

    def estimate(self) -> float:
        registers = self.registers.astype(np.float64)
        harmonic = float(np.sum(np.exp2(-registers)))
        raw = _HLL_ALPHA * _HLL_M * _HLL_M / harmonic
        zeros = int(np.count_nonzero(self.registers == 0))
        if raw <= 2.5 * _HLL_M and zeros:
            return _HLL_M * math.log(_HLL_M / zeros)
        return raw


class DistinctCounter:
    """Exact distinct set that degrades to HyperLogLog past a size limit."""

    __slots__ = ("_exact", "_sketch", "_limit")

    def __init__(self, limit: int = EXACT_NDV_LIMIT) -> None:
        self._exact: Optional[Set[Any]] = set()
        self._sketch: Optional[HyperLogLog] = None
        self._limit = limit

    @property
    def approximate(self) -> bool:
        return self._sketch is not None

    def add_array(self, values: np.ndarray) -> None:
        if len(values) == 0:
            return
        if self._sketch is not None:
            self._sketch.add_array(values)
            return
        assert self._exact is not None
        unique = np.unique(values)
        if len(self._exact) + unique.size > self._limit:
            self._promote()
            assert self._sketch is not None
            self._sketch.add_array(values)
        else:
            self._exact.update(unique.tolist())

    def _promote(self) -> None:
        self._sketch = HyperLogLog()
        if self._exact:
            # Rebuild a *typed* array: members must hash exactly as future
            # typed adds do (strings go through the object path, numerics
            # through the splitmix path).
            members = np.array(list(self._exact))
            if members.dtype.kind in ("U", "S"):
                members = members.astype(object)
            self._sketch.add_array(members)
        self._exact = None

    def estimate(self) -> float:
        if self._sketch is not None:
            return self._sketch.estimate()
        assert self._exact is not None
        return float(len(self._exact))


def _scalar(value: Any, dtype: LogicalType) -> Any:
    """Convert a NumPy reduction result to a plain Python scalar."""
    if isinstance(value, np.generic):
        value = value.item()
    if dtype.id is LogicalTypeId.BOOLEAN:
        return bool(value)
    return value


class ColumnStatistics:
    """Incrementally maintained summary of one table column.

    ``row_count`` is the number of rows observed (including nulls), which is
    the basis for the null fraction.  ``stale`` means an update or delete
    has happened since the last exact computation: min/max/NDV may
    *overestimate* the live data but never under-represent it.
    """

    __slots__ = ("dtype", "min_value", "max_value", "null_count",
                 "row_count", "distinct", "stale", "_baseline_ndv")

    def __init__(self, dtype: LogicalType) -> None:
        self.dtype = dtype
        self.min_value: Any = None
        self.max_value: Any = None
        self.null_count = 0
        self.row_count = 0
        self.distinct = DistinctCounter()
        self.stale = False
        #: NDV carried over from a checkpoint whose sketch was not
        #: persisted; the live estimate never reports below this.
        self._baseline_ndv = 0.0

    # -- summaries -------------------------------------------------------
    @property
    def ndv(self) -> float:
        """Estimated number of distinct (non-null) values."""
        return max(self.distinct.estimate(), self._baseline_ndv)

    @property
    def approximate_ndv(self) -> bool:
        return self.distinct.approximate or self._baseline_ndv > 0

    def has_range(self) -> bool:
        return self.min_value is not None and self.max_value is not None

    # -- observation hooks ----------------------------------------------
    def observe_append(self, data: np.ndarray, validity: np.ndarray) -> None:
        """Fold one appended chunk into the summary (vectorized)."""
        self.row_count += len(data)
        if validity.all():
            valid = data
        else:
            valid = data[validity]
            self.null_count += int(len(data) - len(valid))
        if len(valid) == 0:
            return
        self._widen(valid)
        if self.dtype.id is not LogicalTypeId.SQLNULL:
            self.distinct.add_array(valid)

    def observe_update(self, data: np.ndarray, validity: np.ndarray) -> None:
        """Fold updated values in.  Old values cannot be retracted, so the
        summary only widens and becomes stale until the next checkpoint."""
        self.stale = True
        valid = data if validity.all() else data[validity]
        if len(valid):
            self._widen(valid)
            if self.dtype.id is not LogicalTypeId.SQLNULL:
                self.distinct.add_array(valid)

    def mark_stale(self) -> None:
        """Deletes (and anything else that shrinks the data) leave the
        summary as an overestimate until the next checkpoint recompute."""
        self.stale = True

    def _widen(self, valid: np.ndarray) -> None:
        if self.dtype.id is LogicalTypeId.SQLNULL:
            return
        low = _scalar(valid.min(), self.dtype)
        high = _scalar(valid.max(), self.dtype)
        if self.min_value is None or low < self.min_value:
            self.min_value = low
        if self.max_value is None or high > self.max_value:
            self.max_value = high

    def __repr__(self) -> str:
        bounds = (f"[{self.min_value!r}, {self.max_value!r}]"
                  if self.has_range() else "[]")
        return (f"ColumnStatistics(rows={self.row_count}, "
                f"nulls={self.null_count}, ndv~{self.ndv:.0f}, "
                f"range={bounds}{', stale' if self.stale else ''})")


def compute_column_statistics(data: np.ndarray, validity: np.ndarray,
                              dtype: LogicalType) -> ColumnStatistics:
    """Exact statistics for a fully materialized column (checkpoint path).

    ``data``/``validity`` must already be trimmed to the live row count.
    NDV is exact via ``np.unique`` up to :data:`EXACT_NDV_LIMIT` distinct
    members, a sketch beyond -- same contract as the incremental path, but
    with min/max/null counts always exact.
    """
    stats = ColumnStatistics(dtype)
    stats.observe_append(data, validity)
    return stats


def restore_column_statistics(dtype: LogicalType, row_count: int,
                              null_count: int, ndv: float, stale: bool,
                              min_value: Any, max_value: Any
                              ) -> ColumnStatistics:
    """Rebuild a summary from its persisted checkpoint form.

    The distinct sketch itself is not persisted; the loaded NDV becomes a
    floor (``_baseline_ndv``) under a fresh counter that only sees
    post-checkpoint appends.  ``max(baseline, fresh)`` can undercount the
    union, which is the conservative direction for ``1/ndv`` selectivity.
    """
    stats = ColumnStatistics(dtype)
    stats.row_count = row_count
    stats.null_count = null_count
    stats.stale = stale
    stats._baseline_ndv = float(ndv)
    stats.min_value = min_value
    stats.max_value = max_value
    return stats
