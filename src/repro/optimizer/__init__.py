"""Logical plan optimizer: folding, filter pushdown, column pruning."""

from .rules import optimize

__all__ = ["optimize"]
