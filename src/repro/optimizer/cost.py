"""Cost model: selectivity and cardinality estimation over real statistics.

Consumes the per-column summaries maintained in
:mod:`repro.optimizer.statistics` (min/max, null count, NDV) to estimate

* the **selectivity** of pushed scan filters (equality via ``1/NDV`` with
  an out-of-range cutoff, ranges via interval fractions, IS NULL via the
  null fraction),
* the **cardinality** of every logical operator, bottom-up
  (:func:`annotate` stamps ``estimated_rows`` on each node, which EXPLAIN
  ANALYZE later pairs with the actual row counts), and
* **join output sizes** via the classic ``|L|·|R| / max(ndv_l, ndv_r)``
  rule, which drives the greedy join-order search in
  :mod:`repro.optimizer.rules`.

Estimates are advisory: a wrong estimate can only produce a slower plan,
never a wrong answer.  When statistics are missing (fresh table, stats
disabled for ablation) every path falls back to the textbook default
selectivities, which reproduce the old heuristic behavior.

The module also owns :class:`OptimizerLog` -- the bounded in-memory record
of the last optimized statement's decisions, surfaced in-band through the
``repro_optimizer()`` system table function (paper §4/§5: the application
is the only DBA an embedded database has).
"""

from __future__ import annotations

import datetime
import threading
from typing import Any, Callable, List, Optional, Tuple

from ..planner.expressions import (
    BoundColumnRef,
    BoundConstant,
    BoundExpression,
    BoundInList,
    BoundIsNull,
    BoundLike,
    BoundOperator,
)
from ..planner.logical import (
    LogicalAggregate,
    LogicalCSVScan,
    LogicalDistinct,
    LogicalEmpty,
    LogicalFilter,
    LogicalGet,
    LogicalIntrospectionScan,
    LogicalJoin,
    LogicalLimit,
    LogicalOperator,
    LogicalOrder,
    LogicalProjection,
    LogicalSetOp,
    LogicalValues,
)
from ..types.logical import date_to_days, timestamp_to_micros
from .statistics import ColumnStatistics

__all__ = [
    "DEFAULT_EQUALITY_SELECTIVITY",
    "DEFAULT_RANGE_SELECTIVITY",
    "DEFAULT_SELECTIVITY",
    "OptimizerDecision",
    "OptimizerLog",
    "annotate",
    "column_ndv",
    "estimated_rows",
    "predicate_selectivity",
    "scan_base_rows",
    "set_statistics_enabled",
    "statistics_enabled",
]

#: Textbook fallbacks used whenever no statistic answers the question.
DEFAULT_EQUALITY_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_SELECTIVITY = 0.25
DEFAULT_NULL_FRACTION = 0.02

#: Sources whose cardinality the engine cannot know up front.
_CSV_DEFAULT_ROWS = 10_000.0
_INTROSPECTION_DEFAULT_ROWS = 256.0

#: A resolver maps an output position of a scan to its column statistics
#: (or None when unknown).
StatsResolver = Callable[[int], Optional[ColumnStatistics]]

_statistics_lock = threading.Lock()
_statistics_enabled = True


def set_statistics_enabled(enabled: bool) -> bool:
    """Globally enable/disable statistics consumption (ablation switch).

    Returns the previous setting.  With statistics off, every estimate
    falls back to the default selectivities and the join-order search
    keeps the syntactic order -- the pre-PR-6 heuristic behavior.
    """
    global _statistics_enabled
    with _statistics_lock:
        previous = _statistics_enabled
        _statistics_enabled = enabled
        return previous


def statistics_enabled() -> bool:
    return _statistics_enabled


# ---------------------------------------------------------------------------
# statistics resolution
# ---------------------------------------------------------------------------

def _get_stats(get: LogicalGet, position: int) -> Optional[ColumnStatistics]:
    """Statistics of a scan output column, or None when unusable."""
    if not _statistics_enabled:
        return None
    data = getattr(get.table_entry, "data", None)
    if data is None:
        return None
    try:
        stats = data.columns[get.column_ids[position]].stats
    except (AttributeError, IndexError):
        return None
    if stats.row_count <= 0:
        return None
    return stats


def scan_base_rows(get: LogicalGet) -> float:
    """Unfiltered row count of a scan (includes not-yet-compacted rows)."""
    data = getattr(get.table_entry, "data", None)
    if data is None:
        return 0.0
    return float(data.row_count)


def _comparable_constant(value: Any) -> Optional[float]:
    """A constant in the storage comparison domain, or None when the
    value does not participate in numeric range estimation (mirrors the
    zonemap extraction in :mod:`repro.execution.scan`)."""
    if value is None or isinstance(value, (str, bool)):
        return None
    if isinstance(value, datetime.datetime):
        return float(timestamp_to_micros(value))
    if isinstance(value, datetime.date):
        return float(date_to_days(value))
    if isinstance(value, (int, float)):
        return float(value)
    return None


def _numeric_bound(value: Any) -> Optional[float]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _clamp(fraction: float) -> float:
    return min(1.0, max(0.0, fraction))


def _null_fraction(stats: Optional[ColumnStatistics]) -> float:
    if stats is None or stats.row_count <= 0:
        return DEFAULT_NULL_FRACTION
    return _clamp(stats.null_count / stats.row_count)


def _comparison_selectivity(op: str, stats: Optional[ColumnStatistics],
                            constant: Optional[float]) -> float:
    """Selectivity of ``column <op> constant`` given the column summary."""
    not_null = 1.0 - _null_fraction(stats)
    if stats is None or constant is None:
        base = DEFAULT_EQUALITY_SELECTIVITY if op in ("=", "!=", "<>") \
            else DEFAULT_RANGE_SELECTIVITY
        if op in ("!=", "<>"):
            base = 1.0 - base
        return _clamp(base * not_null)
    low = _numeric_bound(stats.min_value)
    high = _numeric_bound(stats.max_value)
    if op in ("=", "!=", "<>"):
        if low is not None and high is not None \
                and not low <= constant <= high:
            equality = 0.0
        else:
            equality = 1.0 / max(stats.ndv, 1.0)
        if op == "=":
            return _clamp(equality * not_null)
        return _clamp((1.0 - equality) * not_null)
    if low is None or high is None:
        return _clamp(DEFAULT_RANGE_SELECTIVITY * not_null)
    if high <= low:
        # Single-valued column: the range predicate either takes it or not.
        matches = (op in ("<", "<=") and (low < constant
                                          or (op == "<=" and low == constant))) \
            or (op in (">", ">=") and (high > constant
                                       or (op == ">=" and high == constant)))
        return _clamp((1.0 if matches else 0.0) * not_null)
    if op in ("<", "<="):
        fraction = (constant - low) / (high - low)
    else:
        fraction = (high - constant) / (high - low)
    return _clamp(_clamp(fraction) * not_null)


def predicate_selectivity(predicate: BoundExpression,
                          resolver: StatsResolver) -> float:
    """Estimated fraction of rows satisfying ``predicate``.

    ``resolver`` maps column positions (of the schema the predicate is
    bound against) to statistics; pass ``lambda position: None`` for
    pure-default estimation above non-scan operators.
    """
    if isinstance(predicate, BoundConstant):
        if predicate.value is True:
            return 1.0
        if predicate.value in (False, None):
            return 0.0
        return DEFAULT_SELECTIVITY
    if isinstance(predicate, BoundOperator):
        op = predicate.op
        if op == "and":
            result = 1.0
            for arg in predicate.args:
                result *= predicate_selectivity(arg, resolver)
            return result
        if op == "or":
            miss = 1.0
            for arg in predicate.args:
                miss *= 1.0 - predicate_selectivity(arg, resolver)
            return _clamp(1.0 - miss)
        if op == "not" and len(predicate.args) == 1:
            return _clamp(1.0 - predicate_selectivity(predicate.args[0],
                                                      resolver))
        if op in ("=", "!=", "<>", "<", "<=", ">", ">=") \
                and len(predicate.args) == 2:
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
                       "=": "=", "!=": "!=", "<>": "<>"}
            left, right = predicate.args
            if isinstance(left, BoundColumnRef) \
                    and isinstance(right, BoundConstant):
                column, constant = left, right
            elif isinstance(right, BoundColumnRef) \
                    and isinstance(left, BoundConstant):
                column, constant = right, left
                op = flipped[op]
            else:
                return DEFAULT_EQUALITY_SELECTIVITY if op == "=" \
                    else DEFAULT_SELECTIVITY
            stats = resolver(column.position)
            if op in ("=", "!=", "<>") and isinstance(constant.value, str):
                # Equality against strings: 1/NDV still applies even though
                # range fractions do not.
                equality = 1.0 / max(stats.ndv, 1.0) if stats is not None \
                    else DEFAULT_EQUALITY_SELECTIVITY
                if op != "=":
                    equality = 1.0 - equality
                return _clamp(equality * (1.0 - _null_fraction(stats)))
            return _comparison_selectivity(
                op, stats, _comparable_constant(constant.value))
        return DEFAULT_SELECTIVITY
    if isinstance(predicate, BoundIsNull):
        stats = resolver(predicate.child.position) \
            if isinstance(predicate.child, BoundColumnRef) else None
        fraction = _null_fraction(stats)
        return _clamp(1.0 - fraction if predicate.negated else fraction)
    if isinstance(predicate, BoundInList):
        if predicate.negated:
            return _clamp(1.0 - DEFAULT_SELECTIVITY)
        stats = resolver(predicate.child.position) \
            if isinstance(predicate.child, BoundColumnRef) else None
        per_item = 1.0 / max(stats.ndv, 1.0) if stats is not None \
            else DEFAULT_EQUALITY_SELECTIVITY
        return _clamp(len(predicate.items) * per_item)
    if isinstance(predicate, BoundLike):
        return _clamp(1.0 - DEFAULT_SELECTIVITY) if predicate.negated \
            else DEFAULT_SELECTIVITY
    return DEFAULT_SELECTIVITY


# ---------------------------------------------------------------------------
# per-operator cardinality
# ---------------------------------------------------------------------------

def _no_stats(position: int) -> Optional[ColumnStatistics]:
    return None


def column_ndv(plan: LogicalOperator, position: int) -> Optional[float]:
    """NDV of an output column, chased through pass-through operators down
    to the base scan that produces it (None when it cannot be traced)."""
    if isinstance(plan, LogicalGet):
        stats = _get_stats(plan, position)
        if stats is None:
            return None
        ndv = max(stats.ndv, 1.0)
        rows = estimated_rows(plan)
        if rows is not None:
            ndv = min(ndv, max(rows, 1.0))
        return ndv
    if isinstance(plan, LogicalProjection):
        expression = plan.expressions[position]
        if isinstance(expression, BoundColumnRef):
            return column_ndv(plan.children[0], expression.position)
        return None
    if isinstance(plan, (LogicalFilter, LogicalOrder, LogicalLimit,
                         LogicalDistinct)):
        return column_ndv(plan.children[0], position)
    if isinstance(plan, LogicalJoin):
        left_width = len(plan.children[0].schema)
        if position < left_width:
            return column_ndv(plan.children[0], position)
        return column_ndv(plan.children[1], position - left_width)
    return None


def _expression_ndv(plan: LogicalOperator,
                    expression: BoundExpression) -> Optional[float]:
    if isinstance(expression, BoundColumnRef):
        return column_ndv(plan, expression.position)
    return None


def estimated_rows(plan: LogicalOperator) -> Optional[float]:
    return getattr(plan, "estimated_rows", None)


def _child_rows(plan: LogicalOperator, index: int = 0) -> float:
    child = plan.children[index]
    rows = estimated_rows(child)
    if rows is None:
        rows = annotate(child)
    return rows


def join_output_estimate(left: LogicalOperator, right: LogicalOperator,
                         join_type: str,
                         condition_sides: List[Tuple[Optional[BoundExpression],
                                                     Optional[BoundExpression]]],
                         has_residual: bool = False) -> float:
    """Classic equi-join estimate: |L|·|R| / prod(max(ndv_l, ndv_r)).

    ``condition_sides`` pairs each condition's side expressions (bound to
    the respective child); pass ``None`` for a side whose NDV cannot be
    traced.  Also used by the join-order search on hypothetical pairings.
    """
    left_rows = estimated_rows(left)
    right_rows = estimated_rows(right)
    left_rows = left_rows if left_rows is not None else 1000.0
    right_rows = right_rows if right_rows is not None else 1000.0
    output = left_rows * right_rows
    for left_side, right_side in condition_sides:
        ndv_left = _expression_ndv(left, left_side) \
            if left_side is not None else None
        ndv_right = _expression_ndv(right, right_side) \
            if right_side is not None else None
        if ndv_left is None:
            ndv_left = max(left_rows, 1.0)
        if ndv_right is None:
            ndv_right = max(right_rows, 1.0)
        output /= max(ndv_left, ndv_right, 1.0)
    if has_residual:
        output *= DEFAULT_SELECTIVITY
    if join_type in ("inner", "cross"):
        return output
    if join_type == "left":
        return max(output, left_rows)
    if join_type == "right":
        return max(output, right_rows)
    if join_type == "full":
        return max(output, left_rows + right_rows)
    if join_type == "semi":
        return min(left_rows, max(output, 0.0))
    if join_type == "anti":
        return max(left_rows - output, 0.0)
    return output


def _estimate(plan: LogicalOperator) -> float:
    if isinstance(plan, LogicalGet):
        rows = scan_base_rows(plan)

        def resolver(position: int) -> Optional[ColumnStatistics]:
            return _get_stats(plan, position)

        for predicate in plan.pushed_filters:
            rows *= predicate_selectivity(predicate, resolver)
        hint = getattr(plan, "limit_hint", None)
        if hint is not None:
            rows = min(rows, float(hint))
        return rows
    if isinstance(plan, LogicalEmpty):
        return 0.0
    if isinstance(plan, LogicalValues):
        return float(len(plan.rows))
    if isinstance(plan, LogicalCSVScan):
        return _CSV_DEFAULT_ROWS
    if isinstance(plan, LogicalIntrospectionScan):
        return _INTROSPECTION_DEFAULT_ROWS
    if isinstance(plan, LogicalFilter):
        return _child_rows(plan) * predicate_selectivity(plan.predicate,
                                                         _no_stats)
    if isinstance(plan, (LogicalProjection, LogicalOrder)):
        return _child_rows(plan)
    if isinstance(plan, LogicalLimit):
        child_rows = max(_child_rows(plan) - plan.offset, 0.0)
        if plan.limit is None:
            return child_rows
        return min(child_rows, float(plan.limit))
    if isinstance(plan, LogicalDistinct):
        child_rows = _child_rows(plan)
        ndvs = [column_ndv(plan.children[0], position)
                for position in range(len(plan.schema))]
        if all(ndv is not None for ndv in ndvs):
            product = 1.0
            for ndv in ndvs:
                product *= ndv  # type: ignore[operator]
            return max(1.0, min(child_rows, product))
        return max(1.0, min(child_rows, child_rows ** 0.9))
    if isinstance(plan, LogicalAggregate):
        child_rows = _child_rows(plan)
        if not plan.groups:
            return 1.0
        product = 1.0
        for group in plan.groups:
            ndv = _expression_ndv(plan.children[0], group)
            if ndv is None:
                return max(1.0, min(child_rows, child_rows ** 0.75))
            product *= ndv
        return max(1.0, min(child_rows, product))
    if isinstance(plan, LogicalJoin):
        sides: List[Tuple[Optional[BoundExpression],
                          Optional[BoundExpression]]] = [
            (condition.left, condition.right)
            for condition in plan.conditions
        ]
        return join_output_estimate(plan.children[0], plan.children[1],
                                    plan.join_type, sides,
                                    plan.residual is not None)
    if isinstance(plan, LogicalSetOp):
        left_rows = _child_rows(plan, 0)
        right_rows = _child_rows(plan, 1)
        if plan.op == "union":
            total = left_rows + right_rows
            return total if plan.all else max(1.0, total * 0.7)
        if plan.op == "intersect":
            return min(left_rows, right_rows)
        return left_rows  # except
    if plan.children:
        return _child_rows(plan)
    return 1.0


def _column_stale(plan: LogicalOperator, position: int) -> bool:
    """Whether an output column's statistics are marked stale, chased
    through pass-through operators like :func:`column_ndv`."""
    if isinstance(plan, LogicalGet):
        stats = _get_stats(plan, position)
        return stats is not None and stats.stale
    if isinstance(plan, LogicalProjection):
        expression = plan.expressions[position]
        if isinstance(expression, BoundColumnRef):
            return _column_stale(plan.children[0], expression.position)
        return False
    if isinstance(plan, (LogicalFilter, LogicalOrder, LogicalLimit,
                         LogicalDistinct)):
        return _column_stale(plan.children[0], position)
    if isinstance(plan, LogicalJoin):
        left_width = len(plan.children[0].schema)
        if position < left_width:
            return _column_stale(plan.children[0], position)
        return _column_stale(plan.children[1], position - left_width)
    return False


def _expression_stale(plan: LogicalOperator,
                      expression: BoundExpression) -> bool:
    return any(_column_stale(plan, position)
               for position in expression.referenced_columns())


def _estimate_stale(plan: LogicalOperator) -> bool:
    """Whether this node's *own* estimate consulted stale statistics
    (child staleness propagates separately in :func:`annotate`)."""
    if isinstance(plan, LogicalGet):
        return any(_expression_stale(plan, predicate)
                   for predicate in plan.pushed_filters)
    if isinstance(plan, LogicalJoin):
        return any(
            _expression_stale(plan.children[0], condition.left)
            or _expression_stale(plan.children[1], condition.right)
            for condition in plan.conditions)
    if isinstance(plan, LogicalAggregate):
        return any(_expression_stale(plan.children[0], group)
                   for group in plan.groups)
    if isinstance(plan, LogicalDistinct):
        return any(_column_stale(plan.children[0], position)
                   for position in range(len(plan.schema)))
    return False


def annotate(plan: LogicalOperator) -> float:
    """Stamp ``estimated_rows`` on every node, bottom-up; returns the root
    estimate.  Estimates land on logical nodes first and are copied onto
    the physical operators during lowering, where EXPLAIN ANALYZE pairs
    them with actual row counts.  Nodes whose estimate consulted stale
    column statistics (or sit above one that did) also get
    ``estimate_stale`` so EXPLAIN can flag them."""
    for child in plan.children:
        annotate(child)
    rows = _estimate(plan)
    plan.estimated_rows = rows  # type: ignore[attr-defined]
    plan.estimate_stale = _estimate_stale(plan) \
        or any(child.estimate_stale for child in plan.children)
    return rows


# ---------------------------------------------------------------------------
# the optimizer decision log
# ---------------------------------------------------------------------------

class OptimizerDecision:
    """One recorded decision of one optimized statement."""

    __slots__ = ("statement_id", "seq", "phase", "decision", "detail",
                 "estimated_rows")

    def __init__(self, statement_id: int, seq: int, phase: str,
                 decision: str, detail: str,
                 estimated_rows: Optional[float]) -> None:
        self.statement_id = statement_id
        self.seq = seq
        self.phase = phase
        self.decision = decision
        self.detail = detail
        self.estimated_rows = estimated_rows

    def __repr__(self) -> str:
        return (f"OptimizerDecision({self.phase}: {self.decision}"
                f"{' -- ' + self.detail if self.detail else ''})")


class DecisionRecorder:
    """Collects decisions while one statement is being optimized.

    Single-threaded (one statement, one optimizer invocation); the
    thread-safe handoff to :class:`OptimizerLog` happens once at the end.
    """

    def __init__(self) -> None:
        self.entries: List[Tuple[str, str, str, Optional[float]]] = []

    def record(self, phase: str, decision: str, detail: str = "",
               estimated_rows: Optional[float] = None) -> None:
        self.entries.append((phase, decision, detail, estimated_rows))


class OptimizerLog:
    """Decisions of the most recently optimized statement.

    Thread-safe with the copy-then-release discipline of every other
    introspection store: writers replace the whole record list atomically,
    readers get a snapshot copy.  Statements that *query* the log (any plan
    scanning ``repro_optimizer()``) do not replace it -- otherwise looking
    at the last statement's decisions would destroy them.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._statement_id = 0
        self._records: List[OptimizerDecision] = []

    def publish(self, recorder: DecisionRecorder) -> None:
        with self._lock:
            self._statement_id += 1
            self._records = [
                OptimizerDecision(self._statement_id, seq, phase, decision,
                                  detail, est)
                for seq, (phase, decision, detail, est)
                in enumerate(recorder.entries)
            ]

    def snapshot(self) -> List[OptimizerDecision]:
        with self._lock:
            return list(self._records)
