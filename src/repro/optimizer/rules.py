"""Logical plan optimizer.

Five rewrite passes, run in order:

1. **Constant folding** -- column-free expression subtrees are evaluated at
   plan time; trivially-true filters disappear, trivially-false ones
   collapse the subtree to an empty source.
2. **Filter pushdown** -- WHERE conjuncts migrate toward the scans: through
   projections (by substitution), through inner joins (splitting per side,
   turning cross products into equi-joins), through ORDER BY and DISTINCT,
   and finally *into* :class:`~repro.planner.logical.LogicalGet`, where they
   are evaluated right after each chunk is fetched.
3. **Join reordering** -- maximal inner/cross-join regions are flattened
   into relations + predicates and rebuilt greedily from statistics
   (:mod:`repro.optimizer.cost`): start from the smallest estimated
   relation, repeatedly attach the connected relation with the smallest
   estimated output, cross products last.  Each step also picks the hash
   build side (the right child) as the smaller input.  A final projection
   restores the original column order, so parents never notice.
4. **Limit pushdown** -- LIMIT commutes past projections (exposing ORDER BY
   for Top-N fusion), stacked limits merge, and a ``limit_hint`` lands on
   the scan so it can stop fetching chunks once enough rows passed its
   filters.
5. **Column pruning** -- only the columns an operator's ancestors actually
   reference are scanned.  This matters doubly here: the paper's workloads
   "typically only target a subset of the columns of a large table" (§2),
   and our column store fetches each column independently.

After the passes, every node is annotated with ``estimated_rows`` and the
decisions taken (join order, build sides, pushdowns, scan selectivities)
are published to the database's :class:`~repro.optimizer.cost.OptimizerLog`
for the ``repro_optimizer()`` system table.

When the database runs with ``verify_plans`` (quackplan,
:mod:`repro.verifier`), every pass executes inside a verification session:
the plan is checked for binding integrity, root-schema preservation, limit
soundness, and -- after annotation -- cardinality sanity, with violations
naming the offending pass.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import BinderError, Error, InternalError
from ..planner.expressions import (
    BoundColumnRef,
    BoundConstant,
    BoundExpression,
    BoundOperator,
)
from ..planner.logical import (
    ColumnSchema,
    JoinCondition,
    LogicalAggregate,
    LogicalCSVScan,
    LogicalDistinct,
    LogicalEmpty,
    LogicalFilter,
    LogicalGet,
    LogicalIntrospectionScan,
    LogicalJoin,
    LogicalLimit,
    LogicalOperator,
    LogicalOrder,
    LogicalProjection,
    LogicalSetOp,
    LogicalValues,
)
from ..types import BOOLEAN
from ..verifier import active_verifier
from . import cost
from .cost import DecisionRecorder

__all__ = ["optimize"]


def _run_pass(session, name, fn, plan):
    """Run one rewrite pass, verified when a quackplan session is open."""
    if session is None:
        return fn(plan)
    return session.run_pass(name, fn, plan)


def optimize(plan: LogicalOperator, database=None) -> LogicalOperator:
    """Apply all rewrite passes to a bound logical plan.

    ``database`` (optional) receives the decision record on its
    ``optimizer_log`` -- the backing store of ``repro_optimizer()`` -- and,
    when ``config.verify_plans`` is on, supplies the quackplan verifier
    that checks the plan after every pass.
    """
    recorder = DecisionRecorder()
    verifier = active_verifier(database)
    session = verifier.begin(plan) if verifier is not None else None
    plan = _run_pass(session, "constant_folding", _fold_operator, plan)
    plan = _run_pass(session, "filter_pushdown",
                     lambda p: _push_filters(p, []), plan)
    plan = _run_pass(session, "join_reordering",
                     lambda p: _reorder_joins(p, recorder), plan)
    plan = _run_pass(session, "limit_pushdown",
                     lambda p: _push_limits(p, recorder), plan)
    plan = _run_pass(session, "column_pruning",
                     lambda p: _prune_columns(
                         p, set(range(len(p.schema))))[0], plan)
    cost.annotate(plan)
    if session is not None:
        session.check_annotated(plan)
    _record_scans(plan, recorder)
    if database is not None and not _scans_system_table(plan,
                                                        "repro_optimizer"):
        database.optimizer_log.publish(recorder)
    return plan


def _scans_system_table(plan: LogicalOperator, name: str) -> bool:
    """True when the plan reads the named system table function -- such
    statements must not overwrite the very log they are reporting."""
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, LogicalIntrospectionScan) \
                and node.function.name == name:
            return True
        stack.extend(node.children)
    return False


def _record_scans(plan: LogicalOperator, recorder: DecisionRecorder) -> None:
    """Log per-scan pushdown state and estimated selectivity."""
    stack = [plan]
    while stack:
        node = stack.pop()
        stack.extend(node.children)
        if not isinstance(node, LogicalGet):
            continue
        base = cost.scan_base_rows(node)
        est = cost.estimated_rows(node)
        selectivity = (est / base) if (est is not None and base > 0) else 1.0
        hint = getattr(node, "limit_hint", None)
        detail = (f"filters={len(node.pushed_filters)} "
                  f"selectivity={selectivity:.4f} rows={int(base)}")
        if hint is not None:
            detail += f" limit_hint={hint}"
        recorder.record("scan", f"scan {node.table_entry.name}", detail, est)


# ---------------------------------------------------------------------------
# constant folding
# ---------------------------------------------------------------------------

def _fold_expression(expression: BoundExpression) -> BoundExpression:
    children = [_fold_expression(child) for child in expression.children]
    if children:
        expression = expression.replace_children(children)
    if isinstance(expression, BoundConstant) or not expression.is_foldable():
        return expression
    try:
        from ..execution.expression_executor import evaluate_standalone

        value = evaluate_standalone(expression)
        return BoundConstant(value, expression.return_type)
    except Error:
        # Expressions that error at fold time (bad cast of a constant, ...)
        # are left in place so the error surfaces at execution, per row.
        return expression


def _fold_operator(plan: LogicalOperator) -> LogicalOperator:
    plan.children = [_fold_operator(child) for child in plan.children]
    if isinstance(plan, LogicalFilter):
        plan.predicate = _fold_expression(plan.predicate)
        if isinstance(plan.predicate, BoundConstant):
            if plan.predicate.value is True:
                return plan.children[0]
            return LogicalEmpty([], list(plan.schema))
    elif isinstance(plan, LogicalProjection):
        plan.expressions = [_fold_expression(expression)
                            for expression in plan.expressions]
    elif isinstance(plan, LogicalAggregate):
        plan.groups = [_fold_expression(group) for group in plan.groups]
        plan.aggregates = [
            aggregate.replace_children(
                [_fold_expression(arg) for arg in aggregate.args])
            if aggregate.args else aggregate
            for aggregate in plan.aggregates
        ]
    elif isinstance(plan, LogicalOrder):
        for item in plan.items:
            item.expression = _fold_expression(item.expression)
    elif isinstance(plan, LogicalJoin):
        if plan.residual is not None:
            plan.residual = _fold_expression(plan.residual)
        plan.conditions = [
            JoinCondition(_fold_expression(condition.left),
                          _fold_expression(condition.right))
            for condition in plan.conditions
        ]
    elif isinstance(plan, LogicalValues):
        plan.rows = [[_fold_expression(value) for value in row]
                     for row in plan.rows]
    return plan


# ---------------------------------------------------------------------------
# filter pushdown
# ---------------------------------------------------------------------------

def _flatten_and(expression: BoundExpression) -> List[BoundExpression]:
    if isinstance(expression, BoundOperator) and expression.op == "and":
        out: List[BoundExpression] = []
        for arg in expression.args:
            out.extend(_flatten_and(arg))
        return out
    return [expression]


def _combine_and(conjuncts: Sequence[BoundExpression]) -> BoundExpression:
    result = conjuncts[0]
    for part in conjuncts[1:]:
        result = BoundOperator("and", [result, part], BOOLEAN)
    return result


def _remap_expression(expression: BoundExpression,
                      mapping: Dict[int, int]) -> BoundExpression:
    if isinstance(expression, BoundColumnRef):
        return BoundColumnRef(mapping[expression.position],
                              expression.return_type, expression.name)
    children = [_remap_expression(child, mapping)
                for child in expression.children]
    if not children:
        return expression
    return expression.replace_children(children)


def _substitute(expression: BoundExpression,
                replacements: List[BoundExpression]) -> BoundExpression:
    """Replace column refs with the given expressions (projection inlining)."""
    if isinstance(expression, BoundColumnRef):
        return replacements[expression.position]
    children = [_substitute(child, replacements) for child in expression.children]
    if not children:
        return expression
    return expression.replace_children(children)


def _rebase(expression: BoundExpression, delta: int) -> BoundExpression:
    if isinstance(expression, BoundColumnRef):
        return BoundColumnRef(expression.position + delta,
                              expression.return_type, expression.name)
    children = [_rebase(child, delta) for child in expression.children]
    if not children:
        return expression
    return expression.replace_children(children)


def _wrap_filter(plan: LogicalOperator,
                 conjuncts: List[BoundExpression]) -> LogicalOperator:
    if not conjuncts:
        return plan
    return LogicalFilter(plan, _combine_and(conjuncts))


def _push_filters(plan: LogicalOperator,
                  conjuncts: List[BoundExpression]) -> LogicalOperator:
    """Push a list of conjuncts (bound to ``plan``'s output) downward."""
    if isinstance(plan, LogicalFilter):
        merged = conjuncts + _flatten_and(plan.predicate)
        return _push_filters(plan.children[0], merged)

    if isinstance(plan, LogicalProjection):
        inlined = [_substitute(conjunct, plan.expressions)
                   for conjunct in conjuncts]
        child = _push_filters(plan.children[0], inlined)
        return LogicalProjection(child, plan.expressions, plan.names)

    if isinstance(plan, LogicalGet):
        # Scans accumulate their own pushed filters; the schema is untouched.
        plan.pushed_filters.extend(conjuncts)  # quacklint: disable=QLP003 -- scan-owned list, schema unchanged
        return plan

    if isinstance(plan, LogicalJoin):
        left_width = len(plan.children[0].schema)
        total_width = len(plan.schema)
        left_parts: List[BoundExpression] = []
        right_parts: List[BoundExpression] = []
        keep: List[BoundExpression] = []
        new_conditions = list(plan.conditions)
        join_type = plan.join_type
        for conjunct in conjuncts:
            refs = conjunct.referenced_columns()
            left_only = all(position < left_width for position in refs)
            right_only = all(position >= left_width for position in refs)
            if left_only and join_type in ("inner", "cross", "left"):
                left_parts.append(conjunct)
            elif right_only and join_type in ("inner", "cross"):
                right_parts.append(_rebase(conjunct, -left_width))
            elif join_type in ("inner", "cross") and isinstance(conjunct, BoundOperator) \
                    and conjunct.op == "=" and len(conjunct.args) == 2:
                # An equality spanning both sides becomes a join condition,
                # turning a cross product into a proper equi-join.
                first, second = conjunct.args
                first_refs = first.referenced_columns()
                second_refs = second.referenced_columns()
                if first_refs and second_refs \
                        and max(first_refs) < left_width <= min(second_refs):
                    new_conditions.append(JoinCondition(
                        first, _rebase(second, -left_width)))
                    join_type = "inner"
                elif first_refs and second_refs \
                        and max(second_refs) < left_width <= min(first_refs):
                    new_conditions.append(JoinCondition(
                        second, _rebase(first, -left_width)))
                    join_type = "inner"
                else:
                    keep.append(conjunct)
            else:
                keep.append(conjunct)
        if join_type == "cross" and new_conditions:
            join_type = "inner"
        left = _push_filters(plan.children[0], left_parts)
        right = _push_filters(plan.children[1], right_parts)
        new_join = LogicalJoin(left, right, join_type, new_conditions,
                               plan.residual)
        return _wrap_filter(new_join, keep)

    if isinstance(plan, LogicalAggregate):
        group_width = len(plan.groups)
        pushable: List[BoundExpression] = []
        keep = []
        for conjunct in conjuncts:
            refs = conjunct.referenced_columns()
            if refs and all(position < group_width for position in refs):
                pushable.append(_substitute(
                    conjunct,
                    list(plan.groups) + [None] * len(plan.aggregates)))  # type: ignore[list-item]
            else:
                keep.append(conjunct)
        child = _push_filters(plan.children[0], pushable)
        # Re-derive the schema from the (unchanged) groups and aggregates
        # rather than borrowing the old node's: quackplan's QLP002 treats a
        # borrowed ``.schema`` as a stale-binding hazard.
        schema = [ColumnSchema(column.name, expression.return_type)
                  for column, expression in zip(
                      plan.schema, list(plan.groups) + list(plan.aggregates))]
        new_aggregate = LogicalAggregate(child, plan.groups, plan.aggregates,
                                         schema)
        return _wrap_filter(new_aggregate, keep)

    if isinstance(plan, (LogicalOrder, LogicalDistinct)):
        child = _push_filters(plan.children[0], conjuncts)
        if isinstance(plan, LogicalOrder):
            return LogicalOrder(child, plan.items)
        return LogicalDistinct(child)

    # LIMIT, set operations, VALUES, CSV scans: filters stay above.
    plan.children = [_push_filters(child, []) for child in plan.children]
    return _wrap_filter(plan, conjuncts)


# ---------------------------------------------------------------------------
# column pruning
# ---------------------------------------------------------------------------

def _expression_refs(expressions) -> Set[int]:
    out: Set[int] = set()
    for expression in expressions:
        out |= expression.referenced_columns()
    return out


def _prune_columns(plan: LogicalOperator,
                   required: Set[int]) -> Tuple[LogicalOperator, Dict[int, int]]:
    """Drop unused output columns; returns the plan and old->new positions."""
    if isinstance(plan, LogicalGet):
        needed = set(required) | _expression_refs(plan.pushed_filters)
        if not needed:
            needed = {0}  # a scan must produce at least one column
        keep = sorted(needed)
        mapping = {old: new for new, old in enumerate(keep)}
        plan.column_ids = [plan.column_ids[old] for old in keep]  # quacklint: disable=QLP001 -- leaf rebind: ids and schema are narrowed together
        plan.schema = [plan.schema[old] for old in keep]  # quacklint: disable=QLP001 -- narrowed in lockstep with column_ids above
        plan.pushed_filters = [_remap_expression(predicate, mapping)
                               for predicate in plan.pushed_filters]
        return plan, mapping

    if isinstance(plan, LogicalProjection):
        keep = sorted(required) if required else [0]
        child_required = _expression_refs(plan.expressions[old] for old in keep)
        child, child_mapping = _prune_columns(plan.children[0], child_required)
        expressions = [_remap_expression(plan.expressions[old], child_mapping)
                       for old in keep]
        names = [plan.schema[old].name for old in keep]
        mapping = {old: new for new, old in enumerate(keep)}
        return LogicalProjection(child, expressions, names), mapping

    if isinstance(plan, LogicalFilter):
        child_required = set(required) | plan.predicate.referenced_columns()
        child, mapping = _prune_columns(plan.children[0], child_required)
        predicate = _remap_expression(plan.predicate, mapping)
        return LogicalFilter(child, predicate), mapping

    if isinstance(plan, LogicalJoin):
        left_width = len(plan.children[0].schema)
        combined = set(required)
        if plan.residual is not None:
            combined |= plan.residual.referenced_columns()
        left_required = {position for position in combined if position < left_width}
        right_required = {position - left_width for position in combined
                          if position >= left_width}
        for condition in plan.conditions:
            left_required |= condition.left.referenced_columns()
            right_required |= condition.right.referenced_columns()
        left, left_mapping = _prune_columns(plan.children[0], left_required)
        right, right_mapping = _prune_columns(plan.children[1], right_required)
        new_left_width = len(left.schema)
        conditions = [
            JoinCondition(_remap_expression(condition.left, left_mapping),
                          _remap_expression(condition.right, right_mapping))
            for condition in plan.conditions
        ]
        combined_mapping = dict(left_mapping)
        for old, new in right_mapping.items():
            combined_mapping[old + left_width] = new + new_left_width
        residual = _remap_expression(plan.residual, combined_mapping) \
            if plan.residual is not None else None
        return LogicalJoin(left, right, plan.join_type, conditions, residual), \
            combined_mapping

    if isinstance(plan, LogicalAggregate):
        group_width = len(plan.groups)
        keep_aggregates = sorted(position - group_width for position in required
                                 if position >= group_width)
        aggregates = [plan.aggregates[index] for index in keep_aggregates]
        child_required = _expression_refs(plan.groups)
        child_required |= _expression_refs(
            arg for aggregate in aggregates for arg in aggregate.args)
        child, child_mapping = _prune_columns(plan.children[0], child_required)
        groups = [_remap_expression(group, child_mapping) for group in plan.groups]
        aggregates = [
            aggregate.replace_children([
                _remap_expression(arg, child_mapping) for arg in aggregate.args])
            if aggregate.args else aggregate
            for aggregate in aggregates
        ]
        schema = plan.schema[:group_width] + [
            plan.schema[group_width + index] for index in keep_aggregates
        ]
        mapping = {position: position for position in range(group_width)}
        for new_index, old_index in enumerate(keep_aggregates):
            mapping[group_width + old_index] = group_width + new_index
        return LogicalAggregate(child, groups, aggregates, schema), mapping

    if isinstance(plan, LogicalOrder):
        child_required = set(required) | _expression_refs(
            item.expression for item in plan.items)
        child, mapping = _prune_columns(plan.children[0], child_required)
        for item in plan.items:
            item.expression = _remap_expression(item.expression, mapping)
        return LogicalOrder(child, plan.items), mapping

    if isinstance(plan, LogicalLimit):
        child, mapping = _prune_columns(plan.children[0], required)
        return LogicalLimit(child, plan.limit, plan.offset), mapping

    if isinstance(plan, LogicalValues):
        keep = sorted(required) if required else list(range(len(plan.schema)))
        plan.rows = [[row[old] for old in keep] for row in plan.rows]
        plan.schema = [plan.schema[old] for old in keep]  # quacklint: disable=QLP001 -- leaf rebind: rows and schema are narrowed together
        mapping = {old: new for new, old in enumerate(keep)}
        return plan, mapping

    # DISTINCT, set operations, CSV scans, EMPTY: all columns are semantic.
    full = set(range(len(plan.schema)))
    identity = {position: position for position in full}
    new_children = []
    for child in plan.children:
        pruned, child_mapping = _prune_columns(
            child, set(range(len(child.schema))))
        if any(child_mapping[position] != position for position in child_mapping):
            raise InternalError("Full-requirement pruning changed a child schema")
        new_children.append(pruned)
    plan.children = new_children
    return plan, identity


# ---------------------------------------------------------------------------
# join reordering
# ---------------------------------------------------------------------------

class _FlatRelation:
    """One leaf of a flattened inner/cross-join region."""

    __slots__ = ("node", "offset", "width", "rows")

    def __init__(self, node: LogicalOperator, offset: int) -> None:
        self.node = node
        self.offset = offset
        self.width = len(node.schema)
        self.rows = 0.0


class _FlatPredicate:
    """One predicate of a region, with column refs in *global* coordinates
    (positions into the concatenated schema of all relations).

    Equi predicates keep their two sides separate (``left``/``right``) so
    they can be re-attached as join conditions of whichever join step first
    covers both sides; everything else is a ``general`` expression that
    becomes a join residual (or an initial filter)."""

    __slots__ = ("left", "right", "left_rels", "right_rels", "expr", "rels",
                 "left_ndv", "right_ndv", "used")

    def __init__(self, left: Optional[BoundExpression] = None,
                 right: Optional[BoundExpression] = None,
                 expr: Optional[BoundExpression] = None) -> None:
        self.left = left
        self.right = right
        self.expr = expr
        self.left_rels: Set[int] = set()
        self.right_rels: Set[int] = set()
        self.rels: Set[int] = set()
        self.left_ndv: Optional[float] = None
        self.right_ndv: Optional[float] = None
        self.used = False

    @property
    def is_equi(self) -> bool:
        return self.expr is None

    def as_expr(self) -> BoundExpression:
        """The predicate as one boolean expression (global coordinates)."""
        if self.expr is not None:
            return self.expr
        assert self.left is not None and self.right is not None
        return BoundOperator("=", [self.left, self.right], BOOLEAN)


def _flatten_join_region(plan: LogicalOperator,
                         offset: int,
                         relations: List[_FlatRelation],
                         predicates: List[_FlatPredicate]) -> None:
    """Collect the leaves and predicates of a maximal inner/cross region.

    Children are concatenated left-to-right, so a node's subtree occupies a
    contiguous global position range starting at ``offset``; rebasing its
    expressions by ``offset`` yields global coordinates."""
    if isinstance(plan, LogicalJoin) and plan.join_type in ("inner", "cross"):
        left, right = plan.children
        left_width = len(left.schema)
        _flatten_join_region(left, offset, relations, predicates)
        _flatten_join_region(right, offset + left_width, relations, predicates)
        for condition in plan.conditions:
            predicates.append(_FlatPredicate(
                left=_rebase(condition.left, offset),
                right=_rebase(condition.right, offset + left_width)))
        if plan.residual is not None:
            for conjunct in _flatten_and(plan.residual):
                predicates.append(
                    _FlatPredicate(expr=_rebase(conjunct, offset)))
    else:
        relations.append(_FlatRelation(plan, offset))


def _owning_relations(refs: Set[int],
                      relations: List[_FlatRelation]) -> Set[int]:
    out: Set[int] = set()
    for position in refs:
        for index, relation in enumerate(relations):
            if relation.offset <= position < relation.offset + relation.width:
                out.add(index)
                break
    return out


def _side_ndv(expression: Optional[BoundExpression], rels: Set[int],
              relations: List[_FlatRelation]) -> Optional[float]:
    """NDV of one equi side, when it is a bare column of one relation."""
    if expression is None or len(rels) != 1 \
            or not isinstance(expression, BoundColumnRef):
        return None
    relation = relations[next(iter(rels))]
    return cost.column_ndv(relation.node,
                           expression.position - relation.offset)


def _pair_estimate(acc_rows: float, cand_rows: float,
                   applicable: List[Tuple[Optional[float], Optional[float]]]
                   ) -> float:
    """Estimated output of joining the accumulated plan with a candidate.

    ``applicable`` lists (acc-side NDV, candidate-side NDV) per usable equi
    predicate; unknown NDVs default to the respective input size."""
    output = acc_rows * cand_rows
    for acc_ndv, cand_ndv in applicable:
        if acc_ndv is None:
            acc_ndv = max(acc_rows, 1.0)
        if cand_ndv is None:
            cand_ndv = max(cand_rows, 1.0)
        output /= max(acc_ndv, cand_ndv, 1.0)
    return output


def _applicable_equi(predicates: List[_FlatPredicate], placed: Set[int],
                     candidate: int
                     ) -> List[Tuple[_FlatPredicate, bool]]:
    """Equi predicates joinable when ``candidate`` is attached to ``placed``.

    The bool marks whether the predicate's *left* side is the accumulated
    (placed) side."""
    out: List[Tuple[_FlatPredicate, bool]] = []
    for predicate in predicates:
        if predicate.used or not predicate.is_equi:
            continue
        if not predicate.rels or not predicate.rels <= placed | {candidate}:
            continue
        if predicate.left_rels <= placed and predicate.right_rels \
                and predicate.right_rels <= {candidate}:
            out.append((predicate, True))
        elif predicate.right_rels <= placed and predicate.left_rels \
                and predicate.left_rels <= {candidate}:
            out.append((predicate, False))
    return out


def _relation_label(node: LogicalOperator) -> str:
    if isinstance(node, LogicalGet):
        return node.table_entry.name
    return type(node).__name__.replace("Logical", "").lower()


def _reorder_joins(plan: LogicalOperator,
                   recorder: DecisionRecorder) -> LogicalOperator:
    """Greedy selectivity-ordered join reordering (pass 3)."""
    if not (isinstance(plan, LogicalJoin)
            and plan.join_type in ("inner", "cross")
            and cost.statistics_enabled()):
        plan.children = [_reorder_joins(child, recorder)
                         for child in plan.children]
        return plan

    relations: List[_FlatRelation] = []
    predicates: List[_FlatPredicate] = []
    _flatten_join_region(plan, 0, relations, predicates)
    for relation in relations:
        relation.node = _reorder_joins(relation.node, recorder)
        relation.rows = cost.annotate(relation.node)
    for predicate in predicates:
        if predicate.is_equi:
            assert predicate.left is not None and predicate.right is not None
            predicate.left_rels = _owning_relations(
                predicate.left.referenced_columns(), relations)
            predicate.right_rels = _owning_relations(
                predicate.right.referenced_columns(), relations)
            predicate.rels = predicate.left_rels | predicate.right_rels
            predicate.left_ndv = _side_ndv(predicate.left,
                                           predicate.left_rels, relations)
            predicate.right_ndv = _side_ndv(predicate.right,
                                            predicate.right_rels, relations)
        else:
            assert predicate.expr is not None
            predicate.rels = _owning_relations(
                predicate.expr.referenced_columns(), relations)

    count = len(relations)
    # Greedy order: smallest relation first, then repeatedly the connected
    # relation minimizing the estimated intermediate; cross products last.
    start = min(range(count), key=lambda index: (relations[index].rows, index))
    order = [start]
    placed = {start}
    acc_rows = relations[start].rows
    step_rows = [acc_rows]
    while len(placed) < count:
        best_index: Optional[int] = None
        best_est = 0.0
        best_connected = False
        for candidate in range(count):
            if candidate in placed:
                continue
            applicable = _applicable_equi(predicates, placed, candidate)
            connected = bool(applicable)
            ndv_pairs = [
                (p.left_ndv, p.right_ndv) if acc_is_left
                else (p.right_ndv, p.left_ndv)
                for p, acc_is_left in applicable
            ]
            est = _pair_estimate(acc_rows, relations[candidate].rows,
                                 ndv_pairs)
            better = best_index is None \
                or (connected and not best_connected) \
                or (connected == best_connected and est < best_est)
            if better:
                best_index, best_est, best_connected = candidate, est, connected
        assert best_index is not None
        order.append(best_index)
        placed.add(best_index)
        acc_rows = best_est
        step_rows.append(best_est)

    rebuilt = _rebuild_join_region(relations, predicates, order, step_rows)
    recorder.record(
        "join_order",
        " ".join(_relation_label(relations[index].node) for index in order),
        f"relations={count} est_rows={int(round(acc_rows))}",
        acc_rows)
    return rebuilt


def _rebuild_join_region(relations: List[_FlatRelation],
                         predicates: List[_FlatPredicate],
                         order: List[int],
                         step_rows: List[float]) -> LogicalOperator:
    """Reassemble a flattened region in ``order``, per-step choosing the
    smaller input as the hash build side (the right child), and restoring
    the original column order with a final projection."""
    original_schema: List[ColumnSchema] = [None] * sum(  # type: ignore[list-item]
        relation.width for relation in relations)
    for relation in relations:
        for index in range(relation.width):
            original_schema[relation.offset + index] = \
                relation.node.schema[index]

    start = relations[order[0]]
    acc: LogicalOperator = start.node
    mapping = {start.offset + index: index for index in range(start.width)}
    placed = {order[0]}
    acc_rows = step_rows[0]

    # Predicates already fully covered by the first relation (single-table
    # residuals, constant predicates) become a plain filter on top of it.
    initial = [predicate for predicate in predicates
               if not predicate.used and predicate.rels <= placed]
    if initial:
        parts = []
        for predicate in initial:
            predicate.used = True
            parts.append(_remap_expression(predicate.as_expr(), mapping))
        acc = _wrap_filter(acc, parts)

    for step, rel_index in enumerate(order[1:], start=1):
        relation = relations[rel_index]
        local = {relation.offset + index: index
                 for index in range(relation.width)}
        conditions: List[Tuple[BoundExpression, BoundExpression]] = []
        residual_parts: List[BoundExpression] = []
        for predicate in predicates:
            if predicate.used \
                    or not predicate.rels <= placed | {rel_index}:
                continue
            predicate.used = True
            if predicate.is_equi:
                if predicate.left_rels <= placed and predicate.right_rels \
                        and predicate.right_rels <= {rel_index}:
                    conditions.append((predicate.left, predicate.right))
                    continue
                if predicate.right_rels <= placed and predicate.left_rels \
                        and predicate.left_rels <= {rel_index}:
                    conditions.append((predicate.right, predicate.left))
                    continue
            residual_parts.append(predicate.as_expr())
        rel_rows = relation.rows
        if rel_rows <= acc_rows:
            # New relation is the smaller input: keep it on the right (the
            # hash build side), the original left-deep orientation.
            left_node: LogicalOperator = acc
            right_node: LogicalOperator = relation.node
            new_mapping = dict(mapping)
            base = len(acc.schema)
            for index in range(relation.width):
                new_mapping[relation.offset + index] = base + index
            join_conditions = [
                JoinCondition(_remap_expression(acc_side, mapping),
                              _remap_expression(rel_side, local))
                for acc_side, rel_side in conditions
            ]
        else:
            # Accumulated intermediate is smaller: build on IT and stream
            # the new (larger) relation as the probe side.
            left_node, right_node = relation.node, acc
            new_mapping = {position: target + relation.width
                           for position, target in mapping.items()}
            for index in range(relation.width):
                new_mapping[relation.offset + index] = index
            join_conditions = [
                JoinCondition(_remap_expression(rel_side, local),
                              _remap_expression(acc_side, mapping))
                for acc_side, rel_side in conditions
            ]
        residual = None
        if residual_parts:
            residual = _combine_and([
                _remap_expression(part, new_mapping)
                for part in residual_parts
            ])
        join_type = "inner" if join_conditions else "cross"
        acc = LogicalJoin(left_node, right_node, join_type, join_conditions,
                          residual)
        mapping = new_mapping
        placed.add(rel_index)
        acc_rows = step_rows[step]

    total = len(original_schema)
    if any(mapping[position] != position for position in range(total)):
        expressions = [
            BoundColumnRef(mapping[position],
                           original_schema[position].dtype,
                           original_schema[position].name)
            for position in range(total)
        ]
        acc = LogicalProjection(
            acc, expressions,
            [column.name for column in original_schema])
    return acc


# ---------------------------------------------------------------------------
# limit pushdown
# ---------------------------------------------------------------------------

def _push_limits(plan: LogicalOperator,
                 recorder: DecisionRecorder) -> LogicalOperator:
    """Move LIMIT toward the sources (pass 4).

    * stacked limits merge;
    * LIMIT commutes past row-wise projections (which exposes
      ``LIMIT(ORDER BY)`` pairs for the physical Top-N fusion);
    * a LIMIT directly above a scan leaves a ``limit_hint`` on the scan so
      it stops fetching once enough rows have passed its filters (the
      LIMIT node stays for offset handling and exactness).
    """
    if isinstance(plan, LogicalLimit):
        child = plan.children[0]
        if isinstance(child, LogicalLimit):
            # Offsets add; the outer window must fit inside the inner one.
            offset = child.offset + plan.offset
            if child.limit is None:
                limit = plan.limit
            else:
                available = max(child.limit - plan.offset, 0)
                limit = available if plan.limit is None \
                    else min(plan.limit, available)
            merged = LogicalLimit(child.children[0], limit, offset)
            recorder.record("limit", "merge stacked limits",
                            f"limit={limit} offset={offset}")
            return _push_limits(merged, recorder)
        if isinstance(child, LogicalProjection):
            inner = _push_limits(
                LogicalLimit(child.children[0], plan.limit, plan.offset),
                recorder)
            recorder.record("limit", "push past projection",
                            f"limit={plan.limit} offset={plan.offset}")
            return LogicalProjection(inner, child.expressions, child.names)
        if isinstance(child, LogicalOrder) and plan.limit is not None:
            child.children = [_push_limits(grandchild, recorder)
                              for grandchild in child.children]
            recorder.record("limit", "top-n fusion",
                            f"limit={plan.limit} offset={plan.offset}")
            return plan
        if isinstance(child, LogicalGet) and plan.limit is not None:
            child.limit_hint = plan.limit + plan.offset
            recorder.record(
                "limit", f"scan limit hint {child.table_entry.name}",
                f"hint={child.limit_hint}")
            return plan
    plan.children = [_push_limits(child, recorder)
                     for child in plan.children]
    return plan
