"""Logical plan optimizer.

Three rewrite passes, run in order:

1. **Constant folding** -- column-free expression subtrees are evaluated at
   plan time; trivially-true filters disappear, trivially-false ones
   collapse the subtree to an empty source.
2. **Filter pushdown** -- WHERE conjuncts migrate toward the scans: through
   projections (by substitution), through inner joins (splitting per side,
   turning cross products into equi-joins), through ORDER BY and DISTINCT,
   and finally *into* :class:`~repro.planner.logical.LogicalGet`, where they
   are evaluated right after each chunk is fetched.
3. **Column pruning** -- only the columns an operator's ancestors actually
   reference are scanned.  This matters doubly here: the paper's workloads
   "typically only target a subset of the columns of a large table" (§2),
   and our column store fetches each column independently.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import BinderError, Error, InternalError
from ..planner.expressions import (
    BoundColumnRef,
    BoundConstant,
    BoundExpression,
    BoundOperator,
)
from ..planner.logical import (
    ColumnSchema,
    JoinCondition,
    LogicalAggregate,
    LogicalCSVScan,
    LogicalDistinct,
    LogicalEmpty,
    LogicalFilter,
    LogicalGet,
    LogicalJoin,
    LogicalLimit,
    LogicalOperator,
    LogicalOrder,
    LogicalProjection,
    LogicalSetOp,
    LogicalValues,
)
from ..types import BOOLEAN

__all__ = ["optimize"]


def optimize(plan: LogicalOperator) -> LogicalOperator:
    """Apply all rewrite passes to a bound logical plan."""
    plan = _fold_operator(plan)
    plan = _push_filters(plan, [])
    plan, _ = _prune_columns(plan, set(range(len(plan.schema))))
    return plan


# ---------------------------------------------------------------------------
# constant folding
# ---------------------------------------------------------------------------

def _fold_expression(expression: BoundExpression) -> BoundExpression:
    children = [_fold_expression(child) for child in expression.children]
    if children:
        expression = expression.replace_children(children)
    if isinstance(expression, BoundConstant) or not expression.is_foldable():
        return expression
    try:
        from ..execution.expression_executor import evaluate_standalone

        value = evaluate_standalone(expression)
        return BoundConstant(value, expression.return_type)
    except Error:
        # Expressions that error at fold time (bad cast of a constant, ...)
        # are left in place so the error surfaces at execution, per row.
        return expression


def _fold_operator(plan: LogicalOperator) -> LogicalOperator:
    plan.children = [_fold_operator(child) for child in plan.children]
    if isinstance(plan, LogicalFilter):
        plan.predicate = _fold_expression(plan.predicate)
        if isinstance(plan.predicate, BoundConstant):
            if plan.predicate.value is True:
                return plan.children[0]
            return LogicalEmpty([], list(plan.schema))
    elif isinstance(plan, LogicalProjection):
        plan.expressions = [_fold_expression(expression)
                            for expression in plan.expressions]
    elif isinstance(plan, LogicalAggregate):
        plan.groups = [_fold_expression(group) for group in plan.groups]
        plan.aggregates = [
            aggregate.replace_children(
                [_fold_expression(arg) for arg in aggregate.args])
            if aggregate.args else aggregate
            for aggregate in plan.aggregates
        ]
    elif isinstance(plan, LogicalOrder):
        for item in plan.items:
            item.expression = _fold_expression(item.expression)
    elif isinstance(plan, LogicalJoin):
        if plan.residual is not None:
            plan.residual = _fold_expression(plan.residual)
        plan.conditions = [
            JoinCondition(_fold_expression(condition.left),
                          _fold_expression(condition.right))
            for condition in plan.conditions
        ]
    elif isinstance(plan, LogicalValues):
        plan.rows = [[_fold_expression(value) for value in row]
                     for row in plan.rows]
    return plan


# ---------------------------------------------------------------------------
# filter pushdown
# ---------------------------------------------------------------------------

def _flatten_and(expression: BoundExpression) -> List[BoundExpression]:
    if isinstance(expression, BoundOperator) and expression.op == "and":
        out: List[BoundExpression] = []
        for arg in expression.args:
            out.extend(_flatten_and(arg))
        return out
    return [expression]


def _combine_and(conjuncts: Sequence[BoundExpression]) -> BoundExpression:
    result = conjuncts[0]
    for part in conjuncts[1:]:
        result = BoundOperator("and", [result, part], BOOLEAN)
    return result


def _remap_expression(expression: BoundExpression,
                      mapping: Dict[int, int]) -> BoundExpression:
    if isinstance(expression, BoundColumnRef):
        return BoundColumnRef(mapping[expression.position],
                              expression.return_type, expression.name)
    children = [_remap_expression(child, mapping)
                for child in expression.children]
    if not children:
        return expression
    return expression.replace_children(children)


def _substitute(expression: BoundExpression,
                replacements: List[BoundExpression]) -> BoundExpression:
    """Replace column refs with the given expressions (projection inlining)."""
    if isinstance(expression, BoundColumnRef):
        return replacements[expression.position]
    children = [_substitute(child, replacements) for child in expression.children]
    if not children:
        return expression
    return expression.replace_children(children)


def _rebase(expression: BoundExpression, delta: int) -> BoundExpression:
    if isinstance(expression, BoundColumnRef):
        return BoundColumnRef(expression.position + delta,
                              expression.return_type, expression.name)
    children = [_rebase(child, delta) for child in expression.children]
    if not children:
        return expression
    return expression.replace_children(children)


def _wrap_filter(plan: LogicalOperator,
                 conjuncts: List[BoundExpression]) -> LogicalOperator:
    if not conjuncts:
        return plan
    return LogicalFilter(plan, _combine_and(conjuncts))


def _push_filters(plan: LogicalOperator,
                  conjuncts: List[BoundExpression]) -> LogicalOperator:
    """Push a list of conjuncts (bound to ``plan``'s output) downward."""
    if isinstance(plan, LogicalFilter):
        merged = conjuncts + _flatten_and(plan.predicate)
        return _push_filters(plan.children[0], merged)

    if isinstance(plan, LogicalProjection):
        inlined = [_substitute(conjunct, plan.expressions)
                   for conjunct in conjuncts]
        child = _push_filters(plan.children[0], inlined)
        return LogicalProjection(child, plan.expressions, plan.names)

    if isinstance(plan, LogicalGet):
        plan.pushed_filters.extend(conjuncts)
        return plan

    if isinstance(plan, LogicalJoin):
        left_width = len(plan.children[0].schema)
        total_width = len(plan.schema)
        left_parts: List[BoundExpression] = []
        right_parts: List[BoundExpression] = []
        keep: List[BoundExpression] = []
        new_conditions = list(plan.conditions)
        join_type = plan.join_type
        for conjunct in conjuncts:
            refs = conjunct.referenced_columns()
            left_only = all(position < left_width for position in refs)
            right_only = all(position >= left_width for position in refs)
            if left_only and join_type in ("inner", "cross", "left"):
                left_parts.append(conjunct)
            elif right_only and join_type in ("inner", "cross"):
                right_parts.append(_rebase(conjunct, -left_width))
            elif join_type in ("inner", "cross") and isinstance(conjunct, BoundOperator) \
                    and conjunct.op == "=" and len(conjunct.args) == 2:
                # An equality spanning both sides becomes a join condition,
                # turning a cross product into a proper equi-join.
                first, second = conjunct.args
                first_refs = first.referenced_columns()
                second_refs = second.referenced_columns()
                if first_refs and second_refs \
                        and max(first_refs) < left_width <= min(second_refs):
                    new_conditions.append(JoinCondition(
                        first, _rebase(second, -left_width)))
                    join_type = "inner"
                elif first_refs and second_refs \
                        and max(second_refs) < left_width <= min(first_refs):
                    new_conditions.append(JoinCondition(
                        second, _rebase(first, -left_width)))
                    join_type = "inner"
                else:
                    keep.append(conjunct)
            else:
                keep.append(conjunct)
        if join_type == "cross" and new_conditions:
            join_type = "inner"
        left = _push_filters(plan.children[0], left_parts)
        right = _push_filters(plan.children[1], right_parts)
        new_join = LogicalJoin(left, right, join_type, new_conditions,
                               plan.residual)
        return _wrap_filter(new_join, keep)

    if isinstance(plan, LogicalAggregate):
        group_width = len(plan.groups)
        pushable: List[BoundExpression] = []
        keep = []
        for conjunct in conjuncts:
            refs = conjunct.referenced_columns()
            if refs and all(position < group_width for position in refs):
                pushable.append(_substitute(
                    conjunct,
                    list(plan.groups) + [None] * len(plan.aggregates)))  # type: ignore[list-item]
            else:
                keep.append(conjunct)
        child = _push_filters(plan.children[0], pushable)
        new_aggregate = LogicalAggregate(child, plan.groups, plan.aggregates,
                                         plan.schema)
        return _wrap_filter(new_aggregate, keep)

    if isinstance(plan, (LogicalOrder, LogicalDistinct)):
        child = _push_filters(plan.children[0], conjuncts)
        if isinstance(plan, LogicalOrder):
            return LogicalOrder(child, plan.items)
        return LogicalDistinct(child)

    # LIMIT, set operations, VALUES, CSV scans: filters stay above.
    plan.children = [_push_filters(child, []) for child in plan.children]
    return _wrap_filter(plan, conjuncts)


# ---------------------------------------------------------------------------
# column pruning
# ---------------------------------------------------------------------------

def _expression_refs(expressions) -> Set[int]:
    out: Set[int] = set()
    for expression in expressions:
        out |= expression.referenced_columns()
    return out


def _prune_columns(plan: LogicalOperator,
                   required: Set[int]) -> Tuple[LogicalOperator, Dict[int, int]]:
    """Drop unused output columns; returns the plan and old->new positions."""
    if isinstance(plan, LogicalGet):
        needed = set(required) | _expression_refs(plan.pushed_filters)
        if not needed:
            needed = {0}  # a scan must produce at least one column
        keep = sorted(needed)
        mapping = {old: new for new, old in enumerate(keep)}
        plan.column_ids = [plan.column_ids[old] for old in keep]
        plan.schema = [plan.schema[old] for old in keep]
        plan.pushed_filters = [_remap_expression(predicate, mapping)
                               for predicate in plan.pushed_filters]
        return plan, mapping

    if isinstance(plan, LogicalProjection):
        keep = sorted(required) if required else [0]
        child_required = _expression_refs(plan.expressions[old] for old in keep)
        child, child_mapping = _prune_columns(plan.children[0], child_required)
        expressions = [_remap_expression(plan.expressions[old], child_mapping)
                       for old in keep]
        names = [plan.schema[old].name for old in keep]
        mapping = {old: new for new, old in enumerate(keep)}
        return LogicalProjection(child, expressions, names), mapping

    if isinstance(plan, LogicalFilter):
        child_required = set(required) | plan.predicate.referenced_columns()
        child, mapping = _prune_columns(plan.children[0], child_required)
        predicate = _remap_expression(plan.predicate, mapping)
        return LogicalFilter(child, predicate), mapping

    if isinstance(plan, LogicalJoin):
        left_width = len(plan.children[0].schema)
        combined = set(required)
        if plan.residual is not None:
            combined |= plan.residual.referenced_columns()
        left_required = {position for position in combined if position < left_width}
        right_required = {position - left_width for position in combined
                          if position >= left_width}
        for condition in plan.conditions:
            left_required |= condition.left.referenced_columns()
            right_required |= condition.right.referenced_columns()
        left, left_mapping = _prune_columns(plan.children[0], left_required)
        right, right_mapping = _prune_columns(plan.children[1], right_required)
        new_left_width = len(left.schema)
        conditions = [
            JoinCondition(_remap_expression(condition.left, left_mapping),
                          _remap_expression(condition.right, right_mapping))
            for condition in plan.conditions
        ]
        combined_mapping = dict(left_mapping)
        for old, new in right_mapping.items():
            combined_mapping[old + left_width] = new + new_left_width
        residual = _remap_expression(plan.residual, combined_mapping) \
            if plan.residual is not None else None
        return LogicalJoin(left, right, plan.join_type, conditions, residual), \
            combined_mapping

    if isinstance(plan, LogicalAggregate):
        group_width = len(plan.groups)
        keep_aggregates = sorted(position - group_width for position in required
                                 if position >= group_width)
        aggregates = [plan.aggregates[index] for index in keep_aggregates]
        child_required = _expression_refs(plan.groups)
        child_required |= _expression_refs(
            arg for aggregate in aggregates for arg in aggregate.args)
        child, child_mapping = _prune_columns(plan.children[0], child_required)
        groups = [_remap_expression(group, child_mapping) for group in plan.groups]
        aggregates = [
            aggregate.replace_children([
                _remap_expression(arg, child_mapping) for arg in aggregate.args])
            if aggregate.args else aggregate
            for aggregate in aggregates
        ]
        schema = plan.schema[:group_width] + [
            plan.schema[group_width + index] for index in keep_aggregates
        ]
        mapping = {position: position for position in range(group_width)}
        for new_index, old_index in enumerate(keep_aggregates):
            mapping[group_width + old_index] = group_width + new_index
        return LogicalAggregate(child, groups, aggregates, schema), mapping

    if isinstance(plan, LogicalOrder):
        child_required = set(required) | _expression_refs(
            item.expression for item in plan.items)
        child, mapping = _prune_columns(plan.children[0], child_required)
        for item in plan.items:
            item.expression = _remap_expression(item.expression, mapping)
        return LogicalOrder(child, plan.items), mapping

    if isinstance(plan, LogicalLimit):
        child, mapping = _prune_columns(plan.children[0], required)
        return LogicalLimit(child, plan.limit, plan.offset), mapping

    if isinstance(plan, LogicalValues):
        keep = sorted(required) if required else list(range(len(plan.schema)))
        plan.rows = [[row[old] for old in keep] for row in plan.rows]
        plan.schema = [plan.schema[old] for old in keep]
        mapping = {old: new for new, old in enumerate(keep)}
        return plan, mapping

    # DISTINCT, set operations, CSV scans, EMPTY: all columns are semantic.
    full = set(range(len(plan.schema)))
    identity = {position: position for position in full}
    new_children = []
    for child in plan.children:
        pruned, child_mapping = _prune_columns(
            child, set(range(len(child.schema))))
        if any(child_mapping[position] != position for position in child_mapping):
            raise InternalError("Full-requirement pruning changed a child schema")
        new_children.append(pruned)
    plan.children = new_children
    return plan, identity
