"""Database configuration.

The paper's Cooperation requirement (§4, §6): the embedded database must not
assume it owns the machine.  DuckDB "allows the user to manually set hard
limits on memory and CPU core utilization"; the same knobs exist here, plus
switches for the resilience features (block checksums, buffer memtests) and
the reactive resource controller.

Options are also reachable at runtime through ``PRAGMA name = value``.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Any, Dict, Optional

from .errors import InvalidInputError

__all__ = ["DatabaseConfig"]


_SIZE_SUFFIXES = {
    "B": 1,
    "KB": 10**3,
    "MB": 10**6,
    "GB": 10**9,
    "KIB": 2**10,
    "MIB": 2**20,
    "GIB": 2**30,
}


def parse_memory_size(value: Any) -> int:
    """Parse ``"256MB"``-style strings (or plain ints) into a byte count."""
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if value <= 0:
            raise InvalidInputError("memory size must be positive")
        return int(value)
    if not isinstance(value, str):
        raise InvalidInputError(f"Cannot parse memory size from {value!r}")
    text = value.strip().upper()
    for suffix in sorted(_SIZE_SUFFIXES, key=len, reverse=True):
        if text.endswith(suffix):
            number = text[: -len(suffix)].strip()
            try:
                return int(float(number) * _SIZE_SUFFIXES[suffix])
            except ValueError:
                raise InvalidInputError(f"Cannot parse memory size from {value!r}") from None
    try:
        return int(text)
    except ValueError:
        raise InvalidInputError(f"Cannot parse memory size from {value!r}") from None


@dataclasses.dataclass
class DatabaseConfig:
    """Tunable knobs of a database instance.

    Attributes
    ----------
    memory_limit:
        Hard cap, in bytes, on memory used for buffers and query
        intermediates.  Operators that would exceed it must spill (external
        merge join / external sort) or abort with ``OutOfMemoryError``.
    threads:
        Maximum worker threads the engine may use.  ``1`` keeps the engine
        single-threaded (the co-resident application gets the other cores);
        values above 1 enable morsel-driven parallel scans and aggregation.
        The ``REPRO_THREADS`` environment variable provides the default for
        configs built via :meth:`from_dict` (i.e. ``connect(config=...)``)
        when the option is not given explicitly.
    morsel_size:
        Rows per morsel of a parallel pipeline (rounded down to a whole
        number of scan chunks at execution time).  Smaller morsels spread
        load more evenly but add scheduling overhead.
    verify_checksums:
        Verify the CRC-32 of every storage block on read (paper §6,
        Resilience).  Disabling this is only intended for benchmarking the
        cost of verification.
    buffer_memtest:
        Run a moving-inversions memory test on buffer allocation, and avoid
        regions that fail (paper §6 "we plan to integrate memory tests into
        the buffer manager").
    reactive_resources:
        Enable the reactive controller that switches intermediate
        compression and join algorithms under memory pressure (Figure 1).
    wal_autocheckpoint:
        Checkpoint automatically once the WAL exceeds this many bytes
        (0 disables auto-checkpointing).
    checkpoint_on_close:
        Write a checkpoint when the database is cleanly closed.
    trace_enabled:
        Enable the quacktrace span tracer (see :mod:`repro.observability`):
        every statement is profiled into an operator span tree.  Off by
        default -- the disabled tracer costs one ``is None`` test per
        operator.  The ``REPRO_TRACE`` environment variable provides the
        default for configs built via :meth:`from_dict` when the option is
        not given explicitly.
    slow_query_ms:
        Statements slower than this many milliseconds are captured in the
        in-process slow-query log (with their full trace when tracing is
        enabled).  ``0`` disables the log.
    profile_enabled:
        Run the sampling wall-clock profiler (see
        :mod:`repro.introspection.profiler`): a background thread samples
        worker stacks ``profile_hz`` times per second into per-operator/
        per-phase self time, queryable via ``repro_profile()``.  Also
        reachable as ``PRAGMA enable_profiling``/``disable_profiling``; the
        ``REPRO_PROFILE`` environment variable provides the default for
        configs built via :meth:`from_dict`.
    profile_hz:
        Stack samples per second while profiling is enabled (clamped to
        [1, 1000] by the profiler).
    verify_plans:
        Run quackplan (see :mod:`repro.verifier`) on every statement: each
        optimizer pass and every logical->physical lowering is checked
        against the plan invariants, violations surface through
        ``repro_plan_checks()`` and raise
        :class:`~repro.errors.PlanVerificationError`.  Off by default with
        near-zero overhead (one attribute test per optimize call); the
        ``REPRO_VERIFY_PLANS`` environment variable provides the default
        for configs built via :meth:`from_dict` -- tests and CI turn it on.
    plan_cache_entries:
        Capacity (in plans) of the shared plan cache: bound+optimized
        SELECT plans memoized on (SQL text, parameter-type fingerprint)
        and invalidated by DDL commits via the catalog version.  ``0``
        disables plan caching.
    result_cache_entries:
        Capacity (in result sets) of the shared read-only result cache,
        keyed on (SQL text, parameter values, data version) -- any
        committed write moves the data version, so stale entries are never
        served and age out by LRU.  ``0`` disables result caching.
    result_cache_max_rows:
        Results larger than this many rows are not cached (they would
        evict many small, hot entries for one cold scan).
    max_concurrent_queries:
        Admission-control limit on queries executing at once across all
        sessions of a :class:`~repro.server.QueryServer`.  ``0`` means
        unlimited.  Queries over the limit wait up to
        ``admission_timeout_ms`` before failing with
        :class:`~repro.errors.AdmissionError`.
    admission_timeout_ms:
        How long an admitted-over-limit query may wait in the admission
        queue, in milliseconds.
    telemetry_interval_ms:
        Cadence of the continuous-telemetry sampler (see
        :mod:`repro.observability.history`): every interval the background
        sampler snapshots the metrics registry into the ring-buffer
        metrics history (``repro_metrics_history()``) and exports to the
        telemetry sink when one is configured.  ``0`` (the default) keeps
        the sampler off entirely -- the ~0-overhead state.
    telemetry_path:
        When non-empty, telemetry samples and completed trace spans are
        exported as structured JSON lines appended to this file.  Setting
        a path with ``telemetry_interval_ms`` still 0 starts the sampler
        at its default cadence.  The ``REPRO_TELEMETRY_PATH`` environment
        variable provides the default for configs built via
        :meth:`from_dict`.
    statement_log_entries:
        Capacity of the per-statement resource-accounting ring
        (``repro_statement_log()``): wall/CPU, rows in/out, buffer
        traffic, and peak-memory estimate per ``(session_id,
        statement_seq)``.  ``0`` disables statement accounting.
    capture_enabled:
        Record every served statement (SQL + parameters + timing offset)
        into the workload-capture JSONL at ``capture_path`` for later
        replay by ``tools/replay_workload.py``.  Instance-wide: flipping
        it via PRAGMA from any session affects the whole database.
    capture_path:
        Destination file of the workload capture.  Empty with capture
        enabled is an error at sync time.  The ``REPRO_CAPTURE_PATH``
        environment variable provides the default for configs built via
        :meth:`from_dict`.
    """

    memory_limit: int = 1 << 31  # 2 GiB default
    threads: int = 1
    morsel_size: int = 65536
    verify_checksums: bool = True
    buffer_memtest: bool = False
    reactive_resources: bool = False
    wal_autocheckpoint: int = 16 << 20  # 16 MiB
    checkpoint_on_close: bool = True
    trace_enabled: bool = False
    slow_query_ms: float = 0.0
    profile_enabled: bool = False
    profile_hz: float = 97.0
    verify_plans: bool = False
    plan_cache_entries: int = 256
    result_cache_entries: int = 128
    result_cache_max_rows: int = 16384
    max_concurrent_queries: int = 0
    admission_timeout_ms: float = 30000.0
    telemetry_interval_ms: float = 0.0
    telemetry_path: str = ""
    statement_log_entries: int = 512
    capture_enabled: bool = False
    capture_path: str = ""

    @classmethod
    def from_dict(cls, options: Optional[Dict[str, Any]]) -> "DatabaseConfig":
        """Build a config from a plain dict, validating option names."""
        config = cls()
        if options:
            for name, value in options.items():
                config.set_option(name, value)
        given = {name.lower() for name in options} if options else set()
        if "threads" not in given:
            env_threads = os.environ.get("REPRO_THREADS")
            if env_threads:
                config.set_option("threads", env_threads)
        if "trace_enabled" not in given:
            env_trace = os.environ.get("REPRO_TRACE")
            if env_trace:
                config.set_option("trace_enabled", env_trace)
        if "profile_enabled" not in given:
            env_profile = os.environ.get("REPRO_PROFILE")
            if env_profile:
                config.set_option("profile_enabled", env_profile)
        if "verify_plans" not in given:
            env_verify = os.environ.get("REPRO_VERIFY_PLANS")
            if env_verify:
                config.set_option("verify_plans", env_verify)
        if "telemetry_path" not in given:
            env_telemetry = os.environ.get("REPRO_TELEMETRY_PATH")
            if env_telemetry:
                config.set_option("telemetry_path", env_telemetry)
        if "capture_path" not in given:
            env_capture = os.environ.get("REPRO_CAPTURE_PATH")
            if env_capture:
                config.set_option("capture_path", env_capture)
        return config

    def set_option(self, name: str, value: Any) -> None:
        """Set one option by name, coercing the value (used by PRAGMA)."""
        name = name.lower()
        if name == "memory_limit":
            self.memory_limit = parse_memory_size(value)
        elif name == "threads":
            threads = int(value)
            if threads < 1:
                raise InvalidInputError("threads must be >= 1")
            self.threads = threads
        elif name == "morsel_size":
            morsel_size = int(value)
            if morsel_size < 1:
                raise InvalidInputError("morsel_size must be >= 1")
            self.morsel_size = morsel_size
        elif name in ("verify_checksums", "buffer_memtest", "reactive_resources",
                      "checkpoint_on_close", "trace_enabled",
                      "profile_enabled", "verify_plans"):
            setattr(self, name, _coerce_bool(value))
        elif name == "slow_query_ms":
            threshold = float(value)
            if threshold < 0:
                raise InvalidInputError("slow_query_ms must be >= 0")
            self.slow_query_ms = threshold
        elif name == "profile_hz":
            hz = float(value)
            if hz <= 0:
                raise InvalidInputError("profile_hz must be > 0")
            self.profile_hz = hz
        elif name == "wal_autocheckpoint":
            self.wal_autocheckpoint = parse_memory_size(value) if value else 0
        elif name in ("plan_cache_entries", "result_cache_entries",
                      "result_cache_max_rows", "max_concurrent_queries"):
            count = int(value)
            if count < 0:
                raise InvalidInputError(f"{name} must be >= 0")
            setattr(self, name, count)
        elif name == "admission_timeout_ms":
            timeout = float(value)
            if timeout < 0:
                raise InvalidInputError("admission_timeout_ms must be >= 0")
            self.admission_timeout_ms = timeout
        elif name == "telemetry_interval_ms":
            interval = float(value)
            if interval < 0:
                raise InvalidInputError("telemetry_interval_ms must be >= 0")
            self.telemetry_interval_ms = interval
        elif name in ("telemetry_path", "capture_path"):
            setattr(self, name, str(value))
        elif name == "statement_log_entries":
            entries = int(value)
            if entries < 0:
                raise InvalidInputError("statement_log_entries must be >= 0")
            self.statement_log_entries = entries
        elif name == "capture_enabled":
            self.capture_enabled = _coerce_bool(value)
        else:
            raise InvalidInputError(f"Unknown configuration option {name!r}")

    def get_option(self, name: str) -> Any:
        name = name.lower()
        if not hasattr(self, name):
            raise InvalidInputError(f"Unknown configuration option {name!r}")
        return getattr(self, name)


def _coerce_bool(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return bool(value)
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("true", "1", "on", "yes"):
            return True
        if lowered in ("false", "0", "off", "no"):
            return False
    raise InvalidInputError(f"Cannot interpret {value!r} as a boolean")
