"""Bound (typed, resolved) expressions.

The binder turns parser AST expressions into these nodes: every column
reference is resolved to a *position* in the input chunk of the operator
that evaluates the expression, and every node carries its result type.
Structural equality (``same_as``) lets the binder deduplicate group keys and
aggregate expressions.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from ..types import BOOLEAN, LogicalType
from ..errors import InternalError

__all__ = [
    "BoundExpression", "BoundConstant", "BoundParameterRef", "BoundColumnRef",
    "BoundOperator", "BoundCast", "BoundCase", "BoundIsNull", "BoundInList",
    "BoundLike", "BoundFunction", "BoundAggregate",
]


class BoundExpression:
    """Base class: a typed expression tree evaluated over a DataChunk."""

    __slots__ = ("return_type",)

    def __init__(self, return_type: LogicalType) -> None:
        self.return_type = return_type

    @property
    def children(self) -> Sequence["BoundExpression"]:
        return ()

    def replace_children(self, new_children: List["BoundExpression"]) -> "BoundExpression":
        """A copy of this node with different children (used by rewrites)."""
        if new_children:
            raise InternalError(f"{type(self).__name__} has no children to replace")
        return self

    def same_as(self, other: "BoundExpression") -> bool:
        """Structural equality."""
        if type(self) is not type(other) or self.return_type != other.return_type:
            return False
        if not self._fields_equal(other):
            return False
        mine, theirs = self.children, other.children
        if len(mine) != len(theirs):
            return False
        return all(a.same_as(b) for a, b in zip(mine, theirs))

    def _fields_equal(self, other: "BoundExpression") -> bool:
        return True

    def is_foldable(self) -> bool:
        """True when the expression references no input columns (constant)."""
        return all(child.is_foldable() for child in self.children) \
            and not isinstance(self, BoundColumnRef)

    def referenced_columns(self) -> set:
        """Set of input positions this expression reads."""
        out = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, BoundColumnRef):
                out.add(node.position)
            stack.extend(node.children)
        return out

    def __repr__(self) -> str:
        return f"{type(self).__name__}[{self.return_type}]"


class BoundConstant(BoundExpression):
    __slots__ = ("value",)

    def __init__(self, value: Any, return_type: LogicalType) -> None:
        super().__init__(return_type)
        self.value = value

    def _fields_equal(self, other: "BoundConstant") -> bool:
        return self.value == other.value and type(self.value) is type(other.value)

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"


class BoundParameterRef(BoundExpression):
    """A late-bound query parameter slot (``?`` or ``:name``).

    Unlike :class:`BoundConstant`, the value is *not* baked into the plan:
    it is read from ``ExecutionContext.parameters`` at execution time, keyed
    by position (qmark) or name.  This is what makes a bound+optimized plan
    reusable across executions with different parameter values -- the plan
    cache stores plans containing these and supplies fresh values per run.
    ``return_type`` is fixed at bind time from the first execution's value;
    the plan-cache key includes the parameter type fingerprint, so a value
    of a different type binds a fresh plan instead of miscasting.
    """

    __slots__ = ("key",)

    def __init__(self, key: Any, return_type: LogicalType) -> None:
        super().__init__(return_type)
        #: int for positional (qmark) parameters, str for named parameters.
        self.key = key

    def is_foldable(self) -> bool:
        # Never constant-fold: the value differs between executions.
        return False

    def _fields_equal(self, other: "BoundParameterRef") -> bool:
        return self.key == other.key

    def __repr__(self) -> str:
        return f"Parameter({self.key!r})"


class BoundColumnRef(BoundExpression):
    """A positional reference into the evaluating operator's input chunk."""

    __slots__ = ("position", "name")

    def __init__(self, position: int, return_type: LogicalType, name: str = "") -> None:
        super().__init__(return_type)
        self.position = position
        self.name = name

    def _fields_equal(self, other: "BoundColumnRef") -> bool:
        return self.position == other.position

    def __repr__(self) -> str:
        label = self.name or "?"
        return f"Column(#{self.position} {label})"


class BoundOperator(BoundExpression):
    """Built-in operator: arithmetic, comparison, logic, unary, concat."""

    __slots__ = ("op", "args")

    def __init__(self, op: str, args: List[BoundExpression],
                 return_type: LogicalType) -> None:
        super().__init__(return_type)
        self.op = op
        self.args = args

    @property
    def children(self) -> Sequence[BoundExpression]:
        return self.args

    def replace_children(self, new_children: List[BoundExpression]) -> "BoundOperator":
        return BoundOperator(self.op, list(new_children), self.return_type)

    def _fields_equal(self, other: "BoundOperator") -> bool:
        return self.op == other.op

    def __repr__(self) -> str:
        return f"Op({self.op}, {list(self.args)!r})"


class BoundCast(BoundExpression):
    __slots__ = ("child",)

    def __init__(self, child: BoundExpression, return_type: LogicalType) -> None:
        super().__init__(return_type)
        self.child = child

    @property
    def children(self) -> Sequence[BoundExpression]:
        return (self.child,)

    def replace_children(self, new_children: List[BoundExpression]) -> "BoundCast":
        return BoundCast(new_children[0], self.return_type)


class BoundCase(BoundExpression):
    """Searched CASE (the binder rewrites simple CASE into this form)."""

    __slots__ = ("whens", "else_result")

    def __init__(self, whens: List[Tuple[BoundExpression, BoundExpression]],
                 else_result: BoundExpression, return_type: LogicalType) -> None:
        super().__init__(return_type)
        self.whens = whens
        self.else_result = else_result

    @property
    def children(self) -> Sequence[BoundExpression]:
        out: List[BoundExpression] = []
        for condition, result in self.whens:
            out.append(condition)
            out.append(result)
        out.append(self.else_result)
        return out

    def replace_children(self, new_children: List[BoundExpression]) -> "BoundCase":
        whens = []
        for index in range(len(self.whens)):
            whens.append((new_children[2 * index], new_children[2 * index + 1]))
        return BoundCase(whens, new_children[-1], self.return_type)


class BoundIsNull(BoundExpression):
    __slots__ = ("child", "negated")

    def __init__(self, child: BoundExpression, negated: bool) -> None:
        super().__init__(BOOLEAN)
        self.child = child
        self.negated = negated

    @property
    def children(self) -> Sequence[BoundExpression]:
        return (self.child,)

    def replace_children(self, new_children: List[BoundExpression]) -> "BoundIsNull":
        return BoundIsNull(new_children[0], self.negated)

    def _fields_equal(self, other: "BoundIsNull") -> bool:
        return self.negated == other.negated


class BoundInList(BoundExpression):
    __slots__ = ("child", "items", "negated")

    def __init__(self, child: BoundExpression, items: List[BoundExpression],
                 negated: bool) -> None:
        super().__init__(BOOLEAN)
        self.child = child
        self.items = items
        self.negated = negated

    @property
    def children(self) -> Sequence[BoundExpression]:
        return [self.child] + list(self.items)

    def replace_children(self, new_children: List[BoundExpression]) -> "BoundInList":
        return BoundInList(new_children[0], list(new_children[1:]), self.negated)

    def _fields_equal(self, other: "BoundInList") -> bool:
        return self.negated == other.negated


class BoundLike(BoundExpression):
    __slots__ = ("child", "pattern", "negated", "case_insensitive", "escape")

    def __init__(self, child: BoundExpression, pattern: BoundExpression,
                 negated: bool, case_insensitive: bool,
                 escape: Optional[BoundExpression] = None) -> None:
        super().__init__(BOOLEAN)
        self.child = child
        self.pattern = pattern
        self.negated = negated
        self.case_insensitive = case_insensitive
        self.escape = escape

    @property
    def children(self) -> Sequence[BoundExpression]:
        if self.escape is not None:
            return (self.child, self.pattern, self.escape)
        return (self.child, self.pattern)

    def replace_children(self, new_children: List[BoundExpression]) -> "BoundLike":
        escape = new_children[2] if len(new_children) > 2 else None
        return BoundLike(new_children[0], new_children[1], self.negated,
                         self.case_insensitive, escape)

    def _fields_equal(self, other: "BoundLike") -> bool:
        return (self.negated == other.negated
                and self.case_insensitive == other.case_insensitive
                and (self.escape is None) == (other.escape is None))


class BoundFunction(BoundExpression):
    """A scalar function call resolved against the function registry."""

    __slots__ = ("name", "args", "function")

    def __init__(self, name: str, args: List[BoundExpression],
                 return_type: LogicalType, function) -> None:
        super().__init__(return_type)
        self.name = name
        self.args = args
        #: The vectorized implementation: callable(vectors, count) -> Vector.
        self.function = function

    @property
    def children(self) -> Sequence[BoundExpression]:
        return self.args

    def replace_children(self, new_children: List[BoundExpression]) -> "BoundFunction":
        return BoundFunction(self.name, list(new_children), self.return_type,
                             self.function)

    def _fields_equal(self, other: "BoundFunction") -> bool:
        return self.name == other.name

    def __repr__(self) -> str:
        return f"Function({self.name}, {list(self.args)!r})"


class BoundAggregate(BoundExpression):
    """An aggregate call; only valid inside a LogicalAggregate."""

    __slots__ = ("name", "args", "distinct")

    def __init__(self, name: str, args: List[BoundExpression], distinct: bool,
                 return_type: LogicalType) -> None:
        super().__init__(return_type)
        self.name = name
        self.args = args
        self.distinct = distinct

    @property
    def children(self) -> Sequence[BoundExpression]:
        return self.args

    def replace_children(self, new_children: List[BoundExpression]) -> "BoundAggregate":
        return BoundAggregate(self.name, list(new_children), self.distinct,
                              self.return_type)

    def _fields_equal(self, other: "BoundAggregate") -> bool:
        return self.name == other.name and self.distinct == other.distinct

    def __repr__(self) -> str:
        distinct = "DISTINCT " if self.distinct else ""
        return f"Aggregate({self.name}({distinct}{list(self.args)!r}))"


def contains_aggregate(expression: BoundExpression) -> bool:
    if isinstance(expression, BoundAggregate):
        return True
    return any(contains_aggregate(child) for child in expression.children)
