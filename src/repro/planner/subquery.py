"""Bound subquery expressions (uncorrelated).

The execution context evaluates each subquery plan at most once per query
and caches the result -- an uncorrelated subquery is a constant from the
outer query's point of view.  Correlated subqueries are rejected at bind
time (documented limitation; the paper's workloads are scan/join/aggregate
analytics, not nested-loop rewrites).
"""

from __future__ import annotations

from ..types import BOOLEAN, LogicalType
from .expressions import BoundExpression
from .logical import LogicalOperator

__all__ = ["BoundScalarSubquery", "BoundInSubquery", "BoundExistsSubquery"]


class BoundScalarSubquery(BoundExpression):
    """``(SELECT one_value)`` -- errors at run time if >1 row."""

    __slots__ = ("plan",)

    def __init__(self, plan: LogicalOperator, return_type: LogicalType) -> None:
        super().__init__(return_type)
        self.plan = plan

    def _fields_equal(self, other: "BoundScalarSubquery") -> bool:
        return self.plan is other.plan

    def is_foldable(self) -> bool:
        # A subquery needs a live execution context; never fold at bind time.
        return False


class BoundInSubquery(BoundExpression):
    """``x IN (SELECT col)`` with SQL three-valued NULL semantics."""

    __slots__ = ("child", "plan", "negated")

    def __init__(self, child: BoundExpression, plan: LogicalOperator,
                 negated: bool) -> None:
        super().__init__(BOOLEAN)
        self.child = child
        self.plan = plan
        self.negated = negated

    @property
    def children(self):
        return (self.child,)

    def replace_children(self, new_children):
        return BoundInSubquery(new_children[0], self.plan, self.negated)

    def _fields_equal(self, other: "BoundInSubquery") -> bool:
        return self.plan is other.plan and self.negated == other.negated

    def is_foldable(self) -> bool:
        # A subquery needs a live execution context; never fold at bind time.
        return False


class BoundExistsSubquery(BoundExpression):
    __slots__ = ("plan", "negated")

    def __init__(self, plan: LogicalOperator, negated: bool) -> None:
        super().__init__(BOOLEAN)
        self.plan = plan
        self.negated = negated

    def _fields_equal(self, other: "BoundExistsSubquery") -> bool:
        return self.plan is other.plan and self.negated == other.negated

    def is_foldable(self) -> bool:
        # A subquery needs a live execution context; never fold at bind time.
        return False
