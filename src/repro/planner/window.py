"""Bound window expressions: ``func(...) OVER (PARTITION BY ... ORDER BY ...)``.

Windowed analytics are the bread and butter of the paper's dashboard
workloads (§2): rankings, running totals, deltas against the previous row.
Supported functions:

* ranking -- ``row_number()``, ``rank()``, ``dense_rank()``;
* offset -- ``lag(x [, offset [, default]])``, ``lead(...)``;
* windowed aggregates -- ``sum/avg/min/max/count(x)``; without ORDER BY the
  value is the whole-partition aggregate, with ORDER BY it is the running
  (ROWS UNBOUNDED PRECEDING .. CURRENT ROW) aggregate.

Explicit frame clauses are not supported (documented limitation).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import BinderError
from ..functions.aggregate import bind_aggregate
from ..types import BIGINT, DOUBLE, LogicalType, common_type
from .expressions import BoundExpression
from .logical import BoundOrderByItem, ColumnSchema, LogicalOperator

__all__ = ["BoundWindowExpr", "LogicalWindow", "WINDOW_FUNCTION_NAMES",
           "bind_window_function", "contains_window"]

#: Ranking/offset functions exclusive to windows; aggregates also qualify.
RANKING_FUNCTIONS = frozenset(["row_number", "rank", "dense_rank"])
OFFSET_FUNCTIONS = frozenset(["lag", "lead"])
BOUNDARY_FUNCTIONS = frozenset(["first_value", "last_value"])
WINDOW_AGGREGATES = frozenset(["sum", "avg", "min", "max", "count"])
WINDOW_FUNCTION_NAMES = (RANKING_FUNCTIONS | OFFSET_FUNCTIONS
                         | BOUNDARY_FUNCTIONS | WINDOW_AGGREGATES
                         | frozenset(["ntile"]))


def bind_window_function(name: str, arg_types: Sequence[LogicalType],
                         star_argument: bool) -> LogicalType:
    """Resolve a window function's result type (raises BinderError)."""
    name = name.lower()
    if name in RANKING_FUNCTIONS:
        if arg_types or star_argument:
            raise BinderError(f"{name}() takes no arguments")
        return BIGINT
    if name == "ntile":
        if star_argument or len(arg_types) != 1:
            raise BinderError("ntile() expects one (constant) argument")
        if not arg_types[0].is_integer():
            raise BinderError("ntile() bucket count must be an integer")
        return BIGINT
    if name in BOUNDARY_FUNCTIONS:
        if star_argument or len(arg_types) != 1:
            raise BinderError(f"{name}() expects exactly one argument")
        return arg_types[0]
    if name in OFFSET_FUNCTIONS:
        if star_argument or not 1 <= len(arg_types) <= 3:
            raise BinderError(f"{name}() expects 1-3 arguments")
        result = arg_types[0]
        if len(arg_types) == 3:
            unified = common_type(result, arg_types[2])
            if unified is None:
                raise BinderError(
                    f"{name}() default value type {arg_types[2]} does not "
                    f"match argument type {result}"
                )
            result = unified
        return result
    if name in WINDOW_AGGREGATES:
        return bind_aggregate(name, arg_types, star_argument)[0]
    raise BinderError(f"{name}() is not a window function")


class BoundWindowExpr(BoundExpression):
    """A window computation over the evaluating operator's input."""

    __slots__ = ("name", "args", "partitions", "order_items", "offset",
                 "default")

    def __init__(self, name: str, args: List[BoundExpression],
                 partitions: List[BoundExpression],
                 order_items: List[BoundOrderByItem],
                 return_type: LogicalType) -> None:
        super().__init__(return_type)
        self.name = name
        self.args = args
        self.partitions = partitions
        self.order_items = order_items

    @property
    def children(self) -> Sequence[BoundExpression]:
        out: List[BoundExpression] = list(self.args) + list(self.partitions)
        out.extend(item.expression for item in self.order_items)
        return out

    def replace_children(self, new_children: List[BoundExpression]) -> "BoundWindowExpr":
        arg_count = len(self.args)
        partition_count = len(self.partitions)
        args = list(new_children[:arg_count])
        partitions = list(new_children[arg_count:arg_count + partition_count])
        order_items = []
        for item, expression in zip(self.order_items,
                                    new_children[arg_count + partition_count:]):
            order_items.append(BoundOrderByItem(expression, item.ascending,
                                                item.nulls_first))
        return BoundWindowExpr(self.name, args, partitions, order_items,
                               self.return_type)

    def _fields_equal(self, other: "BoundWindowExpr") -> bool:
        if self.name != other.name:
            return False
        if len(self.order_items) != len(other.order_items):
            return False
        for mine, theirs in zip(self.order_items, other.order_items):
            if mine.ascending != theirs.ascending or \
                    mine.nulls_first != theirs.nulls_first:
                return False
        return True

    def is_foldable(self) -> bool:
        return False

    def __repr__(self) -> str:
        return (f"Window({self.name}, partitions={len(self.partitions)}, "
                f"order={len(self.order_items)})")


class LogicalWindow(LogicalOperator):
    """Window computation: output = child schema ++ one column per window."""

    def __init__(self, child: LogicalOperator,
                 windows: List[BoundWindowExpr]) -> None:
        schema = list(child.schema) + [
            ColumnSchema(f"__window_{index}", window.return_type)
            for index, window in enumerate(windows)
        ]
        super().__init__([child], schema)
        self.windows = windows

    def _explain_line(self) -> str:
        names = ", ".join(window.name for window in self.windows)
        return f"WINDOW [{names}]"


def contains_window(expression: BoundExpression) -> bool:
    if isinstance(expression, BoundWindowExpr):
        return True
    return any(contains_window(child) for child in expression.children)


def collect_windows(expression: BoundExpression,
                    collected: List[BoundWindowExpr]) -> None:
    if isinstance(expression, BoundWindowExpr):
        if not any(expression.same_as(existing) for existing in collected):
            collected.append(expression)
        return
    for child in expression.children:
        collect_windows(child, collected)
