"""Binder and logical planner: AST -> typed logical plans."""

from .binder import BindContext, Binder, TableBinding
from .bound_statements import (
    BoundCheckpoint,
    BoundCopyFrom,
    BoundCopyTo,
    BoundCreateTable,
    BoundCreateView,
    BoundDelete,
    BoundDrop,
    BoundExplain,
    BoundInsert,
    BoundPragma,
    BoundSelect,
    BoundStatement,
    BoundTransaction,
    BoundUpdate,
)
from .expressions import (
    BoundAggregate,
    BoundCase,
    BoundCast,
    BoundColumnRef,
    BoundConstant,
    BoundExpression,
    BoundFunction,
    BoundInList,
    BoundIsNull,
    BoundLike,
    BoundOperator,
)
from .logical import (
    BoundOrderByItem,
    ColumnSchema,
    JoinCondition,
    LogicalAggregate,
    LogicalCSVScan,
    LogicalDistinct,
    LogicalEmpty,
    LogicalFilter,
    LogicalGet,
    LogicalJoin,
    LogicalLimit,
    LogicalOperator,
    LogicalOrder,
    LogicalProjection,
    LogicalSetOp,
    LogicalValues,
)
from .subquery import BoundExistsSubquery, BoundInSubquery, BoundScalarSubquery

__all__ = [
    "Binder", "BindContext", "TableBinding",
    "BoundStatement", "BoundSelect", "BoundInsert", "BoundUpdate", "BoundDelete",
    "BoundCreateTable", "BoundCreateView", "BoundDrop", "BoundTransaction",
    "BoundCheckpoint", "BoundPragma", "BoundCopyFrom", "BoundCopyTo", "BoundExplain",
    "BoundExpression", "BoundConstant", "BoundColumnRef", "BoundOperator",
    "BoundCast", "BoundCase", "BoundIsNull", "BoundInList", "BoundLike",
    "BoundFunction", "BoundAggregate",
    "BoundScalarSubquery", "BoundInSubquery", "BoundExistsSubquery",
    "ColumnSchema", "LogicalOperator", "LogicalGet", "LogicalCSVScan",
    "LogicalValues", "LogicalFilter", "LogicalProjection", "LogicalAggregate",
    "LogicalJoin", "LogicalOrder", "LogicalLimit", "LogicalDistinct",
    "LogicalSetOp", "LogicalEmpty", "BoundOrderByItem", "JoinCondition",
]
