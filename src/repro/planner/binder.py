"""The binder: resolves names, types, and functions; builds logical plans.

Takes parser AST + catalog snapshot (via the binding transaction) and
produces :mod:`~repro.planner.bound_statements`.  All name resolution, type
checking, implicit casting, aggregate extraction, view expansion, CTE
resolution, and star expansion happens here, so the execution layer only
ever sees fully typed positional plans.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..catalog.catalog import Catalog
from ..catalog.entry import ColumnDefinition, TableEntry, ViewEntry
from ..errors import BinderError, CatalogError, ConversionError, InternalError
from ..functions.aggregate import AGGREGATE_NAMES, bind_aggregate
from ..functions.scalar import lookup_scalar_function
from ..sql import ast
from ..types import (
    BIGINT,
    BOOLEAN,
    DOUBLE,
    INTEGER,
    LogicalType,
    LogicalTypeId,
    SQLNULL,
    VARCHAR,
    cast_scalar,
    common_type,
    infer_type_of_value,
    type_from_string,
)
from . import bound_statements as bound
from .expressions import (
    BoundAggregate,
    BoundCase,
    BoundCast,
    BoundColumnRef,
    BoundConstant,
    BoundExpression,
    BoundFunction,
    BoundInList,
    BoundIsNull,
    BoundLike,
    BoundOperator,
    BoundParameterRef,
    contains_aggregate,
)
from .logical import (
    BoundOrderByItem,
    ColumnSchema,
    JoinCondition,
    LogicalAggregate,
    LogicalCSVScan,
    LogicalDistinct,
    LogicalFilter,
    LogicalGet,
    LogicalIntrospectionScan,
    LogicalJoin,
    LogicalLimit,
    LogicalOperator,
    LogicalOrder,
    LogicalProjection,
    LogicalSetOp,
    LogicalValues,
)
from .subquery import BoundExistsSubquery, BoundInSubquery, BoundScalarSubquery
from .window import (
    BoundWindowExpr,
    LogicalWindow,
    bind_window_function,
    collect_windows,
    contains_window,
)

__all__ = ["Binder", "BindContext", "TableBinding"]


class TableBinding:
    """One FROM-clause entry visible during name resolution."""

    __slots__ = ("alias", "names", "types", "offset")

    def __init__(self, alias: str, names: List[str], types: List[LogicalType],
                 offset: int) -> None:
        self.alias = alias
        self.names = names
        self.types = types
        self.offset = offset


class BindContext:
    """The flat namespace of the current FROM clause."""

    def __init__(self) -> None:
        self.bindings: List[TableBinding] = []

    @property
    def total_columns(self) -> int:
        return sum(len(binding.names) for binding in self.bindings)

    def add(self, alias: str, names: List[str], types: List[LogicalType]) -> TableBinding:
        lowered = alias.lower()
        for binding in self.bindings:
            if binding.alias.lower() == lowered:
                raise BinderError(f"Duplicate table alias {alias!r} in FROM clause")
        binding = TableBinding(alias, names, types, self.total_columns)
        self.bindings.append(binding)
        return binding

    def try_resolve(self, table: Optional[str],
                    column: str) -> Optional[Tuple[int, LogicalType, str]]:
        """Resolve a (possibly qualified) column, or None when not in scope.

        Ambiguity is still an error: a reference that matches two bindings
        must not silently fall through to an enclosing scope.
        """
        column_lower = column.lower()
        matches = []
        for binding in self.bindings:
            if table is not None and binding.alias.lower() != table.lower():
                continue
            for index, name in enumerate(binding.names):
                if name.lower() == column_lower:
                    matches.append((binding.offset + index, binding.types[index], name))
        if not matches:
            return None
        if len(matches) > 1:
            raise BinderError(f"Column reference {column!r} is ambiguous")
        return matches[0]

    def resolve(self, table: Optional[str], column: str) -> Tuple[int, LogicalType, str]:
        """Resolve a (possibly qualified) column to (position, type, name)."""
        match = self.try_resolve(table, column)
        if match is None:
            raise BinderError(self.not_found_message(table, column))
        return match

    @staticmethod
    def not_found_message(table: Optional[str], column: str) -> str:
        full_name = f"{table}.{column}" if table else column
        return f"Column {full_name!r} not found in FROM clause"

    def columns_of(self, table: Optional[str]) -> List[Tuple[int, LogicalType, str]]:
        """All columns (for star expansion), optionally of one alias."""
        out = []
        found = False
        for binding in self.bindings:
            if table is not None and binding.alias.lower() != table.lower():
                continue
            found = True
            for index, name in enumerate(binding.names):
                out.append((binding.offset + index, binding.types[index], name))
        if table is not None and not found:
            raise BinderError(f"Table alias {table!r} not found in FROM clause")
        return out


def _fold_constant(expression: BoundExpression) -> BoundExpression:
    """Evaluate a column-free expression down to a constant."""
    if isinstance(expression, BoundConstant) or not expression.is_foldable():
        return expression
    from ..execution.expression_executor import evaluate_standalone

    value = evaluate_standalone(expression)
    return BoundConstant(value, expression.return_type)


class Binder:
    """Binds one statement.  Create a fresh Binder per statement."""

    def __init__(self, catalog: Catalog, transaction, parameters: Optional[Sequence] = None,
                 cte_scope: Optional[Dict[str, ast.Statement]] = None,
                 parameterize: bool = False) -> None:
        self.catalog = catalog
        self.transaction = transaction
        #: Either a sequence (qmark style) or a mapping (named style).
        self.parameters = parameters if parameters is not None else ()
        #: With ``parameterize=True`` parameter markers bind to
        #: :class:`BoundParameterRef` slots (values supplied per execution
        #: through the ExecutionContext) instead of being baked in as
        #: constants -- this is what makes the bound plan cacheable.
        self.parameterize = parameterize
        self.cte_scope: Dict[str, ast.Statement] = dict(cte_scope or {})
        #: FROM-clause scopes of enclosing queries, innermost first.  Only
        #: consulted to *diagnose* correlated references -- this engine does
        #: not execute correlated subqueries, but a reference that resolves
        #: in an enclosing scope should say so instead of claiming the
        #: column does not exist.
        self.outer_contexts: List[BindContext] = []

    def _child_binder(self) -> "Binder":
        child = Binder(self.catalog, self.transaction, self.parameters,
                       self.cte_scope, parameterize=self.parameterize)
        child.outer_contexts = list(self.outer_contexts)
        return child

    # ------------------------------------------------------------------ statements
    def bind_statement(self, statement: ast.Statement) -> bound.BoundStatement:
        if isinstance(statement, (ast.SelectStatement, ast.SetOpStatement)):
            return bound.BoundSelect(self.bind_query(statement))
        if isinstance(statement, ast.InsertStatement):
            return self.bind_insert(statement)
        if isinstance(statement, ast.UpdateStatement):
            return self.bind_update(statement)
        if isinstance(statement, ast.DeleteStatement):
            return self.bind_delete(statement)
        if isinstance(statement, ast.CreateTableStatement):
            return self.bind_create_table(statement)
        if isinstance(statement, ast.CreateViewStatement):
            return bound.BoundCreateView(statement.name, statement.sql,
                                         statement.select, statement.or_replace)
        if isinstance(statement, ast.DropStatement):
            return bound.BoundDrop(statement.kind, statement.name, statement.if_exists)
        if isinstance(statement, ast.TransactionStatement):
            return bound.BoundTransaction(statement.action)
        if isinstance(statement, ast.CheckpointStatement):
            return bound.BoundCheckpoint()
        if isinstance(statement, ast.PragmaStatement):
            return bound.BoundPragma(statement.name, statement.value)
        if isinstance(statement, ast.CopyStatement):
            return self.bind_copy(statement)
        if isinstance(statement, ast.ExplainStatement):
            return bound.BoundExplain(self.bind_statement(statement.statement),
                                      getattr(statement, "analyze", False))
        raise BinderError(f"Cannot bind statement of type {type(statement).__name__}")

    # ------------------------------------------------------------------ queries
    def bind_query(self, statement: ast.Statement) -> LogicalOperator:
        """Bind a query expression (SELECT or set operation) into a plan."""
        if isinstance(statement, ast.SetOpStatement):
            return self._bind_set_op(statement)
        if isinstance(statement, ast.SelectStatement):
            return self._bind_select(statement)
        raise BinderError(f"{type(statement).__name__} is not a query")

    def _bind_set_op(self, statement: ast.SetOpStatement) -> LogicalOperator:
        binder = self._child_binder()
        for name, cte in statement.ctes:
            binder.cte_scope[name.lower()] = cte
        left = binder.bind_query(statement.left)
        right = binder.bind_query(statement.right)
        if len(left.schema) != len(right.schema):
            raise BinderError(
                f"Set operation column counts differ: {len(left.schema)} vs "
                f"{len(right.schema)}"
            )
        # Unify column types side by side.
        target_types = []
        for left_column, right_column in zip(left.schema, right.schema):
            unified = common_type(left_column.dtype, right_column.dtype)
            if unified is None:
                raise BinderError(
                    f"Set operation types {left_column.dtype} and "
                    f"{right_column.dtype} are incompatible"
                )
            target_types.append(unified)
        left = _cast_plan_to(left, target_types)
        right = _cast_plan_to(right, target_types)
        schema = [ColumnSchema(column.name, dtype)
                  for column, dtype in zip(left.schema, target_types)]
        plan: LogicalOperator = LogicalSetOp(left, right, statement.op,
                                             statement.all, schema)
        if statement.order_by:
            context_names = plan.names
            items = []
            for item in statement.order_by:
                expression = self._bind_order_key_by_output(
                    item.expression, context_names, plan.types)
                items.append(BoundOrderByItem(expression, item.ascending,
                                              item.nulls_first))
            plan = LogicalOrder(plan, items)
        plan = self._apply_limit(plan, statement.limit, statement.offset)
        return plan

    def _bind_order_key_by_output(self, expression: ast.Expression,
                                  names: List[str],
                                  types: List[LogicalType]) -> BoundExpression:
        """Bind an ORDER BY key that may only reference output columns."""
        if isinstance(expression, ast.Literal) and isinstance(expression.value, int):
            position = expression.value - 1
            if not 0 <= position < len(names):
                raise BinderError(f"ORDER BY position {expression.value} out of range")
            return BoundColumnRef(position, types[position], names[position])
        if isinstance(expression, ast.ColumnRef) and expression.table_name is None:
            lowered = expression.column_name.lower()
            for position, name in enumerate(names):
                if name.lower() == lowered:
                    return BoundColumnRef(position, types[position], name)
        raise BinderError("ORDER BY over a set operation must reference an "
                          "output column name or position")

    def _bind_select(self, statement: ast.SelectStatement) -> LogicalOperator:
        binder = self._child_binder()
        for name, cte in statement.ctes:
            binder.cte_scope[name.lower()] = cte
        return binder._bind_select_body(statement)

    def _bind_select_body(self, statement: ast.SelectStatement) -> LogicalOperator:
        context = BindContext()
        if statement.from_clause is not None:
            plan = self.bind_table_ref(statement.from_clause, context)
        else:
            plan = None  # SELECT without FROM: one conceptual row

        # WHERE -- no aggregates or windows allowed.
        if statement.where is not None:
            predicate = self.bind_expression(statement.where, context)
            if contains_aggregate(predicate):
                raise BinderError("Aggregates are not allowed in WHERE "
                                  "(use HAVING)")
            if contains_window(predicate):
                raise BinderError("Window functions are not allowed in WHERE")
            predicate = _ensure_boolean(predicate, "WHERE")
            if plan is None:
                raise BinderError("WHERE without FROM is not supported")
            plan = LogicalFilter(plan, _fold_constant(predicate))

        # Expand stars and bind the select list.
        select_items: List[Tuple[BoundExpression, str]] = []
        for expression, alias in statement.select_list:
            if isinstance(expression, ast.Star):
                for position, dtype, name in context.columns_of(expression.table):
                    select_items.append((BoundColumnRef(position, dtype, name), name))
                continue
            bound_expression = self.bind_expression(expression, context,
                                                    allow_aggregates=True)
            name = alias or _expression_name(expression)
            select_items.append((bound_expression, name))
        if not select_items:
            raise BinderError("SELECT list is empty")

        # GROUP BY keys.
        group_expressions: List[BoundExpression] = []
        for group in statement.group_by:
            bound_group = self._bind_group_key(group, context, select_items)
            if contains_aggregate(bound_group):
                raise BinderError("Aggregates are not allowed in GROUP BY")
            if contains_window(bound_group):
                raise BinderError("Window functions are not allowed in "
                                  "GROUP BY")
            if not any(bound_group.same_as(existing) for existing in group_expressions):
                group_expressions.append(bound_group)

        having = None
        if statement.having is not None:
            having = self.bind_expression(statement.having, context,
                                          allow_aggregates=True)
            having = _ensure_boolean(having, "HAVING")

        # Collect aggregates from select list + having.
        aggregates: List[BoundAggregate] = []
        for expression, _ in select_items:
            _collect_aggregates(expression, aggregates)
        if having is not None:
            _collect_aggregates(having, aggregates)

        needs_aggregate = bool(group_expressions or aggregates)
        if statement.having is not None and not needs_aggregate:
            raise BinderError("HAVING requires GROUP BY or aggregates")

        if needs_aggregate:
            if plan is None:
                raise BinderError("Aggregates require a FROM clause")
            agg_schema = []
            for index, group in enumerate(group_expressions):
                agg_schema.append(ColumnSchema(f"__group_{index}", group.return_type))
            for index, aggregate in enumerate(aggregates):
                agg_schema.append(ColumnSchema(f"__agg_{index}", aggregate.return_type))
            plan = LogicalAggregate(plan, group_expressions, aggregates, agg_schema)
            # Rewrite select/having expressions against the aggregate output.
            select_items = [
                (_rewrite_post_aggregate(expression, group_expressions, aggregates),
                 name)
                for expression, name in select_items
            ]
            if having is not None:
                having = _rewrite_post_aggregate(having, group_expressions, aggregates)
                if contains_window(having):
                    raise BinderError("Window functions are not allowed in "
                                      "HAVING")
                plan = LogicalFilter(plan, having)

        # Window functions: computed over the (possibly aggregated) input,
        # appended as extra columns; select expressions are rewritten to
        # reference them.
        windows: List[BoundWindowExpr] = []
        for expression, _ in select_items:
            collect_windows(expression, windows)
        if windows:
            if plan is None:
                raise BinderError("Window functions require a FROM clause")
            base_width = len(plan.schema)
            plan = LogicalWindow(plan, windows)
            select_items = [
                (_rewrite_windows(expression, windows, base_width), name)
                for expression, name in select_items
            ]

        # Projection.
        if plan is None:
            # SELECT without FROM: a single constant row.
            for expression, _ in select_items:
                if expression.referenced_columns():
                    raise BinderError("Column references require a FROM clause")
            schema = [ColumnSchema(name, expression.return_type)
                      for expression, name in select_items]
            plan = LogicalValues([[expression for expression, _ in select_items]],
                                 schema)
        else:
            plan = LogicalProjection(plan,
                                     [expression for expression, _ in select_items],
                                     [name for _, name in select_items])

        if statement.distinct:
            plan = LogicalDistinct(plan)

        # ORDER BY: aliases / positions / arbitrary expressions (hidden cols).
        if statement.order_by:
            plan = self._bind_order_by(statement, plan, context,
                                       group_expressions if needs_aggregate else None,
                                       aggregates if needs_aggregate else None,
                                       select_items)
        plan = self._apply_limit(plan, statement.limit, statement.offset)
        return plan

    def _bind_group_key(self, expression: ast.Expression, context: BindContext,
                        select_items: List[Tuple[BoundExpression, str]]) -> BoundExpression:
        """GROUP BY key: a position, a select alias, or an expression."""
        if isinstance(expression, ast.Literal) and isinstance(expression.value, int):
            position = expression.value - 1
            if not 0 <= position < len(select_items):
                raise BinderError(f"GROUP BY position {expression.value} out of range")
            return select_items[position][0]
        if isinstance(expression, ast.ColumnRef) and expression.table_name is None:
            lowered = expression.column_name.lower()
            for bound_expression, name in select_items:
                if name.lower() == lowered and not contains_aggregate(bound_expression):
                    try:
                        # Prefer a real column over the alias when both match.
                        return self.bind_expression(expression, context)
                    except BinderError:
                        return bound_expression
        return self.bind_expression(expression, context)

    def _bind_order_by(self, statement: ast.SelectStatement, plan: LogicalOperator,
                       context: BindContext,
                       group_expressions: Optional[List[BoundExpression]],
                       aggregates: Optional[List[BoundAggregate]],
                       select_items: List[Tuple[BoundExpression, str]]) -> LogicalOperator:
        output_names = [name for _, name in select_items]
        output_types = [expression.return_type for expression, _ in select_items]
        items: List[BoundOrderByItem] = []
        hidden: List[BoundExpression] = []

        for item in statement.order_by:
            expression = item.expression
            key: Optional[BoundExpression] = None
            # ORDER BY <position>
            if isinstance(expression, ast.Literal) and isinstance(expression.value, int):
                position = expression.value - 1
                if not 0 <= position < len(output_names):
                    raise BinderError(f"ORDER BY position {expression.value} out of range")
                key = BoundColumnRef(position, output_types[position],
                                     output_names[position])
            # ORDER BY <alias>
            if key is None and isinstance(expression, ast.ColumnRef) \
                    and expression.table_name is None:
                lowered = expression.column_name.lower()
                for position, name in enumerate(output_names):
                    if name.lower() == lowered:
                        key = BoundColumnRef(position, output_types[position], name)
                        break
            # Arbitrary expression: bind against the projection input and
            # smuggle it through as a hidden projection column.
            if key is None:
                bound_expression = self.bind_expression(expression, context,
                                                        allow_aggregates=True)
                if group_expressions is not None:
                    bound_expression = _rewrite_post_aggregate(
                        bound_expression, group_expressions, aggregates or [])
                elif contains_aggregate(bound_expression):
                    raise BinderError("ORDER BY aggregate requires GROUP BY "
                                      "or an aggregated select list")
                if contains_window(bound_expression):
                    raise BinderError(
                        "A window function in ORDER BY must also appear in "
                        "the select list"
                    )
                # Reuse an identical select expression if present.
                for position, (select_expression, name) in enumerate(select_items):
                    if bound_expression.same_as(select_expression):
                        key = BoundColumnRef(position, output_types[position], name)
                        break
                if key is None:
                    if statement.distinct:
                        raise BinderError(
                            "ORDER BY expressions must appear in the select "
                            "list when SELECT DISTINCT is used"
                        )
                    hidden.append(bound_expression)
                    key = BoundColumnRef(len(output_names) + len(hidden) - 1,
                                         bound_expression.return_type, "__order")
            items.append(BoundOrderByItem(key, item.ascending, item.nulls_first))

        if hidden:
            # Rebuild: extend the projection with hidden columns, sort, strip.
            projection = plan
            if not isinstance(projection, LogicalProjection):
                raise InternalError("Hidden ORDER BY columns require a projection")
            child = projection.children[0]
            extended = LogicalProjection(
                child, list(projection.expressions) + hidden,
                list(projection.names) + [f"__order_{i}" for i in range(len(hidden))],
            )
            ordered = LogicalOrder(extended, items)
            visible = list(range(len(projection.names)))
            strip = LogicalProjection(
                ordered,
                [BoundColumnRef(position, extended.types[position],
                                extended.names[position]) for position in visible],
                list(projection.names),
            )
            return strip
        return LogicalOrder(plan, items)

    def _apply_limit(self, plan: LogicalOperator, limit_expression,
                     offset_expression) -> LogicalOperator:
        if limit_expression is None and offset_expression is None:
            return plan
        limit = self._fold_to_int(limit_expression, "LIMIT") \
            if limit_expression is not None else None
        offset = self._fold_to_int(offset_expression, "OFFSET") \
            if offset_expression is not None else 0
        if limit is not None and limit < 0:
            raise BinderError("LIMIT must be non-negative")
        if offset < 0:
            raise BinderError("OFFSET must be non-negative")
        return LogicalLimit(plan, limit, offset)

    def _fold_to_int(self, expression: ast.Expression, clause: str) -> int:
        bound_expression = self.bind_expression(expression, BindContext())
        folded = _fold_constant(bound_expression)
        if not isinstance(folded, BoundConstant) or isinstance(folded.value, float) \
                or not isinstance(folded.value, int):
            raise BinderError(f"{clause} must be a constant integer")
        return folded.value

    # ------------------------------------------------------------------ FROM clause
    def bind_table_ref(self, ref: ast.TableRef, context: BindContext) -> LogicalOperator:
        if isinstance(ref, ast.BaseTableRef):
            return self._bind_base_table(ref, context)
        if isinstance(ref, ast.SubqueryRef):
            return self._bind_subquery_ref(ref, context)
        if isinstance(ref, ast.JoinRef):
            return self._bind_join(ref, context)
        if isinstance(ref, ast.TableFunctionRef):
            return self._bind_table_function(ref, context)
        raise BinderError(f"Unsupported FROM clause element {type(ref).__name__}")

    def _bind_base_table(self, ref: ast.BaseTableRef, context: BindContext) -> LogicalOperator:
        lowered = ref.name.lower()
        # CTEs shadow catalog entries.
        if lowered in self.cte_scope:
            subquery = self.cte_scope[lowered]
            child = self._child_binder()
            # A CTE must not resolve itself (no recursive CTEs).
            del child.cte_scope[lowered]
            plan = child.bind_query(subquery)
            alias = ref.alias or ref.name
            context.add(alias, plan.names, plan.types)
            return plan
        entry = self.catalog.get_entry(ref.name, self.transaction)
        if entry is None:
            raise CatalogError(f"Table {ref.name!r} does not exist")
        if isinstance(entry, ViewEntry):
            if entry.query is None:
                from ..sql import parse_one

                entry.query = parse_one(entry.sql)
            child = self._child_binder()
            plan = child.bind_query(entry.query)
            alias = ref.alias or ref.name
            context.add(alias, plan.names, plan.types)
            return plan
        if not isinstance(entry, TableEntry):
            raise CatalogError(f"{ref.name!r} is not a table or view")
        schema = [ColumnSchema(column.name, column.dtype) for column in entry.columns]
        plan = LogicalGet(entry, list(range(len(entry.columns))), schema)
        alias = ref.alias or ref.name
        context.add(alias, plan.names, plan.types)
        return plan

    def _bind_subquery_ref(self, ref: ast.SubqueryRef, context: BindContext) -> LogicalOperator:
        child = self._child_binder()
        plan = child.bind_query(ref.subquery)
        names = plan.names
        if ref.column_aliases:
            if len(ref.column_aliases) != len(names):
                raise BinderError(
                    f"Subquery alias declares {len(ref.column_aliases)} columns, "
                    f"subquery produces {len(names)}"
                )
            names = list(ref.column_aliases)
            plan = LogicalProjection(
                plan,
                [BoundColumnRef(position, dtype, name)
                 for position, (dtype, name) in enumerate(zip(plan.types, names))],
                names,
            )
        alias = ref.alias or f"__subquery_{id(ref) & 0xFFFF}"
        context.add(alias, names, plan.types)
        return plan

    def _bind_join(self, ref: ast.JoinRef, context: BindContext) -> LogicalOperator:
        left = self.bind_table_ref(ref.left, context)
        left_width = context.total_columns
        right = self.bind_table_ref(ref.right, context)

        if ref.join_type == "cross":
            return LogicalJoin(left, right, "cross", [])

        conditions: List[JoinCondition] = []
        residual: Optional[BoundExpression] = None
        if ref.using_columns:
            for column in ref.using_columns:
                left_position, left_type, _ = _resolve_in_range(
                    context, column, 0, left_width)
                right_position, right_type, _ = _resolve_in_range(
                    context, column, left_width, context.total_columns)
                unified = common_type(left_type, right_type)
                if unified is None:
                    raise BinderError(
                        f"USING column {column!r} has incompatible types"
                    )
                left_key: BoundExpression = BoundColumnRef(left_position, left_type, column)
                right_key: BoundExpression = BoundColumnRef(
                    right_position - left_width, right_type, column)
                if left_type != unified:
                    left_key = BoundCast(left_key, unified)
                if right_type != unified:
                    right_key = BoundCast(right_key, unified)
                conditions.append(JoinCondition(left_key, right_key))
        elif ref.condition is not None:
            predicate = self.bind_expression(ref.condition, context)
            predicate = _ensure_boolean(predicate, "JOIN ON")
            conditions, residual = _split_join_condition(predicate, left_width)
        if not conditions and residual is None:
            raise BinderError("JOIN requires a condition")
        return LogicalJoin(left, right, ref.join_type, conditions, residual)

    def _bind_table_function(self, ref: ast.TableFunctionRef,
                             context: BindContext) -> LogicalOperator:
        from ..introspection import lookup as lookup_system_function

        system = lookup_system_function(ref.name)
        if system is not None:
            if ref.args:
                raise BinderError(
                    f"{system.name}() is a system table function and "
                    f"takes no arguments")
            schema = [ColumnSchema(name, dtype)
                      for name, dtype in system.columns]
            plan = LogicalIntrospectionScan(system, schema)
            alias = ref.alias or system.name
            context.add(alias, plan.names, plan.types)
            return plan
        if ref.name not in ("read_csv", "read_csv_auto", "scan_csv"):
            raise BinderError(f"Unknown table function {ref.name!r}")
        if not ref.args or not isinstance(ref.args[0], ast.Literal) \
                or not isinstance(ref.args[0].value, str):
            raise BinderError(f"{ref.name}() requires a file path literal")
        path = ref.args[0].value
        from ..etl.csv_reader import sniff_csv

        sniffed = sniff_csv(path)
        if not sniffed.types:
            raise BinderError(
                f"CSV file {path!r} is empty: cannot infer a schema for "
                f"{ref.name}()")
        schema = [ColumnSchema(name, dtype)
                  for name, dtype in zip(sniffed.names, sniffed.types)]
        plan = LogicalCSVScan(path, sniffed.options(), schema)
        alias = ref.alias or "csv"
        context.add(alias, plan.names, plan.types)
        return plan

    # ------------------------------------------------------------------ expressions
    def _parameter_value(self, expression: ast.Parameter) -> Tuple[Any, Any]:
        """Resolve a parameter marker to ``(value, key)``.

        Positional markers index a sequence; named markers look up a
        mapping.  The parser already rejects mixing the styles in one SQL
        string, so only the supplied-parameters *shape* can mismatch here.
        """
        if expression.name is not None:
            if not isinstance(self.parameters, Mapping):
                raise BinderError(
                    f"Named parameter :{expression.name} requires parameters "
                    f"passed as a mapping")
            if expression.name not in self.parameters:
                raise BinderError(
                    f"Missing value for named parameter :{expression.name}")
            return self.parameters[expression.name], expression.name
        if isinstance(self.parameters, Mapping):
            raise BinderError(
                "Positional parameter '?' requires parameters passed as a "
                "sequence")
        if expression.index >= len(self.parameters):
            raise BinderError(
                f"Query expects at least {expression.index + 1} parameter(s), "
                f"got {len(self.parameters)}"
            )
        return self.parameters[expression.index], expression.index

    def bind_expression(self, expression: ast.Expression, context: BindContext,
                        allow_aggregates: bool = False) -> BoundExpression:
        if isinstance(expression, ast.Literal):
            return BoundConstant(expression.value, infer_type_of_value(expression.value))
        if isinstance(expression, ast.Parameter):
            value, key = self._parameter_value(expression)
            dtype = infer_type_of_value(value)
            if self.parameterize:
                return BoundParameterRef(key, dtype)
            return BoundConstant(value, dtype)
        if isinstance(expression, ast.ColumnRef):
            match = context.try_resolve(expression.table_name,
                                        expression.column_name)
            if match is None:
                # Distinguish "no such column" from a correlated reference:
                # if the name resolves in an enclosing query's scope, the
                # query is well-formed SQL this engine does not support yet.
                for outer in self.outer_contexts:
                    if outer.try_resolve(expression.table_name,
                                         expression.column_name) is not None:
                        raise BinderError(
                            "correlated subqueries are not supported")
                raise BinderError(BindContext.not_found_message(
                    expression.table_name, expression.column_name))
            position, dtype, name = match
            return BoundColumnRef(position, dtype, name)
        if isinstance(expression, ast.Star):
            raise BinderError("* is only allowed in the select list and COUNT(*)")
        if isinstance(expression, ast.UnaryOp):
            return self._bind_unary(expression, context, allow_aggregates)
        if isinstance(expression, ast.BinaryOp):
            return self._bind_binary(expression, context, allow_aggregates)
        if isinstance(expression, ast.IsNull):
            child = self.bind_expression(expression.operand, context, allow_aggregates)
            return BoundIsNull(child, expression.negated)
        if isinstance(expression, ast.InList):
            return self._bind_in_list(expression, context, allow_aggregates)
        if isinstance(expression, ast.Between):
            # x BETWEEN lo AND hi  ==>  x >= lo AND x <= hi
            lower = ast.BinaryOp(">=", expression.operand, expression.low,
                                 expression.position)
            upper = ast.BinaryOp("<=", expression.operand, expression.high,
                                 expression.position)
            rewritten: ast.Expression = ast.BinaryOp("and", lower, upper,
                                                     expression.position)
            if expression.negated:
                rewritten = ast.UnaryOp("not", rewritten, expression.position)
            return self.bind_expression(rewritten, context, allow_aggregates)
        if isinstance(expression, ast.Case):
            return self._bind_case(expression, context, allow_aggregates)
        if isinstance(expression, ast.CastExpr):
            child = self.bind_expression(expression.operand, context, allow_aggregates)
            target = type_from_string(expression.type_name)
            if child.return_type == target:
                return child
            return BoundCast(child, target)
        if isinstance(expression, ast.LikeExpr):
            child = self.bind_expression(expression.operand, context, allow_aggregates)
            pattern = self.bind_expression(expression.pattern, context, allow_aggregates)
            child = _implicit_cast(child, VARCHAR, "LIKE operand")
            pattern = _implicit_cast(pattern, VARCHAR, "LIKE pattern")
            escape = None
            if expression.escape is not None:
                escape = self.bind_expression(expression.escape, context,
                                              allow_aggregates)
                escape = _implicit_cast(escape, VARCHAR, "LIKE ESCAPE")
            return BoundLike(child, pattern, expression.negated,
                             expression.case_insensitive, escape)
        if isinstance(expression, ast.FunctionCall):
            return self._bind_function(expression, context, allow_aggregates)
        if isinstance(expression, ast.WindowExpr):
            return self._bind_window(expression, context, allow_aggregates)
        if isinstance(expression, ast.ScalarSubquery):
            plan = self._bind_subquery_plan(expression.subquery, context)
            if len(plan.schema) != 1:
                raise BinderError("Scalar subquery must return exactly one column")
            return BoundScalarSubquery(plan, plan.types[0])
        if isinstance(expression, ast.InSubquery):
            child = self.bind_expression(expression.operand, context, allow_aggregates)
            plan = self._bind_subquery_plan(expression.subquery, context)
            if len(plan.schema) != 1:
                raise BinderError("IN subquery must return exactly one column")
            unified = common_type(child.return_type, plan.types[0])
            if unified is None:
                raise BinderError(
                    f"IN subquery types {child.return_type} and {plan.types[0]} "
                    "are incompatible"
                )
            child = _implicit_cast(child, unified, "IN operand")
            plan = _cast_plan_to(plan, [unified])
            return BoundInSubquery(child, plan, expression.negated)
        if isinstance(expression, ast.ExistsExpr):
            plan = self._bind_subquery_plan(expression.subquery, context)
            return BoundExistsSubquery(plan, expression.negated)
        raise BinderError(f"Cannot bind expression {type(expression).__name__}")

    def _bind_subquery_plan(self, subquery: ast.Statement,
                            outer_context: Optional[BindContext] = None
                            ) -> LogicalOperator:
        child = self._child_binder()
        if outer_context is not None:
            child.outer_contexts = [outer_context] + child.outer_contexts
        return child.bind_query(subquery)

    def _bind_unary(self, expression: ast.UnaryOp, context: BindContext,
                    allow_aggregates: bool) -> BoundExpression:
        child = self.bind_expression(expression.operand, context, allow_aggregates)
        if expression.op == "not":
            child = _implicit_cast(child, BOOLEAN, "NOT operand")
            return BoundOperator("not", [child], BOOLEAN)
        if expression.op == "-":
            child_type = child.return_type
            if child_type.id is LogicalTypeId.SQLNULL:
                child = BoundCast(child, INTEGER)
                child_type = INTEGER
            if not child_type.is_numeric():
                raise BinderError(f"Unary minus requires a numeric operand, "
                                  f"got {child_type}")
            return BoundOperator("negate", [child], child_type)
        raise BinderError(f"Unknown unary operator {expression.op!r}")

    def _bind_binary(self, expression: ast.BinaryOp, context: BindContext,
                     allow_aggregates: bool) -> BoundExpression:
        left = self.bind_expression(expression.left, context, allow_aggregates)
        right = self.bind_expression(expression.right, context, allow_aggregates)
        op = expression.op
        if op in ("and", "or"):
            left = _implicit_cast(left, BOOLEAN, f"{op.upper()} operand")
            right = _implicit_cast(right, BOOLEAN, f"{op.upper()} operand")
            return BoundOperator(op, [left, right], BOOLEAN)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            unified = common_type(left.return_type, right.return_type)
            if unified is None:
                raise BinderError(
                    f"Cannot compare {left.return_type} with {right.return_type}"
                )
            left = _implicit_cast(left, unified, "comparison")
            right = _implicit_cast(right, unified, "comparison")
            return BoundOperator(op, [left, right], BOOLEAN)
        if op == "concat":
            left = _implicit_cast(left, VARCHAR, "|| operand")
            right = _implicit_cast(right, VARCHAR, "|| operand")
            return BoundOperator("concat", [left, right], VARCHAR)
        if op in ("+", "-", "*", "/", "%"):
            left_type, right_type = left.return_type, right.return_type
            if left_type.id is LogicalTypeId.SQLNULL:
                left_type = right_type if right_type.is_numeric() else DOUBLE
                left = BoundCast(left, left_type)
            if right_type.id is LogicalTypeId.SQLNULL:
                right_type = left_type if left_type.is_numeric() else DOUBLE
                right = BoundCast(right, right_type)
            if not left_type.is_numeric() or not right_type.is_numeric():
                raise BinderError(
                    f"Operator {op!r} requires numeric operands, got "
                    f"{left_type} and {right_type}"
                )
            if op == "/":
                result = DOUBLE
            else:
                result = common_type(left_type, right_type)
                # Integer arithmetic promotes to avoid silent overflow.
                if result is not None and result.is_integer():
                    result = BIGINT
            if result is None:
                raise BinderError(f"No common type for {left_type} {op} {right_type}")
            left = _implicit_cast(left, result, "arithmetic")
            right = _implicit_cast(right, result, "arithmetic")
            return BoundOperator(op, [left, right], result)
        raise BinderError(f"Unknown binary operator {op!r}")

    def _bind_in_list(self, expression: ast.InList, context: BindContext,
                      allow_aggregates: bool) -> BoundExpression:
        child = self.bind_expression(expression.operand, context, allow_aggregates)
        items = [self.bind_expression(item, context, allow_aggregates)
                 for item in expression.items]
        unified = child.return_type
        for item in items:
            merged = common_type(unified, item.return_type)
            if merged is None:
                raise BinderError(
                    f"IN list value of type {item.return_type} is incompatible "
                    f"with operand type {unified}"
                )
            unified = merged
        child = _implicit_cast(child, unified, "IN operand")
        items = [_implicit_cast(item, unified, "IN list") for item in items]
        return BoundInList(child, items, expression.negated)

    def _bind_case(self, expression: ast.Case, context: BindContext,
                   allow_aggregates: bool) -> BoundExpression:
        whens: List[Tuple[BoundExpression, BoundExpression]] = []
        if expression.operand is not None:
            # Simple CASE desugars to searched CASE with equality conditions.
            operand = expression.operand
            for condition, result in expression.whens:
                equals = ast.BinaryOp("=", operand, condition, expression.position)
                whens.append((
                    _ensure_boolean(
                        self.bind_expression(equals, context, allow_aggregates),
                        "CASE WHEN"),
                    self.bind_expression(result, context, allow_aggregates),
                ))
        else:
            for condition, result in expression.whens:
                whens.append((
                    _ensure_boolean(
                        self.bind_expression(condition, context, allow_aggregates),
                        "CASE WHEN"),
                    self.bind_expression(result, context, allow_aggregates),
                ))
        else_result = self.bind_expression(expression.else_result, context,
                                           allow_aggregates) \
            if expression.else_result is not None else BoundConstant(None, SQLNULL)
        result_type = else_result.return_type
        for _, result in whens:
            unified = common_type(result_type, result.return_type)
            if unified is None:
                raise BinderError(
                    f"CASE branches have incompatible types {result_type} and "
                    f"{result.return_type}"
                )
            result_type = unified
        if result_type.id is LogicalTypeId.SQLNULL:
            result_type = INTEGER
        whens = [(condition, _implicit_cast(result, result_type, "CASE branch"))
                 for condition, result in whens]
        else_result = _implicit_cast(else_result, result_type, "CASE ELSE")
        return BoundCase(whens, else_result, result_type)

    def _bind_function(self, expression: ast.FunctionCall, context: BindContext,
                       allow_aggregates: bool) -> BoundExpression:
        name = expression.name
        star_argument = len(expression.args) == 1 and isinstance(expression.args[0],
                                                                 ast.Star)
        if name in AGGREGATE_NAMES:
            if not allow_aggregates:
                raise BinderError(f"Aggregate {name}() is not allowed here")
            if star_argument:
                return BoundAggregate(name, [], expression.distinct,
                                      bind_aggregate(name, [], True)[0])
            args = [self.bind_expression(arg, context, allow_aggregates=False)
                    for arg in expression.args]
            for arg in args:
                if contains_aggregate(arg):
                    raise BinderError("Aggregates cannot be nested")
            return_type, coerced = bind_aggregate(name, [arg.return_type for arg in args],
                                                  False)
            args = [_implicit_cast(arg, target, f"{name}()")
                    for arg, target in zip(args, coerced)]
            return BoundAggregate(name, args, expression.distinct, return_type)
        if expression.distinct:
            raise BinderError("DISTINCT is only valid inside aggregate functions")
        function = lookup_scalar_function(name)
        if function is None:
            raise BinderError(f"Unknown function {name!r}")
        if star_argument:
            raise BinderError(f"{name}(*) is not defined")
        args = [self.bind_expression(arg, context, allow_aggregates)
                for arg in expression.args]
        return_type, coerced = function.bind([arg.return_type for arg in args])
        args = [_implicit_cast(arg, target, f"{name}()")
                for arg, target in zip(args, coerced)]
        return BoundFunction(name, args, return_type, function.execute)

    def _bind_window(self, expression: ast.WindowExpr, context: BindContext,
                     allow_aggregates: bool) -> BoundWindowExpr:
        if not allow_aggregates:
            raise BinderError(
                f"Window function {expression.name}() is not allowed here"
            )
        star_argument = len(expression.args) == 1 and \
            isinstance(expression.args[0], ast.Star)
        if star_argument and expression.name != "count":
            raise BinderError(f"{expression.name}(*) is not defined")
        args = [] if star_argument else [
            self.bind_expression(arg, context, allow_aggregates)
            for arg in expression.args
        ]
        partitions = [self.bind_expression(key, context, allow_aggregates)
                      for key in expression.partition_by]
        order_items = []
        for item in expression.order_by:
            key = self.bind_expression(item.expression, context,
                                       allow_aggregates)
            order_items.append(BoundOrderByItem(key, item.ascending,
                                                item.nulls_first))
        for child in list(args) + partitions + \
                [item.expression for item in order_items]:
            if contains_window(child):
                raise BinderError("Window functions cannot be nested")
        return_type = bind_window_function(
            expression.name, [arg.return_type for arg in args], star_argument)
        return BoundWindowExpr(expression.name, args, partitions, order_items,
                               return_type)

    # ------------------------------------------------------------------ DML
    def bind_insert(self, statement: ast.InsertStatement) -> bound.BoundInsert:
        table = self.catalog.get_table(statement.table, self.transaction)
        if statement.columns is not None:
            target_indices = [table.column_index(name) for name in statement.columns]
            if len(set(target_indices)) != len(target_indices):
                raise BinderError("Duplicate column in INSERT column list")
        else:
            target_indices = list(range(len(table.columns)))

        if statement.values is not None:
            rows = []
            for row in statement.values:
                if len(row) != len(target_indices):
                    raise BinderError(
                        f"INSERT row has {len(row)} values, expected "
                        f"{len(target_indices)}"
                    )
                rows.append([self.bind_expression(value, BindContext())
                             for value in row])
            schema = [ColumnSchema(table.columns[index].name,
                                   table.columns[index].dtype)
                      for index in target_indices]
            # Cast each value to its target column type.
            cast_rows = []
            for row in rows:
                cast_rows.append([
                    _implicit_cast(value, table.columns[index].dtype,
                                   f"INSERT into {table.columns[index].name}",
                                   allow_varchar_coercion=True)
                    for value, index in zip(row, target_indices)
                ])
            source: LogicalOperator = LogicalValues(cast_rows, schema)
        else:
            source = self._bind_subquery_plan(statement.select)
            if len(source.schema) != len(target_indices):
                raise BinderError(
                    f"INSERT source has {len(source.schema)} columns, expected "
                    f"{len(target_indices)}"
                )
            source = _cast_plan_to(
                source, [table.columns[index].dtype for index in target_indices])

        source = _expand_insert_source(source, table, target_indices)
        return bound.BoundInsert(table, source)

    def bind_update(self, statement: ast.UpdateStatement) -> bound.BoundUpdate:
        table = self.catalog.get_table(statement.table, self.transaction)
        context = BindContext()
        context.add(statement.table, table.column_names, table.column_types)
        column_indices = []
        expressions = []
        seen = set()
        for column_name, value in statement.assignments:
            index = table.column_index(column_name)
            if index in seen:
                raise BinderError(f"Column {column_name!r} assigned twice in UPDATE")
            seen.add(index)
            bound_value = self.bind_expression(value, context)
            if contains_aggregate(bound_value):
                raise BinderError("Aggregates are not allowed in UPDATE SET")
            bound_value = _implicit_cast(bound_value, table.columns[index].dtype,
                                         f"UPDATE of {column_name}",
                                         allow_varchar_coercion=True)
            column_indices.append(index)
            expressions.append(bound_value)
        where = None
        if statement.where is not None:
            where = _ensure_boolean(self.bind_expression(statement.where, context),
                                    "WHERE")
        return bound.BoundUpdate(table, column_indices, expressions, where)

    def bind_delete(self, statement: ast.DeleteStatement) -> bound.BoundDelete:
        table = self.catalog.get_table(statement.table, self.transaction)
        where = None
        if statement.where is not None:
            context = BindContext()
            context.add(statement.table, table.column_names, table.column_types)
            where = _ensure_boolean(self.bind_expression(statement.where, context),
                                    "WHERE")
        return bound.BoundDelete(table, where)

    # ------------------------------------------------------------------ DDL / COPY
    def bind_create_table(self, statement: ast.CreateTableStatement) -> bound.BoundCreateTable:
        if statement.as_select is not None:
            source = self._bind_subquery_plan(statement.as_select)
            columns = [ColumnDefinition(column.name, column.dtype)
                       for column in source.schema]
            return bound.BoundCreateTable(statement.name, columns,
                                          statement.if_not_exists, source)
        columns = []
        for spec in statement.columns:
            dtype = type_from_string(spec.type_name)
            default = None
            if spec.default is not None:
                folded = _fold_constant(self.bind_expression(spec.default,
                                                             BindContext()))
                if not isinstance(folded, BoundConstant):
                    raise BinderError(
                        f"DEFAULT of column {spec.name!r} must be constant"
                    )
                default = cast_scalar(folded.value, dtype)
            columns.append(ColumnDefinition(spec.name, dtype, spec.nullable, default))
        return bound.BoundCreateTable(statement.name, columns,
                                      statement.if_not_exists, None)

    def bind_copy(self, statement: ast.CopyStatement) -> bound.BoundStatement:
        if statement.direction == "from":
            if statement.table is None:
                raise BinderError("COPY FROM requires a target table")
            table = self.catalog.get_table(statement.table, self.transaction)
            return bound.BoundCopyFrom(table, statement.path, statement.options)
        if statement.select is not None:
            source = self._bind_subquery_plan(statement.select)
        else:
            table = self.catalog.get_table(statement.table, self.transaction)
            schema = [ColumnSchema(column.name, column.dtype)
                      for column in table.columns]
            source = LogicalGet(table, list(range(len(table.columns))), schema)
        return bound.BoundCopyTo(source, statement.path, statement.options)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _expression_name(expression: ast.Expression) -> str:
    if isinstance(expression, ast.ColumnRef):
        return expression.column_name
    if isinstance(expression, ast.FunctionCall):
        return expression.name
    if isinstance(expression, ast.CastExpr):
        return _expression_name(expression.operand)
    if isinstance(expression, ast.Literal):
        return str(expression.value)
    return type(expression).__name__.lower()


def _ensure_boolean(expression: BoundExpression, clause: str) -> BoundExpression:
    if expression.return_type == BOOLEAN:
        return expression
    if expression.return_type.id is LogicalTypeId.SQLNULL:
        return BoundCast(expression, BOOLEAN)
    raise BinderError(f"{clause} must be a boolean expression, "
                      f"got {expression.return_type}")


def _implicit_cast(expression: BoundExpression, target: LogicalType, clause: str,
                   allow_varchar_coercion: bool = False) -> BoundExpression:
    source = expression.return_type
    if source == target:
        return expression
    allowed = common_type(source, target) == target
    if not allowed and allow_varchar_coercion:
        # Assignments (INSERT/UPDATE) additionally allow parsing strings and
        # narrowing numerics, erroring at run time on bad values.
        allowed = True
    if not allowed and source.is_numeric() and target.is_numeric():
        # Comparisons may narrow (the kernel sees the unified type anyway).
        allowed = True
    if not allowed:
        raise BinderError(f"{clause}: cannot implicitly cast {source} to {target}")
    return BoundCast(expression, target)


def _cast_plan_to(plan: LogicalOperator, target_types: List[LogicalType]) -> LogicalOperator:
    """Wrap ``plan`` in a projection casting columns to ``target_types``."""
    if plan.types == list(target_types):
        return plan
    expressions: List[BoundExpression] = []
    for position, (current, target) in enumerate(zip(plan.types, target_types)):
        column: BoundExpression = BoundColumnRef(position, current,
                                                 plan.names[position])
        if current != target:
            column = BoundCast(column, target)
        expressions.append(column)
    return LogicalProjection(plan, expressions, plan.names)


def _resolve_in_range(context: BindContext, column: str, start: int,
                      end: int) -> Tuple[int, LogicalType, str]:
    """Resolve an unqualified column restricted to a position range (USING)."""
    matches = []
    for binding in context.bindings:
        for index, name in enumerate(binding.names):
            position = binding.offset + index
            if start <= position < end and name.lower() == column.lower():
                matches.append((position, binding.types[index], name))
    if not matches:
        raise BinderError(f"USING column {column!r} not found")
    if len(matches) > 1:
        raise BinderError(f"USING column {column!r} is ambiguous")
    return matches[0]


def _split_join_condition(predicate: BoundExpression, left_width: int):
    """Split a JOIN ON predicate into equi-conditions and a residual.

    An equi-condition is ``left_expr = right_expr`` where one side only
    references the left child's columns and the other only the right's.
    The right side is rebased to the right child's local positions.
    """
    conjuncts = _flatten_and(predicate)
    conditions: List[JoinCondition] = []
    residual_parts: List[BoundExpression] = []
    for conjunct in conjuncts:
        if isinstance(conjunct, BoundOperator) and conjunct.op == "=" \
                and len(conjunct.args) == 2:
            left_arg, right_arg = conjunct.args
            left_refs = left_arg.referenced_columns()
            right_refs = right_arg.referenced_columns()
            if left_refs and right_refs:
                if max(left_refs) < left_width <= min(right_refs):
                    conditions.append(JoinCondition(
                        left_arg, _rebase_columns(right_arg, -left_width)))
                    continue
                if max(right_refs) < left_width <= min(left_refs):
                    conditions.append(JoinCondition(
                        right_arg, _rebase_columns(left_arg, -left_width)))
                    continue
        residual_parts.append(conjunct)
    residual = None
    if residual_parts:
        residual = residual_parts[0]
        for part in residual_parts[1:]:
            residual = BoundOperator("and", [residual, part], BOOLEAN)
    return conditions, residual


def _flatten_and(expression: BoundExpression) -> List[BoundExpression]:
    if isinstance(expression, BoundOperator) and expression.op == "and":
        out = []
        for arg in expression.args:
            out.extend(_flatten_and(arg))
        return out
    return [expression]


def _rebase_columns(expression: BoundExpression, delta: int) -> BoundExpression:
    if isinstance(expression, BoundColumnRef):
        return BoundColumnRef(expression.position + delta, expression.return_type,
                              expression.name)
    children = [_rebase_columns(child, delta) for child in expression.children]
    if not children:
        return expression
    return expression.replace_children(children)


def _collect_aggregates(expression: BoundExpression,
                        collected: List[BoundAggregate]) -> None:
    if isinstance(expression, BoundAggregate):
        if not any(expression.same_as(existing) for existing in collected):
            collected.append(expression)
        return
    for child in expression.children:
        _collect_aggregates(child, collected)


def _rewrite_post_aggregate(expression: BoundExpression,
                            groups: List[BoundExpression],
                            aggregates: List[BoundAggregate]) -> BoundExpression:
    """Rebind an expression against the aggregate operator's output."""
    for index, group in enumerate(groups):
        if expression.same_as(group):
            return BoundColumnRef(index, group.return_type, f"__group_{index}")
    if isinstance(expression, BoundAggregate):
        for index, aggregate in enumerate(aggregates):
            if expression.same_as(aggregate):
                return BoundColumnRef(len(groups) + index, aggregate.return_type,
                                      f"__agg_{index}")
        raise InternalError("Aggregate was not collected before rewriting")
    if isinstance(expression, BoundColumnRef):
        raise BinderError(
            f"Column {expression.name!r} must appear in GROUP BY or be used "
            "inside an aggregate function"
        )
    children = [_rewrite_post_aggregate(child, groups, aggregates)
                for child in expression.children]
    if not children:
        return expression
    return expression.replace_children(children)


def _rewrite_windows(expression: BoundExpression,
                     windows: List[BoundWindowExpr],
                     base_width: int) -> BoundExpression:
    """Replace window nodes with references to the LogicalWindow's output."""
    if isinstance(expression, BoundWindowExpr):
        for index, window in enumerate(windows):
            if expression.same_as(window):
                return BoundColumnRef(base_width + index, window.return_type,
                                      f"__window_{index}")
        raise InternalError("Window expression was not collected")
    children = [_rewrite_windows(child, windows, base_width)
                for child in expression.children]
    if not children:
        return expression
    return expression.replace_children(children)


def _expand_insert_source(source: LogicalOperator, table: TableEntry,
                          target_indices: List[int]) -> LogicalOperator:
    """Reorder/pad an INSERT source so it covers every table column.

    Missing columns get their DEFAULT (or NULL); the result's column order
    matches the table exactly.
    """
    if target_indices == list(range(len(table.columns))):
        return source
    position_of = {table_index: source_position
                   for source_position, table_index in enumerate(target_indices)}
    expressions: List[BoundExpression] = []
    names: List[str] = []
    for table_index, column in enumerate(table.columns):
        if table_index in position_of:
            source_position = position_of[table_index]
            expressions.append(BoundColumnRef(source_position,
                                              source.types[source_position],
                                              column.name))
        else:
            default_type = column.dtype if column.default is not None else column.dtype
            expressions.append(BoundConstant(column.default, default_type))
        names.append(column.name)
    return LogicalProjection(source, expressions, names)
