"""Logical plan operators.

The binder produces a tree of these; the optimizer rewrites it; the physical
planner lowers it onto executable Vector Volcano operators.  Every operator
exposes ``schema``: an ordered list of :class:`ColumnSchema` describing its
output columns, against which parent expressions are positionally bound.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from ..types import LogicalType
from .expressions import BoundExpression

__all__ = [
    "ColumnSchema", "LogicalOperator", "LogicalGet", "LogicalCSVScan",
    "LogicalIntrospectionScan",
    "LogicalValues", "LogicalFilter", "LogicalProjection", "LogicalAggregate",
    "LogicalJoin", "LogicalOrder", "LogicalLimit", "LogicalDistinct",
    "LogicalSetOp", "BoundOrderByItem", "JoinCondition", "LogicalEmpty",
]


class ColumnSchema:
    """One output column of a logical operator."""

    __slots__ = ("name", "dtype")

    def __init__(self, name: str, dtype: LogicalType) -> None:
        self.name = name
        self.dtype = dtype

    def __repr__(self) -> str:
        return f"{self.name}:{self.dtype}"


class LogicalOperator:
    """Base: children plus an output schema."""

    #: Optimizer cardinality estimate (rows), stamped by ``cost.annotate``.
    estimated_rows: Optional[float] = None
    #: True when the estimate leaned on column statistics marked stale --
    #: rows changed since the summaries were last recomputed -- so EXPLAIN
    #: flags it as ``(est=N rows, stale)``.  Also stamped by ``annotate``.
    estimate_stale: bool = False

    def __init__(self, children: Sequence["LogicalOperator"],
                 schema: List[ColumnSchema]) -> None:
        self.children = list(children)
        self.schema = schema

    @property
    def types(self) -> List[LogicalType]:
        return [column.dtype for column in self.schema]

    @property
    def names(self) -> List[str]:
        return [column.name for column in self.schema]

    def explain(self, indent: int = 0) -> str:
        """Human-readable plan tree (the output of EXPLAIN)."""
        line = " " * indent + self._explain_line()
        if self.estimated_rows is not None:
            stale = ", stale" if self.estimate_stale else ""
            line += f" (est={int(round(self.estimated_rows))} rows{stale})"
        parts = [line]
        for child in self.children:
            parts.append(child.explain(indent + 2))
        return "\n".join(parts)

    def _explain_line(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return self.explain()


class LogicalGet(LogicalOperator):
    """Scan of a base table (with projection & filter pushdown slots)."""

    def __init__(self, table_entry: Any, column_ids: List[int],
                 schema: List[ColumnSchema]) -> None:
        super().__init__([], schema)
        self.table_entry = table_entry
        #: Physical column indices to scan, aligned with ``schema``.
        self.column_ids = column_ids
        #: Filters pushed into the scan (conjuncts over the scan's schema).
        self.pushed_filters: List[BoundExpression] = []
        #: Upper bound on rows the consumer needs (LIMIT pushdown); the
        #: scan may stop fetching once this many rows passed its filters.
        self.limit_hint: Optional[int] = None

    def _explain_line(self) -> str:
        filters = f" filters={len(self.pushed_filters)}" if self.pushed_filters else ""
        hint = f" limit_hint={self.limit_hint}" if self.limit_hint is not None else ""
        return (f"GET {self.table_entry.name}"
                f"[{', '.join(column.name for column in self.schema)}]{filters}{hint}")


class LogicalCSVScan(LogicalOperator):
    """Direct scan of a CSV file (paper §2: scan existing files, reshape,
    append -- the ETL entry point)."""

    def __init__(self, path: str, options: dict, schema: List[ColumnSchema]) -> None:
        super().__init__([], schema)
        self.path = path
        self.options = options

    def _explain_line(self) -> str:
        return f"CSV_SCAN {self.path!r}"


class LogicalIntrospectionScan(LogicalOperator):
    """Scan of a system table function (``repro_metrics()``, ...): engine
    state surfaced as a relation, in-band (paper §4/§5 cooperation)."""

    def __init__(self, function: Any, schema: List[ColumnSchema]) -> None:
        super().__init__([], schema)
        #: The :class:`~repro.introspection.registry.SystemTableFunction`.
        self.function = function

    def _explain_line(self) -> str:
        return f"INTROSPECT {self.function.name}()"


class LogicalValues(LogicalOperator):
    """Inline constant rows (VALUES lists, SELECT without FROM)."""

    def __init__(self, rows: List[List[BoundExpression]],
                 schema: List[ColumnSchema]) -> None:
        super().__init__([], schema)
        self.rows = rows

    def _explain_line(self) -> str:
        return f"VALUES ({len(self.rows)} rows)"


class LogicalEmpty(LogicalOperator):
    """Zero-row source with a schema (used for provably-empty results)."""

    def _explain_line(self) -> str:
        return "EMPTY"


class LogicalFilter(LogicalOperator):
    def __init__(self, child: LogicalOperator, predicate: BoundExpression) -> None:
        super().__init__([child], list(child.schema))
        self.predicate = predicate

    def _explain_line(self) -> str:
        return f"FILTER {self.predicate!r}"


class LogicalProjection(LogicalOperator):
    def __init__(self, child: LogicalOperator, expressions: List[BoundExpression],
                 names: List[str]) -> None:
        schema = [ColumnSchema(name, expression.return_type)
                  for name, expression in zip(names, expressions)]
        super().__init__([child], schema)
        self.expressions = expressions

    def _explain_line(self) -> str:
        return f"PROJECT [{', '.join(column.name for column in self.schema)}]"


class LogicalAggregate(LogicalOperator):
    """GROUP BY + aggregates; output schema = groups then aggregates."""

    def __init__(self, child: LogicalOperator, groups: List[BoundExpression],
                 aggregates: List[BoundExpression],
                 schema: List[ColumnSchema]) -> None:
        super().__init__([child], schema)
        self.groups = groups
        self.aggregates = aggregates

    def _explain_line(self) -> str:
        return f"AGGREGATE groups={len(self.groups)} aggs={len(self.aggregates)}"


class JoinCondition:
    """One equi-join condition: left-side expr == right-side expr.

    Each side is bound against its own child's schema.
    """

    __slots__ = ("left", "right")

    def __init__(self, left: BoundExpression, right: BoundExpression) -> None:
        self.left = left
        self.right = right


class LogicalJoin(LogicalOperator):
    """Join of two children; output = left schema ++ right schema.

    ``conditions`` hold the extracted equi-conditions; ``residual`` is an
    arbitrary extra predicate over the combined schema (for non-equi parts),
    applied after matching.
    """

    def __init__(self, left: LogicalOperator, right: LogicalOperator,
                 join_type: str, conditions: List[JoinCondition],
                 residual: Optional[BoundExpression] = None) -> None:
        schema = list(left.schema) + list(right.schema)
        super().__init__([left, right], schema)
        self.join_type = join_type  # inner / left / right / full / cross / semi / anti
        self.conditions = conditions
        self.residual = residual

    def _explain_line(self) -> str:
        kind = self.join_type.upper()
        detail = f" eq={len(self.conditions)}"
        if self.residual is not None:
            detail += " +residual"
        return f"JOIN {kind}{detail}"


class BoundOrderByItem:
    __slots__ = ("expression", "ascending", "nulls_first")

    def __init__(self, expression: BoundExpression, ascending: bool,
                 nulls_first: Optional[bool]) -> None:
        self.expression = expression
        self.ascending = ascending
        # Resolve the SQL default: NULLS LAST when ascending, FIRST when not.
        self.nulls_first = nulls_first if nulls_first is not None else not ascending


class LogicalOrder(LogicalOperator):
    def __init__(self, child: LogicalOperator, items: List[BoundOrderByItem]) -> None:
        super().__init__([child], list(child.schema))
        self.items = items

    def _explain_line(self) -> str:
        return f"ORDER BY ({len(self.items)} keys)"


class LogicalLimit(LogicalOperator):
    def __init__(self, child: LogicalOperator, limit: Optional[int],
                 offset: int) -> None:
        super().__init__([child], list(child.schema))
        self.limit = limit
        self.offset = offset

    def _explain_line(self) -> str:
        return f"LIMIT {self.limit} OFFSET {self.offset}"


class LogicalDistinct(LogicalOperator):
    def __init__(self, child: LogicalOperator) -> None:
        super().__init__([child], list(child.schema))

    def _explain_line(self) -> str:
        return "DISTINCT"


class LogicalSetOp(LogicalOperator):
    def __init__(self, left: LogicalOperator, right: LogicalOperator, op: str,
                 all_: bool, schema: List[ColumnSchema]) -> None:
        super().__init__([left, right], schema)
        self.op = op
        self.all = all_

    def _explain_line(self) -> str:
        suffix = " ALL" if self.all else ""
        return f"{self.op.upper()}{suffix}"
