"""Bound statements: the binder's output, consumed by the executor."""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..catalog.entry import ColumnDefinition, TableEntry
from ..types import LogicalType
from .expressions import BoundExpression
from .logical import LogicalOperator

__all__ = [
    "BoundStatement", "BoundSelect", "BoundInsert", "BoundUpdate",
    "BoundDelete", "BoundCreateTable", "BoundCreateView", "BoundDrop",
    "BoundTransaction", "BoundCheckpoint", "BoundPragma", "BoundCopyFrom",
    "BoundCopyTo", "BoundExplain",
]


class BoundStatement:
    """Base class for everything the executor can run."""


class BoundSelect(BoundStatement):
    def __init__(self, plan: LogicalOperator) -> None:
        self.plan = plan

    @property
    def names(self) -> List[str]:
        return self.plan.names

    @property
    def types(self) -> List[LogicalType]:
        return self.plan.types


class BoundInsert(BoundStatement):
    """INSERT: a source plan whose columns align 1:1 with the target table.

    The binder already reordered/padded source columns (filling omitted
    columns with their defaults) and inserted casts, so the executor just
    appends chunks.
    """

    def __init__(self, table: TableEntry, source: LogicalOperator) -> None:
        self.table = table
        self.source = source


class BoundUpdate(BoundStatement):
    """UPDATE: target column indices plus expressions over the full table row."""

    def __init__(self, table: TableEntry, column_indices: List[int],
                 expressions: List[BoundExpression],
                 where: Optional[BoundExpression]) -> None:
        self.table = table
        self.column_indices = column_indices
        self.expressions = expressions
        self.where = where


class BoundDelete(BoundStatement):
    def __init__(self, table: TableEntry, where: Optional[BoundExpression]) -> None:
        self.table = table
        self.where = where


class BoundCreateTable(BoundStatement):
    def __init__(self, name: str, columns: List[ColumnDefinition],
                 if_not_exists: bool, source: Optional[LogicalOperator]) -> None:
        self.name = name
        self.columns = columns
        self.if_not_exists = if_not_exists
        self.source = source


class BoundCreateView(BoundStatement):
    def __init__(self, name: str, sql: str, query: Any, or_replace: bool) -> None:
        self.name = name
        self.sql = sql
        self.query = query
        self.or_replace = or_replace


class BoundDrop(BoundStatement):
    def __init__(self, kind: str, name: str, if_exists: bool) -> None:
        self.kind = kind
        self.name = name
        self.if_exists = if_exists


class BoundTransaction(BoundStatement):
    def __init__(self, action: str) -> None:
        self.action = action


class BoundCheckpoint(BoundStatement):
    pass


class BoundPragma(BoundStatement):
    def __init__(self, name: str, value: Any) -> None:
        self.name = name
        self.value = value


class BoundCopyFrom(BoundStatement):
    """COPY table FROM 'file': bulk-load a CSV into a table."""

    def __init__(self, table: TableEntry, path: str, options: dict) -> None:
        self.table = table
        self.path = path
        self.options = options


class BoundCopyTo(BoundStatement):
    """COPY ... TO 'file': export a query result as CSV."""

    def __init__(self, source: LogicalOperator, path: str, options: dict) -> None:
        self.source = source
        self.path = path
        self.options = options


class BoundExplain(BoundStatement):
    def __init__(self, inner: BoundStatement, analyze: bool = False) -> None:
        self.inner = inner
        self.analyze = analyze
