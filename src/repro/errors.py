"""Exception hierarchy for the repro (QuackDB) embedded analytical database.

Every error raised by the library derives from :class:`Error` so that client
code can catch a single base class.  The hierarchy loosely mirrors the error
categories of the system described in the paper: frontend errors (parsing,
binding), runtime errors (conversion, out-of-memory), transactional errors
(conflicts), and integrity errors (corruption detected by checksums or
AN codes).
"""

from __future__ import annotations

__all__ = [
    "Error",
    "InternalError",
    "ParserError",
    "BinderError",
    "CatalogError",
    "ConversionError",
    "InvalidInputError",
    "ConstraintError",
    "OutOfMemoryError",
    "TransactionError",
    "TransactionConflict",
    "TransactionContextError",
    "StorageError",
    "CorruptionError",
    "WALError",
    "HardwareError",
    "MemoryFaultError",
    "InterfaceError",
    "ConnectionError",
    "ClosedHandleError",
    "AdmissionError",
    "InterruptError",
    "PlanVerificationError",
]


class Error(Exception):
    """Base class for every error raised by the database."""


class InternalError(Error):
    """An invariant of the engine itself was violated (a bug, not user error)."""


class ParserError(Error):
    """The SQL text could not be parsed.

    Carries the offending position so clients can point at the token.
    """

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class BinderError(Error):
    """A parsed query referenced unknown columns/tables or mistyped expressions."""


class CatalogError(Error):
    """A catalog operation failed (duplicate table, missing view, ...)."""


class ConversionError(Error):
    """A value could not be cast to the requested type (overflow, bad format)."""


class InvalidInputError(Error):
    """Client supplied input that is structurally invalid (bad CSV, bad params)."""


class ConstraintError(Error):
    """A NOT NULL or other declared constraint was violated."""


class OutOfMemoryError(Error):
    """An operation exceeded the configured memory limit and could not spill."""


class TransactionError(Error):
    """Base class for transactional failures."""


class TransactionConflict(TransactionError):
    """Serializable MVCC detected a write-write conflict; the transaction aborted.

    This mirrors the first-writer-wins rule of HyPer-style MVCC adopted by
    the paper: the second writer to touch a row is rolled back.
    """


class TransactionContextError(TransactionError):
    """BEGIN/COMMIT/ROLLBACK used in an invalid state (e.g. nested BEGIN)."""


class StorageError(Error):
    """Base class for persistent-storage failures."""


class CorruptionError(StorageError):
    """Data integrity violation detected (checksum mismatch, bad AN code).

    The paper's resilience requirement: rather than allowing silent data
    corruption, the system detects it and *ceases operation* on the affected
    data, reporting this error.
    """


class WALError(StorageError):
    """The write-ahead log is malformed beyond the last committed record."""


class HardwareError(Error):
    """Simulated or detected hardware failure (CPU MCE, disk, DRAM)."""


class MemoryFaultError(HardwareError):
    """A memory self-test (moving inversions) found a broken region."""


class InterfaceError(InvalidInputError):
    """Client-side misuse of the API surface (PEP 249 ``InterfaceError``).

    Raised for structurally invalid use of connections, cursors, pools, and
    prepared statements -- never for engine-internal failures.
    """


class ConnectionError(Error):
    """The connection or database handle was used after being closed."""


class ClosedHandleError(InterfaceError, ConnectionError):
    """Operation on a closed (or pool-returned) connection or cursor.

    Deliberately both an :class:`InterfaceError` (the DB-API contract for
    closed handles) and a :class:`ConnectionError` (the engine's historical
    category for used-after-close), so both client idioms keep working.
    """


class AdmissionError(Error):
    """The admission controller rejected a query (queue full past timeout)."""


class InterruptError(Error):
    """Query execution was interrupted (cooperative cancellation)."""


class PlanVerificationError(Error):
    """quackplan found a plan that violates a structural invariant.

    Raised (under ``REPRO_VERIFY_PLANS=1`` / ``verify_plans``) when an
    optimizer pass or the logical->physical lowering produces a plan with a
    dangling column reference, a changed output schema, an inflated limit,
    or a nonsensical cardinality estimate.  Deliberately *not* an
    :class:`InternalError`: the verifier reports through its own channel
    (``repro_plan_checks()`` plus this exception, which already carries the
    offending pass and before/after plan snippets), so it must not also
    trigger the flight recorder's engine-fault dump.
    """
