"""Logical type system, vectors, and data chunks.

This package defines the data representation shared by every layer of the
engine: logical SQL types mapped onto NumPy physical types, typed
:class:`Vector` column slices with validity masks, and :class:`DataChunk`
horizontal slices that flow through the Vector Volcano execution model and
across the zero-copy client API.
"""

from .logical import (
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    FLOAT,
    INTEGER,
    SMALLINT,
    SQLNULL,
    TIMESTAMP,
    TINYINT,
    VARCHAR,
    LogicalType,
    LogicalTypeId,
    common_type,
    infer_type_of_value,
    type_from_string,
)
from .vector import VECTOR_SIZE, Vector
from .chunk import DataChunk
from .casts import cast_scalar, cast_vector

__all__ = [
    "LogicalType",
    "LogicalTypeId",
    "BOOLEAN",
    "TINYINT",
    "SMALLINT",
    "INTEGER",
    "BIGINT",
    "FLOAT",
    "DOUBLE",
    "VARCHAR",
    "DATE",
    "TIMESTAMP",
    "SQLNULL",
    "Vector",
    "DataChunk",
    "VECTOR_SIZE",
    "cast_vector",
    "cast_scalar",
    "common_type",
    "infer_type_of_value",
    "type_from_string",
]
