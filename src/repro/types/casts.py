"""Vectorized casts between logical types.

Casting is a first-class vectorized operation: a cast consumes a whole
:class:`~repro.types.vector.Vector` and produces a new one, raising
:class:`~repro.errors.ConversionError` on the first offending value (with the
value included in the message, which matters for ETL debugging).
"""

from __future__ import annotations

import datetime
from typing import Any, Optional

import numpy as np

from ..errors import ConversionError
from . import logical
from .logical import (
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    LogicalType,
    LogicalTypeId,
    SQLNULL,
    TIMESTAMP,
    VARCHAR,
)
from .vector import Vector

__all__ = ["cast_vector", "cast_scalar"]

_TRUE_STRINGS = {"true", "t", "yes", "y", "1"}
_FALSE_STRINGS = {"false", "f", "no", "n", "0"}


def _parse_date(text: str) -> int:
    """Parse ``YYYY-MM-DD`` into day-offset storage form."""
    try:
        parsed = datetime.date.fromisoformat(text.strip())
    except ValueError as exc:
        raise ConversionError(f"Could not parse {text!r} as DATE: {exc}") from None
    return logical.date_to_days(parsed)


def _parse_timestamp(text: str) -> int:
    """Parse an ISO timestamp (date-only allowed) into microsecond storage form."""
    text = text.strip()
    try:
        parsed = datetime.datetime.fromisoformat(text)
    except ValueError:
        try:
            parsed_date = datetime.date.fromisoformat(text)
        except ValueError as exc:
            raise ConversionError(f"Could not parse {text!r} as TIMESTAMP: {exc}") from None
        parsed = datetime.datetime.combine(parsed_date, datetime.time())
    return logical.timestamp_to_micros(parsed)


def _parse_bool(text: str) -> bool:
    lowered = text.strip().lower()
    if lowered in _TRUE_STRINGS:
        return True
    if lowered in _FALSE_STRINGS:
        return False
    raise ConversionError(f"Could not parse {text!r} as BOOLEAN")


def _check_integer_range(values: np.ndarray, validity: np.ndarray, target: LogicalType) -> None:
    """Raise if any *valid* value falls outside the target integer range."""
    low, high = target.integer_range()
    valid_values = values[validity]
    if valid_values.size == 0:
        return
    bad = (valid_values < low) | (valid_values > high)
    if bad.any():
        offender = valid_values[bad][0]
        raise ConversionError(f"Value {offender} out of range for {target}")


def _varchar_from_physical(vector: Vector) -> np.ndarray:
    """Render a non-VARCHAR vector's values as strings (invalid entries -> None)."""
    out = np.empty(len(vector), dtype=object)
    source_id = vector.dtype.id
    for index in range(len(vector)):
        if not vector.validity[index]:
            out[index] = None
            continue
        if source_id is LogicalTypeId.BOOLEAN:
            out[index] = "true" if vector.data[index] else "false"
        elif source_id is LogicalTypeId.DATE:
            out[index] = logical.days_to_date(int(vector.data[index])).isoformat()
        elif source_id is LogicalTypeId.TIMESTAMP:
            out[index] = logical.micros_to_timestamp(int(vector.data[index])).isoformat(sep=" ")
        elif vector.dtype.is_float():
            out[index] = repr(float(vector.data[index]))
        else:
            out[index] = str(int(vector.data[index]))
    return out


def _varchar_to_physical(vector: Vector, target: LogicalType) -> Vector:
    """Parse a VARCHAR vector into any other type, value by value."""
    count = len(vector)
    validity = vector.validity.copy()
    data = np.zeros(count, dtype=target.numpy_dtype)
    target_id = target.id
    for index in range(count):
        if not validity[index]:
            continue
        text = vector.data[index]
        if target_id is LogicalTypeId.BOOLEAN:
            data[index] = _parse_bool(text)
        elif target_id is LogicalTypeId.DATE:
            data[index] = _parse_date(text)
        elif target_id is LogicalTypeId.TIMESTAMP:
            data[index] = _parse_timestamp(text)
        elif target.is_integer():
            try:
                parsed = int(text.strip())
            except ValueError:
                # Accept "3.0"-style text for integer casts when exact.
                try:
                    as_float = float(text.strip())
                except ValueError:
                    raise ConversionError(
                        f"Could not parse {text!r} as {target}"
                    ) from None
                parsed = int(as_float)
                if parsed != as_float:
                    raise ConversionError(
                        f"Could not parse {text!r} as {target} without loss"
                    ) from None
            low, high = target.integer_range()
            if not low <= parsed <= high:
                raise ConversionError(f"Value {parsed} out of range for {target}")
            data[index] = parsed
        elif target.is_float():
            try:
                data[index] = float(text.strip())
            except ValueError:
                raise ConversionError(f"Could not parse {text!r} as {target}") from None
        else:
            raise ConversionError(f"Unsupported cast VARCHAR -> {target}")
    return Vector(target, data, validity)


def cast_vector(vector: Vector, target: LogicalType) -> Vector:
    """Cast a vector to ``target``, preserving NULLs.

    Raises :class:`~repro.errors.ConversionError` when any valid value cannot
    be represented in the target type (integer overflow, malformed text, ...).
    """
    source = vector.dtype
    if source == target:
        return vector
    if source.id is LogicalTypeId.SQLNULL:
        return Vector.empty(target, len(vector))
    if target.id is LogicalTypeId.SQLNULL:
        raise ConversionError(f"Cannot cast {source} to NULL")

    if target.id is LogicalTypeId.VARCHAR:
        return Vector(VARCHAR, _varchar_from_physical(vector), vector.validity.copy())
    if source.id is LogicalTypeId.VARCHAR:
        return _varchar_to_physical(vector, target)

    source_numericish = source.is_numeric() or source.id is LogicalTypeId.BOOLEAN
    target_numericish = target.is_numeric() or target.id is LogicalTypeId.BOOLEAN
    if source_numericish and target_numericish:
        validity = vector.validity.copy()
        if target.is_integer():
            if source.is_float():
                valid_values = vector.data[validity]
                rounded = np.where(np.isfinite(valid_values), np.rint(valid_values), 0)
                if not np.isfinite(valid_values).all():
                    raise ConversionError(f"Cannot cast non-finite float to {target}")
                low, high = target.integer_range()
                if rounded.size and ((rounded < low) | (rounded > high)).any():
                    offender = valid_values[(rounded < low) | (rounded > high)][0]
                    raise ConversionError(f"Value {offender} out of range for {target}")
                data = np.zeros(len(vector), dtype=target.numpy_dtype)
                data[validity] = rounded.astype(target.numpy_dtype)
                return Vector(target, data, validity)
            _check_integer_range(vector.data, validity, target)
        data = vector.data.astype(target.numpy_dtype)
        # Scrub garbage under NULL positions for deterministic storage.
        if not validity.all():
            data = data.copy()
            data[~validity] = 0
        return Vector(target, data, validity)

    if source.id is LogicalTypeId.DATE and target.id is LogicalTypeId.TIMESTAMP:
        data = vector.data.astype(np.int64) * 86_400_000_000
        return Vector(TIMESTAMP, data, vector.validity.copy())
    if source.id is LogicalTypeId.TIMESTAMP and target.id is LogicalTypeId.DATE:
        data = np.floor_divide(vector.data, 86_400_000_000).astype(np.int32)
        return Vector(DATE, data, vector.validity.copy())

    raise ConversionError(f"Unsupported cast {source} -> {target}")


def cast_scalar(value: Any, target: LogicalType) -> Any:
    """Cast one Python value to ``target``'s Python representation."""
    if value is None:
        return None
    vector = Vector.from_values([value])
    return cast_vector(vector, target).get_value(0)
