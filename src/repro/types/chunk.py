"""DataChunk: a horizontal slice of a table, intermediate, or result set.

The paper (Section 6): *"A chunk is a horizontal subset of a result set,
query intermediate or base table. The chunk consists of a set of column
slices."*  Chunks are what flows between operators in the Vector Volcano
model and what is handed to the client application without copying.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import InternalError
from .logical import LogicalType
from .vector import VECTOR_SIZE, Vector

__all__ = ["DataChunk"]


class DataChunk:
    """An ordered collection of equal-length :class:`Vector` columns."""

    __slots__ = ("columns",)

    def __init__(self, columns: Sequence[Vector]):
        columns = list(columns)
        if columns:
            count = len(columns[0])
            for column in columns[1:]:
                if len(column) != count:
                    raise InternalError(
                        f"DataChunk columns of differing lengths: {count} vs {len(column)}"
                    )
        self.columns = columns

    # -- constructors ----------------------------------------------------
    @classmethod
    def empty(cls, types: Sequence[LogicalType]) -> "DataChunk":
        return cls([Vector.empty(dtype, 0) for dtype in types])

    @classmethod
    def from_pylists(cls, columns: Sequence[Sequence[Any]],
                     types: Optional[Sequence[Optional[LogicalType]]] = None) -> "DataChunk":
        """Build a chunk from per-column lists of Python values."""
        if types is None:
            types = [None] * len(columns)
        return cls([
            Vector.from_values(values, dtype)
            for values, dtype in zip(columns, types)
        ])

    @classmethod
    def from_numpy(cls, arrays: Sequence[np.ndarray], types: Sequence[LogicalType],
                   validities: Optional[Sequence[Optional[np.ndarray]]] = None) -> "DataChunk":
        """Wrap NumPy arrays as a chunk without copying."""
        if validities is None:
            validities = [None] * len(arrays)
        return cls([
            Vector.from_numpy(array, dtype, validity)
            for array, dtype, validity in zip(arrays, types, validities)
        ])

    # -- accessors ---------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of rows in the chunk."""
        return len(self.columns[0]) if self.columns else 0

    @property
    def column_count(self) -> int:
        return len(self.columns)

    @property
    def types(self) -> List[LogicalType]:
        return [column.dtype for column in self.columns]

    def __len__(self) -> int:
        return self.size

    def row(self, index: int) -> Tuple[Any, ...]:
        """One row as a tuple of Python values."""
        return tuple(column.get_value(index) for column in self.columns)

    def to_rows(self) -> List[Tuple[Any, ...]]:
        """Materialize the chunk as a list of row tuples."""
        per_column = [column.to_pylist() for column in self.columns]
        return list(zip(*per_column)) if per_column else []

    def to_pydict(self, names: Sequence[str]) -> Dict[str, List[Any]]:
        """Materialize as ``{column_name: [values]}``."""
        return {name: column.to_pylist() for name, column in zip(names, self.columns)}

    # -- transformations ----------------------------------------------------
    def slice(self, selection: np.ndarray) -> "DataChunk":
        """Rows selected by an index array or boolean mask, applied to all columns."""
        return DataChunk([column.slice(selection) for column in self.columns])

    def copy(self) -> "DataChunk":
        return DataChunk([column.copy() for column in self.columns])

    def project(self, indices: Sequence[int]) -> "DataChunk":
        """A chunk containing only the given column positions (no copying)."""
        return DataChunk([self.columns[index] for index in indices])

    def append_column(self, vector: Vector) -> None:
        if self.columns and len(vector) != self.size:
            raise InternalError("appended column has wrong length")
        self.columns.append(vector)

    @classmethod
    def concat_many(cls, chunks: Iterable["DataChunk"]) -> "DataChunk":
        """Vertically concatenate same-schema chunks into one large chunk."""
        chunks = [chunk for chunk in chunks if chunk.size or chunk.columns]
        if not chunks:
            raise InternalError("concat_many of zero chunks")
        column_count = chunks[0].column_count
        for chunk in chunks:
            if chunk.column_count != column_count:
                raise InternalError("concat_many of chunks with differing column counts")
        return cls([
            Vector.concat_many([chunk.columns[position] for chunk in chunks])
            for position in range(column_count)
        ])

    def split(self, chunk_size: int = VECTOR_SIZE) -> Iterable["DataChunk"]:
        """Yield this chunk re-sliced into pieces of at most ``chunk_size`` rows."""
        total = self.size
        if total == 0:
            return
        for start in range(0, total, chunk_size):
            selection = np.arange(start, min(start + chunk_size, total))
            yield self.slice(selection)

    def nbytes(self) -> int:
        """Approximate memory footprint of all columns."""
        return sum(column.nbytes() for column in self.columns)

    def __repr__(self) -> str:
        types = ", ".join(str(dtype) for dtype in self.types)
        return f"DataChunk({self.size} rows x [{types}])"
