"""Vectors: the unit of data flow in the Vector Volcano execution model.

A :class:`Vector` is a typed, fixed-length column slice -- a NumPy array of
values plus a validity mask marking which entries are non-NULL.  Query
operators consume and produce vectors of at most :data:`VECTOR_SIZE` entries,
which amortizes interpretation overhead over many values exactly as the
paper's vectorized engine does.
"""

from __future__ import annotations

import datetime
from typing import Any, Iterable, List, Optional, Sequence

import numpy as np

from ..errors import ConversionError, InternalError
from . import logical
from .logical import (
    BOOLEAN,
    DATE,
    DOUBLE,
    LogicalType,
    LogicalTypeId,
    SQLNULL,
    TIMESTAMP,
    VARCHAR,
    infer_type_of_value,
)

__all__ = ["VECTOR_SIZE", "Vector"]

#: Number of values per vector -- DuckDB's STANDARD_VECTOR_SIZE.
VECTOR_SIZE = 2048


def _coerce_scalar_for_storage(value: Any, dtype: LogicalType) -> Any:
    """Convert a Python value into the physical representation of ``dtype``."""
    type_id = dtype.id
    if type_id is LogicalTypeId.DATE:
        if isinstance(value, datetime.date) and not isinstance(value, datetime.datetime):
            return logical.date_to_days(value)
        if isinstance(value, (int, np.integer)):
            return int(value)
        raise ConversionError(f"Cannot store {value!r} in a DATE vector")
    if type_id is LogicalTypeId.TIMESTAMP:
        if isinstance(value, datetime.datetime):
            return logical.timestamp_to_micros(value)
        if isinstance(value, (int, np.integer)):
            return int(value)
        raise ConversionError(f"Cannot store {value!r} in a TIMESTAMP vector")
    if type_id is LogicalTypeId.VARCHAR:
        if isinstance(value, str):
            return value
        if isinstance(value, (bytes, bytearray)):
            return bytes(value).decode("utf-8")
        return str(value)
    if type_id is LogicalTypeId.BOOLEAN:
        return bool(value)
    if dtype.is_integer():
        as_int = int(value)
        low, high = dtype.integer_range()
        if not low <= as_int <= high:
            raise ConversionError(f"Value {as_int} out of range for {dtype}")
        return as_int
    if dtype.is_float():
        return float(value)
    if type_id is LogicalTypeId.SQLNULL:
        return False
    raise InternalError(f"Unhandled type in scalar coercion: {dtype}")


def _physical_to_python(value: Any, dtype: LogicalType) -> Any:
    """Convert a stored physical value back to the natural Python object."""
    type_id = dtype.id
    if type_id is LogicalTypeId.DATE:
        return logical.days_to_date(int(value))
    if type_id is LogicalTypeId.TIMESTAMP:
        return logical.micros_to_timestamp(int(value))
    if type_id is LogicalTypeId.VARCHAR:
        return str(value)
    if type_id is LogicalTypeId.BOOLEAN:
        return bool(value)
    if dtype.is_integer():
        return int(value)
    if dtype.is_float():
        return float(value)
    if type_id is LogicalTypeId.SQLNULL:
        return None
    raise InternalError(f"Unhandled type in python conversion: {dtype}")


class Vector:
    """A typed column slice: NumPy data plus a boolean validity mask.

    ``data`` and ``validity`` always have identical length; ``validity[i]``
    is True when row ``i`` holds a real value and False when it is NULL.
    The arrays are exposed directly (``vector.data``) for zero-copy transfer
    into client code, which is the transfer-efficiency story of the paper.
    """

    __slots__ = ("dtype", "data", "validity")

    def __init__(self, dtype: LogicalType, data: np.ndarray, validity: Optional[np.ndarray] = None):
        if validity is None:
            validity = np.ones(len(data), dtype=np.bool_)
        if len(validity) != len(data):
            raise InternalError(
                f"Vector data length {len(data)} != validity length {len(validity)}"
            )
        self.dtype = dtype
        self.data = data
        self.validity = validity

    # -- constructors ----------------------------------------------------
    @classmethod
    def empty(cls, dtype: LogicalType, count: int = 0) -> "Vector":
        """An all-NULL vector of ``count`` entries."""
        data = np.zeros(count, dtype=dtype.numpy_dtype)
        if dtype.id is LogicalTypeId.VARCHAR:
            data = np.empty(count, dtype=object)
            data[:] = None
        return cls(dtype, data, np.zeros(count, dtype=np.bool_))

    @classmethod
    def from_values(cls, values: Sequence[Any], dtype: Optional[LogicalType] = None) -> "Vector":
        """Build a vector from Python values, inferring the type if needed.

        ``None`` entries become NULLs.  When ``dtype`` is omitted, the common
        type of all non-NULL values is inferred; an all-NULL sequence yields
        a SQLNULL-typed vector.
        """
        values = list(values)
        if dtype is None:
            dtype = SQLNULL
            for value in values:
                if value is None:
                    continue
                value_type = infer_type_of_value(value)
                unified = logical.common_type(dtype, value_type)
                if unified is None:
                    raise ConversionError(
                        f"Values of incompatible types {dtype} and {value_type} in one column"
                    )
                dtype = unified
        count = len(values)
        validity = np.ones(count, dtype=np.bool_)
        if dtype.id is LogicalTypeId.VARCHAR:
            data = np.empty(count, dtype=object)
        else:
            data = np.zeros(count, dtype=dtype.numpy_dtype)
        for index, value in enumerate(values):
            if value is None:
                validity[index] = False
                continue
            data[index] = _coerce_scalar_for_storage(value, dtype)
        return cls(dtype, data, validity)

    @classmethod
    def constant(cls, value: Any, count: int, dtype: Optional[LogicalType] = None) -> "Vector":
        """A vector holding ``count`` copies of one value (or NULL)."""
        if dtype is None:
            dtype = infer_type_of_value(value)
        if value is None:
            return cls.empty(dtype, count)
        stored = _coerce_scalar_for_storage(value, dtype)
        if dtype.id is LogicalTypeId.VARCHAR:
            data = np.empty(count, dtype=object)
            data[:] = stored
        else:
            data = np.full(count, stored, dtype=dtype.numpy_dtype)
        return cls(dtype, data, np.ones(count, dtype=np.bool_))

    @classmethod
    def from_numpy(cls, array: np.ndarray, dtype: LogicalType,
                   validity: Optional[np.ndarray] = None) -> "Vector":
        """Wrap an existing NumPy array without copying (zero-copy import)."""
        expected = dtype.numpy_dtype
        if array.dtype != expected:
            array = array.astype(expected)
        return cls(dtype, array, validity)

    # -- basic accessors ---------------------------------------------------
    def __len__(self) -> int:
        return len(self.data)

    @property
    def count(self) -> int:
        return len(self.data)

    def get_value(self, index: int) -> Any:
        """The Python value at ``index`` (``None`` for NULL)."""
        if not self.validity[index]:
            return None
        return _physical_to_python(self.data[index], self.dtype)

    def set_value(self, index: int, value: Any) -> None:
        """Store a Python value (or ``None`` for NULL) at ``index``."""
        if value is None:
            self.validity[index] = False
            if self.dtype.id is LogicalTypeId.VARCHAR:
                self.data[index] = None
            return
        self.data[index] = _coerce_scalar_for_storage(value, self.dtype)
        self.validity[index] = True

    def to_pylist(self) -> List[Any]:
        """Materialize the vector as a list of Python values."""
        return [self.get_value(index) for index in range(len(self))]

    def null_count(self) -> int:
        return int(len(self) - np.count_nonzero(self.validity))

    def all_valid(self) -> bool:
        return bool(self.validity.all()) if len(self) else True

    # -- transformations --------------------------------------------------
    def slice(self, selection: np.ndarray) -> "Vector":
        """A new vector containing the rows selected by index array or mask."""
        return Vector(self.dtype, self.data[selection], self.validity[selection])

    def copy(self) -> "Vector":
        return Vector(self.dtype, self.data.copy(), self.validity.copy())

    def concat(self, other: "Vector") -> "Vector":
        """This vector followed by ``other`` (types must match)."""
        if other.dtype != self.dtype:
            raise InternalError(f"concat of {self.dtype} with {other.dtype}")
        return Vector(
            self.dtype,
            np.concatenate([self.data, other.data]),
            np.concatenate([self.validity, other.validity]),
        )

    @classmethod
    def concat_many(cls, vectors: Iterable["Vector"]) -> "Vector":
        """Concatenate a non-empty sequence of same-typed vectors."""
        vectors = list(vectors)
        if not vectors:
            raise InternalError("concat_many of zero vectors")
        dtype = vectors[0].dtype
        for vector in vectors[1:]:
            if vector.dtype != dtype:
                raise InternalError(f"concat_many of {dtype} with {vector.dtype}")
        return cls(
            dtype,
            np.concatenate([vector.data for vector in vectors]),
            np.concatenate([vector.validity for vector in vectors]),
        )

    def nbytes(self) -> int:
        """Approximate memory footprint in bytes.

        String payloads are *estimated* from a sample: this is accounting
        input for the buffer manager, called on every buffered chunk, so a
        full pass over every string would cost more than it protects.
        """
        if self.dtype.id is LogicalTypeId.VARCHAR:
            count = len(self)
            if count == 0:
                payload = 0
            elif count <= 64:
                payload = sum(len(value) for value in self.data
                              if value is not None)
            else:
                step = max(count // 64, 1)
                sample = self.data[::step][:64]
                sampled = [len(value) for value in sample if value is not None]
                average = (sum(sampled) / len(sampled)) if sampled else 0
                payload = int(average * count)
            return payload + count * 8 + self.validity.nbytes
        return self.data.nbytes + self.validity.nbytes

    def __repr__(self) -> str:
        preview = self.to_pylist()[:8]
        suffix = ", ..." if len(self) > 8 else ""
        return f"Vector({self.dtype}, {len(self)} values: {preview}{suffix})"
