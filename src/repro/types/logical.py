"""Logical SQL types and their physical (NumPy) representation.

The engine follows the paper's vectorized design: every column of every chunk
is a NumPy array of the physical dtype associated with a logical SQL type.
DATE is stored as int32 days since the Unix epoch and TIMESTAMP as int64
microseconds since the Unix epoch, matching the fixed-width layouts used by
columnar engines such as DuckDB.
"""

from __future__ import annotations

import datetime
import enum
from typing import Any, Optional

import numpy as np

from ..errors import ConversionError, InternalError

__all__ = [
    "LogicalTypeId",
    "LogicalType",
    "BOOLEAN",
    "TINYINT",
    "SMALLINT",
    "INTEGER",
    "BIGINT",
    "FLOAT",
    "DOUBLE",
    "VARCHAR",
    "DATE",
    "TIMESTAMP",
    "SQLNULL",
    "type_from_string",
    "infer_type_of_value",
    "common_type",
    "max_numeric_type",
]

#: Days / microseconds relative to this epoch for DATE / TIMESTAMP storage.
EPOCH_DATE = datetime.date(1970, 1, 1)
EPOCH_DATETIME = datetime.datetime(1970, 1, 1)


class LogicalTypeId(enum.Enum):
    """Identifier of a SQL-level type."""

    SQLNULL = "NULL"
    BOOLEAN = "BOOLEAN"
    TINYINT = "TINYINT"
    SMALLINT = "SMALLINT"
    INTEGER = "INTEGER"
    BIGINT = "BIGINT"
    FLOAT = "FLOAT"
    DOUBLE = "DOUBLE"
    VARCHAR = "VARCHAR"
    DATE = "DATE"
    TIMESTAMP = "TIMESTAMP"


_NUMPY_DTYPES = {
    LogicalTypeId.SQLNULL: np.dtype(np.bool_),
    LogicalTypeId.BOOLEAN: np.dtype(np.bool_),
    LogicalTypeId.TINYINT: np.dtype(np.int8),
    LogicalTypeId.SMALLINT: np.dtype(np.int16),
    LogicalTypeId.INTEGER: np.dtype(np.int32),
    LogicalTypeId.BIGINT: np.dtype(np.int64),
    LogicalTypeId.FLOAT: np.dtype(np.float32),
    LogicalTypeId.DOUBLE: np.dtype(np.float64),
    LogicalTypeId.VARCHAR: np.dtype(object),
    LogicalTypeId.DATE: np.dtype(np.int32),
    LogicalTypeId.TIMESTAMP: np.dtype(np.int64),
}

#: Numeric promotion ladder: the common type of two numerics is the one
#: further along this ladder (mirrors standard SQL implicit-cast rules).
_NUMERIC_ORDER = [
    LogicalTypeId.BOOLEAN,
    LogicalTypeId.TINYINT,
    LogicalTypeId.SMALLINT,
    LogicalTypeId.INTEGER,
    LogicalTypeId.BIGINT,
    LogicalTypeId.FLOAT,
    LogicalTypeId.DOUBLE,
]

_INTEGER_RANGES = {
    LogicalTypeId.TINYINT: (-(2**7), 2**7 - 1),
    LogicalTypeId.SMALLINT: (-(2**15), 2**15 - 1),
    LogicalTypeId.INTEGER: (-(2**31), 2**31 - 1),
    LogicalTypeId.BIGINT: (-(2**63), 2**63 - 1),
}


class LogicalType:
    """A SQL-level type. Instances are interned; compare with ``==``."""

    __slots__ = ("id",)

    _interned: dict = {}

    def __new__(cls, type_id: LogicalTypeId) -> "LogicalType":
        existing = cls._interned.get(type_id)
        if existing is not None:
            return existing
        instance = super().__new__(cls)
        object.__setattr__(instance, "id", type_id)
        cls._interned[type_id] = instance
        return instance

    def __setattr__(self, name: str, value: Any) -> None:
        raise InternalError("LogicalType instances are immutable")

    # -- classification -------------------------------------------------
    @property
    def numpy_dtype(self) -> np.dtype:
        """The physical NumPy dtype backing vectors of this type."""
        return _NUMPY_DTYPES[self.id]

    def is_numeric(self) -> bool:
        return self.id in _NUMERIC_ORDER and self.id != LogicalTypeId.BOOLEAN

    def is_integer(self) -> bool:
        return self.id in _INTEGER_RANGES

    def is_float(self) -> bool:
        return self.id in (LogicalTypeId.FLOAT, LogicalTypeId.DOUBLE)

    def is_temporal(self) -> bool:
        return self.id in (LogicalTypeId.DATE, LogicalTypeId.TIMESTAMP)

    def integer_range(self) -> tuple:
        """(min, max) representable by an integer type."""
        if not self.is_integer():
            raise InternalError(f"{self} is not an integer type")
        return _INTEGER_RANGES[self.id]

    # -- dunder ----------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, LogicalType) and other.id is self.id

    def __hash__(self) -> int:
        return hash(self.id)

    def __repr__(self) -> str:
        return f"LogicalType.{self.id.name}"

    def __str__(self) -> str:
        return self.id.value


BOOLEAN = LogicalType(LogicalTypeId.BOOLEAN)
TINYINT = LogicalType(LogicalTypeId.TINYINT)
SMALLINT = LogicalType(LogicalTypeId.SMALLINT)
INTEGER = LogicalType(LogicalTypeId.INTEGER)
BIGINT = LogicalType(LogicalTypeId.BIGINT)
FLOAT = LogicalType(LogicalTypeId.FLOAT)
DOUBLE = LogicalType(LogicalTypeId.DOUBLE)
VARCHAR = LogicalType(LogicalTypeId.VARCHAR)
DATE = LogicalType(LogicalTypeId.DATE)
TIMESTAMP = LogicalType(LogicalTypeId.TIMESTAMP)
SQLNULL = LogicalType(LogicalTypeId.SQLNULL)


_TYPE_ALIASES = {
    "BOOL": BOOLEAN,
    "BOOLEAN": BOOLEAN,
    "LOGICAL": BOOLEAN,
    "TINYINT": TINYINT,
    "INT1": TINYINT,
    "SMALLINT": SMALLINT,
    "INT2": SMALLINT,
    "SHORT": SMALLINT,
    "INT": INTEGER,
    "INTEGER": INTEGER,
    "INT4": INTEGER,
    "SIGNED": INTEGER,
    "BIGINT": BIGINT,
    "INT8": BIGINT,
    "LONG": BIGINT,
    "HUGEINT": BIGINT,
    "FLOAT": FLOAT,
    "FLOAT4": FLOAT,
    "REAL": FLOAT,
    "DOUBLE": DOUBLE,
    "FLOAT8": DOUBLE,
    "NUMERIC": DOUBLE,
    "DECIMAL": DOUBLE,
    "VARCHAR": VARCHAR,
    "CHAR": VARCHAR,
    "TEXT": VARCHAR,
    "STRING": VARCHAR,
    "DATE": DATE,
    "TIMESTAMP": TIMESTAMP,
    "DATETIME": TIMESTAMP,
}


def type_from_string(name: str) -> LogicalType:
    """Resolve a SQL type name (e.g. ``"INTEGER"``, ``"text"``) to a type.

    Raises :class:`~repro.errors.ConversionError` for unknown names.
    """
    base = name.strip().upper()
    # Strip parenthesized width, e.g. VARCHAR(32) or DECIMAL(10, 2).
    if "(" in base:
        base = base[: base.index("(")].strip()
    resolved = _TYPE_ALIASES.get(base)
    if resolved is None:
        raise ConversionError(f"Unknown SQL type: {name!r}")
    return resolved


def infer_type_of_value(value: Any) -> LogicalType:
    """Infer the narrowest logical type that can hold a Python value."""
    if value is None:
        return SQLNULL
    if isinstance(value, bool) or isinstance(value, np.bool_):
        return BOOLEAN
    if isinstance(value, (int, np.integer)):
        value = int(value)
        for type_id in (
            LogicalTypeId.INTEGER,
            LogicalTypeId.BIGINT,
        ):
            low, high = _INTEGER_RANGES[type_id]
            if low <= value <= high:
                return LogicalType(type_id)
        raise ConversionError(f"Integer {value} out of BIGINT range")
    if isinstance(value, (float, np.floating)):
        return DOUBLE
    if isinstance(value, str):
        return VARCHAR
    if isinstance(value, datetime.datetime):
        return TIMESTAMP
    if isinstance(value, datetime.date):
        return DATE
    if isinstance(value, (bytes, bytearray)):
        return VARCHAR
    raise ConversionError(f"Cannot map Python value of type {type(value).__name__} to a SQL type")


def max_numeric_type(left: LogicalType, right: LogicalType) -> LogicalType:
    """The wider of two numeric (or boolean) types along the promotion ladder."""
    try:
        left_rank = _NUMERIC_ORDER.index(left.id)
        right_rank = _NUMERIC_ORDER.index(right.id)
    except ValueError:
        raise InternalError(f"max_numeric_type called on non-numeric {left}/{right}")
    return LogicalType(_NUMERIC_ORDER[max(left_rank, right_rank)])


def common_type(left: LogicalType, right: LogicalType) -> Optional[LogicalType]:
    """The implicit common type of two types, or ``None`` if incompatible.

    NULL unifies with anything; numerics promote along the ladder; DATE
    unifies with TIMESTAMP (dates widen to timestamps); everything unifies
    with itself.  VARCHAR does *not* implicitly unify with numerics: that
    requires an explicit CAST, as in most analytical systems.
    """
    if left == right:
        return left
    if left.id is LogicalTypeId.SQLNULL:
        return right
    if right.id is LogicalTypeId.SQLNULL:
        return left
    if left.id in _NUMERIC_ORDER and right.id in _NUMERIC_ORDER:
        return max_numeric_type(left, right)
    temporal = {left.id, right.id}
    if temporal == {LogicalTypeId.DATE, LogicalTypeId.TIMESTAMP}:
        return TIMESTAMP
    return None


def date_to_days(value: datetime.date) -> int:
    """Convert a Python date to the int32 day offset used for storage."""
    return (value - EPOCH_DATE).days


def days_to_date(days: int) -> datetime.date:
    """Inverse of :func:`date_to_days`."""
    return EPOCH_DATE + datetime.timedelta(days=int(days))


def timestamp_to_micros(value: datetime.datetime) -> int:
    """Convert a Python datetime to the int64 microsecond offset used for storage."""
    delta = value - EPOCH_DATETIME
    return (delta.days * 86_400 + delta.seconds) * 1_000_000 + delta.microseconds


def micros_to_timestamp(micros: int) -> datetime.datetime:
    """Inverse of :func:`timestamp_to_micros`."""
    return EPOCH_DATETIME + datetime.timedelta(microseconds=int(micros))
