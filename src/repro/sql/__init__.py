"""SQL frontend: lexer, AST, and recursive-descent parser."""

from . import ast
from .lexer import Token, TokenType, tokenize
from .parser import Parser, parse, parse_one

__all__ = ["ast", "Token", "TokenType", "tokenize", "Parser", "parse", "parse_one"]
