"""SQL tokenizer.

Hand-written single-pass lexer: identifiers (optionally ``"quoted"``),
case-insensitive keywords, integer/float/scientific literals, ``'string'``
literals with doubled-quote escapes, one- and two-character operators,
``--`` line comments and ``/* */`` block comments, and ``?`` parameter
markers.  Tokens carry their source position so parse errors can point at
the offending character.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from ..errors import ParserError

__all__ = ["TokenType", "Token", "tokenize", "KEYWORDS"]


class TokenType(enum.Enum):
    IDENTIFIER = "identifier"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PARAMETER = "parameter"
    EOF = "eof"


#: Reserved words recognized by the parser.  Identifiers matching these
#: (case-insensitively) become KEYWORD tokens with upper-cased text.
KEYWORDS = frozenset("""
    SELECT FROM WHERE GROUP BY HAVING ORDER LIMIT OFFSET DISTINCT ALL
    AS AND OR NOT IN IS NULL BETWEEN LIKE ILIKE ESCAPE CASE WHEN THEN ELSE END
    CAST EXISTS UNION EXCEPT INTERSECT
    JOIN INNER LEFT RIGHT FULL OUTER CROSS ON USING
    INSERT INTO VALUES UPDATE SET DELETE
    CREATE TABLE VIEW DROP IF REPLACE TEMPORARY TEMP
    PRIMARY KEY NOT DEFAULT UNIQUE CHECK REFERENCES
    BEGIN COMMIT ROLLBACK TRANSACTION START
    CHECKPOINT PRAGMA EXPLAIN ANALYZE
    COPY TO WITH HEADER DELIMITER
    ASC DESC NULLS FIRST LAST
    TRUE FALSE
    OVER PARTITION
""".split())

_TWO_CHAR_OPERATORS = {"<=", ">=", "<>", "!=", "==", "||", "::"}
_ONE_CHAR_OPERATORS = set("+-*/%<>=(),.;")


class Token:
    """One lexical token with its position in the source text."""

    __slots__ = ("type", "text", "position")

    def __init__(self, token_type: TokenType, text: str, position: int) -> None:
        self.type = token_type
        self.text = text
        self.position = position

    def is_keyword(self, *keywords: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text in keywords

    def is_operator(self, *operators: str) -> bool:
        return self.type is TokenType.OPERATOR and self.text in operators

    def __repr__(self) -> str:
        return f"Token({self.type.value}, {self.text!r}@{self.position})"


def tokenize(sql: str) -> List[Token]:
    """Tokenize a SQL string; raises :class:`~repro.errors.ParserError`."""
    tokens: List[Token] = []
    length = len(sql)
    position = 0
    while position < length:
        char = sql[position]
        # Whitespace.
        if char.isspace():
            position += 1
            continue
        # Line comment.
        if sql.startswith("--", position):
            newline = sql.find("\n", position)
            position = length if newline < 0 else newline + 1
            continue
        # Block comment.
        if sql.startswith("/*", position):
            end = sql.find("*/", position + 2)
            if end < 0:
                raise ParserError("Unterminated block comment", position)
            position = end + 2
            continue
        # String literal.
        if char == "'":
            start = position
            position += 1
            parts = []
            while True:
                if position >= length:
                    raise ParserError("Unterminated string literal", start)
                if sql[position] == "'":
                    if position + 1 < length and sql[position + 1] == "'":
                        parts.append("'")
                        position += 2
                        continue
                    position += 1
                    break
                parts.append(sql[position])
                position += 1
            tokens.append(Token(TokenType.STRING, "".join(parts), start))
            continue
        # Quoted identifier.
        if char == '"':
            start = position
            position += 1
            parts = []
            while True:
                if position >= length:
                    raise ParserError("Unterminated quoted identifier", start)
                if sql[position] == '"':
                    if position + 1 < length and sql[position + 1] == '"':
                        parts.append('"')
                        position += 2
                        continue
                    position += 1
                    break
                parts.append(sql[position])
                position += 1
            tokens.append(Token(TokenType.IDENTIFIER, "".join(parts), start))
            continue
        # Number: digits, optional decimal part, optional exponent.
        if char.isdigit() or (char == "." and position + 1 < length
                              and sql[position + 1].isdigit()):
            start = position
            while position < length and sql[position].isdigit():
                position += 1
            if position < length and sql[position] == ".":
                position += 1
                while position < length and sql[position].isdigit():
                    position += 1
            if position < length and sql[position] in "eE":
                lookahead = position + 1
                if lookahead < length and sql[lookahead] in "+-":
                    lookahead += 1
                if lookahead < length and sql[lookahead].isdigit():
                    position = lookahead
                    while position < length and sql[position].isdigit():
                        position += 1
            tokens.append(Token(TokenType.NUMBER, sql[start:position], start))
            continue
        # Identifier or keyword.
        if char.isalpha() or char == "_":
            start = position
            while position < length and (sql[position].isalnum() or sql[position] == "_"):
                position += 1
            text = sql[start:position]
            upper = text.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, text, start))
            continue
        # Parameter markers: positional ``?`` or named ``:name``.  A bare
        # ``:`` followed by anything else (notably a second ``:`` -- the
        # cast operator) falls through to the operator rules below.
        if char == "?":
            tokens.append(Token(TokenType.PARAMETER, "?", position))
            position += 1
            continue
        if char == ":" and position + 1 < length \
                and (sql[position + 1].isalpha() or sql[position + 1] == "_"):
            start = position
            position += 1
            while position < length and (sql[position].isalnum()
                                         or sql[position] == "_"):
                position += 1
            tokens.append(Token(TokenType.PARAMETER, sql[start:position], start))
            continue
        # Operators.
        two = sql[position:position + 2]
        if two in _TWO_CHAR_OPERATORS:
            tokens.append(Token(TokenType.OPERATOR, two, position))
            position += 2
            continue
        if char in _ONE_CHAR_OPERATORS:
            tokens.append(Token(TokenType.OPERATOR, char, position))
            position += 1
            continue
        raise ParserError(f"Unexpected character {char!r} in SQL", position)
    tokens.append(Token(TokenType.EOF, "", length))
    return tokens
